//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of the criterion API its benches use as a local path
//! dependency with the same crate name. It is a plain wall-clock
//! harness: each benchmark is calibrated to a short measurement window
//! and reported as ns/iter (plus elements/sec when a throughput is set).
//! No statistics, plots, or baselines — `cargo bench` output is meant
//! for coarse before/after comparison only.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark. Override with
/// `CRITERION_MEASURE_MS` when more stable numbers are needed.
fn measure_window() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(400);
    Duration::from_millis(ms)
}

/// Batch sizing hints (accepted for API compatibility; batching is
/// always per-iteration here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: setup runs once per measured iteration.
    SmallInput,
    /// Large inputs: same behaviour as `SmallInput` in this shim.
    LargeInput,
}

/// Units processed per iteration, used to derive a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark measurement driver handed to `bench_function` closures.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `routine` repeatedly; timing covers only the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it fills ~1/10 of the window.
        let window = measure_window();
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= window / 10 || batch >= 1 << 30 {
                let total_iters = if elapsed.is_zero() {
                    batch
                } else {
                    let per = elapsed.as_secs_f64() / batch as f64;
                    ((window.as_secs_f64() / per) as u64).max(1)
                };
                let t = Instant::now();
                for _ in 0..total_iters {
                    black_box(routine());
                }
                self.ns_per_iter = t.elapsed().as_secs_f64() * 1e9 / total_iters as f64;
                return;
            }
            batch *= 4;
        }
    }

    /// Measure `routine` over fresh inputs from `setup`; timing covers
    /// only the routine.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let window = measure_window();
        // One calibration run.
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        let one = t.elapsed().max(Duration::from_nanos(1));
        let iters = ((window.as_secs_f64() / one.as_secs_f64()) as u64).clamp(1, 1 << 20);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.ns_per_iter = total.as_secs_f64() * 1e9 / iters as f64;
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.0} elem/s)", n as f64 / (ns_per_iter / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.0} B/s)", n as f64 / (ns_per_iter / 1e9))
        }
        None => String::new(),
    };
    println!("bench: {name:<44} {ns_per_iter:>14.1} ns/iter{rate}");
}

/// Benchmark registry/runner (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named benchmark group with an optional throughput annotation.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this shim sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function from a list of `fn(&mut Criterion)`
/// targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of the `rand` 0.8 API it uses as a local path
//! dependency with the same crate name. [`rngs::StdRng`] is a
//! deterministic xoshiro256++ generator seeded through SplitMix64 —
//! different draws than upstream `StdRng`, but the same contract the
//! simulator relies on: a seed fully determines the stream.

use std::ops::{Range, RangeInclusive};

/// Core generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from all bit patterns (the `Standard`
/// distribution in upstream `rand`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl StandardSample for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types `gen_range` can sample uniformly.
pub trait UniformInt: Copy {
    /// Lossless widening to i128 for span arithmetic.
    fn to_i128(self) -> i128;
    /// Truncating narrowing from i128 (the caller guarantees range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable for ranges wider than 2^64; a raw draw is
        // uniform over any span that large modulo negligible bias.
        rng.next_u64() as u128
    } else {
        // Widening-multiply range reduction (Lemire, without rejection —
        // bias is < 2^-64 * span, irrelevant for simulation draws).
        (rng.next_u64() as u128 * span) >> 64
    }
}

/// Range forms accepted by [`Rng::gen_range`] (upstream `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_i128();
        let hi = self.end.to_i128();
        assert!(lo < hi, "gen_range: empty range");
        let off = sample_below(rng, (hi - lo) as u128) as i128;
        T::from_i128(lo + off)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_i128();
        let hi = self.end().to_i128();
        assert!(lo <= hi, "gen_range: empty range");
        let off = sample_below(rng, (hi - lo) as u128 + 1) as i128;
        T::from_i128(lo + off)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 as upstream
    /// does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++.
    ///
    /// Not the same algorithm as upstream `StdRng` (ChaCha12), but this
    /// workspace only depends on "seed determines stream", never on the
    /// specific draws.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "distinct seeds should diverge");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = r.gen_range(0..10usize);
            assert!(v < 10);
            let w = r.gen_range(1024..u16::MAX);
            assert!((1024..u16::MAX).contains(&w));
            let s = r.gen_range(-5i64..=5i64);
            assert!((-5..=5).contains(&s));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let u = r.gen_range(0u64..=0u64);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

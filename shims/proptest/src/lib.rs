//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of the proptest API its tests use as a local path
//! dependency with the same crate name. Semantics: each `proptest!`
//! test runs `ProptestConfig::cases` deterministic random cases (seeded
//! from the test's module path + name, so failures reproduce exactly).
//! There is no shrinking — a failing case panics with the case index.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// Per-block configuration (subset of upstream `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for upstream compatibility; this harness never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for upstream compatibility; this harness never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            fork: false,
        }
    }
}

/// A generator of random values (subset of upstream `Strategy`).
///
/// Object-safe: `prop_map`/`boxed` are `Self: Sized` so
/// `dyn Strategy<Value = T>` works, which is what `prop_oneof!` uses to
/// mix arms of different concrete strategy types.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union of type-erased strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("prop_oneof: weight bookkeeping broken")
    }
}

/// Types with a canonical full-range strategy (subset of upstream
/// `Arbitrary`), used through [`any`].
pub trait Arbitrary: Sized {
    /// Draw a value from the type's full range.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, usize, bool, f64, f32);

impl Arbitrary for i8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u8>() as i8
    }
}
impl Arbitrary for i16 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u16>() as i16
    }
}
impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u32>() as i32
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as i64
    }
}

/// Strategy over a type's full range.
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Collection-size specification accepted by [`collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "collection::vec: empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use super::*;

    /// Strategy picking one element of a fixed set.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Pick uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select: empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// FNV-1a over the test's path: a stable per-test master seed.
    pub fn rng_for(test_path: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// The names tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a proptest body (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Define deterministic random-case tests (subset of upstream
/// `proptest!`): runs `cases` samples per test, seeded from the test
/// path. A failing case panics with its index; re-running reproduces it.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::__rt::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __run = || $body;
                    __run();
                    let _ = __case;
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Id(u16);

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps(v in (0u16..100).prop_map(Id), xs in prop::collection::vec(0u64..10, 0..5)) {
            prop_assert!(v.0 < 100);
            prop_assert!(xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_weighted(v in prop_oneof![9 => (0u16..10).prop_map(Id), 1 => Just(Id(999))]) {
            prop_assert!(v.0 < 10 || v == Id(999));
        }

        #[test]
        fn tuples_and_select(
            t in (any::<u8>(), 0u32..7, prop::sample::select(vec![0.0, 0.5])),
            s in -5i64..=5i64,
        ) {
            prop_assert!(t.1 < 7);
            prop_assert!(t.2 == 0.0 || t.2 == 0.5);
            prop_assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::__rt::rng_for("x::y");
        let mut b = crate::__rt::rng_for("x::y");
        let s = crate::collection::vec(crate::any::<u64>(), 3..9);
        assert_eq!(crate::Strategy::sample(&s, &mut a), s.sample(&mut b));
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small subset of the `bytes` API it actually uses as a local
//! path dependency with the same crate name. The semantics mirror the
//! real crate: [`Bytes`] is a cheaply clonable, reference-counted,
//! immutable byte buffer (clone = refcount bump, slice = view), and
//! [`BytesMut`] is a growable buffer that can be frozen into a [`Bytes`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer backed by `Arc<[u8]>`.
///
/// Cloning bumps a reference count; `slice` produces a zero-copy view of
/// the same allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&&self[..], f)
    }
}

/// A growable byte buffer; the mutable counterpart of [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Clear the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Convert into an immutable shared [`Bytes`] (consumes the buffer).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Extract the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.buf, f)
    }
}

/// Read-side cursor trait (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// View of the readable bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the read position.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

/// Write-side trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian i64 (two's complement).
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_is_shallow_and_slices_share() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        // Same backing allocation.
        assert!(Arc::ptr_eq(&b.data, &s.data));
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xab);
        m.put_u16(0x1234);
        m.put_u32(0xdead_beef);
        m.put_u64(7);
        m.put_i64(-1);
        m.put_slice(&[9, 9]);
        assert_eq!(m.len(), 1 + 2 + 4 + 8 + 8 + 2);
        let frozen = m.freeze();
        assert_eq!(frozen[0], 0xab);
        assert_eq!(frozen[1..3], [0x12, 0x34]);
    }

    #[test]
    fn bytes_mut_indexing_patches() {
        let mut m = BytesMut::new();
        m.put_u16(0);
        m[0] = 0xbe;
        m[1] = 0xef;
        assert_eq!(&m[..], &[0xbe, 0xef]);
    }
}

#!/usr/bin/env bash
# Perf-regression gate: run a fresh perf_baseline pass and compare each
# scenario's events/s against the newest recorded run in
# BENCH_simnet.json. Fails if any scenario regresses more than
# MAX_REGRESSION_PCT (default 10%) — generous enough for shared-runner
# noise, tight enough to catch a real event-core slowdown.
#
# Usage: scripts/bench_check.sh [--reps N] [--baseline PATH]
set -euo pipefail
cd "$(dirname "$0")/.."

REPS=5
BASELINE=BENCH_simnet.json
MAX_REGRESSION_PCT=${MAX_REGRESSION_PCT:-10}
while [ $# -gt 0 ]; do
    case "$1" in
        --reps) REPS="$2"; shift ;;
        --baseline) BASELINE="$2"; shift ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
    shift
done

if [ ! -f "$BASELINE" ]; then
    echo "bench_check: no baseline at $BASELINE — record one first:" >&2
    echo "  cargo run -p swishmem-bench --release --bin perf_baseline -- --label baseline" >&2
    exit 2
fi

FRESH=$(mktemp /tmp/bench_check.XXXXXX.json)
trap 'rm -f "$FRESH"' EXIT
rm -f "$FRESH" # perf_baseline appends to an existing array or creates anew

echo "==> fresh perf_baseline run (reps=$REPS)"
cargo run -q -p swishmem-bench --release --bin perf_baseline -- \
    --label bench-check --out "$FRESH" --reps "$REPS" >/dev/null

# Both files are perf_baseline's own output: an array of runs, each with
# a "scenarios" list of {"name": ..., "events_per_sec": ...}. Keep the
# LAST occurrence per scenario name (the newest recorded run) on both
# sides, then compare.
awk -v max_pct="$MAX_REGRESSION_PCT" '
    /"name":/ {
        gsub(/[",]/, "", $2); name = $2
    }
    /"events_per_sec":/ {
        gsub(/,/, "", $2)
        if (NR == FNR) base[name] = $2; else fresh[name] = $2
    }
    END {
        fail = 0; n = 0
        for (name in base) {
            if (!(name in fresh)) {
                printf "  %-32s baseline only — skipped\n", name
                continue
            }
            n++
            pct = (fresh[name] / base[name] - 1.0) * 100.0
            verdict = "ok"
            if (pct < -max_pct) { verdict = "REGRESSION"; fail = 1 }
            printf "  %-32s %12.0f -> %12.0f ev/s  (%+6.1f%%)  %s\n", \
                name, base[name], fresh[name], pct, verdict
        }
        if (n == 0) { print "bench_check: no comparable scenarios" > "/dev/stderr"; exit 2 }
        if (fail) {
            printf "bench_check: FAIL — a scenario regressed more than %s%%\n", max_pct > "/dev/stderr"
            exit 1
        }
        print "bench_check: OK"
    }
' "$BASELINE" "$FRESH"

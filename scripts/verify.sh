#!/usr/bin/env bash
# Tier-1 verification gate: everything a change must pass before review.
# Usage: scripts/verify.sh  (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test -q --workspace

# The seeded fault-sweep suite is part of the workspace run above, but it
# is the robustness gate, so run it by name too: a failure here prints the
# deployment seed and the full fault schedule needed to replay it.
echo "==> cargo test --test fault_sweep (seeded fault schedules vs oracles)"
cargo test -q --test fault_sweep

# Reconfiguration gates (DESIGN.md §10), by name: migrations interleaved
# into random fault schedules must stay oracle-clean, and the directory's
# structural invariants (coverage, no overlap) must hold under any
# operation sequence.
echo "==> cargo test --test reconfig_sweep (migration-under-fault sweep)"
cargo test -q --test reconfig_sweep
echo "==> cargo test --test directory_invariants (range-table property tests)"
cargo test -q -p swishmem --test directory_invariants

# Replicated-control-plane gate (DESIGN.md §12), by name: the 3-replica
# smoke plus the crash-during-migration sweep — the leader dies
# mid-Transferring and at the dual-owner boundary across >=12 seeds, and
# every run must keep all foreground writes, finish the migration under
# the surviving quorum, and stay silent under the cross-replica
# epoch-uniqueness / no-split-brain oracles.
echo "==> cargo test --test controller_failover three_replica_smoke (3-replica smoke)"
cargo test -q --test controller_failover three_replica_smoke
echo "==> cargo test --test controller_failover (leader-failover sweep)"
cargo test -q --test controller_failover

# Consensus-hardening gates (DESIGN.md §13), by name: the long-horizon
# compaction sweep must recycle log slots without ever tripping the
# SLOT_CAP overflow error, the 12-seed reconfiguration-under-fault sweep
# must converge every membership decree to exactly one group, and the
# adaptive failure detector must beat the static timeout on real crashes
# while staying silent (no elections, no suspicion) under gray links.
echo "==> cargo test --test consensus_hardening compaction_sweep_long_horizon (compaction sweep)"
cargo test -q --test consensus_hardening compaction_sweep_long_horizon
echo "==> cargo test --test consensus_hardening reconfiguration_under_fault_sweep (membership under fault)"
cargo test -q --test consensus_hardening reconfiguration_under_fault_sweep
echo "==> cargo test --test consensus_hardening detector (detector vs gray links)"
cargo test -q --test consensus_hardening detector_cuts_failover_gap
cargo test -q --test consensus_hardening gray_links_cause_no_spurious_elections

# Observability gates (DESIGN.md §9), also by name: span tracing must be
# a passive observer (golden fingerprint bit-identical with a collector
# attached), and compiled-in-but-disabled tracing must stay cheap.
echo "==> cargo test --test determinism (span attach invisible to fingerprint)"
cargo test -q -p swishmem-simnet --test determinism

# Flight-recorder gates (DESIGN.md §14), by name: attaching the journal
# must be bit-invisible to both golden fingerprints (sequential and
# sharded), a fault-swept replay must reproduce the record stream byte
# for byte, and the record stream must be shard-count invariant.
echo "==> cargo test --test determinism journal (journal passivity + byte-identical replay)"
cargo test -q -p swishmem-simnet --test determinism journal
echo "==> cargo test --test shard_determinism journal (journal under the sharded engine)"
cargo test -q -p swishmem-simnet --test shard_determinism journal

# Parallel-engine gates (DESIGN.md §11), by name: a single-shard
# ShardedEngine must reproduce the sequential golden fingerprint
# bit-for-bit, shard/worker count must be pure performance knobs, and a
# fast 2-shard fault sweep must run oracle-clean.
echo "==> cargo test --test shard_determinism (sharded PDES determinism)"
cargo test -q -p swishmem-simnet --test shard_determinism
echo "==> cargo test shardnet:: (2-shard fault-sweep smoke)"
cargo test -q -p swishmem-bench --lib shardnet::
echo "==> cargo test --release --test trace_overhead (detached tracing + journaling overhead)"
cargo test -q --release -p swishmem-bench --test trace_overhead
echo "==> cargo test --release --test trace_overhead detached_journal_overhead_is_small (E23 smoke)"
cargo test -q --release -p swishmem-bench --test trace_overhead detached_journal_overhead_is_small

# Replay-lab gates (DESIGN.md §15), by name: the `.swtrace` format must
# round-trip at a million records and reject truncation/corruption with
# typed errors, the five oracle-armed scenario packs must pass clean with
# the sabotaged feed failing (proving the gate is live), and the E24
# smoke must hold digest shard-invariance plus ring-ingest parity.
echo "==> cargo test --test roundtrip (.swtrace round-trip + corruption rejection)"
cargo test -q -p swishmem-replay --test roundtrip
echo "==> cargo test --test scenario_packs (five packs clean, sabotage fails)"
cargo test -q -p swishmem-replay --test scenario_packs
echo "==> cargo test --release --test replay_lab (E24 smoke: digest invariance + ring parity)"
cargo test -q --release -p swishmem-bench --test replay_lab

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "verify: all gates passed"

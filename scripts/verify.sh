#!/usr/bin/env bash
# Tier-1 verification gate: everything a change must pass before review.
# Usage: scripts/verify.sh  (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test -q --workspace

# The seeded fault-sweep suite is part of the workspace run above, but it
# is the robustness gate, so run it by name too: a failure here prints the
# deployment seed and the full fault schedule needed to replay it.
echo "==> cargo test --test fault_sweep (seeded fault schedules vs oracles)"
cargo test -q --test fault_sweep

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "verify: all gates passed"

#!/usr/bin/env bash
# Tier-1 verification gate: everything a change must pass before review.
# Usage: scripts/verify.sh  (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "verify: all gates passed"

//! The partitioned-state directory service (§7/§9 extension).
//!
//! "One way to manage this, which we are currently exploring, is to use a
//! central controller that acts as a directory service (in the vein of
//! cache coherence protocols), tracking which switches replicate which
//! state, and migrating data as needed."
//!
//! This module implements that directory as a standalone, fully-tested
//! service: key ranges of a register are owned by subsets of switches;
//! lookups resolve the owner set; accesses are counted so a migration
//! policy can move hot ranges toward their talkers. The wire protocol
//! (`DirLookup`/`DirReply`) lets switch control planes resolve remote
//! owners. Full data-path integration (forwarding reads/writes to owners
//! and transparent migration of live traffic) remains future work, as it
//! does in the paper.

use std::collections::HashMap;
use swishmem_wire::swish::{Key, RegId};
use swishmem_wire::NodeId;

/// A contiguous key range `[start, end)` with an owner set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeEntry {
    /// First key of the range.
    pub start: Key,
    /// One past the last key.
    pub end: Key,
    /// Switches replicating this range.
    pub owners: Vec<NodeId>,
}

/// Per-register partition map plus access statistics.
#[derive(Debug, Default)]
struct RegDirectory {
    ranges: Vec<RangeEntry>,
    /// Access counts per (range index, requesting switch).
    accesses: HashMap<(usize, NodeId), u64>,
}

/// The directory service.
#[derive(Debug, Default)]
pub struct DirectoryService {
    regs: HashMap<RegId, RegDirectory>,
}

impl DirectoryService {
    /// Empty directory.
    pub fn new() -> DirectoryService {
        DirectoryService::default()
    }

    /// Partition `reg`'s key space `[0, keys)` evenly across `owners`,
    /// one owner per range (the "locality" layout: each range lives on
    /// exactly one switch until replication is requested).
    pub fn partition_even(&mut self, reg: RegId, keys: Key, owners: &[NodeId]) {
        assert!(!owners.is_empty(), "need at least one owner");
        let n = owners.len() as u32;
        let per = keys.div_ceil(n);
        let mut ranges = Vec::new();
        for (i, &o) in owners.iter().enumerate() {
            let start = i as u32 * per;
            if start >= keys {
                break;
            }
            let end = ((i as u32 + 1) * per).min(keys);
            ranges.push(RangeEntry {
                start,
                end,
                owners: vec![o],
            });
        }
        self.regs.insert(
            reg,
            RegDirectory {
                ranges,
                accesses: HashMap::new(),
            },
        );
    }

    /// Install `ranges` wholesale as `reg`'s table, discarding whatever
    /// was there (access counters included). The snapshot-restore entry
    /// point: a controller replica catching up from a peer's `CtrlSnap`
    /// adopts the sender's applied table instead of replaying the
    /// compacted decrees that built it.
    pub fn install_ranges(&mut self, reg: RegId, ranges: Vec<RangeEntry>) {
        self.regs.insert(
            reg,
            RegDirectory {
                ranges,
                accesses: HashMap::new(),
            },
        );
    }

    /// All ranges of `reg`, in key order (empty when unknown). The
    /// reconfiguration engine reads this as the authoritative table.
    pub fn ranges(&self, reg: RegId) -> &[RangeEntry] {
        self.regs
            .get(&reg)
            .map(|d| d.ranges.as_slice())
            .unwrap_or(&[])
    }

    /// Record `n` accesses from `from` to the range containing `key`
    /// without resolving owners — the bulk entry point for per-range
    /// load reports feeding the migration planner.
    pub fn record_access(&mut self, reg: RegId, key: Key, from: NodeId, n: u64) {
        let Some(idx) = self.range_index(reg, key) else {
            return;
        };
        let dir = self.regs.get_mut(&reg).expect("register known");
        *dir.accesses.entry((idx, from)).or_insert(0) += n;
    }

    /// The access count recorded for the range containing `key` from
    /// `from` (0 when unknown).
    pub fn access_count(&self, reg: RegId, key: Key, from: NodeId) -> u64 {
        let Some(idx) = self.range_index(reg, key) else {
            return 0;
        };
        self.regs[&reg]
            .accesses
            .get(&(idx, from))
            .copied()
            .unwrap_or(0)
    }

    /// Replace the owner set of the range containing `key` (the directory
    /// side of an `OwnershipCommit`), resetting its access counts.
    /// Returns the updated range, or `None` if unknown or `owners` empty.
    pub fn set_owners(&mut self, reg: RegId, key: Key, owners: &[NodeId]) -> Option<RangeEntry> {
        if owners.is_empty() {
            return None;
        }
        let idx = self.range_index(reg, key)?;
        let dir = self.regs.get_mut(&reg)?;
        dir.ranges[idx].owners = owners.to_vec();
        dir.accesses.retain(|(i, _), _| *i != idx);
        Some(dir.ranges[idx].clone())
    }

    /// Drop all access counts for `reg` (end of a planning window).
    pub fn clear_accesses(&mut self, reg: RegId) {
        if let Some(dir) = self.regs.get_mut(&reg) {
            dir.accesses.clear();
        }
    }

    fn range_index(&self, reg: RegId, key: Key) -> Option<usize> {
        self.regs
            .get(&reg)?
            .ranges
            .iter()
            .position(|r| r.start <= key && key < r.end)
    }

    /// Resolve the owner set for `reg[key]`, recording the access for the
    /// migration policy. Empty when unknown.
    pub fn lookup(&mut self, reg: RegId, key: Key, from: NodeId) -> Vec<NodeId> {
        let Some(idx) = self.range_index(reg, key) else {
            return vec![];
        };
        let dir = self.regs.get_mut(&reg).expect("register known");
        *dir.accesses.entry((idx, from)).or_insert(0) += 1;
        dir.ranges[idx].owners.clone()
    }

    /// Is `node` an owner of `reg[key]`?
    pub fn is_owner(&self, reg: RegId, key: Key, node: NodeId) -> bool {
        self.range_index(reg, key)
            .map(|i| self.regs[&reg].ranges[i].owners.contains(&node))
            .unwrap_or(false)
    }

    /// Migrate the range containing `key` so that `to` becomes its sole
    /// owner. Returns the range moved (for snapshot transfer), or `None`
    /// if unknown.
    pub fn migrate(&mut self, reg: RegId, key: Key, to: NodeId) -> Option<RangeEntry> {
        let idx = self.range_index(reg, key)?;
        let dir = self.regs.get_mut(&reg)?;
        dir.ranges[idx].owners = vec![to];
        // Old access counts no longer describe the new placement.
        dir.accesses.retain(|(i, _), _| *i != idx);
        Some(dir.ranges[idx].clone())
    }

    /// Add `node` as an additional replica of the range containing `key`.
    pub fn replicate(&mut self, reg: RegId, key: Key, node: NodeId) -> Option<RangeEntry> {
        let idx = self.range_index(reg, key)?;
        let dir = self.regs.get_mut(&reg)?;
        if !dir.ranges[idx].owners.contains(&node) {
            dir.ranges[idx].owners.push(node);
        }
        Some(dir.ranges[idx].clone())
    }

    /// The switch that accessed the range containing `key` most often —
    /// the migration policy's candidate target.
    pub fn hottest_requester(&self, reg: RegId, key: Key) -> Option<NodeId> {
        let idx = self.range_index(reg, key)?;
        self.regs[&reg]
            .accesses
            .iter()
            .filter(|((i, _), _)| *i == idx)
            .max_by_key(|(_, &c)| c)
            .map(|((_, n), _)| *n)
    }

    /// Run one step of the greedy migration policy: move every range whose
    /// hottest requester is not an owner onto that requester. Returns the
    /// moves performed.
    pub fn rebalance(&mut self, reg: RegId) -> Vec<(RangeEntry, NodeId)> {
        let Some(dir) = self.regs.get(&reg) else {
            return vec![];
        };
        let candidates: Vec<(Key, NodeId)> = dir
            .ranges
            .iter()
            .enumerate()
            .filter_map(|(idx, r)| {
                let hot = dir
                    .accesses
                    .iter()
                    .filter(|((i, _), _)| *i == idx)
                    .max_by_key(|(_, &c)| c)
                    .map(|((_, n), _)| *n)?;
                if r.owners.contains(&hot) {
                    None
                } else {
                    Some((r.start, hot))
                }
            })
            .collect();
        let mut moves = Vec::new();
        for (key, to) in candidates {
            if let Some(range) = self.migrate(reg, key, to) {
                moves.push((range, to));
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owners() -> Vec<NodeId> {
        vec![NodeId(0), NodeId(1), NodeId(2)]
    }

    #[test]
    fn even_partition_covers_key_space() {
        let mut d = DirectoryService::new();
        d.partition_even(0, 90, &owners());
        for key in [0, 29, 30, 59, 60, 89] {
            assert_eq!(d.lookup(0, key, NodeId(9)).len(), 1, "key {key}");
        }
        assert_eq!(d.lookup(0, 0, NodeId(9)), vec![NodeId(0)]);
        assert_eq!(d.lookup(0, 45, NodeId(9)), vec![NodeId(1)]);
        assert_eq!(d.lookup(0, 89, NodeId(9)), vec![NodeId(2)]);
        // Out of range / unknown register.
        assert!(d.lookup(0, 90, NodeId(9)).is_empty());
        assert!(d.lookup(7, 0, NodeId(9)).is_empty());
    }

    #[test]
    fn ownership_checks() {
        let mut d = DirectoryService::new();
        d.partition_even(0, 30, &owners());
        assert!(d.is_owner(0, 5, NodeId(0)));
        assert!(!d.is_owner(0, 5, NodeId(1)));
    }

    #[test]
    fn migration_moves_sole_ownership() {
        let mut d = DirectoryService::new();
        d.partition_even(0, 30, &owners());
        let moved = d.migrate(0, 5, NodeId(2)).unwrap();
        assert_eq!(moved.owners, vec![NodeId(2)]);
        assert!(d.is_owner(0, 5, NodeId(2)));
        assert!(!d.is_owner(0, 5, NodeId(0)));
        // Other ranges untouched.
        assert!(d.is_owner(0, 15, NodeId(1)));
    }

    #[test]
    fn replicate_adds_owner() {
        let mut d = DirectoryService::new();
        d.partition_even(0, 30, &owners());
        let r = d.replicate(0, 5, NodeId(1)).unwrap();
        assert_eq!(r.owners, vec![NodeId(0), NodeId(1)]);
        // Idempotent.
        let r2 = d.replicate(0, 5, NodeId(1)).unwrap();
        assert_eq!(r2.owners.len(), 2);
    }

    #[test]
    fn rebalance_follows_access_pattern() {
        let mut d = DirectoryService::new();
        d.partition_even(0, 30, &owners());
        // Switch 2 hammers range 0 (owned by switch 0).
        for _ in 0..10 {
            d.lookup(0, 3, NodeId(2));
        }
        d.lookup(0, 3, NodeId(0));
        assert_eq!(d.hottest_requester(0, 3), Some(NodeId(2)));
        let moves = d.rebalance(0);
        assert_eq!(moves.len(), 1);
        assert!(d.is_owner(0, 3, NodeId(2)));
        // Second rebalance is a no-op (counts were reset on migration).
        assert!(d.rebalance(0).is_empty());
    }
}

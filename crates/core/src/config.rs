//! Register specifications and protocol configuration.

use swishmem_simnet::SimDuration;
use swishmem_wire::swish::RegId;

/// The three register classes of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterClass {
    /// Strong Read Optimized: linearizable. Chain-replicated writes through
    /// the control plane; local reads unless a pending bit is set, in which
    /// case the packet is forwarded to the tail (§6.1).
    Sro,
    /// Eventual Read Optimized: SRO without pending bits — reads are always
    /// local, trading bounded read latency for eventual consistency (§6.1).
    Ero,
    /// Eventual Write Optimized: local writes applied immediately,
    /// asynchronously replicated (eager mirror + periodic sync), merged via
    /// a [`MergePolicy`] (§6.2).
    Ewo,
}

/// How concurrent EWO updates are merged (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Last-writer-wins on `(timestamp, switch-id)` versions.
    Lww,
    /// Per-switch-slot increment-only counter vector (G-counter CRDT);
    /// reads sum all slots, merges take the per-slot max.
    GCounter,
    /// Windowed counter for rate-limiter-style state: version carries the
    /// window epoch; a higher epoch resets the count, within an epoch the
    /// count merges by max. `window` is the epoch length.
    Windowed {
        /// Window (epoch) length.
        window: SimDuration,
    },
}

/// Where a register's authoritative state lives (§4: the controller
/// "determines the register placement").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Every replica-group member holds the whole array; SRO/ERO writes
    /// traverse the single group-wide chain. The classic SwiShmem layout.
    Replicated,
    /// The key space is partitioned into directory ranges, each owned by
    /// a (sub)set of switches; the owner set of a range forms a per-range
    /// mini-chain (`owners[0]` sequences) and the reconfiguration engine
    /// may migrate ranges between owners at run time.
    Partitioned,
}

/// A shared register declaration.
#[derive(Debug, Clone)]
pub struct RegisterSpec {
    /// Deployment-unique id (used on the wire).
    pub id: RegId,
    /// Human-readable name (used in memory accounting).
    pub name: String,
    /// Consistency class.
    pub class: RegisterClass,
    /// Number of keys (array length).
    pub keys: u32,
    /// Merge policy (EWO only; ignored for SRO/ERO).
    pub policy: MergePolicy,
    /// State placement (replicated everywhere vs. range-partitioned).
    pub placement: Placement,
}

impl RegisterSpec {
    /// A strongly-consistent register array.
    pub fn sro(id: RegId, name: &str, keys: u32) -> RegisterSpec {
        RegisterSpec {
            id,
            name: name.to_string(),
            class: RegisterClass::Sro,
            keys,
            policy: MergePolicy::Lww,
            placement: Placement::Replicated,
        }
    }

    /// An eventual-read-optimized register array.
    pub fn ero(id: RegId, name: &str, keys: u32) -> RegisterSpec {
        RegisterSpec {
            id,
            name: name.to_string(),
            class: RegisterClass::Ero,
            keys,
            policy: MergePolicy::Lww,
            placement: Placement::Replicated,
        }
    }

    /// An EWO last-writer-wins register array.
    pub fn ewo_lww(id: RegId, name: &str, keys: u32) -> RegisterSpec {
        RegisterSpec {
            id,
            name: name.to_string(),
            class: RegisterClass::Ewo,
            keys,
            policy: MergePolicy::Lww,
            placement: Placement::Replicated,
        }
    }

    /// An EWO G-counter array.
    pub fn ewo_counter(id: RegId, name: &str, keys: u32) -> RegisterSpec {
        RegisterSpec {
            id,
            name: name.to_string(),
            class: RegisterClass::Ewo,
            keys,
            policy: MergePolicy::GCounter,
            placement: Placement::Replicated,
        }
    }

    /// An EWO windowed counter array.
    pub fn ewo_windowed(id: RegId, name: &str, keys: u32, window: SimDuration) -> RegisterSpec {
        RegisterSpec {
            id,
            name: name.to_string(),
            class: RegisterClass::Ewo,
            keys,
            policy: MergePolicy::Windowed { window },
            placement: Placement::Replicated,
        }
    }

    /// A range-partitioned register array: ERO consistency per key, with
    /// ownership split across directory ranges that the reconfiguration
    /// engine can migrate live. Partitioned registers always sequence per
    /// key (grouping would alias slots across range boundaries).
    pub fn partitioned(id: RegId, name: &str, keys: u32) -> RegisterSpec {
        RegisterSpec {
            id,
            name: name.to_string(),
            class: RegisterClass::Ero,
            keys,
            policy: MergePolicy::Lww,
            placement: Placement::Partitioned,
        }
    }

    /// True for range-partitioned registers.
    pub fn is_partitioned(&self) -> bool {
        self.placement == Placement::Partitioned
    }
}

/// Clock model for LWW version stamps (§6.2: Lamport clock or a real-time
/// clock synchronized "down to tens of nanoseconds").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Synchronized real-time clocks with bounded per-switch skew; the
    /// deployment assigns each switch a deterministic skew in
    /// `[-max_skew, +max_skew]`.
    Synced {
        /// Maximum absolute skew in nanoseconds.
        max_skew_ns: u64,
    },
    /// Lamport logical clocks, advanced on every local write and on every
    /// received version.
    Lamport,
}

/// Knobs of the live reconfiguration engine (planner + migration driver).
///
/// All timing knobs matter only when [`ReconfigPolicy::enabled`] is true
/// *and* the deployment declares at least one partitioned register; the
/// disabled engine arms no timers and sends no messages, which is what
/// keeps the golden determinism fingerprint bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct ReconfigPolicy {
    /// Master switch for the telemetry-driven planner. Migrations can
    /// still be triggered explicitly (tests, fault schedules) when false.
    pub enabled: bool,
    /// How often the planner examines per-range load counters.
    pub plan_interval: SimDuration,
    /// A range is migration-worthy only when some remote switch ingressed
    /// at least this many writes for it within one planning window.
    pub min_writes: u64,
    /// Remote load must exceed the current primary's own ingress load by
    /// this multiple before a move pays for its disruption (cost budget).
    pub min_advantage: u64,
    /// Maximum migrations in flight at once.
    pub max_concurrent: usize,
    /// Planner cooldown per range after a commit (no flapping).
    pub cooldown: SimDuration,
    /// Controller re-broadcast period for the authoritative range table
    /// (idempotent per-range-epoch reconciliation after lost commits).
    pub resync_interval: SimDuration,
    /// Keys per migration chunk.
    pub chunk_keys: usize,
    /// Source pacing between chunk transmissions within a pass.
    pub chunk_interval: SimDuration,
    /// Source delay between full re-stream passes while uncommitted.
    pub repass_interval: SimDuration,
}

impl Default for ReconfigPolicy {
    fn default() -> Self {
        ReconfigPolicy {
            enabled: false,
            plan_interval: SimDuration::millis(10),
            min_writes: 32,
            min_advantage: 2,
            max_concurrent: 1,
            cooldown: SimDuration::millis(50),
            resync_interval: SimDuration::millis(10),
            chunk_keys: 16,
            chunk_interval: SimDuration::micros(10),
            repass_interval: SimDuration::millis(2),
        }
    }
}

/// Protocol tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SwishConfig {
    /// Writer control-plane retry timeout for unacknowledged chain writes;
    /// the base of the capped exponential backoff (doubled per attempt
    /// with deterministic jitter, up to [`SwishConfig::retry_backoff_max`]).
    pub retry_timeout: SimDuration,
    /// Ceiling of the exponential retry backoff.
    pub retry_backoff_max: SimDuration,
    /// Give up on a write after this many attempts (it stays unreleased;
    /// counted in metrics). High by default: chain repair should win first.
    pub max_retries: u32,
    /// Maximum concurrent write jobs buffered in the writer CP; jobs
    /// beyond this are shed (counted, buffered packet dropped) rather
    /// than growing DRAM without bound.
    pub cp_job_buffer: usize,
    /// Tail pending-sweep period: the tail periodically re-multicasts
    /// `Clear` for committed group slots so pending bits orphaned by a
    /// lost clear still converge. `ZERO` disables the sweep.
    pub pending_sweep_period: SimDuration,
    /// EWO periodic full-sync period (the paper's example: 1 ms).
    pub sync_period: SimDuration,
    /// Entries per periodic-sync packet (array walked in chunks).
    pub sync_chunk: usize,
    /// Eagerly mirror EWO updates to the replica group on every write
    /// (§7); periodic sync alone still converges when disabled.
    pub eager_updates: bool,
    /// Batch this many eager update entries per mirror packet (§7's
    /// "batching write requests" bandwidth/consistency trade-off). 1 =
    /// mirror immediately.
    pub batch_size: usize,
    /// Switch-CP heartbeat period.
    pub heartbeat_interval: SimDuration,
    /// Controller declares a switch failed after this silence.
    pub failure_timeout: SimDuration,
    /// Keys per shared sequence-number/pending-bit slot (§7: "multiple
    /// keys can share the same sequence number and in-progress bit").
    pub key_group: u32,
    /// Entries per snapshot chunk during recovery.
    pub snapshot_chunk: usize,
    /// Interval between snapshot chunk transmissions (CP-paced).
    pub snapshot_interval: SimDuration,
    /// Clock model for LWW versions.
    pub clock: ClockMode,
    /// Live reconfiguration engine policy (partitioned registers only).
    pub reconfig: ReconfigPolicy,
    /// Controller replicas (DESIGN.md §12). 1 = the paper's singleton
    /// controller; 3+ runs an in-fabric consensus group with leader
    /// failover. Even values are rounded up by the deployment builder
    /// (an even group tolerates no more failures than the next odd size
    /// down, so they are never worth their cost).
    pub ctrl_replicas: u8,
    /// Replicated mode (DESIGN.md §13): the leader proposes a log
    /// compaction once the consensus register window holds this many
    /// decrees. Must stay well below
    /// [`crate::consensus::SLOT_CAP`] so the compaction decree commits
    /// before the window can overflow.
    pub log_compact_threshold: usize,
    /// Replicated mode: how long after the last leader beacon a
    /// follower replica may keep answering directory lookups (the
    /// follower-read lease). Past it the follower drops lookups and the
    /// querier's retry finds another replica or the leader.
    pub dir_lease: SimDuration,
    /// Replicated mode: use the phi-accrual-style failure detector over
    /// leader-heartbeat inter-arrival history for election timing.
    /// False falls back to the static staggered `failure_timeout`.
    pub adaptive_detector: bool,
    /// Suspicion threshold of the adaptive detector, in units of mean
    /// absolute deviation above the mean inter-arrival gap.
    pub detector_phi: u32,
    /// Additive floor margin of the adaptive detector (guards against a
    /// near-zero deviation history declaring suspicion on the first
    /// delayed beacon).
    pub detector_floor: SimDuration,
}

impl Default for SwishConfig {
    fn default() -> Self {
        SwishConfig {
            retry_timeout: SimDuration::millis(1),
            retry_backoff_max: SimDuration::millis(16),
            max_retries: 100,
            cp_job_buffer: 4096,
            pending_sweep_period: SimDuration::millis(5),
            sync_period: SimDuration::millis(1),
            sync_chunk: 128,
            eager_updates: true,
            batch_size: 1,
            heartbeat_interval: SimDuration::millis(5),
            failure_timeout: SimDuration::millis(15),
            key_group: 1,
            snapshot_chunk: 64,
            snapshot_interval: SimDuration::micros(10),
            clock: ClockMode::Synced { max_skew_ns: 50 },
            reconfig: ReconfigPolicy::default(),
            ctrl_replicas: 1,
            log_compact_threshold: 256,
            dir_lease: SimDuration::millis(8),
            adaptive_detector: true,
            detector_phi: 4,
            detector_floor: SimDuration::millis(2),
        }
    }
}

impl SwishConfig {
    /// Number of sequence/pending slots for a register with `keys` keys
    /// under this config's grouping factor.
    pub fn group_slots(&self, keys: u32) -> u32 {
        debug_assert!(self.key_group >= 1);
        keys.div_ceil(self.key_group).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors_set_class() {
        assert_eq!(RegisterSpec::sro(0, "a", 8).class, RegisterClass::Sro);
        assert_eq!(RegisterSpec::ero(1, "b", 8).class, RegisterClass::Ero);
        let c = RegisterSpec::ewo_counter(2, "c", 8);
        assert_eq!(c.class, RegisterClass::Ewo);
        assert_eq!(c.policy, MergePolicy::GCounter);
        let w = RegisterSpec::ewo_windowed(3, "d", 8, SimDuration::millis(10));
        assert!(matches!(w.policy, MergePolicy::Windowed { .. }));
    }

    #[test]
    fn group_slots_rounding() {
        let mut cfg = SwishConfig {
            key_group: 4,
            ..SwishConfig::default()
        };
        assert_eq!(cfg.group_slots(16), 4);
        assert_eq!(cfg.group_slots(17), 5);
        assert_eq!(cfg.group_slots(1), 1);
        cfg.key_group = 1;
        assert_eq!(cfg.group_slots(16), 16);
    }

    #[test]
    fn defaults_match_paper_operating_point() {
        let cfg = SwishConfig::default();
        assert_eq!(cfg.sync_period, SimDuration::millis(1)); // §6.2 example
        assert!(cfg.failure_timeout > cfg.heartbeat_interval);
    }
}

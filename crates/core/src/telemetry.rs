//! Time-series telemetry: periodic sampling of per-switch protocol
//! counters and queue depths into bounded ring buffers.
//!
//! The protocol metrics ([`crate::metrics`]) are cumulative counters; a
//! time series of *rates* requires periodic snapshots and deltas. The
//! [`TimeSeriesSampler`] does exactly that: every `interval` of simulated
//! time it snapshots each switch's `DpMetrics`/`CpMetrics`, records the
//! delta since the previous snapshot plus instantaneous queue-depth
//! gauges, and appends the sample to a per-switch ring buffer (bounded
//! memory for arbitrarily long runs, like [`swishmem_simnet::Trace`]).
//!
//! Sampling is pure observation — it reads switch state between engine
//! steps and never injects events or draws randomness — so a sampled run
//! is bit-identical to an unsampled one.

pub mod journal;

use crate::deployment::Deployment;
use swishmem_simnet::{SimDuration, SimTime};

/// A fixed-capacity ring buffer: keeps the most recent `capacity` items,
/// counting (not storing) everything older.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    items: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    /// Total number of pushes ever (≥ `items.len()`).
    pushed: u64,
}

impl<T> RingBuffer<T> {
    /// An empty ring holding at most `capacity` items.
    pub fn new(capacity: usize) -> RingBuffer<T> {
        RingBuffer {
            items: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            pushed: 0,
        }
    }

    /// Append, evicting the oldest item when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Items evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.pushed - self.items.len() as u64
    }

    /// Retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.items.split_at(self.head);
        head.iter().chain(tail.iter())
    }
}

/// One sampling-window observation of one switch: counter deltas over the
/// window plus instantaneous queue-depth gauges at the window's end.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSample {
    /// Sample time (end of the window).
    pub time: SimTime,
    /// NF shared-register writes issued this window.
    pub nf_writes: u64,
    /// NF shared-register reads issued this window.
    pub nf_reads: u64,
    /// Chain write requests applied this window.
    pub chain_applies: u64,
    /// EWO writes applied locally this window.
    pub ewo_writes: u64,
    /// Reads redirected to the tail this window.
    pub reads_forwarded: u64,
    /// Sync + mirror packets emitted this window.
    pub sync_packets: u64,
    /// Write jobs punted to the CP this window.
    pub jobs_punted: u64,
    /// Write jobs fully acknowledged this window.
    pub jobs_completed: u64,
    /// Write retransmissions this window.
    pub retries: u64,
    /// Migration transfer chunks streamed this window (source side).
    pub migrate_chunks: u64,
    /// Migration chunk entries applied this window (destination side).
    pub migrate_applied: u64,
    /// Per-range load reports sent to the controller this window.
    pub load_reports: u64,
    /// Controller-replica consensus messages sent this window, summed
    /// across the replica group (zero in singleton deployments). Unlike
    /// the per-switch counters above, this is fabric-global: every
    /// switch's sample in the same window carries the same value, so E21
    /// plots can read it off any one series.
    pub consensus_msgs: u64,
    /// Controller leader changes observed this window (fabric-global,
    /// like `consensus_msgs`).
    pub leader_changes: u64,
    /// Consensus log compactions this window (fabric-global).
    pub log_compactions: u64,
    /// Controller-state snapshot bytes persisted this window
    /// (fabric-global).
    pub snapshot_bytes: u64,
    /// Failure-detector suspicion episodes this window, summed across
    /// replicas (fabric-global).
    pub suspect_events: u64,
    /// Directory lookups served by non-leading replicas this window
    /// (fabric-global).
    pub follower_reads: u64,
    /// Trace records fed by a replay engine this window (fabric-global,
    /// from [`crate::deployment::Deployment::note_ingest`]).
    pub ingest_records: u64,
    /// Replay ring-ingest backpressure stalls this window
    /// (fabric-global).
    pub ingest_stalls: u64,
    /// Gauge: writes awaiting acknowledgment at sample time.
    pub outstanding_writes: usize,
    /// Gauge: jobs buffered in CP DRAM at sample time.
    pub buffered_jobs: usize,
    /// Gauge: snapshot chunks queued at sample time.
    pub snapshot_backlog: usize,
}

/// Cumulative counter values at the previous sample, for delta taking.
#[derive(Debug, Clone, Copy, Default)]
struct Cumulative {
    nf_writes: u64,
    nf_reads: u64,
    chain_applies: u64,
    ewo_writes: u64,
    reads_forwarded: u64,
    sync_packets: u64,
    jobs_punted: u64,
    jobs_completed: u64,
    retries: u64,
    migrate_chunks: u64,
    migrate_applied: u64,
    load_reports: u64,
    consensus_msgs: u64,
    leader_changes: u64,
    log_compactions: u64,
    snapshot_bytes: u64,
    suspect_events: u64,
    follower_reads: u64,
    ingest_records: u64,
    ingest_stalls: u64,
}

/// Periodic per-switch metrics sampler (see module docs).
#[derive(Debug)]
pub struct TimeSeriesSampler {
    interval: SimDuration,
    series: Vec<RingBuffer<MetricsSample>>,
    last: Vec<Cumulative>,
}

impl TimeSeriesSampler {
    /// A sampler for `n_switches` switches, one window per `interval`,
    /// retaining the latest `capacity` samples per switch.
    pub fn new(n_switches: usize, interval: SimDuration, capacity: usize) -> TimeSeriesSampler {
        TimeSeriesSampler {
            interval,
            series: (0..n_switches).map(|_| RingBuffer::new(capacity)).collect(),
            last: vec![Cumulative::default(); n_switches],
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The retained series for switch `i`, oldest first.
    pub fn series(&self, i: usize) -> Vec<MetricsSample> {
        self.series[i].iter().copied().collect()
    }

    /// Samples evicted from switch `i`'s ring to stay within capacity.
    pub fn evicted(&self, i: usize) -> u64 {
        self.series[i].evicted()
    }

    /// Take one sample of every switch at the deployment's current time.
    /// A failed switch still samples (its counters were reset, so deltas
    /// saturate at zero rather than going negative).
    pub fn sample(&mut self, dep: &Deployment) {
        let time = dep.now();
        let cons = dep.controller().consensus_metrics();
        for i in 0..self.series.len() {
            let m = dep.metrics(i);
            let sw = dep.switch(i);
            let cur = Cumulative {
                nf_writes: m.dp.nf_writes,
                nf_reads: m.dp.nf_reads,
                chain_applies: m.dp.chain_applies,
                ewo_writes: m.dp.ewo_writes,
                reads_forwarded: m.dp.reads_forwarded,
                sync_packets: m.dp.sync_packets + m.dp.mirror_packets,
                jobs_punted: m.dp.sro_jobs_punted,
                jobs_completed: m.cp.jobs_completed,
                retries: m.cp.retries,
                migrate_chunks: m.cp.migrate_chunks_sent,
                migrate_applied: m.dp.migrate_applied,
                load_reports: m.cp.load_reports_sent,
                consensus_msgs: cons.msgs_sent,
                leader_changes: cons.leader_changes,
                log_compactions: cons.log_compactions,
                snapshot_bytes: cons.snapshot_bytes,
                suspect_events: cons.suspect_events,
                follower_reads: cons.follower_reads,
                ingest_records: dep.ingest_records(),
                ingest_stalls: dep.ingest_stalls(),
            };
            let prev = self.last[i];
            let d = |a: u64, b: u64| a.saturating_sub(b);
            self.series[i].push(MetricsSample {
                time,
                nf_writes: d(cur.nf_writes, prev.nf_writes),
                nf_reads: d(cur.nf_reads, prev.nf_reads),
                chain_applies: d(cur.chain_applies, prev.chain_applies),
                ewo_writes: d(cur.ewo_writes, prev.ewo_writes),
                reads_forwarded: d(cur.reads_forwarded, prev.reads_forwarded),
                sync_packets: d(cur.sync_packets, prev.sync_packets),
                jobs_punted: d(cur.jobs_punted, prev.jobs_punted),
                jobs_completed: d(cur.jobs_completed, prev.jobs_completed),
                retries: d(cur.retries, prev.retries),
                migrate_chunks: d(cur.migrate_chunks, prev.migrate_chunks),
                migrate_applied: d(cur.migrate_applied, prev.migrate_applied),
                load_reports: d(cur.load_reports, prev.load_reports),
                consensus_msgs: d(cur.consensus_msgs, prev.consensus_msgs),
                leader_changes: d(cur.leader_changes, prev.leader_changes),
                log_compactions: d(cur.log_compactions, prev.log_compactions),
                snapshot_bytes: d(cur.snapshot_bytes, prev.snapshot_bytes),
                suspect_events: d(cur.suspect_events, prev.suspect_events),
                follower_reads: d(cur.follower_reads, prev.follower_reads),
                ingest_records: d(cur.ingest_records, prev.ingest_records),
                ingest_stalls: d(cur.ingest_stalls, prev.ingest_stalls),
                outstanding_writes: sw.cp_app().outstanding_writes(),
                buffered_jobs: sw.cp_app().buffered_jobs(),
                snapshot_backlog: sw.cp_app().snapshot_backlog(),
            });
            self.last[i] = cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_keeps_newest_and_counts_evictions() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 2);
        let kept: Vec<i32> = r.iter().copied().collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn ring_buffer_under_capacity_is_in_order() {
        let mut r = RingBuffer::new(10);
        r.push("a");
        r.push("b");
        assert_eq!(r.evicted(), 0);
        let kept: Vec<&str> = r.iter().copied().collect();
        assert_eq!(kept, vec!["a", "b"]);
    }
}

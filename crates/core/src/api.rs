//! The programming interface network functions write against.
//!
//! An [`NfApp`] is a single-switch packet-processing function — written as
//! if there were one big reliable switch (§1's goal). All shared state
//! goes through the [`SharedState`] operations, whose implementation (the
//! SwiShmem layer) transparently handles replication, read redirection,
//! and write buffering according to each register's class.
//!
//! The contract mirrors the paper's compilation model (§5: "a compiler
//! could be used to translate regular P4 register accesses into SwiShmem
//! operations"): the app expresses plain register reads and writes; the
//! layer decides what they mean.

use swishmem_simnet::SimTime;
use swishmem_wire::swish::{Key, RegId};
use swishmem_wire::{DataPacket, NodeId};

/// What the NF decided to do with the packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfDecision {
    /// Emit `pkt` toward `dst` (a host or another switch).
    Forward {
        /// Next hop for the output packet.
        dst: NodeId,
        /// The (possibly rewritten) output packet.
        pkt: DataPacket,
    },
    /// Drop the packet.
    Drop,
}

/// Shared-register operations available to an NF while processing one
/// packet.
///
/// Semantics by register class:
///
/// * **SRO** — `read` returns the local replica unless a write to the
///   key's pending group is in flight, in which case the layer discards
///   this packet's outcome and re-executes it at the chain tail (the NF
///   never observes this). `write` is staged: the layer sends the write
///   set and the output packet to the control plane and releases the
///   output only after the chain acknowledges (§6.1).
/// * **ERO** — like SRO but `read` is always local.
/// * **EWO** — `read` is local (counters read the sum of all replica
///   slots); `add` applies immediately and replicates asynchronously
///   (§6.2).
///
/// Within one packet, reads observe the packet's own staged writes
/// (read-your-writes).
pub trait SharedState {
    /// Read `reg[key]`.
    fn read(&mut self, reg: RegId, key: Key) -> u64;

    /// Overwrite `reg[key]` (SRO/ERO/LWW registers).
    fn write(&mut self, reg: RegId, key: Key, value: u64);

    /// Add to `reg[key]` (EWO counter/windowed registers; on SRO/ERO this
    /// stages a read-modify-write `Set`).
    fn add(&mut self, reg: RegId, key: Key, delta: i64);

    /// Current simulated time (for window/epoch computations).
    fn now(&self) -> SimTime;

    /// The switch executing this packet.
    fn self_id(&self) -> NodeId;
}

/// A stateful network function deployed identically on every switch.
///
/// Implementations must be deterministic functions of
/// `(packet, shared state)`: the SRO read path may re-execute a packet at
/// the chain tail and expects the same outcome given the same state.
pub trait NfApp: 'static {
    /// Process one data packet arriving from `ingress` (a host or peer).
    fn process(
        &mut self,
        pkt: &DataPacket,
        ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision;

    /// The switch failed; clear any app-internal (non-shared) state.
    fn reset(&mut self) {}
}

/// A trivial NF that forwards everything to a fixed destination without
/// touching shared state. Useful as a default and in substrate tests.
pub struct ForwardAll {
    /// Where every packet goes.
    pub dst: NodeId,
}

impl NfApp for ForwardAll {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        _st: &mut dyn SharedState,
    ) -> NfDecision {
        NfDecision::Forward {
            dst: self.dst,
            pkt: *pkt,
        }
    }
}

//! Controller-replica consensus: single-decree Paxos per log slot,
//! mapped onto the PISA register model (*Paxos Made Switch-y* style).
//!
//! The replicated control plane (DESIGN.md §12) keeps one growing log of
//! [`CtrlCmd`] decrees. Each slot is decided by an independent
//! single-decree Paxos instance; replicas apply chosen commands strictly
//! in slot order, so every replica walks the same state-machine path.
//!
//! The acceptor role is deliberately register-shaped: a scalar log-wide
//! promise register (`floor`) plus two fixed-width register arrays — the
//! accepted ballot and the accepted command per slot (commands are fixed
//! 18-byte values, see [`swishmem_wire::swish::CTRL_CMD_LEN`]) — exactly
//! the state a PISA pipeline can hold in match-action registers. The
//! log-wide `floor` (instead of a per-slot promise array) doubles as the
//! leader-stability fence: once a leader's ballot is promised, a rival
//! proposer is Nacked on every slot until it outbids the floor.
//!
//! The proposer drives one slot at a time, full two-phase per slot
//! (Prepare/Promise, then Accept/Accepted, then Learn). Leadership is
//! itself a decree: a candidate walks the log from its first unchosen
//! slot, re-proposing any value it discovers (which completes interrupted
//! decrees), and wins when its own [`CtrlCmd::Reassert`] is chosen. Role
//! changes therefore ride the same committed log on every replica —
//! there is no side channel to disagree over.

use std::collections::VecDeque;
use swishmem_wire::swish::{
    CtrlAccept, CtrlAccepted, CtrlCmd, CtrlLearn, CtrlPrepare, CtrlPromise,
};
use swishmem_wire::{NodeId, SwishMsg};

/// A proposal ballot: `(round << 8) | replica_idx`. Zero is "no ballot".
pub type Ballot = u64;

/// A log slot index.
pub type Slot = u64;

/// Capacity of the consensus log *window*, mirroring a fixed-size
/// register array. Slots are absolute and monotonically increasing, but
/// only the window `[base, base + SLOT_CAP)` is backed by register
/// cells; compaction (a chosen [`CtrlCmd::Compact`] decree) advances
/// `base` and recycles the cells below it, the way a real PISA register
/// array would be reused. Overflowing the window is a degraded-mode
/// error ([`ConsensusError::LogOverflow`]), not a panic.
pub const SLOT_CAP: usize = 1024;

/// A consensus invariant the register model cannot absorb. Surfaced to
/// the oracle layer as a violation (the harness attaches seed and
/// schedule for replay) instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsensusError {
    /// A slot landed outside the `SLOT_CAP` register window — the log
    /// grew a full window beyond the last compaction boundary.
    LogOverflow {
        /// The slot that did not fit.
        slot: Slot,
        /// The window base at the time.
        base: Slot,
    },
}

impl std::fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsensusError::LogOverflow { slot, base } => write!(
                f,
                "consensus log overflow: slot {slot} outside register \
                 window [{base}, {})",
                base + SLOT_CAP as u64
            ),
        }
    }
}

/// Compose a ballot from an election round and a replica index.
pub fn ballot(round: u64, idx: u8) -> Ballot {
    (round << 8) | u64::from(idx)
}

/// The class of a consensus transition note (see [`ConsensusNote`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoteKind {
    /// The proposer opened phase 1 for a slot (Prepare issued).
    PrepareIssued,
    /// This acceptor granted a promise.
    PromiseGranted,
    /// This acceptor accepted a value.
    Accepted,
    /// The proposer saw an accept quorum — the value is chosen.
    Chosen,
    /// A slot entered this replica's chosen log.
    Learned,
    /// The proposer retreated (outbid, nacked, or a rival took over).
    StepDown,
}

/// A passive record of one consensus transition, for the control-plane
/// flight recorder (DESIGN.md §14). The state machine only *writes*
/// notes — it never reads them back — and only while [`Consensus::notes_on`]
/// is set, so recording cannot perturb any transition: with the flag off
/// the protocol state evolves identically, which is what keeps the
/// journal bit-invisible to the determinism fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsensusNote {
    /// The transition class.
    pub kind: NoteKind,
    /// The slot involved.
    pub slot: Slot,
    /// The ballot involved (0 where not meaningful, e.g. `Learned`).
    pub ballot: Ballot,
}

/// The election round of a ballot.
pub fn ballot_round(b: Ballot) -> u64 {
    b >> 8
}

/// Messages a state-machine step wants sent: `(destination, message)`.
pub type Outbox = Vec<(NodeId, SwishMsg)>;

/// Replica role within the controller group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Applying chosen commands, watching the leader's heartbeat.
    Follower,
    /// Electing itself: walking the log toward a chosen `Reassert`.
    Candidate,
    /// Proposing commands for the group.
    Leader,
}

/// Acceptor register state: the log-wide promise plus per-slot accepted
/// (ballot, command) cells for the current window. Cell storage is
/// indexed by `slot - base`; slots below `base` have been recycled and
/// any request naming them is refused (the proposer heals via the
/// snapshot catch-up path instead).
#[derive(Debug, Clone, Default)]
pub struct Acceptor {
    /// Log-wide promised ballot: Prepares and Accepts below it are
    /// refused, which is what keeps an established leader stable.
    pub floor: Ballot,
    /// First slot still backed by a register cell.
    pub base: Slot,
    cells: Vec<Option<(Ballot, CtrlCmd)>>,
}

impl Acceptor {
    fn cell(&self, slot: Slot) -> Option<(Ballot, CtrlCmd)> {
        if slot < self.base {
            return None;
        }
        self.cells
            .get((slot - self.base) as usize)
            .copied()
            .flatten()
    }

    /// Store an accepted value. False when the slot falls outside the
    /// register window (compacted or a full window ahead).
    #[must_use]
    fn set_cell(&mut self, slot: Slot, b: Ballot, c: CtrlCmd) -> bool {
        if slot < self.base {
            return false;
        }
        let i = (slot - self.base) as usize;
        if i >= SLOT_CAP {
            return false;
        }
        if self.cells.len() <= i {
            self.cells.resize(i + 1, None);
        }
        self.cells[i] = Some((b, c));
        true
    }

    /// Highest slot with an accepted value, 1-based (`base` = none).
    fn max_slot(&self) -> u64 {
        self.cells
            .iter()
            .rposition(|c| c.is_some())
            .map(|i| i as u64 + 1 + self.base)
            .unwrap_or(self.base)
    }

    /// Recycle every cell below `base` and advance the window.
    fn rebase(&mut self, base: Slot) {
        if base <= self.base {
            return;
        }
        let drop = (base - self.base) as usize;
        if drop >= self.cells.len() {
            self.cells.clear();
        } else {
            self.cells.drain(..drop);
        }
        self.base = base;
    }
}

/// The proposal currently in flight (one slot at a time).
#[derive(Debug, Clone)]
struct Inflight {
    slot: Slot,
    /// False: collecting promises. True: collecting accepts.
    phase2: bool,
    /// The value pushed in phase 2.
    value: Option<CtrlCmd>,
    /// True when `value` came off our own queue (so losing the slot
    /// re-queues it instead of dropping it).
    mine: bool,
    /// Acceptors that granted the current phase.
    grants: Vec<NodeId>,
    /// Highest-ballot accepted value discovered during phase 1.
    best: Option<(Ballot, CtrlCmd)>,
}

/// One replica's consensus state: acceptor registers, the chosen log,
/// and the proposer driver.
pub struct Consensus {
    /// This replica's node id.
    pub me: NodeId,
    /// This replica's index within the group (ballot tiebreak).
    pub idx: u8,
    /// Current consensus membership. Changed at runtime by committed
    /// `AddReplica`/`RemoveReplica` decrees; a spare replica starts with
    /// a group that does not contain it and stays passive until a
    /// membership decree admits it.
    pub group: Vec<NodeId>,
    /// Previous membership during a joint-quorum window: from the
    /// commit of a membership decree until one further decree commits,
    /// proposals must gather majorities of BOTH groups.
    pub old_group: Option<Vec<NodeId>>,
    /// Commit height at which the joint window closes.
    joint_until: Slot,
    /// Current role.
    pub role: Role,
    /// Our proposal ballot while candidate/leader.
    pub bal: Ballot,
    /// Highest election round observed anywhere (floors, rival ballots).
    pub seen_round: u64,
    /// The acceptor registers.
    pub acceptor: Acceptor,
    chosen: Vec<Option<CtrlCmd>>,
    /// Contiguously chosen prefix length: slots `0..commit` are decided.
    pub commit: Slot,
    /// The leader named by the latest `Reassert` inside the committed
    /// prefix (what this replica believes, consistently with the log).
    pub leader_hint: Option<NodeId>,
    inflight: Option<Inflight>,
    queue: VecDeque<CtrlCmd>,
    /// Leader changes observed in the committed prefix (failover count).
    pub leader_changes: u64,
    /// Compaction decrees applied (register-window recycles).
    pub compactions: u64,
    /// First capacity violation observed, sticky: the run degrades and
    /// the oracle layer reports it, rather than the process aborting.
    pub error: Option<ConsensusError>,
    /// Whether to record [`ConsensusNote`]s. Mirrored from the
    /// controller's journal attachment each callback; off by default.
    pub notes_on: bool,
    notes: Vec<ConsensusNote>,
}

impl Consensus {
    /// A fresh replica: follower, empty log.
    pub fn new(me: NodeId, idx: u8, group: Vec<NodeId>) -> Consensus {
        Consensus {
            me,
            idx,
            group,
            old_group: None,
            joint_until: 0,
            role: Role::Follower,
            bal: 0,
            seen_round: 0,
            acceptor: Acceptor::default(),
            chosen: Vec::new(),
            commit: 0,
            leader_hint: None,
            inflight: None,
            queue: VecDeque::new(),
            leader_changes: 0,
            compactions: 0,
            error: None,
            notes_on: false,
            notes: Vec::new(),
        }
    }

    /// Drain the transition notes recorded since the last drain. Empty
    /// (and allocation-free) while `notes_on` is unset.
    pub fn take_notes(&mut self) -> Vec<ConsensusNote> {
        std::mem::take(&mut self.notes)
    }

    #[inline]
    fn note(&mut self, kind: NoteKind, slot: Slot, ballot: Ballot) {
        if self.notes_on {
            self.notes.push(ConsensusNote { kind, slot, ballot });
        }
    }

    /// Majority size of the current group.
    pub fn quorum(&self) -> usize {
        self.group.len() / 2 + 1
    }

    /// True when `grants` satisfies the quorum rule: a majority of the
    /// current group, and — during a joint window — a majority of the
    /// outgoing group as well.
    fn has_quorum(&self, grants: &[NodeId]) -> bool {
        let maj = |g: &[NodeId]| grants.iter().filter(|n| g.contains(n)).count() > g.len() / 2;
        maj(&self.group) && self.old_group.as_deref().map(maj).unwrap_or(true)
    }

    fn peers(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .group
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect();
        if let Some(og) = &self.old_group {
            for &p in og {
                if p != self.me && !v.contains(&p) {
                    v.push(p);
                }
            }
        }
        v
    }

    /// First slot still backed by register cells (compaction boundary).
    pub fn base(&self) -> Slot {
        self.acceptor.base
    }

    /// Occupied length of the register window (slots since the last
    /// compaction) — the leader proposes a `Compact` when this nears
    /// [`SLOT_CAP`].
    pub fn window_len(&self) -> usize {
        (self.first_unchosen() - self.acceptor.base) as usize
    }

    /// True while a membership change's joint-quorum window is open.
    pub fn in_joint_window(&self) -> bool {
        self.old_group.is_some()
    }

    /// The chosen command at `slot`, if decided and not yet compacted.
    pub fn chosen_at(&self, slot: Slot) -> Option<CtrlCmd> {
        if slot < self.acceptor.base {
            return None;
        }
        self.chosen
            .get((slot - self.acceptor.base) as usize)
            .copied()
            .flatten()
    }

    fn first_unchosen(&self) -> Slot {
        let mut s = self.commit;
        while self.chosen_at(s).is_some() {
            s += 1;
        }
        s
    }

    /// True if `cmd` is already queued or being proposed (decision dedup).
    pub fn has_pending(&self, cmd: &CtrlCmd) -> bool {
        self.queue.contains(cmd)
            || self
                .inflight
                .as_ref()
                .is_some_and(|f| f.mine && f.value.as_ref() == Some(cmd))
    }

    /// Queue a command for proposal (leader only; no-op outbox if a
    /// proposal is already in flight — `tick`/choose will pump it).
    pub fn enqueue(&mut self, cmd: CtrlCmd) -> Outbox {
        self.queue.push_back(cmd);
        self.pump()
    }

    /// Begin (or re-begin, at a higher round) an election.
    pub fn start_candidacy(&mut self) -> Outbox {
        self.seen_round += 1;
        self.bal = ballot(self.seen_round, self.idx);
        self.role = Role::Candidate;
        self.inflight = None;
        self.pump()
    }

    fn step_down(&mut self) {
        if self.role != Role::Follower {
            self.note(NoteKind::StepDown, self.commit, self.bal);
        }
        self.role = Role::Follower;
        self.inflight = None;
        self.queue.clear();
    }

    /// Crash-recovery re-entry: drop any proposer role and in-flight
    /// work (stale after downtime) but keep the acceptor state and the
    /// chosen log — the promises this node made still bind it.
    pub fn on_restart(&mut self) {
        self.step_down();
    }

    /// Drive the proposer: start phase 1 for the next slot if there is
    /// work (an election to win, or queued commands) and nothing in
    /// flight.
    fn pump(&mut self) -> Outbox {
        let mut out = Outbox::new();
        if self.inflight.is_some() {
            return out;
        }
        let need = match self.role {
            Role::Follower => false,
            // A candidate keeps walking until its Reassert is chosen.
            Role::Candidate => true,
            Role::Leader => !self.queue.is_empty(),
        };
        if !need {
            return out;
        }
        let slot = self.first_unchosen();
        if (slot - self.acceptor.base) as usize >= SLOT_CAP {
            // The window is full and no compaction landed in time:
            // degrade (sticky error, surfaced by the oracles) instead of
            // panicking, and stop proposing.
            self.error.get_or_insert(ConsensusError::LogOverflow {
                slot,
                base: self.acceptor.base,
            });
            return out;
        }
        self.inflight = Some(Inflight {
            slot,
            phase2: false,
            value: None,
            mine: false,
            grants: Vec::new(),
            best: None,
        });
        self.note(NoteKind::PrepareIssued, slot, self.bal);
        let prep = CtrlPrepare {
            from: self.me,
            ballot: self.bal,
            slot,
        };
        for p in self.peers() {
            out.push((p, SwishMsg::CtrlPrepare(prep)));
        }
        // The proposer's own acceptor votes locally, no wire round trip.
        let local = self.promise_for(prep);
        self.note_promise(local, &mut out);
        out
    }

    /// Re-send the in-flight phase's requests (loss recovery; receivers
    /// are idempotent). Called from the replica tick.
    pub fn retransmit(&mut self) -> Outbox {
        let mut out = Outbox::new();
        let Some(f) = self.inflight.clone() else {
            return self.pump();
        };
        if f.phase2 {
            if let Some(v) = f.value {
                let acc = CtrlAccept {
                    from: self.me,
                    ballot: self.bal,
                    slot: f.slot,
                    cmd: v,
                };
                for p in self.peers() {
                    out.push((p, SwishMsg::CtrlAccept(acc)));
                }
            }
        } else {
            let prep = CtrlPrepare {
                from: self.me,
                ballot: self.bal,
                slot: f.slot,
            };
            for p in self.peers() {
                out.push((p, SwishMsg::CtrlPrepare(prep)));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Acceptor side
    // ------------------------------------------------------------------

    fn promise_for(&mut self, m: CtrlPrepare) -> CtrlPromise {
        self.seen_round = self.seen_round.max(ballot_round(m.ballot));
        // Refuse slots below the compaction boundary: those register
        // cells are recycled, the proposer must catch up via snapshot.
        let granted = m.ballot >= self.acceptor.floor && m.slot >= self.acceptor.base;
        if granted {
            self.acceptor.floor = m.ballot;
            self.note(NoteKind::PromiseGranted, m.slot, m.ballot);
        }
        let acc = self.acceptor.cell(m.slot);
        CtrlPromise {
            from: self.me,
            ballot: m.ballot,
            slot: m.slot,
            granted,
            floor: self.acceptor.floor,
            max_slot: self.acceptor.max_slot(),
            acc_ballot: acc.map(|(b, _)| b).unwrap_or(0),
            acc: acc.map(|(_, c)| c),
        }
    }

    /// Handle a phase-1 request from a peer.
    pub fn on_prepare(&mut self, m: CtrlPrepare) -> Outbox {
        let reply = self.promise_for(m);
        // A prepare above our ballot means a rival is electing: if we
        // were leading or electing on a lower ballot, yield.
        if m.ballot > self.bal && self.role != Role::Follower {
            self.step_down();
        }
        vec![(m.from, SwishMsg::CtrlPromise(reply))]
    }

    fn accepted_for(&mut self, m: CtrlAccept) -> CtrlAccepted {
        self.seen_round = self.seen_round.max(ballot_round(m.ballot));
        let mut granted = m.ballot >= self.acceptor.floor && m.slot >= self.acceptor.base;
        if granted {
            if self.acceptor.set_cell(m.slot, m.ballot, m.cmd) {
                self.acceptor.floor = m.ballot;
                self.note(NoteKind::Accepted, m.slot, m.ballot);
            } else {
                granted = false;
                self.error.get_or_insert(ConsensusError::LogOverflow {
                    slot: m.slot,
                    base: self.acceptor.base,
                });
            }
        }
        CtrlAccepted {
            from: self.me,
            ballot: m.ballot,
            slot: m.slot,
            granted,
            floor: self.acceptor.floor,
        }
    }

    /// Handle a phase-2 request from a peer.
    pub fn on_accept(&mut self, m: CtrlAccept) -> Outbox {
        let reply = self.accepted_for(m);
        if m.ballot > self.bal && self.role != Role::Follower {
            self.step_down();
        }
        vec![(m.from, SwishMsg::CtrlAccepted(reply))]
    }

    // ------------------------------------------------------------------
    // Proposer side
    // ------------------------------------------------------------------

    fn note_promise(&mut self, m: CtrlPromise, out: &mut Outbox) {
        if self.role == Role::Follower || m.ballot != self.bal {
            return;
        }
        let Some(f) = self.inflight.as_mut() else {
            return;
        };
        if f.phase2 || m.slot != f.slot {
            return;
        }
        if !m.granted {
            // Outbid: remember the round and retreat; the election timer
            // decides whether to try again higher.
            self.seen_round = self.seen_round.max(ballot_round(m.floor));
            self.step_down();
            return;
        }
        if let (ab, Some(ac)) = (m.acc_ballot, m.acc) {
            if ab > 0 && f.best.map(|(b, _)| ab > b).unwrap_or(true) {
                f.best = Some((ab, ac));
            }
        }
        if !f.grants.contains(&m.from) {
            f.grants.push(m.from);
        }
        let grants = f.grants.clone();
        if !self.has_quorum(&grants) {
            return;
        }
        let f = self.inflight.as_mut().expect("inflight");
        // Phase 2: push the discovered value if any (completing an
        // interrupted decree), else our own command.
        let (value, mine) = match f.best {
            Some((_, v)) => (v, false),
            None => match self.role {
                Role::Leader => match self.queue.pop_front() {
                    Some(v) => (v, true),
                    None => {
                        self.inflight = None;
                        return;
                    }
                },
                // Candidates fill free slots with their election decree.
                _ => (CtrlCmd::Reassert { leader: self.me }, true),
            },
        };
        let f = self.inflight.as_mut().expect("inflight");
        f.phase2 = true;
        f.value = Some(value);
        f.mine = mine;
        f.grants.clear();
        let slot = f.slot;
        let acc = CtrlAccept {
            from: self.me,
            ballot: self.bal,
            slot,
            cmd: value,
        };
        for p in self.peers() {
            out.push((p, SwishMsg::CtrlAccept(acc)));
        }
        let local = self.accepted_for(acc);
        self.note_accepted(local, out);
    }

    /// Handle a phase-1 reply.
    pub fn on_promise(&mut self, m: CtrlPromise) -> Outbox {
        let mut out = Outbox::new();
        self.note_promise(m, &mut out);
        out
    }

    fn note_accepted(&mut self, m: CtrlAccepted, out: &mut Outbox) {
        if self.role == Role::Follower || m.ballot != self.bal {
            return;
        }
        let Some(f) = self.inflight.as_mut() else {
            return;
        };
        if !f.phase2 || m.slot != f.slot {
            return;
        }
        if !m.granted {
            self.seen_round = self.seen_round.max(ballot_round(m.floor));
            let mine = f.mine;
            let value = f.value;
            self.step_down();
            // Our own command lost the slot race: it is not abandoned,
            // the next leader (possibly us) re-derives or re-queues it.
            if mine {
                if let Some(v) = value {
                    self.queue.push_front(v);
                }
            }
            return;
        }
        if !f.grants.contains(&m.from) {
            f.grants.push(m.from);
        }
        let grants = f.grants.clone();
        if !self.has_quorum(&grants) {
            return;
        }
        let f = self.inflight.as_ref().expect("inflight");
        let slot = f.slot;
        let value = f.value.expect("phase-2 value");
        self.inflight = None;
        self.note(NoteKind::Chosen, slot, self.bal);
        let learn = CtrlLearn {
            from: self.me,
            slot,
            cmd: value,
        };
        for p in self.peers() {
            out.push((p, SwishMsg::CtrlLearn(learn)));
        }
        self.learn(slot, value);
        out.extend(self.pump());
    }

    /// Handle a phase-2 reply.
    pub fn on_accepted(&mut self, m: CtrlAccepted) -> Outbox {
        let mut out = Outbox::new();
        self.note_accepted(m, &mut out);
        out
    }

    /// Handle a chosen-value notification (or a locally decided value).
    pub fn on_learn(&mut self, m: CtrlLearn) -> Outbox {
        // If a rival decided the slot we were driving, our command goes
        // back on the queue (unless it IS the decided value).
        if let Some(f) = &self.inflight {
            if f.slot == m.slot {
                let lost = f.mine && f.value != Some(m.cmd);
                let value = f.value;
                if lost {
                    if let Some(v) = value {
                        self.queue.push_front(v);
                    }
                }
                self.inflight = None;
            }
        }
        self.learn(m.slot, m.cmd);
        self.pump()
    }

    fn learn(&mut self, slot: Slot, cmd: CtrlCmd) {
        if slot < self.acceptor.base {
            // Already compacted away: the decree is reflected in the
            // snapshot state, a late Learn for it is stale.
            return;
        }
        let i = (slot - self.acceptor.base) as usize;
        if i >= SLOT_CAP {
            self.error.get_or_insert(ConsensusError::LogOverflow {
                slot,
                base: self.acceptor.base,
            });
            return;
        }
        if self.chosen.len() <= i {
            self.chosen.resize(i + 1, None);
        }
        debug_assert!(
            self.chosen[i].is_none() || self.chosen[i] == Some(cmd),
            "two different values chosen at slot {slot}"
        );
        if self.chosen[i].is_none() {
            self.note(NoteKind::Learned, slot, 0);
        }
        self.chosen[i] = Some(cmd);
        self.advance_commit();
    }

    /// Advance the committed prefix; leadership, membership, and the
    /// compaction boundary all follow the log.
    fn advance_commit(&mut self) {
        while let Some(c) = self.chosen_at(self.commit) {
            let slot = self.commit;
            self.commit += 1;
            match c {
                CtrlCmd::Reassert { leader } => {
                    if self.leader_hint != Some(leader) {
                        if self.leader_hint.is_some() {
                            self.leader_changes += 1;
                        }
                        self.leader_hint = Some(leader);
                    }
                    if leader == self.me {
                        self.role = Role::Leader;
                    } else if self.role != Role::Follower {
                        self.step_down();
                    }
                }
                CtrlCmd::AddReplica { node } if !self.group.contains(&node) => {
                    self.old_group = Some(self.group.clone());
                    self.group.push(node);
                    // Joint window: one further decree must commit
                    // under majorities of both groups. (Single-node
                    // changes already have overlapping majorities;
                    // the window is the belt-and-braces on top.)
                    self.joint_until = slot + 2;
                }
                CtrlCmd::RemoveReplica { node } if self.group.contains(&node) => {
                    self.old_group = Some(self.group.clone());
                    self.group.retain(|&n| n != node);
                    self.joint_until = slot + 2;
                    if node == self.me && self.role != Role::Follower {
                        self.step_down();
                    }
                }
                // `Compact` is NOT applied here: the commit cursor can
                // run ahead of the state-machine apply cursor, and
                // recycling cells below a slot the controller has not
                // applied yet would lose decrees. The controller calls
                // `compact_to` when its apply cursor passes the decree,
                // which is the same boundary on every replica.
                _ => {}
            }
            if self.old_group.is_some() && self.commit >= self.joint_until {
                self.old_group = None;
            }
        }
    }

    /// Recycle register cells below `upto` (acceptor and chosen arrays
    /// alike). No-op unless `base < upto <= commit`: every discarded
    /// slot is inside the committed prefix, so no accepted-but-unchosen
    /// value can be lost.
    pub fn compact_to(&mut self, upto: Slot) -> bool {
        if upto <= self.acceptor.base || upto > self.commit {
            return false;
        }
        let drop = (upto - self.acceptor.base) as usize;
        if drop >= self.chosen.len() {
            self.chosen.clear();
        } else {
            self.chosen.drain(..drop);
        }
        self.acceptor.rebase(upto);
        self.compactions += 1;
        true
    }

    /// Adopt a snapshot catch-up boundary: a peer's applied state
    /// replaces everything below `base`, and this replica resumes from
    /// there (keeping any already-decided suffix at or above `base`).
    /// No-op unless actually behind (`commit < base`).
    pub fn install_base(
        &mut self,
        base: Slot,
        group: Vec<NodeId>,
        leader: Option<NodeId>,
        leader_changes: u64,
    ) -> bool {
        if base <= self.commit {
            return false;
        }
        let old_base = self.acceptor.base;
        if base > old_base {
            let drop = (base - old_base) as usize;
            if drop >= self.chosen.len() {
                self.chosen.clear();
            } else {
                self.chosen.drain(..drop);
            }
            self.acceptor.rebase(base);
        }
        self.group = group;
        self.old_group = None;
        self.leader_hint = leader;
        self.leader_changes = leader_changes;
        self.commit = base;
        self.step_down();
        // A decided suffix above the boundary may already be sitting in
        // the chosen array — walk it as usual.
        self.advance_commit();
        true
    }

    /// Learn messages re-playing slots `[from, commit)` for a lagging
    /// follower (lost-`CtrlLearn` recovery, driven off its heartbeat).
    /// Clamped to the compaction boundary: anything below `base` only
    /// exists as snapshot state and is shipped via `CtrlSnap` instead.
    pub fn learns_since(&self, from: Slot) -> Vec<CtrlLearn> {
        (from.max(self.acceptor.base)..self.commit)
            .filter_map(|s| {
                self.chosen_at(s).map(|cmd| CtrlLearn {
                    from: self.me,
                    slot: s,
                    cmd,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group3() -> Vec<NodeId> {
        vec![NodeId(u16::MAX), NodeId(u16::MAX - 1), NodeId(u16::MAX - 2)]
    }

    fn mk(i: usize) -> Consensus {
        let g = group3();
        Consensus::new(g[i], i as u8, g)
    }

    /// Deliver every outstanding message until quiescent. Returns the
    /// number of messages delivered.
    fn run_bus(
        reps: &mut [Consensus],
        mut bus: Outbox,
        drop: impl Fn(usize, &SwishMsg) -> bool,
    ) -> usize {
        let mut delivered = 0;
        let mut n = 0;
        while let Some((to, msg)) = bus.first().cloned() {
            bus.remove(0);
            n += 1;
            assert!(n < 10_000, "bus did not quiesce");
            let Some(i) = reps.iter().position(|r| r.me == to) else {
                continue;
            };
            if drop(i, &msg) {
                continue;
            }
            let rep = &mut reps[i];
            delivered += 1;
            let out = match msg {
                SwishMsg::CtrlPrepare(m) => rep.on_prepare(m),
                SwishMsg::CtrlPromise(m) => rep.on_promise(m),
                SwishMsg::CtrlAccept(m) => rep.on_accept(m),
                SwishMsg::CtrlAccepted(m) => rep.on_accepted(m),
                SwishMsg::CtrlLearn(m) => rep.on_learn(m),
                _ => Vec::new(),
            };
            bus.extend(out);
        }
        delivered
    }

    #[test]
    fn initial_election_elects_replica_zero() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        for r in &reps {
            assert_eq!(r.leader_hint, Some(NodeId(u16::MAX)));
            assert_eq!(r.commit, 1);
            assert_eq!(
                r.chosen_at(0),
                Some(CtrlCmd::Reassert {
                    leader: NodeId(u16::MAX)
                })
            );
        }
        assert_eq!(reps[0].role, Role::Leader);
        assert_eq!(reps[1].role, Role::Follower);
    }

    #[test]
    fn leader_replicates_commands_in_order() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        let out = reps[0].enqueue(CtrlCmd::Bootstrap);
        run_bus(&mut reps, out, |_, _| false);
        let out = reps[0].enqueue(CtrlCmd::Fail { node: NodeId(2) });
        run_bus(&mut reps, out, |_, _| false);
        for r in &reps {
            assert_eq!(r.commit, 3);
            assert_eq!(r.chosen_at(1), Some(CtrlCmd::Bootstrap));
            assert_eq!(r.chosen_at(2), Some(CtrlCmd::Fail { node: NodeId(2) }));
        }
    }

    #[test]
    fn failover_adopts_interrupted_decree() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        // Leader proposes, but every Learn and every reply past the
        // accepts is lost: the value is accepted at a quorum yet chosen
        // nowhere else.
        let out = reps[0].enqueue(CtrlCmd::Fail { node: NodeId(7) });
        run_bus(&mut reps, out, |i, m| {
            i == 0 && matches!(m, SwishMsg::CtrlAccepted(_) | SwishMsg::CtrlLearn(_))
        });
        assert_eq!(
            reps[1].acceptor.cell(1).map(|(_, c)| c),
            Some(CtrlCmd::Fail { node: NodeId(7) })
        );
        assert_eq!(reps[1].commit, 1, "slot 1 not learned yet");
        // Replica 1 takes over (replica 0 silent): it must re-discover
        // and choose the interrupted decree before leading.
        let out = reps[1].start_candidacy();
        run_bus(&mut reps, out, |i, _| i == 0);
        assert_eq!(reps[1].role, Role::Leader);
        assert_eq!(
            reps[1].chosen_at(1),
            Some(CtrlCmd::Fail { node: NodeId(7) })
        );
        assert_eq!(
            reps[1].chosen_at(2),
            Some(CtrlCmd::Reassert {
                leader: NodeId(u16::MAX - 1)
            })
        );
        assert_eq!(
            reps[2].chosen_at(1),
            Some(CtrlCmd::Fail { node: NodeId(7) })
        );
    }

    #[test]
    fn dueling_candidates_converge_on_one_leader() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let mut bus = reps[0].start_candidacy();
        bus.extend(reps[1].start_candidacy());
        run_bus(&mut reps, bus, |_, _| false);
        // One candidacy wins outright; the loser steps down. If both
        // retreated (possible with interleaved nacks), a retry decides.
        let leaders: Vec<_> = reps.iter().filter(|r| r.role == Role::Leader).collect();
        if leaders.is_empty() {
            let out = reps[1].start_candidacy();
            run_bus(&mut reps, out, |_, _| false);
        }
        let hints: Vec<_> = reps.iter().map(|r| r.leader_hint).collect();
        assert!(hints[0].is_some());
        assert!(
            hints.iter().all(|h| *h == hints[0]),
            "split brain: {hints:?}"
        );
        assert_eq!(
            reps.iter().filter(|r| r.role == Role::Leader).count(),
            1,
            "exactly one leader"
        );
    }

    #[test]
    fn compaction_sustains_four_windows_of_decrees() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        // Long horizon: 4x the register window, with the leader choosing
        // a Compact decree whenever the window crosses a threshold —
        // the production trigger wired through the controller tick.
        let total = 4 * SLOT_CAP;
        for k in 0..total {
            let out = reps[0].enqueue(CtrlCmd::Fail {
                node: NodeId((k % 64) as u16),
            });
            run_bus(&mut reps, out, |_, _| false);
            if reps[0].window_len() >= 256 {
                let upto = reps[0].commit;
                let out = reps[0].enqueue(CtrlCmd::Compact { upto });
                run_bus(&mut reps, out, |_, _| false);
                // Each replica's apply cursor passes the decree and
                // recycles the window (the controller's job in prod).
                for r in reps.iter_mut() {
                    assert!(r.compact_to(upto));
                }
            }
        }
        for r in &reps {
            assert!(r.error.is_none(), "overflow surfaced: {:?}", r.error);
            assert!(r.compactions > 0, "window never recycled");
            assert!(r.window_len() < SLOT_CAP);
            assert!(r.base() > 0);
            assert_eq!(r.commit, reps[0].commit, "replicas diverged");
        }
        assert!(reps[0].commit as usize > total);
    }

    #[test]
    fn window_overflow_degrades_with_error_not_panic() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        // No compaction: the window must fill and degrade, not abort.
        for k in 0..SLOT_CAP + 8 {
            let out = reps[0].enqueue(CtrlCmd::Fail {
                node: NodeId((k % 64) as u16),
            });
            run_bus(&mut reps, out, |_, _| false);
        }
        assert!(matches!(
            reps[0].error,
            Some(ConsensusError::LogOverflow { .. })
        ));
        assert!(reps[0].commit as usize <= SLOT_CAP);
    }

    #[test]
    fn membership_decrees_change_quorum_at_runtime() {
        let g = group3();
        let spare = NodeId(u16::MAX - 3);
        let mut reps = vec![mk(0), mk(1), mk(2), Consensus::new(spare, 3, g.clone())];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        let out = reps[0].enqueue(CtrlCmd::AddReplica { node: spare });
        run_bus(&mut reps, out, |_, _| false);
        for r in &reps[..3] {
            assert_eq!(r.group.len(), 4);
            assert!(r.group.contains(&spare));
        }
        assert!(reps[0].in_joint_window(), "joint window opens at commit");
        // The spare catches up via learn replay and adopts the
        // membership that admits it.
        let learns: Outbox = reps[0]
            .learns_since(0)
            .into_iter()
            .map(|l| (spare, SwishMsg::CtrlLearn(l)))
            .collect();
        run_bus(&mut reps, learns, |_, _| false);
        assert!(reps[3].group.contains(&spare));
        assert_eq!(reps[3].commit, reps[0].commit);
        // One further decree closes the joint window.
        let out = reps[0].enqueue(CtrlCmd::Fail { node: NodeId(9) });
        run_bus(&mut reps, out, |_, _| false);
        assert!(!reps[0].in_joint_window());
        // Removal shrinks the group; the removed replica steps aside.
        let out = reps[0].enqueue(CtrlCmd::RemoveReplica { node: g[2] });
        run_bus(&mut reps, out, |_, _| false);
        let out = reps[0].enqueue(CtrlCmd::Fail { node: NodeId(10) });
        run_bus(&mut reps, out, |_, _| false);
        assert_eq!(reps[0].group.len(), 3);
        assert!(!reps[0].group.contains(&g[2]));
        assert!(!reps[0].in_joint_window());
        assert!(!reps[2].group.contains(&g[2]));
        assert_eq!(reps[2].role, Role::Follower);
    }

    #[test]
    fn interrupted_membership_decree_converges_to_one_membership() {
        let g = group3();
        let spare = NodeId(u16::MAX - 3);
        let mut reps = vec![mk(0), mk(1), mk(2), Consensus::new(spare, 3, g.clone())];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        // The AddReplica is accepted at a quorum, but every reply past
        // the accepts is lost: chosen nowhere, then the leader crashes.
        let out = reps[0].enqueue(CtrlCmd::AddReplica { node: spare });
        run_bus(&mut reps, out, |i, m| {
            i == 0 && matches!(m, SwishMsg::CtrlAccepted(_) | SwishMsg::CtrlLearn(_))
        });
        assert_eq!(reps[1].group.len(), 3, "not yet applied anywhere");
        // The next leader must re-discover and finish the membership
        // decree before its own Reassert — one membership, not two.
        let out = reps[1].start_candidacy();
        run_bus(&mut reps, out, |i, _| i == 0);
        assert_eq!(reps[1].role, Role::Leader);
        for r in &reps[1..3] {
            assert_eq!(r.group.len(), 4, "membership converged");
            assert!(r.group.contains(&spare));
        }
    }

    #[test]
    fn lagging_replica_jumps_to_snapshot_base() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        // Replica 2 misses a stretch that then gets compacted away.
        for k in 0..8 {
            let out = reps[0].enqueue(CtrlCmd::Fail { node: NodeId(k) });
            run_bus(&mut reps, out, |i, _| i == 2);
        }
        let upto = reps[0].commit;
        let out = reps[0].enqueue(CtrlCmd::Compact { upto });
        run_bus(&mut reps, out, |i, _| i == 2);
        assert!(reps[0].compact_to(upto));
        assert!(reps[1].compact_to(upto));
        assert!(reps[0].base() > 0);
        assert_eq!(reps[2].commit, 1);
        // Learn replay no longer covers the gap below the boundary …
        assert!(reps[0]
            .learns_since(reps[2].commit)
            .iter()
            .all(|l| l.slot >= reps[0].base()));
        // … so the snapshot path jumps the replica to the boundary.
        let base = reps[0].base();
        let group = reps[0].group.clone();
        let (hint, changes) = (reps[0].leader_hint, reps[0].leader_changes);
        assert!(reps[2].install_base(base, group, hint, changes));
        assert_eq!(reps[2].commit, base);
        // Suffix replay completes the catch-up.
        let learns: Outbox = reps[0]
            .learns_since(base)
            .into_iter()
            .map(|l| (NodeId(u16::MAX - 2), SwishMsg::CtrlLearn(l)))
            .collect();
        run_bus(&mut reps, learns, |_, _| false);
        assert_eq!(reps[2].commit, reps[0].commit);
    }

    #[test]
    fn lagging_follower_catches_up_via_learns_since() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        // Replica 2 misses everything after the election.
        let out = reps[0].enqueue(CtrlCmd::Bootstrap);
        run_bus(&mut reps, out, |i, _| i == 2);
        assert_eq!(reps[2].commit, 1);
        // Its heartbeat reports commit=1; the leader replays the gap.
        let learns: Outbox = reps[0]
            .learns_since(1)
            .into_iter()
            .map(|l| (NodeId(u16::MAX - 2), SwishMsg::CtrlLearn(l)))
            .collect();
        run_bus(&mut reps, learns, |_, _| false);
        assert_eq!(reps[2].commit, 2);
        assert_eq!(reps[2].chosen_at(1), Some(CtrlCmd::Bootstrap));
    }
}

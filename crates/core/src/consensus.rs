//! Controller-replica consensus: single-decree Paxos per log slot,
//! mapped onto the PISA register model (*Paxos Made Switch-y* style).
//!
//! The replicated control plane (DESIGN.md §12) keeps one growing log of
//! [`CtrlCmd`] decrees. Each slot is decided by an independent
//! single-decree Paxos instance; replicas apply chosen commands strictly
//! in slot order, so every replica walks the same state-machine path.
//!
//! The acceptor role is deliberately register-shaped: a scalar log-wide
//! promise register (`floor`) plus two fixed-width register arrays — the
//! accepted ballot and the accepted command per slot (commands are fixed
//! 18-byte values, see [`swishmem_wire::swish::CTRL_CMD_LEN`]) — exactly
//! the state a PISA pipeline can hold in match-action registers. The
//! log-wide `floor` (instead of a per-slot promise array) doubles as the
//! leader-stability fence: once a leader's ballot is promised, a rival
//! proposer is Nacked on every slot until it outbids the floor.
//!
//! The proposer drives one slot at a time, full two-phase per slot
//! (Prepare/Promise, then Accept/Accepted, then Learn). Leadership is
//! itself a decree: a candidate walks the log from its first unchosen
//! slot, re-proposing any value it discovers (which completes interrupted
//! decrees), and wins when its own [`CtrlCmd::Reassert`] is chosen. Role
//! changes therefore ride the same committed log on every replica —
//! there is no side channel to disagree over.

use std::collections::VecDeque;
use swishmem_wire::swish::{
    CtrlAccept, CtrlAccepted, CtrlCmd, CtrlLearn, CtrlPrepare, CtrlPromise,
};
use swishmem_wire::{NodeId, SwishMsg};

/// A proposal ballot: `(round << 8) | replica_idx`. Zero is "no ballot".
pub type Ballot = u64;

/// A log slot index.
pub type Slot = u64;

/// Hard cap on the consensus log, mirroring a fixed-size register array.
/// Control-plane decrees are rare (membership + migration events), so a
/// real deployment would recycle cells; the simulation enforces the cap.
pub const SLOT_CAP: usize = 1024;

/// Compose a ballot from an election round and a replica index.
pub fn ballot(round: u64, idx: u8) -> Ballot {
    (round << 8) | u64::from(idx)
}

/// The election round of a ballot.
pub fn ballot_round(b: Ballot) -> u64 {
    b >> 8
}

/// Messages a state-machine step wants sent: `(destination, message)`.
pub type Outbox = Vec<(NodeId, SwishMsg)>;

/// Replica role within the controller group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Applying chosen commands, watching the leader's heartbeat.
    Follower,
    /// Electing itself: walking the log toward a chosen `Reassert`.
    Candidate,
    /// Proposing commands for the group.
    Leader,
}

/// Acceptor register state: the log-wide promise plus per-slot accepted
/// (ballot, command) cells.
#[derive(Debug, Clone, Default)]
pub struct Acceptor {
    /// Log-wide promised ballot: Prepares and Accepts below it are
    /// refused, which is what keeps an established leader stable.
    pub floor: Ballot,
    cells: Vec<Option<(Ballot, CtrlCmd)>>,
}

impl Acceptor {
    fn cell(&self, slot: Slot) -> Option<(Ballot, CtrlCmd)> {
        self.cells.get(slot as usize).copied().flatten()
    }

    fn set_cell(&mut self, slot: Slot, b: Ballot, c: CtrlCmd) {
        let i = slot as usize;
        assert!(i < SLOT_CAP, "consensus log exceeded SLOT_CAP");
        if self.cells.len() <= i {
            self.cells.resize(i + 1, None);
        }
        self.cells[i] = Some((b, c));
    }

    /// Highest slot with an accepted value, 1-based (0 = none).
    fn max_slot(&self) -> u64 {
        self.cells
            .iter()
            .rposition(|c| c.is_some())
            .map(|i| i as u64 + 1)
            .unwrap_or(0)
    }
}

/// The proposal currently in flight (one slot at a time).
#[derive(Debug, Clone)]
struct Inflight {
    slot: Slot,
    /// False: collecting promises. True: collecting accepts.
    phase2: bool,
    /// The value pushed in phase 2.
    value: Option<CtrlCmd>,
    /// True when `value` came off our own queue (so losing the slot
    /// re-queues it instead of dropping it).
    mine: bool,
    /// Acceptors that granted the current phase.
    grants: Vec<NodeId>,
    /// Highest-ballot accepted value discovered during phase 1.
    best: Option<(Ballot, CtrlCmd)>,
}

/// One replica's consensus state: acceptor registers, the chosen log,
/// and the proposer driver.
pub struct Consensus {
    /// This replica's node id.
    pub me: NodeId,
    /// This replica's index within the group (ballot tiebreak).
    pub idx: u8,
    /// All replicas, index order (`group[idx] == me`).
    pub group: Vec<NodeId>,
    /// Current role.
    pub role: Role,
    /// Our proposal ballot while candidate/leader.
    pub bal: Ballot,
    /// Highest election round observed anywhere (floors, rival ballots).
    pub seen_round: u64,
    /// The acceptor registers.
    pub acceptor: Acceptor,
    chosen: Vec<Option<CtrlCmd>>,
    /// Contiguously chosen prefix length: slots `0..commit` are decided.
    pub commit: Slot,
    /// The leader named by the latest `Reassert` inside the committed
    /// prefix (what this replica believes, consistently with the log).
    pub leader_hint: Option<NodeId>,
    inflight: Option<Inflight>,
    queue: VecDeque<CtrlCmd>,
    /// Leader changes observed in the committed prefix (failover count).
    pub leader_changes: u64,
}

impl Consensus {
    /// A fresh replica: follower, empty log.
    pub fn new(me: NodeId, idx: u8, group: Vec<NodeId>) -> Consensus {
        Consensus {
            me,
            idx,
            group,
            role: Role::Follower,
            bal: 0,
            seen_round: 0,
            acceptor: Acceptor::default(),
            chosen: Vec::new(),
            commit: 0,
            leader_hint: None,
            inflight: None,
            queue: VecDeque::new(),
            leader_changes: 0,
        }
    }

    fn quorum(&self) -> usize {
        self.group.len() / 2 + 1
    }

    fn peers(&self) -> Vec<NodeId> {
        self.group
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect()
    }

    /// The chosen command at `slot`, if decided.
    pub fn chosen_at(&self, slot: Slot) -> Option<CtrlCmd> {
        self.chosen.get(slot as usize).copied().flatten()
    }

    fn first_unchosen(&self) -> Slot {
        let mut s = self.commit;
        while self.chosen_at(s).is_some() {
            s += 1;
        }
        s
    }

    /// True if `cmd` is already queued or being proposed (decision dedup).
    pub fn has_pending(&self, cmd: &CtrlCmd) -> bool {
        self.queue.contains(cmd)
            || self
                .inflight
                .as_ref()
                .is_some_and(|f| f.mine && f.value.as_ref() == Some(cmd))
    }

    /// Queue a command for proposal (leader only; no-op outbox if a
    /// proposal is already in flight — `tick`/choose will pump it).
    pub fn enqueue(&mut self, cmd: CtrlCmd) -> Outbox {
        self.queue.push_back(cmd);
        self.pump()
    }

    /// Begin (or re-begin, at a higher round) an election.
    pub fn start_candidacy(&mut self) -> Outbox {
        self.seen_round += 1;
        self.bal = ballot(self.seen_round, self.idx);
        self.role = Role::Candidate;
        self.inflight = None;
        self.pump()
    }

    fn step_down(&mut self) {
        self.role = Role::Follower;
        self.inflight = None;
        self.queue.clear();
    }

    /// Crash-recovery re-entry: drop any proposer role and in-flight
    /// work (stale after downtime) but keep the acceptor state and the
    /// chosen log — the promises this node made still bind it.
    pub fn on_restart(&mut self) {
        self.step_down();
    }

    /// Drive the proposer: start phase 1 for the next slot if there is
    /// work (an election to win, or queued commands) and nothing in
    /// flight.
    fn pump(&mut self) -> Outbox {
        let mut out = Outbox::new();
        if self.inflight.is_some() {
            return out;
        }
        let need = match self.role {
            Role::Follower => false,
            // A candidate keeps walking until its Reassert is chosen.
            Role::Candidate => true,
            Role::Leader => !self.queue.is_empty(),
        };
        if !need {
            return out;
        }
        let slot = self.first_unchosen();
        assert!(
            (slot as usize) < SLOT_CAP,
            "consensus log exceeded SLOT_CAP"
        );
        self.inflight = Some(Inflight {
            slot,
            phase2: false,
            value: None,
            mine: false,
            grants: Vec::new(),
            best: None,
        });
        let prep = CtrlPrepare {
            from: self.me,
            ballot: self.bal,
            slot,
        };
        for p in self.peers() {
            out.push((p, SwishMsg::CtrlPrepare(prep)));
        }
        // The proposer's own acceptor votes locally, no wire round trip.
        let local = self.promise_for(prep);
        self.note_promise(local, &mut out);
        out
    }

    /// Re-send the in-flight phase's requests (loss recovery; receivers
    /// are idempotent). Called from the replica tick.
    pub fn retransmit(&mut self) -> Outbox {
        let mut out = Outbox::new();
        let Some(f) = self.inflight.clone() else {
            return self.pump();
        };
        if f.phase2 {
            if let Some(v) = f.value {
                let acc = CtrlAccept {
                    from: self.me,
                    ballot: self.bal,
                    slot: f.slot,
                    cmd: v,
                };
                for p in self.peers() {
                    out.push((p, SwishMsg::CtrlAccept(acc)));
                }
            }
        } else {
            let prep = CtrlPrepare {
                from: self.me,
                ballot: self.bal,
                slot: f.slot,
            };
            for p in self.peers() {
                out.push((p, SwishMsg::CtrlPrepare(prep)));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Acceptor side
    // ------------------------------------------------------------------

    fn promise_for(&mut self, m: CtrlPrepare) -> CtrlPromise {
        self.seen_round = self.seen_round.max(ballot_round(m.ballot));
        let granted = m.ballot >= self.acceptor.floor;
        if granted {
            self.acceptor.floor = m.ballot;
        }
        let acc = self.acceptor.cell(m.slot);
        CtrlPromise {
            from: self.me,
            ballot: m.ballot,
            slot: m.slot,
            granted,
            floor: self.acceptor.floor,
            max_slot: self.acceptor.max_slot(),
            acc_ballot: acc.map(|(b, _)| b).unwrap_or(0),
            acc: acc.map(|(_, c)| c),
        }
    }

    /// Handle a phase-1 request from a peer.
    pub fn on_prepare(&mut self, m: CtrlPrepare) -> Outbox {
        let reply = self.promise_for(m);
        // A prepare above our ballot means a rival is electing: if we
        // were leading or electing on a lower ballot, yield.
        if m.ballot > self.bal && self.role != Role::Follower {
            self.step_down();
        }
        vec![(m.from, SwishMsg::CtrlPromise(reply))]
    }

    fn accepted_for(&mut self, m: CtrlAccept) -> CtrlAccepted {
        self.seen_round = self.seen_round.max(ballot_round(m.ballot));
        let granted = m.ballot >= self.acceptor.floor;
        if granted {
            self.acceptor.floor = m.ballot;
            self.acceptor.set_cell(m.slot, m.ballot, m.cmd);
        }
        CtrlAccepted {
            from: self.me,
            ballot: m.ballot,
            slot: m.slot,
            granted,
            floor: self.acceptor.floor,
        }
    }

    /// Handle a phase-2 request from a peer.
    pub fn on_accept(&mut self, m: CtrlAccept) -> Outbox {
        let reply = self.accepted_for(m);
        if m.ballot > self.bal && self.role != Role::Follower {
            self.step_down();
        }
        vec![(m.from, SwishMsg::CtrlAccepted(reply))]
    }

    // ------------------------------------------------------------------
    // Proposer side
    // ------------------------------------------------------------------

    fn note_promise(&mut self, m: CtrlPromise, out: &mut Outbox) {
        if self.role == Role::Follower || m.ballot != self.bal {
            return;
        }
        let quorum = self.quorum();
        let Some(f) = self.inflight.as_mut() else {
            return;
        };
        if f.phase2 || m.slot != f.slot {
            return;
        }
        if !m.granted {
            // Outbid: remember the round and retreat; the election timer
            // decides whether to try again higher.
            self.seen_round = self.seen_round.max(ballot_round(m.floor));
            self.step_down();
            return;
        }
        if let (ab, Some(ac)) = (m.acc_ballot, m.acc) {
            if ab > 0 && f.best.map(|(b, _)| ab > b).unwrap_or(true) {
                f.best = Some((ab, ac));
            }
        }
        if !f.grants.contains(&m.from) {
            f.grants.push(m.from);
        }
        if f.grants.len() < quorum {
            return;
        }
        // Phase 2: push the discovered value if any (completing an
        // interrupted decree), else our own command.
        let (value, mine) = match f.best {
            Some((_, v)) => (v, false),
            None => match self.role {
                Role::Leader => match self.queue.pop_front() {
                    Some(v) => (v, true),
                    None => {
                        self.inflight = None;
                        return;
                    }
                },
                // Candidates fill free slots with their election decree.
                _ => (CtrlCmd::Reassert { leader: self.me }, true),
            },
        };
        let f = self.inflight.as_mut().expect("inflight");
        f.phase2 = true;
        f.value = Some(value);
        f.mine = mine;
        f.grants.clear();
        let slot = f.slot;
        let acc = CtrlAccept {
            from: self.me,
            ballot: self.bal,
            slot,
            cmd: value,
        };
        for p in self.peers() {
            out.push((p, SwishMsg::CtrlAccept(acc)));
        }
        let local = self.accepted_for(acc);
        self.note_accepted(local, out);
    }

    /// Handle a phase-1 reply.
    pub fn on_promise(&mut self, m: CtrlPromise) -> Outbox {
        let mut out = Outbox::new();
        self.note_promise(m, &mut out);
        out
    }

    fn note_accepted(&mut self, m: CtrlAccepted, out: &mut Outbox) {
        if self.role == Role::Follower || m.ballot != self.bal {
            return;
        }
        let quorum = self.quorum();
        let Some(f) = self.inflight.as_mut() else {
            return;
        };
        if !f.phase2 || m.slot != f.slot {
            return;
        }
        if !m.granted {
            self.seen_round = self.seen_round.max(ballot_round(m.floor));
            let mine = f.mine;
            let value = f.value;
            self.step_down();
            // Our own command lost the slot race: it is not abandoned,
            // the next leader (possibly us) re-derives or re-queues it.
            if mine {
                if let Some(v) = value {
                    self.queue.push_front(v);
                }
            }
            return;
        }
        if !f.grants.contains(&m.from) {
            f.grants.push(m.from);
        }
        if f.grants.len() < quorum {
            return;
        }
        let slot = f.slot;
        let value = f.value.expect("phase-2 value");
        self.inflight = None;
        let learn = CtrlLearn {
            from: self.me,
            slot,
            cmd: value,
        };
        for p in self.peers() {
            out.push((p, SwishMsg::CtrlLearn(learn)));
        }
        self.learn(slot, value);
        out.extend(self.pump());
    }

    /// Handle a phase-2 reply.
    pub fn on_accepted(&mut self, m: CtrlAccepted) -> Outbox {
        let mut out = Outbox::new();
        self.note_accepted(m, &mut out);
        out
    }

    /// Handle a chosen-value notification (or a locally decided value).
    pub fn on_learn(&mut self, m: CtrlLearn) -> Outbox {
        // If a rival decided the slot we were driving, our command goes
        // back on the queue (unless it IS the decided value).
        if let Some(f) = &self.inflight {
            if f.slot == m.slot {
                let lost = f.mine && f.value != Some(m.cmd);
                let value = f.value;
                if lost {
                    if let Some(v) = value {
                        self.queue.push_front(v);
                    }
                }
                self.inflight = None;
            }
        }
        self.learn(m.slot, m.cmd);
        self.pump()
    }

    fn learn(&mut self, slot: Slot, cmd: CtrlCmd) {
        let i = slot as usize;
        assert!(i < SLOT_CAP, "consensus log exceeded SLOT_CAP");
        if self.chosen.len() <= i {
            self.chosen.resize(i + 1, None);
        }
        debug_assert!(
            self.chosen[i].is_none() || self.chosen[i] == Some(cmd),
            "two different values chosen at slot {slot}"
        );
        self.chosen[i] = Some(cmd);
        // Advance the committed prefix; leadership follows the log.
        while let Some(c) = self.chosen_at(self.commit) {
            if let CtrlCmd::Reassert { leader } = c {
                if self.leader_hint != Some(leader) {
                    if self.leader_hint.is_some() {
                        self.leader_changes += 1;
                    }
                    self.leader_hint = Some(leader);
                }
                if leader == self.me {
                    self.role = Role::Leader;
                } else if self.role != Role::Follower {
                    self.step_down();
                }
            }
            self.commit += 1;
        }
    }

    /// Learn messages re-playing slots `[from, commit)` for a lagging
    /// follower (lost-`CtrlLearn` recovery, driven off its heartbeat).
    pub fn learns_since(&self, from: Slot) -> Vec<CtrlLearn> {
        (from..self.commit)
            .filter_map(|s| {
                self.chosen_at(s).map(|cmd| CtrlLearn {
                    from: self.me,
                    slot: s,
                    cmd,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group3() -> Vec<NodeId> {
        vec![NodeId(u16::MAX), NodeId(u16::MAX - 1), NodeId(u16::MAX - 2)]
    }

    fn mk(i: usize) -> Consensus {
        let g = group3();
        Consensus::new(g[i], i as u8, g)
    }

    /// Deliver every outstanding message until quiescent. Returns the
    /// number of messages delivered.
    fn run_bus(
        reps: &mut [Consensus],
        mut bus: Outbox,
        drop: impl Fn(usize, &SwishMsg) -> bool,
    ) -> usize {
        let mut delivered = 0;
        let mut n = 0;
        while let Some((to, msg)) = bus.first().cloned() {
            bus.remove(0);
            n += 1;
            assert!(n < 10_000, "bus did not quiesce");
            let Some(i) = reps.iter().position(|r| r.me == to) else {
                continue;
            };
            if drop(i, &msg) {
                continue;
            }
            let rep = &mut reps[i];
            delivered += 1;
            let out = match msg {
                SwishMsg::CtrlPrepare(m) => rep.on_prepare(m),
                SwishMsg::CtrlPromise(m) => rep.on_promise(m),
                SwishMsg::CtrlAccept(m) => rep.on_accept(m),
                SwishMsg::CtrlAccepted(m) => rep.on_accepted(m),
                SwishMsg::CtrlLearn(m) => rep.on_learn(m),
                _ => Vec::new(),
            };
            bus.extend(out);
        }
        delivered
    }

    #[test]
    fn initial_election_elects_replica_zero() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        for r in &reps {
            assert_eq!(r.leader_hint, Some(NodeId(u16::MAX)));
            assert_eq!(r.commit, 1);
            assert_eq!(
                r.chosen_at(0),
                Some(CtrlCmd::Reassert {
                    leader: NodeId(u16::MAX)
                })
            );
        }
        assert_eq!(reps[0].role, Role::Leader);
        assert_eq!(reps[1].role, Role::Follower);
    }

    #[test]
    fn leader_replicates_commands_in_order() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        let out = reps[0].enqueue(CtrlCmd::Bootstrap);
        run_bus(&mut reps, out, |_, _| false);
        let out = reps[0].enqueue(CtrlCmd::Fail { node: NodeId(2) });
        run_bus(&mut reps, out, |_, _| false);
        for r in &reps {
            assert_eq!(r.commit, 3);
            assert_eq!(r.chosen_at(1), Some(CtrlCmd::Bootstrap));
            assert_eq!(r.chosen_at(2), Some(CtrlCmd::Fail { node: NodeId(2) }));
        }
    }

    #[test]
    fn failover_adopts_interrupted_decree() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        // Leader proposes, but every Learn and every reply past the
        // accepts is lost: the value is accepted at a quorum yet chosen
        // nowhere else.
        let out = reps[0].enqueue(CtrlCmd::Fail { node: NodeId(7) });
        run_bus(&mut reps, out, |i, m| {
            i == 0 && matches!(m, SwishMsg::CtrlAccepted(_) | SwishMsg::CtrlLearn(_))
        });
        assert_eq!(
            reps[1].acceptor.cell(1).map(|(_, c)| c),
            Some(CtrlCmd::Fail { node: NodeId(7) })
        );
        assert_eq!(reps[1].commit, 1, "slot 1 not learned yet");
        // Replica 1 takes over (replica 0 silent): it must re-discover
        // and choose the interrupted decree before leading.
        let out = reps[1].start_candidacy();
        run_bus(&mut reps, out, |i, _| i == 0);
        assert_eq!(reps[1].role, Role::Leader);
        assert_eq!(
            reps[1].chosen_at(1),
            Some(CtrlCmd::Fail { node: NodeId(7) })
        );
        assert_eq!(
            reps[1].chosen_at(2),
            Some(CtrlCmd::Reassert {
                leader: NodeId(u16::MAX - 1)
            })
        );
        assert_eq!(
            reps[2].chosen_at(1),
            Some(CtrlCmd::Fail { node: NodeId(7) })
        );
    }

    #[test]
    fn dueling_candidates_converge_on_one_leader() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let mut bus = reps[0].start_candidacy();
        bus.extend(reps[1].start_candidacy());
        run_bus(&mut reps, bus, |_, _| false);
        // One candidacy wins outright; the loser steps down. If both
        // retreated (possible with interleaved nacks), a retry decides.
        let leaders: Vec<_> = reps.iter().filter(|r| r.role == Role::Leader).collect();
        if leaders.is_empty() {
            let out = reps[1].start_candidacy();
            run_bus(&mut reps, out, |_, _| false);
        }
        let hints: Vec<_> = reps.iter().map(|r| r.leader_hint).collect();
        assert!(hints[0].is_some());
        assert!(
            hints.iter().all(|h| *h == hints[0]),
            "split brain: {hints:?}"
        );
        assert_eq!(
            reps.iter().filter(|r| r.role == Role::Leader).count(),
            1,
            "exactly one leader"
        );
    }

    #[test]
    fn lagging_follower_catches_up_via_learns_since() {
        let mut reps = vec![mk(0), mk(1), mk(2)];
        let out = reps[0].start_candidacy();
        run_bus(&mut reps, out, |_, _| false);
        // Replica 2 misses everything after the election.
        let out = reps[0].enqueue(CtrlCmd::Bootstrap);
        run_bus(&mut reps, out, |i, _| i == 2);
        assert_eq!(reps[2].commit, 1);
        // Its heartbeat reports commit=1; the leader replays the gap.
        let learns: Outbox = reps[0]
            .learns_since(1)
            .into_iter()
            .map(|l| (NodeId(u16::MAX - 2), SwishMsg::CtrlLearn(l)))
            .collect();
        run_bus(&mut reps, learns, |_, _| false);
        assert_eq!(reps[2].commit, 2);
        assert_eq!(reps[2].chosen_at(1), Some(CtrlCmd::Bootstrap));
    }
}

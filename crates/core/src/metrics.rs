//! Protocol metrics: counters and latency samples collected per switch,
//! aggregated by the deployment for the experiment harness.

use swishmem_simnet::SimDuration;
use swishmem_wire::swish::{Key, RegId};

/// A sample collector with percentile summaries.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record a duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
    }

    /// Record a raw nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.samples.push(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Percentile (0.0–1.0), nearest-rank; 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Maximum sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Drop all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

/// Data-plane-side protocol counters (kept by the SwiShmem program).
#[derive(Debug, Clone, Default)]
pub struct DpMetrics {
    /// Shared-register read operations issued by the NF.
    pub nf_reads: u64,
    /// Shared-register write operations issued by the NF.
    pub nf_writes: u64,
    /// Reads served from the local replica.
    pub reads_local: u64,
    /// Reads redirected to the tail because a pending bit was set (SRO).
    pub reads_forwarded: u64,
    /// Forwarded reads this switch served as tail.
    pub tail_reads_served: u64,
    /// EWO writes applied locally.
    pub ewo_writes: u64,
    /// SRO/ERO write jobs punted to the control plane.
    pub sro_jobs_punted: u64,
    /// Chain write requests applied in the data plane.
    pub chain_applies: u64,
    /// Chain write requests rejected as stale/duplicate.
    pub chain_stale: u64,
    /// Pending-clear messages applied.
    pub clears_applied: u64,
    /// EWO entries merged from received sync updates.
    pub merge_entries: u64,
    /// EWO entries that actually changed state on merge.
    pub merge_applied: u64,
    /// Periodic sync packets emitted.
    pub sync_packets: u64,
    /// Eager mirror packets emitted.
    pub mirror_packets: u64,
    /// Snapshot entries applied during catch-up.
    pub snapshot_applied: u64,
    /// Snapshot entries rejected by the sequence guard.
    pub snapshot_stale: u64,
    /// `Clear` messages re-multicast by the tail's pending sweep.
    pub pending_sweep_clears: u64,
}

/// Control-plane-side metrics (kept by the SwiShmem control app).
#[derive(Debug, Clone, Default)]
pub struct CpMetrics {
    /// Write jobs accepted from the pipeline.
    pub jobs_started: u64,
    /// Write jobs fully acknowledged (output packet released).
    pub jobs_completed: u64,
    /// Write jobs abandoned after `max_retries`.
    pub jobs_failed: u64,
    /// Write request (re)transmissions.
    pub write_sends: u64,
    /// Retransmissions only.
    pub retries: u64,
    /// Latency from job punt to output-packet release.
    pub write_latency: Histogram,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// Configuration epochs adopted.
    pub epochs_adopted: u64,
    /// Snapshot chunks streamed (as recovery source).
    pub snapshot_chunks_sent: u64,
    /// Write jobs shed because the job buffer was full (overflow policy:
    /// shed + count, never OOM).
    pub jobs_shed: u64,
    /// Individual writes abandoned after retry exhaustion.
    pub writes_exhausted: u64,
    /// Buffered output packets dropped explicitly (job shed or failed)
    /// instead of leaking in the buffer.
    pub packets_shed: u64,
    /// Orphaned write states garbage-collected on epoch change.
    pub writes_gced: u64,
    /// Queued snapshot chunks dropped on epoch change because the target
    /// left the configuration.
    pub snap_chunks_gced: u64,
    /// `(reg, key)` of writes abandoned after retry exhaustion. The
    /// convergence oracle excludes these groups: an abandoned write may
    /// legitimately leave a chain prefix ahead of the tail forever.
    pub abandoned_writes: Vec<(RegId, Key)>,
}

/// Combined per-switch metrics snapshot.
#[derive(Debug, Clone, Default)]
pub struct SwitchMetrics {
    /// Data-plane counters.
    pub dp: DpMetrics,
    /// Control-plane counters.
    pub cp: CpMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record_ns(i * 10);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_ns(0.5), 500);
        assert_eq!(h.percentile_ns(0.99), 990);
        assert_eq!(h.percentile_ns(1.0), 1000);
        assert_eq!(h.max_ns(), 1000);
        assert!((h.mean_ns() - 505.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(SimDuration::micros(1));
        let mut b = Histogram::new();
        b.record(SimDuration::micros(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 3000);
    }
}

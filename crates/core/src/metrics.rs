//! Protocol metrics: counters and latency samples collected per switch,
//! aggregated by the deployment for the experiment harness.

use std::cell::RefCell;
use swishmem_simnet::SimDuration;
use swishmem_wire::swish::{Key, RegId};

/// One-pass percentile summary of a [`Histogram`] (single sort).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: f64,
    /// Median (nearest-rank).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Maximum sample.
    pub max_ns: u64,
}

/// A sample collector with percentile summaries.
///
/// Percentile queries sort lazily: the sorted view is computed once and
/// cached until the next mutation, so bench tables asking for
/// p50/p90/p99/max in a row pay for one sort, not four.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    /// Sorted copy of `samples`; `None` after any mutation.
    sorted: RefCell<Option<Vec<u64>>>,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record a duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.record_ns(d.as_nanos());
    }

    /// Record a raw nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.samples.push(ns);
        *self.sorted.get_mut() = None;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Raw samples in recording order (the trace-explain tool reconciles
    /// these one-for-one against span-derived latencies).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Run `f` over the lazily-sorted sample view, (re)sorting only when
    /// a mutation invalidated the cache.
    fn with_sorted<R>(&self, f: impl FnOnce(&[u64]) -> R) -> R {
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut s = self.samples.clone();
            s.sort_unstable();
            s
        });
        f(sorted)
    }

    /// Percentile (0.0–1.0), nearest-rank; 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        self.with_sorted(|sorted| {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        })
    }

    /// Maximum sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// The standard report row — count, mean, p50/p90/p99, max — computed
    /// off one sorted view.
    pub fn summary(&self) -> HistogramSummary {
        if self.samples.is_empty() {
            return HistogramSummary::default();
        }
        self.with_sorted(|sorted| {
            let rank = |p: f64| {
                let r = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[r - 1]
            };
            HistogramSummary {
                count: sorted.len(),
                mean_ns: self.mean_ns(),
                p50_ns: rank(0.5),
                p90_ns: rank(0.9),
                p99_ns: rank(0.99),
                max_ns: sorted[sorted.len() - 1],
            }
        })
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        *self.sorted.get_mut() = None;
    }

    /// Drop all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        *self.sorted.get_mut() = None;
    }
}

/// Data-plane-side protocol counters (kept by the SwiShmem program).
#[derive(Debug, Clone, Default)]
pub struct DpMetrics {
    /// Shared-register read operations issued by the NF.
    pub nf_reads: u64,
    /// Shared-register write operations issued by the NF.
    pub nf_writes: u64,
    /// Reads served from the local replica.
    pub reads_local: u64,
    /// Reads redirected to the tail because a pending bit was set (SRO).
    pub reads_forwarded: u64,
    /// Forwarded reads this switch served as tail.
    pub tail_reads_served: u64,
    /// EWO writes applied locally.
    pub ewo_writes: u64,
    /// SRO/ERO write jobs punted to the control plane.
    pub sro_jobs_punted: u64,
    /// Chain write requests applied in the data plane.
    pub chain_applies: u64,
    /// Chain write requests rejected as stale/duplicate.
    pub chain_stale: u64,
    /// Pending-clear messages applied.
    pub clears_applied: u64,
    /// EWO entries merged from received sync updates.
    pub merge_entries: u64,
    /// EWO entries that actually changed state on merge.
    pub merge_applied: u64,
    /// Periodic sync packets emitted.
    pub sync_packets: u64,
    /// Eager mirror packets emitted.
    pub mirror_packets: u64,
    /// Snapshot entries applied during catch-up.
    pub snapshot_applied: u64,
    /// Snapshot entries rejected by the sequence guard.
    pub snapshot_stale: u64,
    /// `Clear` messages re-multicast by the tail's pending sweep.
    pub pending_sweep_clears: u64,
    /// Partitioned writes dropped at a non-owner (stale routing table at
    /// the writer; its CP retry re-routes via the updated table).
    pub part_stale: u64,
    /// Migration chunk entries applied (destination side).
    pub migrate_applied: u64,
    /// Migration chunk entries rejected by the per-key sequence guard.
    pub migrate_stale: u64,
}

/// Control-plane-side metrics (kept by the SwiShmem control app).
#[derive(Debug, Clone, Default)]
pub struct CpMetrics {
    /// Write jobs accepted from the pipeline.
    pub jobs_started: u64,
    /// Write jobs fully acknowledged (output packet released).
    pub jobs_completed: u64,
    /// Write jobs abandoned after `max_retries`.
    pub jobs_failed: u64,
    /// Write request (re)transmissions.
    pub write_sends: u64,
    /// Retransmissions only.
    pub retries: u64,
    /// Latency from NF ingress (packet arrival that staged the writes)
    /// to output-packet release — punt and CP queueing delay included,
    /// matching the end-to-end span a writer observes.
    pub write_latency: Histogram,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// Configuration epochs adopted.
    pub epochs_adopted: u64,
    /// Snapshot chunks streamed (as recovery source).
    pub snapshot_chunks_sent: u64,
    /// Write jobs shed because the job buffer was full (overflow policy:
    /// shed + count, never OOM).
    pub jobs_shed: u64,
    /// Individual writes abandoned after retry exhaustion.
    pub writes_exhausted: u64,
    /// Buffered output packets dropped explicitly (job shed or failed)
    /// instead of leaking in the buffer.
    pub packets_shed: u64,
    /// Orphaned write states garbage-collected on epoch change.
    pub writes_gced: u64,
    /// Queued snapshot chunks dropped on epoch change because the target
    /// left the configuration.
    pub snap_chunks_gced: u64,
    /// Distinct `(reg, key)` of writes abandoned after retry exhaustion.
    /// The convergence oracle excludes these groups: an abandoned write
    /// may legitimately leave a chain prefix ahead of the tail forever.
    /// Deduplicated — bounded by the keyspace, not the abandon count;
    /// [`CpMetrics::abandoned_total`] counts every abandon event.
    pub abandoned_writes: Vec<(RegId, Key)>,
    /// Total abandon events (monotonic; one per write given up, including
    /// repeats on a `(reg, key)` already listed in `abandoned_writes`).
    pub abandoned_total: u64,
    /// Migration transfer chunks streamed (as migration source).
    pub migrate_chunks_sent: u64,
    /// `MigrateDone` reports sent to the controller (as destination).
    pub migrate_done_sent: u64,
    /// Per-range load reports sent to the controller planner.
    pub load_reports_sent: u64,
}

impl CpMetrics {
    /// Record one abandoned write: bump the monotonic counter and add the
    /// `(reg, key)` to the oracle-exclusion set if not already present.
    pub fn record_abandoned(&mut self, reg: RegId, key: Key) {
        self.abandoned_total += 1;
        if !self.abandoned_writes.contains(&(reg, key)) {
            self.abandoned_writes.push((reg, key));
        }
    }
}

/// Combined per-switch metrics snapshot.
#[derive(Debug, Clone, Default)]
pub struct SwitchMetrics {
    /// Data-plane counters.
    pub dp: DpMetrics,
    /// Control-plane counters.
    pub cp: CpMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record_ns(i * 10);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_ns(0.5), 500);
        assert_eq!(h.percentile_ns(0.99), 990);
        assert_eq!(h.percentile_ns(1.0), 1000);
        assert_eq!(h.max_ns(), 1000);
        assert!((h.mean_ns() - 505.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(SimDuration::micros(1));
        let mut b = Histogram::new();
        b.record(SimDuration::micros(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 3000);
    }

    /// The lazy sort cache must be invalidated by every mutation path:
    /// a percentile read after record / merge / clear sees fresh data.
    #[test]
    fn sorted_cache_invalidates_on_mutation() {
        let mut h = Histogram::new();
        h.record_ns(100);
        assert_eq!(h.percentile_ns(1.0), 100); // populates the cache
        h.record_ns(900);
        assert_eq!(h.percentile_ns(1.0), 900);
        let mut other = Histogram::new();
        other.record_ns(5000);
        h.merge(&other);
        assert_eq!(h.percentile_ns(1.0), 5000);
        h.clear();
        assert_eq!(h.percentile_ns(1.0), 0);
    }

    #[test]
    fn summary_matches_individual_queries() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record_ns(i * 10);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, h.percentile_ns(0.5));
        assert_eq!(s.p90_ns, h.percentile_ns(0.9));
        assert_eq!(s.p99_ns, h.percentile_ns(0.99));
        assert_eq!(s.max_ns, h.max_ns());
        assert!((s.mean_ns - h.mean_ns()).abs() < 1e-9);
        assert_eq!(Histogram::new().summary(), HistogramSummary::default());
    }

    /// Abandoning the same group many times must not grow the oracle
    /// exclusion list without bound; the monotonic counter still counts
    /// every event.
    #[test]
    fn abandoned_writes_dedupe_but_count_all() {
        let mut m = CpMetrics::default();
        for _ in 0..5 {
            m.record_abandoned(1, 7);
        }
        m.record_abandoned(2, 7);
        assert_eq!(m.abandoned_writes, vec![(1, 7), (2, 7)]);
        assert_eq!(m.abandoned_total, 6);
    }
}

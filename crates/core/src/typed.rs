//! Typed register handles: thin, zero-cost wrappers over
//! [`SharedState`] that make NF code read like
//! the P4 it models and prevent class-mismatched operations at the call
//! site (e.g. `Set` on a counter).
//!
//! ```
//! use swishmem::prelude::*;
//! use swishmem::typed::{SharedCounter, SharedValue};
//!
//! struct MyNf {
//!     conns: SharedValue,    // SRO register 0
//!     hits: SharedCounter,   // EWO register 1
//! }
//!
//! impl NfApp for MyNf {
//!     fn process(&mut self, pkt: &DataPacket, _in: NodeId,
//!                st: &mut dyn swishmem::SharedState) -> NfDecision {
//!         self.hits.add(st, 0, 1);
//!         if self.conns.read(st, 5) == 0 {
//!             self.conns.write(st, 5, 1);
//!         }
//!         NfDecision::Forward { dst: NodeId(HOST_BASE), pkt: *pkt }
//!     }
//! }
//!
//! let mut dep = DeploymentBuilder::new(2)
//!     .register(RegisterSpec::sro(0, "conns", 16))
//!     .register(RegisterSpec::ewo_counter(1, "hits", 16))
//!     .build(|_| Box::new(MyNf {
//!         conns: swishmem::typed::SharedValue::new(0),
//!         hits: swishmem::typed::SharedCounter::new(1),
//!     }));
//! dep.settle();
//! ```

use crate::api::SharedState;
use swishmem_wire::swish::{Key, RegId};

/// A read/write shared value (SRO, ERO, or EWO-LWW registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedValue {
    reg: RegId,
}

impl SharedValue {
    /// Bind to register `reg`.
    pub const fn new(reg: RegId) -> SharedValue {
        SharedValue { reg }
    }

    /// The bound register id.
    pub fn reg(&self) -> RegId {
        self.reg
    }

    /// Read `self[key]`.
    pub fn read(&self, st: &mut dyn SharedState, key: Key) -> u64 {
        st.read(self.reg, key)
    }

    /// Overwrite `self[key]`.
    pub fn write(&self, st: &mut dyn SharedState, key: Key, value: u64) {
        st.write(self.reg, key, value);
    }

    /// Read, and write `value` only if the cell is currently zero
    /// (the allocate-if-absent idiom of NAT/LB tables). Returns the value
    /// now logically in the cell.
    pub fn read_or_init(&self, st: &mut dyn SharedState, key: Key, value: u64) -> u64 {
        let cur = st.read(self.reg, key);
        if cur == 0 {
            st.write(self.reg, key, value);
            value
        } else {
            cur
        }
    }
}

/// An add-only shared counter (EWO G-counter / windowed registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedCounter {
    reg: RegId,
}

impl SharedCounter {
    /// Bind to register `reg`.
    pub const fn new(reg: RegId) -> SharedCounter {
        SharedCounter { reg }
    }

    /// The bound register id.
    pub fn reg(&self) -> RegId {
        self.reg
    }

    /// Add `delta` (non-negative) to `self[key]`.
    pub fn add(&self, st: &mut dyn SharedState, key: Key, delta: u64) {
        st.add(self.reg, key, delta as i64);
    }

    /// Read the global (all-replica) count of `self[key]`.
    pub fn read(&self, st: &mut dyn SharedState, key: Key) -> u64 {
        st.read(self.reg, key)
    }

    /// Add then read in one step (the per-packet meter idiom).
    pub fn add_and_read(&self, st: &mut dyn SharedState, key: Key, delta: u64) -> u64 {
        st.add(self.reg, key, delta as i64);
        st.read(self.reg, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RegisterSpec, SwishConfig};
    use crate::layer::nfctx::NfCtx;
    use crate::layer::Handles;
    use swishmem_pisa::{DataPlane, DpView};
    use swishmem_simnet::SimTime;
    use swishmem_wire::NodeId;

    fn with_ctx<R>(f: impl FnOnce(&mut NfCtx<'_, '_>) -> R) -> R {
        let mut dp = DataPlane::standard();
        let cfg = SwishConfig::default();
        let specs = vec![
            RegisterSpec::sro(0, "v", 16),
            RegisterSpec::ewo_counter(1, "c", 16),
        ];
        let h = Handles::build(&mut dp, &specs, &cfg, 2).unwrap();
        let mut view = DpView::new(&mut dp, SimTime::ZERO);
        let mut ctx = NfCtx {
            dp: &mut view,
            handles: &h,
            cfg: &cfg,
            me: NodeId(0),
            staged: vec![],
            need_tail: false,
            read_ops: 0,
        };
        f(&mut ctx)
    }

    #[test]
    fn value_read_or_init_allocates_once() {
        with_ctx(|st| {
            let v = SharedValue::new(0);
            assert_eq!(v.read_or_init(st, 3, 42), 42);
            assert_eq!(v.read(st, 3), 42);
            // Second call sees the existing value, does not overwrite.
            assert_eq!(v.read_or_init(st, 3, 99), 42);
        });
    }

    #[test]
    fn counter_add_and_read() {
        with_ctx(|st| {
            let c = SharedCounter::new(1);
            assert_eq!(c.add_and_read(st, 0, 5), 5);
            c.add(st, 0, 2);
            assert_eq!(c.read(st, 0), 7);
        });
    }
}

//! Version numbers for last-writer-wins merging (§6.2).
//!
//! "Unique version numbers can be obtained by using a switch ID as a tie
//! breaker in addition to a timestamp attached to each write request."
//! A version packs a 54-bit timestamp (nanoseconds, or a Lamport counter)
//! with a 10-bit switch id: `version = (stamp << 10) | switch_id`.

use crate::config::ClockMode;
use swishmem_simnet::SimTime;
use swishmem_wire::NodeId;

/// Bits reserved for the switch-id tiebreak.
pub const ID_BITS: u32 = 10;

/// Pack a timestamp and switch id into a totally-ordered version.
#[inline]
pub fn pack(stamp: u64, id: NodeId) -> u64 {
    debug_assert!(
        u64::from(id.0) < (1 << ID_BITS),
        "switch id exceeds tiebreak field"
    );
    (stamp << ID_BITS) | u64::from(id.0)
}

/// Unpack a version into `(stamp, switch_id)`.
#[inline]
pub fn unpack(version: u64) -> (u64, NodeId) {
    (
        version >> ID_BITS,
        NodeId((version & ((1 << ID_BITS) - 1)) as u16),
    )
}

/// A switch-local clock producing version stamps.
///
/// * In [`ClockMode::Synced`] mode the stamp is simulated time plus this
///   switch's fixed skew — the paper's in-switch synchronized clock (ref. \[18\]).
/// * In [`ClockMode::Lamport`] mode the stamp is a logical counter,
///   advanced past every observed remote stamp.
#[derive(Debug, Clone)]
pub struct SwitchClock {
    id: NodeId,
    mode: ClockMode,
    /// Signed skew applied in synced mode.
    skew_ns: i64,
    /// Logical counter for Lamport mode; also enforces strict monotonicity
    /// in synced mode (two stamps in the same nanosecond).
    counter: u64,
}

impl SwitchClock {
    /// Create a clock for switch `id` with the given mode and skew.
    pub fn new(id: NodeId, mode: ClockMode, skew_ns: i64) -> SwitchClock {
        SwitchClock {
            id,
            mode,
            skew_ns,
            counter: 0,
        }
    }

    /// Produce the next version for a local write at simulated time `now`.
    pub fn next_version(&mut self, now: SimTime) -> u64 {
        let stamp = match self.mode {
            ClockMode::Synced { .. } => {
                let t = (now.nanos() as i64 + self.skew_ns).max(0) as u64;
                // Strictly monotonic even within one tick.
                self.counter = self.counter.max(t).max(self.counter + 1);
                self.counter
            }
            ClockMode::Lamport => {
                self.counter += 1;
                self.counter
            }
        };
        pack(stamp, self.id)
    }

    /// Observe a remote version. Only Lamport clocks advance past what
    /// they see; a synced real-time clock deliberately does NOT (the
    /// paper's timestamps come from the clock itself — making it hybrid
    /// would mask exactly the skew anomalies E15 measures).
    pub fn observe(&mut self, version: u64) {
        if self.mode == ClockMode::Lamport {
            let (stamp, _) = unpack(version);
            if stamp > self.counter {
                self.counter = stamp;
            }
        }
    }

    /// The switch id baked into versions from this clock.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Reset (failure wipes the clock; synced mode re-derives from time,
    /// Lamport restarts — stale higher versions from the old incarnation
    /// are re-learned via `observe`).
    pub fn reset(&mut self) {
        self.counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swishmem_simnet::SimDuration;

    #[test]
    fn pack_unpack_round_trip() {
        let v = pack(123456789, NodeId(37));
        assert_eq!(unpack(v), (123456789, NodeId(37)));
    }

    #[test]
    fn versions_order_by_stamp_then_id() {
        let a = pack(100, NodeId(5));
        let b = pack(100, NodeId(6));
        let c = pack(101, NodeId(0));
        assert!(a < b); // same stamp: higher id wins ties
        assert!(b < c); // higher stamp always wins
    }

    #[test]
    fn synced_clock_tracks_time_with_skew() {
        let mut c = SwitchClock::new(NodeId(1), ClockMode::Synced { max_skew_ns: 100 }, 40);
        let v1 = c.next_version(SimTime(1000));
        assert_eq!(unpack(v1).0, 1040);
        // Same instant: strictly monotonic.
        let v2 = c.next_version(SimTime(1000));
        assert!(v2 > v1);
        // Negative skew clamps at zero, never panics.
        let mut c2 = SwitchClock::new(NodeId(2), ClockMode::Synced { max_skew_ns: 100 }, -5000);
        let v3 = c2.next_version(SimTime(1000));
        assert!(unpack(v3).0 >= 1);
    }

    #[test]
    fn lamport_advances_past_observed() {
        let mut c = SwitchClock::new(NodeId(1), ClockMode::Lamport, 0);
        let v1 = c.next_version(SimTime(0));
        c.observe(pack(50, NodeId(2)));
        let v2 = c.next_version(SimTime(0));
        assert!(unpack(v2).0 > 50);
        assert!(v2 > v1);
    }

    #[test]
    fn distinct_switches_never_produce_equal_versions() {
        let mut a = SwitchClock::new(NodeId(1), ClockMode::Synced { max_skew_ns: 0 }, 0);
        let mut b = SwitchClock::new(NodeId(2), ClockMode::Synced { max_skew_ns: 0 }, 0);
        let t = SimTime::ZERO + SimDuration::micros(5);
        assert_ne!(a.next_version(t), b.next_version(t));
    }
}

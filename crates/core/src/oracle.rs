//! Online consistency oracles for fault-plane runs.
//!
//! An [`OracleSuite`] attaches to a [`Deployment`] and checks invariants
//! *while the simulation runs*: a wire-level observer (fed by the engine's
//! observer hooks) watches every delivered protocol packet, and a periodic
//! poll inspects switch register state and the controller's event log. The
//! first violation aborts the run with enough context (seed + schedule,
//! printed by the caller) to replay it deterministically.
//!
//! ## Soundness notes
//!
//! Faults make many "obvious" invariants false; each oracle here is scoped
//! to what actually holds under loss, reordering, and crashes:
//!
//! * **No invented values** — every *sequenced* chain write (`seq > 0`)
//!   must carry a `Set` value previously requested by some writer
//!   (`seq == 0` requests are all observable on the wire, including the
//!   head writing to itself over its loopback link). Keys that ever see an
//!   `Add` op are tainted and skipped: the head legally rewrites `Add`
//!   into a derived `Set`. The final tail state of untainted keys must
//!   likewise be a requested value or the initial `0`.
//! * **Epoch monotonicity** — checked on *adopted* state (each switch
//!   CP's current view), not on wire delivery order: jitter legally
//!   reorders configuration messages in flight, but a CP must never adopt
//!   a smaller epoch. Controller-issued epochs are strictly increasing.
//!   Baselines reset when a switch crashes (fresh state restarts at 0).
//! * **Per-slot sequence monotonicity** — a chain member's stored
//!   sequence numbers never regress *between crashes of that switch*.
//! * **Tail commit monotonicity** — the tail's committed sequence per
//!   slot never regresses *while the tail identity is stable*; baselines
//!   reset on reconfiguration (a freshly promoted tail is a different
//!   authority).
//! * **No stuck pending bits** — after the fault horizon (`quiesce_at`),
//!   a pending bit whose sequence is already committed at the tail must
//!   clear within `pending_bound` (the tail's pending sweep re-multicasts
//!   lost clears). Pending bits with `seq >` the tail's commit belong to
//!   abandoned in-flight writes and MUST stay set — they are not flagged.
//! * **Bounded divergence** — once faults cease and a grace period
//!   passes, all live chain members agree with the tail (SRO/ERO) and all
//!   live replicas agree pairwise (EWO). Key groups named in any CP's
//!   `abandoned_writes` are excluded: an abandoned write may legitimately
//!   leave a chain prefix ahead of the tail forever.
//! * **Reconfiguration invariants** (partitioned registers) — the
//!   controller's master range table covers the key space with no
//!   overlap at every poll; per-range epochs installed at each switch
//!   never regress (crash wipes reset the baseline); the per-range
//!   epochs the controller issues across `MigrateBegin`/`OwnershipCommit`
//!   strictly increase; and post-quiesce every switch's installed table
//!   matches full coverage. Convergence for a partitioned range requires
//!   all live owners to agree and the primary's value to be requested.
//!   Ranges whose *entire* owner set was simultaneously failed are
//!   tainted permanently — their state legally died with the owners
//!   (sole-owner crash, or promote-on-source-death during a transfer).
//! * **Journal SLO budgets** — when a control-plane flight recorder is
//!   attached ([`OracleSuite::attach_journal`]), three online monitors
//!   run over the decoded journal: every reconstructed failover must
//!   close within the failover-gap budget, every migration's dual-owner
//!   window (including still-open ones) must stay under its budget, and
//!   election churn (campaign starts per sliding window) must stay
//!   under the churn budget. The first violation of *any* oracle is
//!   enriched with the last journal events before it
//!   ([`OracleSuite::violation_context`]).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

use swishmem_simnet::{JournalHandle, NetEvent, NetObserver, ObserverHandle, SimDuration, SimTime};
use swishmem_wire::swish::{Key, RegId, WriteOp};
use swishmem_wire::{NodeId, PacketBody, SwishMsg};

use crate::config::{RegisterClass, SwishConfig};
use crate::deployment::Deployment;
use crate::telemetry::journal::{CtrlEvent, Journal};

/// How many journal entries before a violation are kept as context.
pub const VIOLATION_CONTEXT_EVENTS: usize = 12;

/// Oracle tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// How often the polling oracles inspect switch state.
    pub poll_interval: SimDuration,
    /// How long a committed-but-pending bit may persist after
    /// `quiesce_at` before it counts as stuck. Must comfortably exceed
    /// the tail sweep period plus delivery latency.
    pub pending_bound: SimDuration,
    /// Time after which the fault schedule is guaranteed quiet; the
    /// pending-bit and convergence oracles only arm from here.
    pub quiesce_at: SimTime,
    /// Extra settling time after `quiesce_at` before the convergence
    /// oracle arms (covers reconfiguration, catch-up, and EWO sync).
    pub convergence_grace: SimDuration,
}

impl OracleConfig {
    /// Defaults for a schedule that is quiet from `quiesce_at` on.
    pub fn new(quiesce_at: SimTime) -> OracleConfig {
        OracleConfig {
            poll_interval: SimDuration::micros(500),
            pending_bound: SimDuration::millis(25),
            quiesce_at,
            convergence_grace: SimDuration::millis(150),
        }
    }
}

/// Latency/stability budgets enforced by the journal SLO monitors
/// (active only when a flight recorder is attached via
/// [`OracleSuite::attach_journal`]). Defaults are generous enough that
/// healthy runs never trip them; diagnosis runs tighten them to turn
/// "the failover felt slow" into a typed, replayable violation.
#[derive(Debug, Clone, Copy)]
pub struct SloBudgets {
    /// Max reconstructed failover gap: old leader's last beacon (or
    /// suspicion, for bootstrap elections) to the election decree apply.
    pub failover_gap: SimDuration,
    /// Max dual-owner window per migration (flip to commit); still-open
    /// windows are measured against the poll time.
    pub dual_owner_window: SimDuration,
    /// Sliding window for the election-churn budget.
    pub election_window: SimDuration,
    /// Max campaign starts allowed inside one `election_window`.
    pub max_elections_per_window: u32,
}

impl Default for SloBudgets {
    fn default() -> SloBudgets {
        SloBudgets {
            failover_gap: SimDuration::millis(100),
            dual_owner_window: SimDuration::millis(50),
            election_window: SimDuration::millis(200),
            max_elections_per_window: 8,
        }
    }
}

/// A detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Simulation time of detection.
    pub at: SimTime,
    /// What went wrong.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} ns] {}", self.at.nanos(), self.kind)
    }
}

/// The invariant classes the suite checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A value appeared that no writer requested.
    InventedValue {
        /// Register.
        reg: RegId,
        /// Key.
        key: Key,
        /// The unexplained value.
        value: u64,
        /// Where it was seen: `"wire"` (forwarded write) or `"state"`
        /// (final tail value).
        stage: &'static str,
    },
    /// A chain member's stored per-slot sequence number went backwards
    /// without an intervening crash.
    SeqRegressed {
        /// The switch.
        switch: NodeId,
        /// Register.
        reg: RegId,
        /// Group slot.
        slot: u32,
        /// Previously observed sequence.
        from: u64,
        /// Newly observed (smaller) sequence.
        to: u64,
    },
    /// A switch CP adopted a smaller epoch than it already had.
    EpochRegressed {
        /// The switch.
        switch: NodeId,
        /// Previously adopted epoch.
        from: u32,
        /// Newly adopted (smaller) epoch.
        to: u32,
    },
    /// The controller issued a non-increasing epoch.
    ControllerEpochNotIncreasing {
        /// Epoch of the earlier event.
        from: u32,
        /// Epoch of the later event.
        to: u32,
    },
    /// The tail's committed sequence regressed while the tail identity
    /// was unchanged.
    CommitRegressed {
        /// The stable tail.
        tail: NodeId,
        /// Register.
        reg: RegId,
        /// Group slot.
        slot: u32,
        /// Previously committed sequence.
        from: u64,
        /// Newly observed (smaller) sequence.
        to: u64,
    },
    /// A pending bit for an already-committed write outlived the bound
    /// after the fault horizon.
    PendingStuck {
        /// The switch holding the bit.
        switch: NodeId,
        /// Register.
        reg: RegId,
        /// Group slot.
        slot: u32,
        /// The pending sequence (≤ tail commit, so it should clear).
        seq: u64,
        /// When the suite first saw this exact pending sequence.
        since: SimTime,
    },
    /// A switch's installed per-range epoch went backwards without an
    /// intervening crash of that switch.
    RangeEpochRegressed {
        /// The switch.
        switch: NodeId,
        /// Register.
        reg: RegId,
        /// Range start key.
        start: Key,
        /// Previously installed per-range epoch.
        from: u32,
        /// Newly installed (smaller) epoch.
        to: u32,
    },
    /// A range table no longer covers the key space exactly (gap or
    /// overlap).
    RangeCoverageBroken {
        /// Register.
        reg: RegId,
        /// The switch holding the broken table; `None` = the
        /// controller's master table.
        switch: Option<NodeId>,
        /// First key at which coverage breaks.
        key: Key,
        /// `"gap"` or `"overlap"`.
        detail: &'static str,
    },
    /// The controller issued a non-increasing per-range epoch in its
    /// reconfiguration log.
    ReconfigEpochNotIncreasing {
        /// Register.
        reg: RegId,
        /// Range start key.
        start: Key,
        /// Epoch of the earlier Begin/Commit.
        from: u32,
        /// Epoch of the later (not larger) Begin/Commit.
        to: u32,
    },
    /// Two controller replicas committed different decisions under the
    /// same issued per-range epoch — the epoch was not chosen by one
    /// consensus decree (split-brain evidence; DESIGN.md §12).
    ReplicaEpochConflict {
        /// Register.
        reg: RegId,
        /// Range start key.
        start: Key,
        /// The doubly-issued per-range epoch.
        epoch: u32,
        /// First replica.
        a: NodeId,
        /// Conflicting replica.
        b: NodeId,
    },
    /// Two controller replicas hold committed range tables that disagree
    /// on the owner set at the same per-range epoch.
    RangeSplitBrain {
        /// Register.
        reg: RegId,
        /// Range start key.
        start: Key,
        /// The epoch both tables claim.
        epoch: u32,
        /// First replica.
        a: NodeId,
        /// Conflicting replica.
        b: NodeId,
    },
    /// Two live controller replicas both act as leader at one poll.
    DualLeader {
        /// First leader.
        a: NodeId,
        /// Second leader.
        b: NodeId,
    },
    /// A controller replica's consensus log outgrew its register window:
    /// compaction failed to keep up (or was disabled). The run degrades
    /// (the replica stops choosing new slots) instead of panicking; the
    /// harness attaches the seed and fault schedule for replay.
    ConsensusLogOverflow {
        /// The overflowing replica.
        replica: NodeId,
        /// The slot that did not fit.
        slot: u64,
        /// The window base at the time.
        base: u64,
    },
    /// A directory reply served an owner set that was not authoritative
    /// at any instant within the staleness bound before delivery — a
    /// follower read escaped its leader lease.
    StaleDirectoryRead {
        /// The replica that served the reply.
        replica: NodeId,
        /// Register.
        reg: RegId,
        /// Key.
        key: Key,
        /// The owner set served.
        served: Vec<NodeId>,
        /// The staleness bound the reply violated, in nanoseconds.
        bound_ns: u64,
    },
    /// A reconstructed failover exceeded its SLO budget: the gap from
    /// the old leader's last beacon to the new leader's election decree.
    FailoverGapExceeded {
        /// The new leader.
        leader: NodeId,
        /// Fabric epoch of the election decree.
        epoch: u32,
        /// The measured gap, in nanoseconds.
        gap_ns: u64,
        /// The budget it broke, in nanoseconds.
        budget_ns: u64,
    },
    /// A migration's dual-owner window (flip to commit, or flip to the
    /// current poll when still open) exceeded its SLO budget.
    DualOwnerWindowExceeded {
        /// Register.
        reg: RegId,
        /// Range start key.
        start: Key,
        /// The measured window, in nanoseconds.
        window_ns: u64,
        /// The budget it broke, in nanoseconds.
        budget_ns: u64,
    },
    /// More campaign starts inside one sliding window than the churn
    /// budget allows — the replica group is thrashing on elections.
    ElectionChurn {
        /// Campaign starts observed in the window.
        elections: u32,
        /// The sliding window, in nanoseconds.
        window_ns: u64,
        /// The budget it broke.
        budget: u32,
    },
    /// A replayed TCP flow's per-flow sequence number went backwards at
    /// the ingress without an intervening SYN (a corrupt or reordered
    /// trace feed — replayed inputs must be exactly the recorded stream).
    ReplayFlowSeqRegressed {
        /// The flow.
        flow: swishmem_wire::FlowKey,
        /// Previously ingested sequence.
        from: u32,
        /// Newly ingested (not larger) sequence.
        to: u32,
    },
    /// The ingress stream carried the exact same record of a flow twice
    /// in a row (a duplicated trace record — replay must not amplify).
    ReplayDuplicateRecord {
        /// The flow.
        flow: swishmem_wire::FlowKey,
        /// The duplicated per-flow sequence.
        seq: u32,
    },
    /// Replicas still disagree after the fault horizon plus grace.
    Diverged {
        /// Register.
        reg: RegId,
        /// Key.
        key: Key,
        /// Reference replica.
        a: NodeId,
        /// Reference value.
        va: u64,
        /// Disagreeing replica.
        b: NodeId,
        /// Its value.
        vb: u64,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::InventedValue {
                reg,
                key,
                value,
                stage,
            } => write!(
                f,
                "invented value: reg {reg} key {key} = {value} never requested ({stage})"
            ),
            ViolationKind::SeqRegressed {
                switch,
                reg,
                slot,
                from,
                to,
            } => write!(
                f,
                "seq regression: {switch} reg {reg} slot {slot}: {from} -> {to}"
            ),
            ViolationKind::EpochRegressed { switch, from, to } => {
                write!(f, "epoch regression: {switch} adopted {to} after {from}")
            }
            ViolationKind::ControllerEpochNotIncreasing { from, to } => {
                write!(f, "controller epoch not increasing: {from} -> {to}")
            }
            ViolationKind::CommitRegressed {
                tail,
                reg,
                slot,
                from,
                to,
            } => write!(
                f,
                "tail commit regression: tail {tail} reg {reg} slot {slot}: {from} -> {to}"
            ),
            ViolationKind::PendingStuck {
                switch,
                reg,
                slot,
                seq,
                since,
            } => write!(
                f,
                "pending bit stuck: {switch} reg {reg} slot {slot} seq {seq} \
                 pending since {} ns despite tail commit",
                since.nanos()
            ),
            ViolationKind::RangeEpochRegressed {
                switch,
                reg,
                start,
                from,
                to,
            } => write!(
                f,
                "range epoch regression: {switch} reg {reg} range@{start}: {from} -> {to}"
            ),
            ViolationKind::RangeCoverageBroken {
                reg,
                switch,
                key,
                detail,
            } => match switch {
                Some(sw) => write!(
                    f,
                    "range table {detail}: {sw} reg {reg} breaks coverage at key {key}"
                ),
                None => write!(
                    f,
                    "range table {detail}: controller reg {reg} breaks coverage at key {key}"
                ),
            },
            ViolationKind::ReconfigEpochNotIncreasing {
                reg,
                start,
                from,
                to,
            } => write!(
                f,
                "reconfig epoch not increasing: reg {reg} range@{start}: {from} -> {to}"
            ),
            ViolationKind::ReplicaEpochConflict {
                reg,
                start,
                epoch,
                a,
                b,
            } => write!(
                f,
                "replica epoch conflict: reg {reg} range@{start} epoch {epoch} \
                 decided differently by {a} and {b}"
            ),
            ViolationKind::RangeSplitBrain {
                reg,
                start,
                epoch,
                a,
                b,
            } => write!(
                f,
                "range split-brain: reg {reg} range@{start} epoch {epoch}: \
                 {a} and {b} commit different owner sets"
            ),
            ViolationKind::DualLeader { a, b } => {
                write!(f, "dual leader: {a} and {b} both act as controller leader")
            }
            ViolationKind::ConsensusLogOverflow {
                replica,
                slot,
                base,
            } => write!(
                f,
                "consensus log overflow: {replica} slot {slot} outside register \
                 window at base {base} (compaction fell behind)"
            ),
            ViolationKind::StaleDirectoryRead {
                replica,
                reg,
                key,
                served,
                bound_ns,
            } => write!(
                f,
                "stale directory read: {replica} served reg {reg} key {key} \
                 owners {served:?} not authoritative within the last {bound_ns} ns"
            ),
            ViolationKind::FailoverGapExceeded {
                leader,
                epoch,
                gap_ns,
                budget_ns,
            } => write!(
                f,
                "failover SLO broken: {leader} (epoch {epoch}) took {gap_ns} ns \
                 from last beacon to election decree (budget {budget_ns} ns)"
            ),
            ViolationKind::DualOwnerWindowExceeded {
                reg,
                start,
                window_ns,
                budget_ns,
            } => write!(
                f,
                "dual-owner SLO broken: reg {reg} range@{start} dual-owned for \
                 {window_ns} ns (budget {budget_ns} ns)"
            ),
            ViolationKind::ElectionChurn {
                elections,
                window_ns,
                budget,
            } => write!(
                f,
                "election churn: {elections} campaign starts within {window_ns} ns \
                 (budget {budget})"
            ),
            ViolationKind::ReplayFlowSeqRegressed { flow, from, to } => write!(
                f,
                "replay flow-seq regression: flow {flow:?}: {from} -> {to} without SYN"
            ),
            ViolationKind::ReplayDuplicateRecord { flow, seq } => write!(
                f,
                "replay duplicate record: flow {flow:?} seq {seq} ingested twice in a row"
            ),
            ViolationKind::Diverged {
                reg,
                key,
                a,
                va,
                b,
                vb,
            } => write!(
                f,
                "divergence: reg {reg} key {key}: {a} has {va}, {b} has {vb}"
            ),
        }
    }
}

/// Wire-level observer state: requested write values, taint, crash
/// notifications, and the first wire-level violation.
#[derive(Debug, Default)]
pub struct WireState {
    /// `Set` values requested per `(reg, key)` (from `seq == 0` writes).
    requested: BTreeMap<(RegId, Key), BTreeSet<u64>>,
    /// Keys that ever saw an `Add` op (head rewrites these into derived
    /// `Set`s, so value provenance can't be tracked).
    tainted: BTreeSet<(RegId, Key)>,
    /// In-flight chain writes per writer: requested (`seq == 0`
    /// delivered) but no ack delivered back yet.
    outstanding: BTreeMap<NodeId, BTreeSet<(RegId, Key)>>,
    /// Writes whose writer crashed before its ack arrived: nobody will
    /// retry them, so a chain prefix may legally stay ahead of the tail
    /// for these keys. The convergence oracle excludes their groups.
    orphaned: BTreeSet<(RegId, Key)>,
    /// Crash notifications since the last poll drained them.
    crashed: Vec<NodeId>,
    /// Directory replies delivered since the last poll drained them:
    /// `(at, serving replica, reg, key, served owners)` — input to the
    /// staleness oracle.
    dir_replies: Vec<DirReplyObs>,
    /// First wire-level violation (picked up by the next poll).
    violation: Option<(SimTime, ViolationKind)>,
}

/// One observed directory reply: `(delivery time, serving replica, reg,
/// key, served owner set)`.
pub type DirReplyObs = (SimTime, NodeId, RegId, Key, Vec<NodeId>);

impl WireState {
    fn requested_contains(&self, reg: RegId, key: Key, value: u64) -> bool {
        self.requested
            .get(&(reg, key))
            .is_some_and(|vals| vals.contains(&value))
    }

    fn is_tainted(&self, reg: RegId, key: Key) -> bool {
        self.tainted.contains(&(reg, key))
    }
}

impl NetObserver for WireState {
    fn on_net_event(&mut self, now: SimTime, ev: &NetEvent<'_>) {
        match ev {
            NetEvent::NodeFailed { node } => {
                self.crashed.push(*node);
                if let Some(inflight) = self.outstanding.remove(node) {
                    self.orphaned.extend(inflight);
                }
            }
            NetEvent::Delivered { pkt, .. } => match &pkt.body {
                PacketBody::Swish(SwishMsg::Write(w)) => {
                    if w.seq == 0 {
                        self.outstanding
                            .entry(w.writer)
                            .or_default()
                            .insert((w.reg, w.key));
                    }
                    match w.op {
                        WriteOp::Add(_) => {
                            self.tainted.insert((w.reg, w.key));
                        }
                        WriteOp::Set(v) if w.seq == 0 => {
                            self.requested.entry((w.reg, w.key)).or_default().insert(v);
                        }
                        WriteOp::Set(v) => {
                            // A sequenced write: its value must stem from a
                            // previously delivered request (sequencing
                            // happens only after the head *received* the
                            // request).
                            if self.violation.is_none()
                                && !self.is_tainted(w.reg, w.key)
                                && !self.requested_contains(w.reg, w.key, v)
                            {
                                self.violation = Some((
                                    now,
                                    ViolationKind::InventedValue {
                                        reg: w.reg,
                                        key: w.key,
                                        value: v,
                                        stage: "wire",
                                    },
                                ));
                            }
                        }
                    }
                }
                PacketBody::Swish(SwishMsg::Ack(a)) => {
                    if let Some(set) = self.outstanding.get_mut(&a.writer) {
                        set.remove(&(a.reg, a.key));
                    }
                }
                PacketBody::Swish(SwishMsg::DirReply(r)) => {
                    self.dir_replies
                        .push((now, pkt.src, r.reg, r.key, r.owners.clone()));
                }
                _ => {}
            },
            _ => {}
        }
    }
}

/// An ingress-stream replay oracle: watches the host→switch data stream
/// (the packets a replay engine injects) and checks the *input* side of
/// a replayed run — per-TCP-flow sequence numbers must not regress
/// without a SYN restart, and no flow may deliver the exact same record
/// twice in a row. State-side invariants stay with [`OracleSuite`];
/// this guard catches a corrupt trace feed (reordered ring, duplicated
/// slot, bad transform) *before* it can masquerade as a protocol bug.
///
/// Strictly passive, like every observer. Attach with
/// [`ReplayGuard::attach`], then ask [`ReplayGuard::violation`] after
/// (or during) the run.
#[derive(Debug, Default)]
pub struct ReplayGuard {
    /// Per flow: last ingested `flow_seq`.
    last_seq: BTreeMap<swishmem_wire::FlowKey, u32>,
    /// Ingress data packets seen.
    seen: u64,
    violation: Option<Violation>,
}

impl ReplayGuard {
    /// Build a guard and register it as an observer on `dep`.
    pub fn attach(dep: &mut Deployment) -> Rc<RefCell<ReplayGuard>> {
        let guard = Rc::new(RefCell::new(ReplayGuard::default()));
        dep.add_observer(guard.clone() as ObserverHandle);
        guard
    }

    /// Ingress data packets observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The first ingress-stream violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }
}

impl NetObserver for ReplayGuard {
    fn on_net_event(&mut self, now: SimTime, ev: &NetEvent<'_>) {
        let NetEvent::Delivered { pkt, .. } = ev else {
            return;
        };
        // Only the ingress stream: a host-sourced data frame arriving at
        // the fabric. Switch-to-switch and switch-to-host traffic is the
        // protocol's business, not the trace feed's.
        if pkt.src.0 < crate::deployment::HOST_BASE {
            return;
        }
        let PacketBody::Data(data) = &pkt.body else {
            return;
        };
        self.seen += 1;
        let syn = data.flow.proto == 6 && data.tcp_flags.syn;
        match self.last_seq.get(&data.flow) {
            // A SYN legally restarts the flow (new incarnation of a
            // recycled 5-tuple).
            _ if syn => {
                self.last_seq.insert(data.flow, data.flow_seq);
            }
            Some(&prev) if data.flow_seq == prev && self.violation.is_none() => {
                self.violation = Some(Violation {
                    at: now,
                    kind: ViolationKind::ReplayDuplicateRecord {
                        flow: data.flow,
                        seq: data.flow_seq,
                    },
                });
            }
            Some(&prev) if data.flow.proto == 6 && data.flow_seq < prev => {
                if self.violation.is_none() {
                    self.violation = Some(Violation {
                        at: now,
                        kind: ViolationKind::ReplayFlowSeqRegressed {
                            flow: data.flow,
                            from: prev,
                            to: data.flow_seq,
                        },
                    });
                }
            }
            _ => {
                self.last_seq.insert(data.flow, data.flow_seq);
            }
        }
    }
}

/// The online oracle suite. Attach to a deployment before running, then
/// drive the run through [`OracleSuite::run`] (or interleave
/// [`Deployment::run_for`] with [`OracleSuite::poll`] manually).
pub struct OracleSuite {
    cfg: OracleConfig,
    wire: Rc<RefCell<WireState>>,
    /// Last adopted epoch per switch index (0 = not yet adopted).
    epoch_seen: Vec<u32>,
    /// Per `(switch index, reg)`: last observed per-slot sequences.
    seq_seen: BTreeMap<(usize, RegId), Vec<u64>>,
    /// Tail identity at the previous poll (commit baselines are only
    /// valid while this is stable).
    last_tail: Option<NodeId>,
    /// Per chain register: the tail's last committed per-slot sequences.
    commit_seen: BTreeMap<RegId, Vec<u64>>,
    /// `(switch index, reg, slot)` → `(pending seq, first seen)`.
    pending_since: BTreeMap<(usize, RegId, u32), (u64, SimTime)>,
    /// Controller event-log prefix already validated.
    ctrl_events_seen: usize,
    /// Last controller-issued epoch.
    ctrl_epoch: u32,
    /// Per `(switch index, reg, range start)`: last installed per-range
    /// epoch (reset on crash of that switch).
    range_epoch_seen: BTreeMap<(usize, RegId, Key), u32>,
    /// Reconfiguration-log prefix already validated.
    reconfig_events_seen: usize,
    /// Per `(reg, range start)`: highest per-range epoch the controller
    /// issued so far (Begin/Commit entries must strictly increase).
    reconfig_issued: BTreeMap<(RegId, Key), u32>,
    /// Ranges whose entire owner set was simultaneously failed at some
    /// poll: their state legally died; convergence skips them forever.
    dead_ranges: BTreeSet<(RegId, Key)>,
    /// Per partitioned register: history of the controller's master
    /// table, appended whenever a poll observes a change. The staleness
    /// oracle checks every delivered directory reply against the sets
    /// that were authoritative inside its staleness window.
    table_hist: BTreeMap<RegId, Vec<(SimTime, Vec<crate::reconfig::RangeView>)>>,
    /// First poll at which two live controller replicas both acted as
    /// leader (cleared when uniqueness returns). Transient dual
    /// leadership during an election handover is legal; only
    /// persistence beyond the leader-lease bound is a violation.
    dual_since: Option<SimTime>,
    /// Attached control-plane flight recorder, when diagnosis is on.
    journal: Option<JournalHandle>,
    /// Record count at the last decode (re-decode only on growth).
    journal_seen: usize,
    /// The decoded journal as of `journal_seen` records.
    journal_cache: Journal,
    /// Budgets for the journal SLO monitors.
    slo: SloBudgets,
    /// The last journal events before the first violation.
    first_context: Vec<String>,
    first: Option<Violation>,
}

impl OracleSuite {
    /// Build a suite and register its wire observer on the deployment.
    pub fn attach(dep: &mut Deployment, cfg: OracleConfig) -> OracleSuite {
        let wire: Rc<RefCell<WireState>> = Rc::new(RefCell::new(WireState::default()));
        dep.add_observer(wire.clone() as ObserverHandle);
        let n = dep.switch_ids().len();
        OracleSuite {
            cfg,
            wire,
            epoch_seen: vec![0; n],
            seq_seen: BTreeMap::new(),
            last_tail: None,
            commit_seen: BTreeMap::new(),
            pending_since: BTreeMap::new(),
            ctrl_events_seen: 0,
            ctrl_epoch: 0,
            range_epoch_seen: BTreeMap::new(),
            reconfig_events_seen: 0,
            reconfig_issued: BTreeMap::new(),
            dead_ranges: BTreeSet::new(),
            table_hist: BTreeMap::new(),
            dual_since: None,
            journal: None,
            journal_seen: 0,
            journal_cache: Journal::default(),
            slo: SloBudgets::default(),
            first_context: Vec::new(),
            first: None,
        }
    }

    /// Attach a control-plane flight recorder: arms the journal SLO
    /// monitors and enriches the first violation (of *any* oracle) with
    /// the last journal events before it.
    pub fn attach_journal(&mut self, handle: JournalHandle) {
        self.journal = Some(handle);
    }

    /// Override the journal SLO budgets (defaults never trip on a
    /// healthy run).
    pub fn set_slo(&mut self, slo: SloBudgets) {
        self.slo = slo;
    }

    /// The first violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.first.as_ref()
    }

    /// Journal context captured with the first violation: the last
    /// [`VIOLATION_CONTEXT_EVENTS`] events at or before it, rendered as
    /// human lines. Empty when no journal was attached (or no
    /// violation).
    pub fn violation_context(&self) -> &[String] {
        &self.first_context
    }

    /// The first violation plus its journal context as a multi-line
    /// report, or `None` when the run was clean.
    pub fn violation_report(&self) -> Option<String> {
        let v = self.first.as_ref()?;
        let mut s = v.to_string();
        for line in &self.first_context {
            s.push_str("\n    ");
            s.push_str(line);
        }
        Some(s)
    }

    /// Drive the deployment to `until`, polling every `poll_interval`.
    /// Returns the first violation found, or `Ok(())`.
    pub fn run(&mut self, dep: &mut Deployment, until: SimTime) -> Result<(), Violation> {
        while dep.now() < until {
            dep.run_for(self.cfg.poll_interval);
            if self.poll(dep).is_some() {
                break;
            }
        }
        match &self.first {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    fn record(&mut self, at: SimTime, kind: ViolationKind) {
        if self.first.is_none() {
            if let Some(h) = &self.journal {
                let decoded = Journal::decode(h.borrow().records());
                self.first_context = decoded.tail_strings_at(at, VIOLATION_CONTEXT_EVENTS);
            }
            self.first = Some(Violation { at, kind });
        }
    }

    /// Run all polling oracles once against current deployment state.
    /// Returns the first violation (sticky across polls).
    pub fn poll(&mut self, dep: &Deployment) -> Option<&Violation> {
        let now = dep.now();

        // 1. Wire-level violation detected since the last poll, and crash
        //    notifications (crashes reset per-switch baselines: recovered
        //    switches legitimately restart from epoch 0 / seq 0).
        let (wire_violation, crashed) = {
            let mut w = self.wire.borrow_mut();
            (w.violation.take(), std::mem::take(&mut w.crashed))
        };
        if let Some((at, kind)) = wire_violation {
            self.record(at, kind);
        }
        for node in crashed {
            if let Some(i) = dep.switch_index(node) {
                self.epoch_seen[i] = 0;
                self.seq_seen.retain(|&(s, _), _| s != i);
                self.pending_since.retain(|&(s, _, _), _| s != i);
                self.range_epoch_seen.retain(|&(s, _, _), _| s != i);
            }
            // A crashed tail restarts wiped; its commit counters only
            // become meaningful again once it is demoted (amnesia
            // detection) or re-promoted through the learner path.
            if self.last_tail == Some(node) {
                self.commit_seen.clear();
            }
        }

        // 2. Controller-issued epochs are strictly increasing. Replica-
        //    group membership decrees are exempt: they reshape the
        //    consensus group, not the data-plane chain view, so their
        //    log entries carry the epoch current at commit time.
        let events = dep.controller_events();
        for ev in &events[self.ctrl_events_seen.min(events.len())..] {
            let membership = matches!(
                ev.kind,
                crate::controller::ConfigEventKind::ReplicaAdded(_)
                    | crate::controller::ConfigEventKind::ReplicaRemoved(_)
            );
            if self.ctrl_events_seen > 0 && ev.epoch <= self.ctrl_epoch && !membership {
                self.record(
                    ev.time,
                    ViolationKind::ControllerEpochNotIncreasing {
                        from: self.ctrl_epoch,
                        to: ev.epoch,
                    },
                );
            }
            self.ctrl_epoch = ev.epoch;
            self.ctrl_events_seen += 1;
        }

        // 2b. Controller-issued *per-range* epochs strictly increase
        //     across Begin/Commit entries of the reconfiguration log.
        let rlog = dep.reconfig_events();
        for e in &rlog[self.reconfig_events_seen.min(rlog.len())..] {
            if let Some(epoch) = e.event.issued_epoch() {
                let rk = e.event.range_key();
                match self.reconfig_issued.get(&rk) {
                    Some(&prev) if epoch <= prev => self.record(
                        e.time,
                        ViolationKind::ReconfigEpochNotIncreasing {
                            reg: rk.0,
                            start: rk.1,
                            from: prev,
                            to: epoch,
                        },
                    ),
                    _ => {
                        self.reconfig_issued.insert(rk, epoch);
                    }
                }
            }
        }
        self.reconfig_events_seen = rlog.len();

        // 2c'. Replicated control plane (DESIGN.md §12): at most one
        //      live acting leader; issued per-range epochs are decided
        //      identically across every replica's applied log; committed
        //      range tables never disagree at equal epochs.
        let ctrl = dep.controller();
        if ctrl.len() > 1 {
            let mut leaders: Vec<NodeId> = Vec::new();
            for (i, &id) in ctrl.ids().iter().enumerate() {
                if ctrl.is_failed(i) {
                    continue;
                }
                if let Some(c) = ctrl.replica(i) {
                    if c.is_acting_leader() {
                        leaders.push(id);
                    }
                }
            }
            if leaders.len() > 1 {
                // Legal during an election handover (an isolated old
                // leader cannot know it lost); a violation only once it
                // outlives the leader lease, which forces self-demotion
                // within `failure_timeout` of losing quorum contact.
                let bound = SimDuration::nanos(3 * dep.config().failure_timeout.as_nanos());
                match self.dual_since {
                    Some(t0) if now.since(t0) > bound => self.record(
                        now,
                        ViolationKind::DualLeader {
                            a: leaders[0],
                            b: leaders[1],
                        },
                    ),
                    Some(_) => {}
                    None => self.dual_since = Some(now),
                }
            } else {
                self.dual_since = None;
            }
            let logs: Vec<(NodeId, &[crate::reconfig::ReconfigLogEntry])> = ctrl
                .ids()
                .iter()
                .enumerate()
                .filter_map(|(i, &id)| ctrl.replica(i).map(|c| (id, c.reconfig_log())))
                .collect();
            for kind in replica_epoch_conflicts(&logs) {
                self.record(now, kind);
            }
            for spec in dep.register_specs().to_vec() {
                if !spec.is_partitioned() {
                    continue;
                }
                let tables: Vec<(NodeId, Vec<crate::reconfig::RangeView>)> = ctrl
                    .ids()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &id)| ctrl.replica(i).map(|c| (id, c.range_table(spec.id))))
                    .collect();
                for kind in range_split_brain_errors(spec.id, &tables) {
                    self.record(now, kind);
                }
            }
        }

        let specs = dep.register_specs().to_vec();
        let swish = *dep.config();
        let chain_regs: Vec<(RegId, RegisterClass)> = specs
            .iter()
            .filter(|s| matches!(s.class, RegisterClass::Sro | RegisterClass::Ero))
            .map(|s| (s.id, s.class))
            .collect();

        // 2c. Partitioned range tables: the controller's master table
        //     covers the key space exactly at every poll; switch-installed
        //     per-range epochs never regress; a range whose entire owner
        //     set is simultaneously down is tainted permanently (its state
        //     legally died with the owners).
        for spec in specs.iter().filter(|s| s.is_partitioned()) {
            let master = dep.controller_ranges(spec.id);
            let hist = self.table_hist.entry(spec.id).or_default();
            if hist.last().map(|(_, t)| t != &master).unwrap_or(true) {
                hist.push((now, master.clone()));
            }
            for v in coverage_errors(spec.id, None, &master, spec.keys) {
                self.record(now, v);
            }
            for r in &master {
                let all_down = !r.owners.is_empty()
                    && r.owners.iter().all(|&o| {
                        dep.switch_index(o)
                            .map(|i| dep.is_switch_failed(i))
                            .unwrap_or(true)
                    });
                if all_down {
                    self.dead_ranges.insert((spec.id, r.start));
                }
            }
            for i in 0..dep.switch_ids().len() {
                if dep.is_switch_failed(i) {
                    continue;
                }
                let installed = dep.installed_ranges(i, spec.id);
                for r in &installed {
                    let k = (i, spec.id, r.start);
                    if let Some(&prev) = self.range_epoch_seen.get(&k) {
                        if r.epoch < prev {
                            self.record(
                                now,
                                ViolationKind::RangeEpochRegressed {
                                    switch: dep.switch_ids()[i],
                                    reg: spec.id,
                                    start: r.start,
                                    from: prev,
                                    to: r.epoch,
                                },
                            );
                        }
                    }
                    self.range_epoch_seen.insert(k, r.epoch);
                }
                // Coverage of installed tables is only enforced once the
                // run has quiesced: a crash-wiped switch legitimately
                // rebuilds its table range by range from the resync
                // stream, so mid-fault polls may catch a partial table.
                if !installed.is_empty()
                    && now.nanos()
                        >= self.cfg.quiesce_at.nanos() + self.cfg.convergence_grace.as_nanos()
                {
                    for v in
                        coverage_errors(spec.id, Some(dep.switch_ids()[i]), &installed, spec.keys)
                    {
                        self.record(now, v);
                    }
                }
            }
        }

        // 2e. Replicated control plane: consensus-log capacity and
        //     follower-read staleness. A replica whose window overflowed
        //     carries a sticky typed error; every delivered directory
        //     reply must match an owner set that was authoritative at
        //     some instant within the staleness bound (the leader lease
        //     plus the demotion window of a deposed leader).
        if ctrl.len() > 1 {
            for (replica, e) in ctrl.consensus_errors() {
                let crate::consensus::ConsensusError::LogOverflow { slot, base } = e;
                self.record(
                    now,
                    ViolationKind::ConsensusLogOverflow {
                        replica,
                        slot,
                        base,
                    },
                );
            }
            let bound = SimDuration::nanos(
                swish.dir_lease.as_nanos() + 2 * swish.failure_timeout.as_nanos(),
            );
            let replies = std::mem::take(&mut self.wire.borrow_mut().dir_replies);
            for kind in stale_read_errors(&replies, &self.table_hist, bound) {
                self.record(now, kind);
            }
        }

        // 2f. Journal SLO monitors: failover gap, dual-owner window and
        //     election churn over the decoded flight recorder. The
        //     decode is cached (re-run only when records arrived); the
        //     dual-owner monitor re-runs every poll regardless because
        //     a *still-open* window ages against `now` without emitting
        //     any new records.
        if let Some(h) = self.journal.clone() {
            let len = h.borrow().len();
            if len != self.journal_seen {
                self.journal_cache = Journal::decode(h.borrow().records());
                self.journal_seen = len;
                for (at, kind) in
                    failover_gap_violations(&self.journal_cache, self.slo.failover_gap)
                {
                    self.record(at, kind);
                }
                for (at, kind) in election_churn_violations(
                    &self.journal_cache,
                    self.slo.election_window,
                    self.slo.max_elections_per_window,
                ) {
                    self.record(at, kind);
                }
            }
            for (at, kind) in
                dual_owner_violations(&self.journal_cache, now, self.slo.dual_owner_window)
            {
                self.record(at, kind);
            }
        }

        // 3. Per-switch adopted-epoch and per-slot sequence monotonicity.
        for i in 0..dep.switch_ids().len() {
            if dep.is_switch_failed(i) {
                continue;
            }
            let sw_id = dep.switch_ids()[i];
            let e = dep.adopted_epoch(i);
            if e != 0 {
                if e < self.epoch_seen[i] {
                    self.record(
                        now,
                        ViolationKind::EpochRegressed {
                            switch: sw_id,
                            from: self.epoch_seen[i],
                            to: e,
                        },
                    );
                }
                self.epoch_seen[i] = e;
            }
            for &(reg, _) in &chain_regs {
                let seqs = dep.chain_seqs(i, reg);
                let base = self.seq_seen.get(&(i, reg)).cloned().unwrap_or_default();
                for (slot, &s) in seqs.iter().enumerate() {
                    if let Some(&b) = base.get(slot) {
                        if s < b {
                            self.record(
                                now,
                                ViolationKind::SeqRegressed {
                                    switch: sw_id,
                                    reg,
                                    slot: slot as u32,
                                    from: b,
                                    to: s,
                                },
                            );
                        }
                    }
                }
                self.seq_seen.insert((i, reg), seqs);
            }
        }

        // 4. Tail commit monotonicity (only while the tail is stable).
        let view = dep.controller_view();
        let tail = view.chain.last().copied();
        if tail != self.last_tail {
            self.commit_seen.clear();
            self.last_tail = tail;
        }
        let tail_alive = tail
            .and_then(|t| dep.switch_index(t))
            .filter(|&i| !dep.is_switch_failed(i));
        if let (Some(t), Some(ti)) = (tail, tail_alive) {
            for &(reg, _) in &chain_regs {
                // Partitioned registers have per-range tails, not the
                // global chain tail; their commit authority is checked by
                // the partitioned convergence block instead.
                if specs.iter().any(|s| s.id == reg && s.is_partitioned()) {
                    continue;
                }
                let seqs = dep.chain_seqs(ti, reg);
                if let Some(base) = self.commit_seen.get(&reg).cloned() {
                    for (slot, &s) in seqs.iter().enumerate() {
                        if let Some(&b) = base.get(slot) {
                            if s < b {
                                self.record(
                                    now,
                                    ViolationKind::CommitRegressed {
                                        tail: t,
                                        reg,
                                        slot: slot as u32,
                                        from: b,
                                        to: s,
                                    },
                                );
                            }
                        }
                    }
                }
                self.commit_seen.insert(reg, seqs);
            }
        }

        // 5. Pending bits for committed writes must clear after the fault
        //    horizon. A pending seq *above* the tail's commit belongs to
        //    an abandoned in-flight write and must stay set.
        if now >= self.cfg.quiesce_at {
            if let Some(ti) = tail_alive {
                for spec in specs.iter().filter(|s| s.class == RegisterClass::Sro) {
                    let committed = dep.chain_seqs(ti, spec.id);
                    for i in 0..dep.switch_ids().len() {
                        if dep.is_switch_failed(i) || !view.chain.contains(&dep.switch_ids()[i]) {
                            continue;
                        }
                        let pend = dep.pending_seqs(i, spec.id);
                        for (slot, &p) in pend.iter().enumerate() {
                            let key = (i, spec.id, slot as u32);
                            let commit = committed.get(slot).copied().unwrap_or(0);
                            if p != 0 && p <= commit {
                                let (seq0, since) =
                                    *self.pending_since.entry(key).or_insert((p, now));
                                if seq0 == p && now.since(since) > self.cfg.pending_bound {
                                    self.record(
                                        now,
                                        ViolationKind::PendingStuck {
                                            switch: dep.switch_ids()[i],
                                            reg: spec.id,
                                            slot: slot as u32,
                                            seq: p,
                                            since,
                                        },
                                    );
                                } else if seq0 != p {
                                    self.pending_since.insert(key, (p, now));
                                }
                            } else {
                                self.pending_since.remove(&key);
                            }
                        }
                    }
                }
            }
        }

        // 6. Convergence once faults have ceased and the grace elapsed.
        if now.nanos() >= self.cfg.quiesce_at.nanos() + self.cfg.convergence_grace.as_nanos() {
            self.check_convergence(dep, &specs, &swish, now);
        }

        self.first.as_ref()
    }

    fn check_convergence(
        &mut self,
        dep: &Deployment,
        specs: &[crate::config::RegisterSpec],
        swish: &SwishConfig,
        now: SimTime,
    ) {
        // Key groups with an abandoned (retry-exhausted) or orphaned
        // (writer crashed pre-ack) write may hold a chain prefix ahead of
        // the tail forever: exclude them.
        let mut abandoned: BTreeSet<(RegId, u32)> = BTreeSet::new();
        for i in 0..dep.switch_ids().len() {
            if dep.is_switch_failed(i) {
                continue;
            }
            for &(reg, key) in &dep.metrics(i).cp.abandoned_writes {
                if let Some(spec) = specs.iter().find(|s| s.id == reg) {
                    abandoned.insert((reg, key % swish.group_slots(spec.keys)));
                }
            }
        }
        let view = dep.controller_view();
        let wire = self.wire.borrow();
        for &(reg, key) in &wire.orphaned {
            if let Some(spec) = specs.iter().find(|s| s.id == reg) {
                abandoned.insert((reg, key % swish.group_slots(spec.keys)));
            }
        }
        // Partitioned exclusions use exact keys (partitioned registers
        // sequence per key, so there is no group aliasing to fold).
        let mut part_excluded: BTreeSet<(RegId, Key)> = BTreeSet::new();
        for i in 0..dep.switch_ids().len() {
            if dep.is_switch_failed(i) {
                continue;
            }
            for &(reg, key) in &dep.metrics(i).cp.abandoned_writes {
                part_excluded.insert((reg, key));
            }
        }
        part_excluded.extend(wire.orphaned.iter().copied());

        let mut found: Vec<ViolationKind> = Vec::new();
        for spec in specs {
            if spec.is_partitioned() {
                // Per-range convergence: all live owners agree, and the
                // primary's value must be requested. Skip ranges with an
                // open transfer (the destination legally lags until its
                // pass completes) and ranges whose whole owner set died.
                for r in dep.controller_ranges(spec.id) {
                    if r.mig_to.is_some() || self.dead_ranges.contains(&(spec.id, r.start)) {
                        continue;
                    }
                    let live: Vec<usize> = r
                        .owners
                        .iter()
                        .filter_map(|&o| dep.switch_index(o))
                        .filter(|&i| !dep.is_switch_failed(i))
                        .collect();
                    let Some(&p) = live.first() else { continue };
                    for key in r.start..r.end.min(spec.keys) {
                        if part_excluded.contains(&(spec.id, key)) {
                            continue;
                        }
                        let vp = dep.peek(p, spec.id, key);
                        if vp != 0
                            && !wire.is_tainted(spec.id, key)
                            && !wire.requested_contains(spec.id, key, vp)
                        {
                            found.push(ViolationKind::InventedValue {
                                reg: spec.id,
                                key,
                                value: vp,
                                stage: "state",
                            });
                        }
                        for &j in &live[1..] {
                            let vj = dep.peek(j, spec.id, key);
                            if vj != vp {
                                found.push(ViolationKind::Diverged {
                                    reg: spec.id,
                                    key,
                                    a: dep.switch_ids()[p],
                                    va: vp,
                                    b: dep.switch_ids()[j],
                                    vb: vj,
                                });
                            }
                        }
                    }
                }
                continue;
            }
            match spec.class {
                RegisterClass::Sro | RegisterClass::Ero => {
                    // All live chain members agree with the tail; the
                    // tail's value itself must have been requested.
                    let Some(ti) = view
                        .chain
                        .last()
                        .and_then(|&t| dep.switch_index(t))
                        .filter(|&i| !dep.is_switch_failed(i))
                    else {
                        continue;
                    };
                    let slots = swish.group_slots(spec.keys);
                    for key in 0..spec.keys {
                        if abandoned.contains(&(spec.id, key % slots)) {
                            continue;
                        }
                        let vt = dep.peek(ti, spec.id, key);
                        if vt != 0
                            && !wire.is_tainted(spec.id, key)
                            && !wire.requested_contains(spec.id, key, vt)
                        {
                            found.push(ViolationKind::InventedValue {
                                reg: spec.id,
                                key,
                                value: vt,
                                stage: "state",
                            });
                        }
                        for &member in &view.chain {
                            let Some(j) = dep.switch_index(member) else {
                                continue;
                            };
                            if j == ti || dep.is_switch_failed(j) {
                                continue;
                            }
                            let vj = dep.peek(j, spec.id, key);
                            if vj != vt {
                                found.push(ViolationKind::Diverged {
                                    reg: spec.id,
                                    key,
                                    a: dep.switch_ids()[ti],
                                    va: vt,
                                    b: member,
                                    vb: vj,
                                });
                            }
                        }
                    }
                }
                RegisterClass::Ewo => {
                    // All live replicas agree pairwise (against the first
                    // live one as reference).
                    let alive: Vec<usize> = (0..dep.switch_ids().len())
                        .filter(|&i| !dep.is_switch_failed(i))
                        .collect();
                    let Some(&r) = alive.first() else { continue };
                    for key in 0..spec.keys {
                        let vr = dep.peek(r, spec.id, key);
                        for &j in &alive[1..] {
                            let vj = dep.peek(j, spec.id, key);
                            if vj != vr {
                                found.push(ViolationKind::Diverged {
                                    reg: spec.id,
                                    key,
                                    a: dep.switch_ids()[r],
                                    va: vr,
                                    b: dep.switch_ids()[j],
                                    vb: vj,
                                });
                            }
                        }
                    }
                }
            }
        }
        drop(wire);
        for kind in found {
            self.record(now, kind);
        }
    }
}

/// Check that `ranges` (key-ordered) covers `[0, keys)` exactly.
/// Returns at most one violation per table — the first break found.
fn coverage_errors(
    reg: RegId,
    switch: Option<NodeId>,
    ranges: &[crate::reconfig::RangeView],
    keys: Key,
) -> Vec<ViolationKind> {
    let mut expect: Key = 0;
    for r in ranges {
        if r.start > expect {
            return vec![ViolationKind::RangeCoverageBroken {
                reg,
                switch,
                key: expect,
                detail: "gap",
            }];
        }
        if r.start < expect {
            return vec![ViolationKind::RangeCoverageBroken {
                reg,
                switch,
                key: r.start,
                detail: "overlap",
            }];
        }
        expect = r.end;
    }
    if expect < keys {
        return vec![ViolationKind::RangeCoverageBroken {
            reg,
            switch,
            key: expect,
            detail: "gap",
        }];
    }
    vec![]
}

/// Cross-replica issued-epoch uniqueness (DESIGN.md §12): every
/// epoch-issuing event (`Begin`/`Commit`) in any replica's applied
/// reconfiguration log must be *the same event* wherever it appears —
/// the epoch was decreed once through consensus, so two replicas
/// deciding different things under one `(reg, range, epoch)` is direct
/// split-brain evidence. Pure over the observed logs, so it can be fed
/// hand-built histories in tests.
pub fn replica_epoch_conflicts(
    logs: &[(NodeId, &[crate::reconfig::ReconfigLogEntry])],
) -> Vec<ViolationKind> {
    let mut seen: BTreeMap<(RegId, Key, u32), (NodeId, &crate::reconfig::ReconfigEvent)> =
        BTreeMap::new();
    let mut out = Vec::new();
    for (node, log) in logs {
        for e in log.iter() {
            let Some(epoch) = e.event.issued_epoch() else {
                continue;
            };
            let (reg, start) = e.event.range_key();
            match seen.get(&(reg, start, epoch)) {
                Some((first, ev)) => {
                    if *first != *node && **ev != e.event {
                        out.push(ViolationKind::ReplicaEpochConflict {
                            reg,
                            start,
                            epoch,
                            a: *first,
                            b: *node,
                        });
                    }
                }
                None => {
                    seen.insert((reg, start, epoch), (*node, &e.event));
                }
            }
        }
    }
    out
}

/// Bounded-staleness follower reads (DESIGN.md §13): every directory
/// reply must serve an owner set that was authoritative — per the
/// leader's master table history — at *some* instant within `bound`
/// before the reply's delivery. A follower whose lease-validated applied
/// prefix lags at most the lease plus the old-leader demotion window can
/// never fail this; a reply escaping that bound is a protocol violation.
/// Empty served sets are skipped (an unknown answer is not a *stale*
/// answer), as are replies before any table was observed. Pure over the
/// observed replies and table history, so tests can feed hand-built
/// timelines.
pub fn stale_read_errors(
    replies: &[DirReplyObs],
    history: &BTreeMap<RegId, Vec<(SimTime, Vec<crate::reconfig::RangeView>)>>,
    bound: SimDuration,
) -> Vec<ViolationKind> {
    let mut out = Vec::new();
    for (at, replica, reg, key, served) in replies {
        if served.is_empty() {
            continue;
        }
        let Some(snaps) = history.get(reg) else {
            continue;
        };
        let lo = at.nanos().saturating_sub(bound.as_nanos());
        let mut any_candidate = false;
        let mut fresh = false;
        for (i, (t0, table)) in snaps.iter().enumerate() {
            // The snapshot is in force over [t0, t1); it is a candidate
            // iff that interval intersects the reply's window [lo, at].
            let t1 = snaps.get(i + 1).map(|s| s.0.nanos()).unwrap_or(u64::MAX);
            if t0.nanos() > at.nanos() || t1 <= lo {
                continue;
            }
            if let Some(r) = table.iter().find(|r| r.start <= *key && *key < r.end) {
                any_candidate = true;
                if r.owners == *served {
                    fresh = true;
                    break;
                }
            }
        }
        if any_candidate && !fresh {
            out.push(ViolationKind::StaleDirectoryRead {
                replica: *replica,
                reg: *reg,
                key: *key,
                served: served.clone(),
                bound_ns: bound.as_nanos(),
            });
        }
    }
    out
}

/// No-split-brain range tables (DESIGN.md §12): two controller replicas
/// whose tables claim the same per-range epoch for the same range must
/// agree on its owner set — disagreement means two "authoritative"
/// tables exist at once. Lagging replicas (lower epochs) are fine; only
/// equal-epoch disagreement is a violation. Pure over the observed
/// tables.
pub fn range_split_brain_errors(
    reg: RegId,
    tables: &[(NodeId, Vec<crate::reconfig::RangeView>)],
) -> Vec<ViolationKind> {
    let mut out = Vec::new();
    for (i, (a, ta)) in tables.iter().enumerate() {
        for (b, tb) in &tables[i + 1..] {
            for ra in ta {
                for rb in tb {
                    if ra.start == rb.start && ra.epoch == rb.epoch && ra.owners != rb.owners {
                        out.push(ViolationKind::RangeSplitBrain {
                            reg,
                            start: ra.start,
                            epoch: ra.epoch,
                            a: *a,
                            b: *b,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Failover-gap SLO (journal monitor): every reconstructed failover
/// must close within `budget`, measured from the old leader's last
/// beacon (falling back to the suspicion or campaign start when the
/// journal holds no beacon evidence, e.g. a bootstrap election) to the
/// moment the new leader applied its election decree. Pure over the
/// decoded journal, so tests can feed hand-built histories.
pub fn failover_gap_violations(
    journal: &Journal,
    budget: SimDuration,
) -> Vec<(SimTime, ViolationKind)> {
    let mut out = Vec::new();
    for f in journal.failovers() {
        let Some(from) = f.last_beacon.or(f.suspect_at).or(f.election_start) else {
            continue;
        };
        let gap = f.elected_at.since(from).0;
        if gap > budget.as_nanos() {
            out.push((
                f.elected_at,
                ViolationKind::FailoverGapExceeded {
                    leader: f.leader,
                    epoch: f.epoch,
                    gap_ns: gap,
                    budget_ns: budget.as_nanos(),
                },
            ));
        }
    }
    out
}

/// Dual-owner-window SLO (journal monitor): a migration may hold a
/// range in dual-owner for at most `budget` — measured flip-to-commit
/// for closed migrations and flip-to-`now` for ones still open (an
/// aborted transfer never reaches dual-owner commit accounting). Pure
/// over the decoded journal.
pub fn dual_owner_violations(
    journal: &Journal,
    now: SimTime,
    budget: SimDuration,
) -> Vec<(SimTime, ViolationKind)> {
    let mut out = Vec::new();
    for m in journal.migrations() {
        let (at, window) = match (m.dual_owner_at, m.commit_at, m.abort_at) {
            (Some(d), Some(c), _) => (c, c.since(d).0),
            (Some(d), None, None) => (now, now.since(d).0),
            _ => continue,
        };
        if window > budget.as_nanos() {
            out.push((
                at,
                ViolationKind::DualOwnerWindowExceeded {
                    reg: m.reg,
                    start: m.start,
                    window_ns: window,
                    budget_ns: budget.as_nanos(),
                },
            ));
        }
    }
    out
}

/// Election-churn SLO (journal monitor): at most `budget` campaign
/// starts inside any sliding `window`. Flags the first start that tips
/// each over-budget window. Pure over the decoded journal.
pub fn election_churn_violations(
    journal: &Journal,
    window: SimDuration,
    budget: u32,
) -> Vec<(SimTime, ViolationKind)> {
    let starts: Vec<SimTime> = journal
        .entries()
        .iter()
        .filter(|e| matches!(e.event, CtrlEvent::ElectionStart { .. }))
        .map(|e| e.time)
        .collect();
    let mut out = Vec::new();
    let mut lo = 0usize;
    for i in 0..starts.len() {
        while starts[i].since(starts[lo]).0 > window.as_nanos() {
            lo += 1;
        }
        let n = (i - lo + 1) as u32;
        if n > budget {
            out.push((
                starts[i],
                ViolationKind::ElectionChurn {
                    elections: n,
                    window_ns: window.as_nanos(),
                    budget,
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_errors_find_gaps_and_overlaps() {
        use crate::reconfig::RangeView;
        let mk = |start, end| RangeView {
            start,
            end,
            epoch: 1,
            mig_to: None,
            owners: vec![NodeId(0)],
        };
        assert!(coverage_errors(0, None, &[mk(0, 10), mk(10, 20)], 20).is_empty());
        // Gap in the middle.
        let v = coverage_errors(0, None, &[mk(0, 10), mk(12, 20)], 20);
        assert!(matches!(
            v[0],
            ViolationKind::RangeCoverageBroken {
                key: 10,
                detail: "gap",
                ..
            }
        ));
        // Overlap.
        let v = coverage_errors(0, None, &[mk(0, 12), mk(10, 20)], 20);
        assert!(matches!(
            v[0],
            ViolationKind::RangeCoverageBroken {
                key: 10,
                detail: "overlap",
                ..
            }
        ));
        // Truncated tail.
        let v = coverage_errors(0, None, &[mk(0, 10)], 20);
        assert!(matches!(
            v[0],
            ViolationKind::RangeCoverageBroken {
                key: 10,
                detail: "gap",
                ..
            }
        ));
        // Empty table of a zero-key register is fine.
        assert!(coverage_errors(0, None, &[], 0).is_empty());
    }

    #[test]
    fn stale_read_errors_respect_the_freshness_window() {
        use crate::reconfig::RangeView;
        let table = |owner: u16| {
            vec![RangeView {
                start: 0,
                end: 100,
                epoch: 1,
                mig_to: None,
                owners: vec![NodeId(owner)],
            }]
        };
        let t = |ms: u64| SimTime(ms * 1_000_000);
        let bound = SimDuration::millis(10);
        // Owner of key-space [0,100) moves from switch 1 to switch 2 at
        // t=50ms; history records both table versions.
        let mut hist = BTreeMap::new();
        hist.insert(0u16, vec![(t(0), table(1)), (t(50), table(2))]);
        let reply = |at_ms: u64, owner: u16| (t(at_ms), NodeId(9), 0u16, 7u32, vec![NodeId(owner)]);

        // Fresh: current owners at any point in the reply's window.
        assert!(stale_read_errors(&[reply(40, 1)], &hist, bound).is_empty());
        assert!(stale_read_errors(&[reply(55, 2)], &hist, bound).is_empty());
        // Straddling: the old table was still in force within the bound.
        assert!(stale_read_errors(&[reply(55, 1)], &hist, bound).is_empty());
        // Stale: the old owner set expired more than `bound` ago.
        let v = stale_read_errors(&[reply(70, 1)], &hist, bound);
        assert!(matches!(
            v[0],
            ViolationKind::StaleDirectoryRead {
                replica: NodeId(9),
                reg: 0,
                key: 7,
                ..
            }
        ));
        // Never-authoritative owner set is stale at any time.
        assert!(!stale_read_errors(&[reply(40, 3)], &hist, bound).is_empty());
        // Empty served sets and unknown registers are skipped.
        assert!(stale_read_errors(&[(t(40), NodeId(9), 0, 7, vec![])], &hist, bound).is_empty());
        assert!(
            stale_read_errors(&[(t(40), NodeId(9), 5, 7, vec![NodeId(1)])], &hist, bound)
                .is_empty()
        );
    }

    #[test]
    fn wire_state_tracks_requests_and_taint() {
        let mut w = WireState::default();
        w.requested.entry((1, 2)).or_default().insert(7);
        assert!(w.requested_contains(1, 2, 7));
        assert!(!w.requested_contains(1, 2, 8));
        assert!(!w.is_tainted(1, 2));
        w.tainted.insert((1, 2));
        assert!(w.is_tainted(1, 2));
    }

    #[test]
    fn violation_display_is_replayable_context() {
        let v = Violation {
            at: SimTime(123),
            kind: ViolationKind::PendingStuck {
                switch: NodeId(2),
                reg: 0,
                slot: 3,
                seq: 9,
                since: SimTime(50),
            },
        };
        let s = v.to_string();
        assert!(s.contains("123 ns"), "{s}");
        assert!(s.contains("pending bit stuck"), "{s}");
    }

    /// A hand-built history that SHOULD violate issued-epoch uniqueness:
    /// two controller replicas each log a `Commit` for the same
    /// `(reg, start, epoch)` but with different owner sets — i.e. two
    /// leaders both believed they issued epoch 3 for the same range.
    #[test]
    fn replica_epoch_conflict_oracle_fires() {
        use crate::reconfig::{ReconfigEvent, ReconfigLogEntry};
        let commit = |owners: Vec<NodeId>| ReconfigLogEntry {
            time: SimTime(10),
            event: ReconfigEvent::Commit {
                reg: 7,
                start: 100,
                owners,
                epoch: 3,
            },
        };
        let a = vec![commit(vec![NodeId(1)])];
        let b = vec![commit(vec![NodeId(2)])];
        let na = NodeId(u16::MAX);
        let nb = NodeId(u16::MAX - 1);
        let v = replica_epoch_conflicts(&[(na, &a), (nb, &b)]);
        assert_eq!(v.len(), 1, "conflicting commits must be flagged: {v:?}");
        assert!(matches!(
            v[0],
            ViolationKind::ReplicaEpochConflict {
                reg: 7,
                start: 100,
                epoch: 3,
                ..
            }
        ));
        // Same event replicated on both logs (the normal consensus
        // outcome) is NOT a conflict.
        let b_same = vec![commit(vec![NodeId(1)])];
        assert!(replica_epoch_conflicts(&[(na, &a), (nb, &b_same)]).is_empty());
        // Different epochs for the same range (a lagging replica) is
        // NOT a conflict either.
        let b_old = vec![ReconfigLogEntry {
            time: SimTime(5),
            event: ReconfigEvent::Commit {
                reg: 7,
                start: 100,
                owners: vec![NodeId(2)],
                epoch: 2,
            },
        }];
        assert!(replica_epoch_conflicts(&[(na, &a), (nb, &b_old)]).is_empty());
    }

    /// A hand-built pair of range tables that SHOULD violate the
    /// no-split-brain invariant: same range, same per-range epoch,
    /// different owner sets across two replicas.
    #[test]
    fn range_split_brain_oracle_fires() {
        use crate::reconfig::RangeView;
        let mk = |epoch, owner: u16| {
            vec![RangeView {
                start: 0,
                end: 64,
                epoch,
                mig_to: None,
                owners: vec![NodeId(owner)],
            }]
        };
        let na = NodeId(u16::MAX);
        let nb = NodeId(u16::MAX - 1);
        // Equal epoch, different owners → split brain.
        let v = range_split_brain_errors(4, &[(na, mk(5, 1)), (nb, mk(5, 2))]);
        assert_eq!(v.len(), 1, "equal-epoch owner disagreement: {v:?}");
        assert!(matches!(
            v[0],
            ViolationKind::RangeSplitBrain {
                reg: 4,
                start: 0,
                epoch: 5,
                ..
            }
        ));
        // A lagging replica (lower epoch, stale owners) is legal.
        assert!(range_split_brain_errors(4, &[(na, mk(5, 1)), (nb, mk(4, 2))]).is_empty());
        // Agreement is legal.
        assert!(range_split_brain_errors(4, &[(na, mk(5, 1)), (nb, mk(5, 1))]).is_empty());
    }

    fn jrec(time: u64, node: u16, ev: CtrlEvent) -> swishmem_simnet::JournalRecord {
        let (kind, cause, a, b, c) = ev.encode();
        swishmem_simnet::JournalRecord {
            time: SimTime(time),
            node: NodeId(node),
            kind,
            cause,
            a,
            b,
            c,
        }
    }

    /// A hand-built failover journal whose gap (last beacon at 600 ns to
    /// the election decree at 1 200 000 ns) SHOULD break a tight budget
    /// and hold under a looser one.
    #[test]
    fn failover_gap_slo_fires_on_slow_failover() {
        let leader = NodeId(u16::MAX - 1);
        let records = vec![
            jrec(
                1_000_000,
                leader.0,
                CtrlEvent::Suspect {
                    target: NodeId(u16::MAX),
                    silence_ns: 400_000,
                    timeout_ns: 350_000,
                },
            ),
            jrec(
                1_100_000,
                leader.0,
                CtrlEvent::ElectionStart {
                    ballot: 257,
                    timeout_ns: 350_000,
                },
            ),
            jrec(
                1_200_000,
                leader.0,
                CtrlEvent::LeaderElected {
                    leader,
                    epoch: 2,
                    slot: 8,
                },
            ),
        ];
        let j = Journal::decode(&records);
        // Gap = 1_200_000 - (1_000_000 - 400_000) = 600_000 ns.
        assert!(failover_gap_violations(&j, SimDuration::micros(600)).is_empty());
        let v = failover_gap_violations(&j, SimDuration::micros(500));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].0, SimTime(1_200_000));
        assert!(matches!(
            v[0].1,
            ViolationKind::FailoverGapExceeded {
                epoch: 2,
                gap_ns: 600_000,
                budget_ns: 500_000,
                ..
            }
        ));
    }

    /// Closed, open, and aborted dual-owner windows against the budget:
    /// only commit closes the clock; an open window ages with `now`; an
    /// abort stops it.
    #[test]
    fn dual_owner_window_slo_fires_for_closed_and_open_windows() {
        use crate::telemetry::journal::ABORT_DEST_FAILED;
        let begin = CtrlEvent::MigBegin {
            reg: 1,
            start: 0,
            from: NodeId(0),
            to: NodeId(2),
            epoch: 1,
        };
        let dual = CtrlEvent::MigDualOwner {
            reg: 1,
            start: 0,
            epoch: 1,
            pass: 1,
        };
        let commit = CtrlEvent::MigCommit {
            reg: 1,
            start: 0,
            epoch: 2,
        };
        // Closed: dual-owner at 100, commit at 700 → 600 ns window.
        let j = Journal::decode(&[jrec(50, 0, begin), jrec(100, 0, dual), jrec(700, 0, commit)]);
        assert!(dual_owner_violations(&j, SimTime(10_000), SimDuration::nanos(600)).is_empty());
        let v = dual_owner_violations(&j, SimTime(10_000), SimDuration::nanos(500));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].0, SimTime(700));
        assert!(matches!(
            v[0].1,
            ViolationKind::DualOwnerWindowExceeded {
                reg: 1,
                start: 0,
                window_ns: 600,
                ..
            }
        ));
        // Open: no terminal event yet, the window ages against `now`.
        let j = Journal::decode(&[jrec(50, 0, begin), jrec(100, 0, dual)]);
        assert!(dual_owner_violations(&j, SimTime(500), SimDuration::nanos(500)).is_empty());
        assert_eq!(
            dual_owner_violations(&j, SimTime(1_000), SimDuration::nanos(500)).len(),
            1
        );
        // Aborted before commit: the clock must stop.
        let abort = CtrlEvent::MigAbort {
            reg: 1,
            start: 0,
            epoch: 1,
            reason: ABORT_DEST_FAILED,
        };
        let j = Journal::decode(&[jrec(50, 0, begin), jrec(100, 0, dual), jrec(200, 0, abort)]);
        assert!(dual_owner_violations(&j, SimTime(1 << 40), SimDuration::nanos(500)).is_empty());
    }

    /// Five campaign starts 100 ns apart: a 400 ns window holds 5, so a
    /// budget of 4 breaks and 5 holds; a 100 ns window never sees > 2.
    #[test]
    fn election_churn_slo_fires_on_thrash() {
        let records: Vec<_> = (0..5u64)
            .map(|i| {
                jrec(
                    1_000 + i * 100,
                    7,
                    CtrlEvent::ElectionStart {
                        ballot: 257 + i,
                        timeout_ns: 50,
                    },
                )
            })
            .collect();
        let j = Journal::decode(&records);
        assert!(election_churn_violations(&j, SimDuration::nanos(400), 5).is_empty());
        let v = election_churn_violations(&j, SimDuration::nanos(400), 4);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].1,
            ViolationKind::ElectionChurn {
                elections: 5,
                budget: 4,
                ..
            }
        ));
        assert!(election_churn_violations(&j, SimDuration::nanos(100), 2).is_empty());
    }

    /// End to end: an attached suite with a tight failover budget and a
    /// journal carrying a slow failover MUST surface the SLO violation
    /// through its normal violation machinery, enriched with the journal
    /// events leading up to it.
    #[test]
    fn slo_violation_fires_through_the_suite_with_journal_context() {
        use crate::api::{NfApp, NfDecision, SharedState};
        use crate::deployment::{DeploymentBuilder, HOST_BASE};
        use swishmem_wire::DataPacket;

        struct NoopNf;
        impl NfApp for NoopNf {
            fn process(
                &mut self,
                pkt: &DataPacket,
                _i: NodeId,
                _st: &mut dyn SharedState,
            ) -> NfDecision {
                NfDecision::Forward {
                    dst: NodeId(HOST_BASE),
                    pkt: *pkt,
                }
            }
        }

        let mut dep = DeploymentBuilder::new(3).build(|_| Box::new(NoopNf));
        dep.settle();
        let handle = dep.attach_journal(1 << 12);
        let mut suite = OracleSuite::attach(&mut dep, OracleConfig::new(SimTime(1 << 60)));
        suite.attach_journal(handle.clone());
        suite.set_slo(SloBudgets {
            failover_gap: SimDuration::nanos(1),
            ..SloBudgets::default()
        });

        let leader = NodeId(u16::MAX - 1);
        {
            let mut col = handle.borrow_mut();
            col.record(jrec(
                1_000,
                leader.0,
                CtrlEvent::Suspect {
                    target: NodeId(u16::MAX),
                    silence_ns: 400,
                    timeout_ns: 350,
                },
            ));
            col.record(jrec(
                1_100,
                leader.0,
                CtrlEvent::ElectionStart {
                    ballot: 257,
                    timeout_ns: 350,
                },
            ));
            col.record(jrec(
                1_200,
                leader.0,
                CtrlEvent::LeaderElected {
                    leader,
                    epoch: 2,
                    slot: 8,
                },
            ));
        }
        suite.poll(&dep);
        let v = suite.violation().expect("budget violation must fire");
        assert!(
            matches!(
                v.kind,
                ViolationKind::FailoverGapExceeded {
                    epoch: 2,
                    gap_ns: 600,
                    ..
                }
            ),
            "{v}"
        );
        assert!(!suite.violation_context().is_empty());
        let report = suite.violation_report().unwrap();
        assert!(report.contains("failover SLO broken"), "{report}");
        assert!(report.contains("election started"), "{report}");
    }

    #[test]
    fn dual_leader_violation_displays_both_replicas() {
        let v = Violation {
            at: SimTime(999),
            kind: ViolationKind::DualLeader {
                a: NodeId(u16::MAX),
                b: NodeId(u16::MAX - 1),
            },
        };
        let s = v.to_string();
        assert!(s.contains("ctrl"), "{s}");
        assert!(s.contains("n65534"), "{s}");
        assert!(s.contains("dual leader"), "{s}");
    }
}

//! Pure CRDT reference implementations (§6.2).
//!
//! These are the mathematical objects the in-switch EWO register layouts
//! implement with `(version, value)` pair registers. Keeping a pure,
//! heap-based implementation beside the register-based one lets the
//! property-test suite verify the CRDT laws (commutativity, associativity,
//! idempotence, monotonicity) and lets the experiments compare in-switch
//! results against an oracle.

use swishmem_wire::NodeId;

/// State-based CRDT interface: a join-semilattice with a monotone `merge`.
pub trait Crdt: Clone {
    /// Join this replica's state with another's (least upper bound).
    fn merge(&mut self, other: &Self);
}

/// Grow-only counter: one non-decreasing slot per switch (§6.2: "an
/// increment-only counter can be implemented by maintaining a vector of
/// counter values, one per switch").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GCounter {
    slots: Vec<u64>,
}

impl GCounter {
    /// A counter over `n` replicas.
    pub fn new(n: usize) -> GCounter {
        GCounter { slots: vec![0; n] }
    }

    /// Increment this switch's slot.
    pub fn increment(&mut self, id: NodeId, delta: u64) {
        let i = id.index() % self.slots.len().max(1);
        self.slots[i] += delta;
    }

    /// Read: the sum of all slots.
    pub fn read(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// This replica's slot value.
    pub fn slot(&self, id: NodeId) -> u64 {
        self.slots[id.index() % self.slots.len().max(1)]
    }
}

impl Crdt for GCounter {
    fn merge(&mut self, other: &Self) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (i, &v) in other.slots.iter().enumerate() {
            self.slots[i] = self.slots[i].max(v);
        }
    }
}

/// Positive-negative counter: two G-counters ("further extensions support
/// decrement operations", §6.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PnCounter {
    inc: GCounter,
    dec: GCounter,
}

impl PnCounter {
    /// A counter over `n` replicas.
    pub fn new(n: usize) -> PnCounter {
        PnCounter {
            inc: GCounter::new(n),
            dec: GCounter::new(n),
        }
    }

    /// Add `delta` (may be negative).
    pub fn add(&mut self, id: NodeId, delta: i64) {
        if delta >= 0 {
            self.inc.increment(id, delta as u64);
        } else {
            self.dec.increment(id, delta.unsigned_abs());
        }
    }

    /// Read: increments minus decrements.
    pub fn read(&self) -> i64 {
        self.inc.read() as i64 - self.dec.read() as i64
    }
}

impl Crdt for PnCounter {
    fn merge(&mut self, other: &Self) {
        self.inc.merge(&other.inc);
        self.dec.merge(&other.dec);
    }
}

/// Last-writer-wins cell: value tagged with a totally-ordered version
/// (timestamp + switch-id tiebreak, see [`crate::version`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LwwCell {
    /// Current version.
    pub version: u64,
    /// Current value.
    pub value: u64,
}

impl LwwCell {
    /// Write with a version produced by a [`crate::version::SwitchClock`].
    pub fn write(&mut self, version: u64, value: u64) {
        if version > self.version {
            self.version = version;
            self.value = value;
        }
    }

    /// Read the current value.
    pub fn read(&self) -> u64 {
        self.value
    }
}

impl Crdt for LwwCell {
    fn merge(&mut self, other: &Self) {
        if other.version > self.version {
            *self = *other;
        }
    }
}

/// Windowed counter slot: `(epoch, count)` where a higher epoch supersedes
/// and counts merge by max within an epoch. This is the per-slot lattice
/// the rate-limiter registers use — it *is* a join-semilattice
/// (lexicographic product of max-orders), so the standard CRDT laws hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowedSlot {
    /// Window epoch.
    pub epoch: u64,
    /// Count within the epoch.
    pub count: u64,
}

impl WindowedSlot {
    /// Add to the count, rolling the epoch forward if needed.
    pub fn add(&mut self, epoch: u64, delta: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.count = delta;
        } else if epoch == self.epoch {
            self.count += delta;
        }
        // Stale-epoch adds are dropped: the window has already closed.
    }

    /// Count if the slot is in `epoch`, else 0.
    pub fn read_at(&self, epoch: u64) -> u64 {
        if self.epoch == epoch {
            self.count
        } else {
            0
        }
    }
}

impl Crdt for WindowedSlot {
    fn merge(&mut self, other: &Self) {
        if other.epoch > self.epoch {
            *self = *other;
        } else if other.epoch == self.epoch {
            self.count = self.count.max(other.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcounter_concurrent_increments_all_survive() {
        let mut a = GCounter::new(3);
        let mut b = GCounter::new(3);
        a.increment(NodeId(0), 5);
        b.increment(NodeId(1), 7);
        a.merge(&b);
        b.merge(&a);
        assert_eq!(a.read(), 12);
        assert_eq!(a, b);
    }

    #[test]
    fn gcounter_merge_idempotent() {
        let mut a = GCounter::new(2);
        a.increment(NodeId(0), 3);
        let snapshot = a.clone();
        a.merge(&snapshot);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn gcounter_monotone_under_merge() {
        let mut a = GCounter::new(2);
        let mut b = GCounter::new(2);
        a.increment(NodeId(0), 10);
        b.increment(NodeId(0), 4); // stale view of slot 0
        let before = a.read();
        a.merge(&b);
        assert!(
            a.read() >= before,
            "counter must never decrease (§6.2 monotonicity)"
        );
        assert_eq!(a.read(), 10);
    }

    #[test]
    fn pncounter_supports_decrement() {
        let mut a = PnCounter::new(2);
        let mut b = PnCounter::new(2);
        a.add(NodeId(0), 10);
        b.add(NodeId(1), -4);
        a.merge(&b);
        assert_eq!(a.read(), 6);
    }

    #[test]
    fn lww_higher_version_wins_regardless_of_order() {
        let mut a = LwwCell::default();
        let mut b = LwwCell::default();
        a.write(5, 100);
        b.write(9, 200);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.value, 200);
    }

    #[test]
    fn lww_stale_write_ignored() {
        let mut a = LwwCell::default();
        a.write(9, 200);
        a.write(5, 100);
        assert_eq!(a.read(), 200);
    }

    #[test]
    fn windowed_epoch_roll_resets_count() {
        let mut s = WindowedSlot::default();
        s.add(1, 10);
        s.add(1, 5);
        assert_eq!(s.read_at(1), 15);
        s.add(2, 3);
        assert_eq!(s.read_at(2), 3);
        assert_eq!(s.read_at(1), 0);
        // Stale-epoch add is dropped.
        s.add(1, 100);
        assert_eq!(s.read_at(2), 3);
    }

    #[test]
    fn windowed_merge_same_epoch_takes_max() {
        let mut a = WindowedSlot {
            epoch: 3,
            count: 10,
        };
        let b = WindowedSlot { epoch: 3, count: 7 };
        a.merge(&b);
        assert_eq!(a.count, 10);
        let c = WindowedSlot { epoch: 4, count: 1 };
        a.merge(&c);
        assert_eq!(a, c);
    }
}

//! The live reconfiguration engine: shared definitions.
//!
//! SwiShmem's controller "determines the register placement" (§4); this
//! module gives that placement a run-time dimension for *partitioned*
//! registers ([`crate::config::Placement::Partitioned`]): key ranges move
//! between owner sets while traffic keeps flowing.
//!
//! ## The per-range migration state machine
//!
//! ```text
//!            MigrateBegin                 MigrateDone            OwnershipCommit
//!   Idle ───────────────▶ Transferring ───────────────▶ DualOwner ─────────▶ Committed
//!    ▲                        │  crash of src/dst/owner                         │
//!    │                        ▼                                                 │
//!    └────────────────── Aborted ◀──────── (controller re-asserts owners) ──────┘
//! ```
//!
//! * **Transferring** — every switch records the destination as the
//!   range's `mig_to`; the range's effective write chain becomes
//!   `owners ++ [dst]`, so the *destination* is the acking tail: a write
//!   acknowledged during the window is at the destination by
//!   construction, which is what makes "no committed write lost" hold
//!   under arbitrary chunk/forward loss. Meanwhile the source streams
//!   the range in numbered passes of [`swishmem_wire::swish::MigrateChunk`]s
//!   (seq-guarded, idempotent) until a full pass lands.
//! * **DualOwner** — the destination holds a complete copy (one full
//!   chunk pass plus every acked dual-window write) but ownership has not
//!   flipped; the controller immediately issues the commit.
//! * **Committed** — a per-range epoch bump installs the new owner set
//!   atomically at each switch (stale epochs are ignored, re-broadcasts
//!   are idempotent).
//!
//! The concrete planner/driver lives in [`crate::controller`]; the switch
//! side (routing, chunk streaming, dual-owner forwarding) lives in
//! [`crate::layer`]. This module holds what they share: the range-table
//! view, its data-plane encoding, the state-machine vocabulary, and the
//! trigger-token scheme that lets fault schedules inject migrations.

use std::fmt;

use swishmem_simnet::SimTime;
use swishmem_wire::swish::{Key, RegId};
use swishmem_wire::NodeId;

/// Maximum directory ranges per partitioned register encodable in the
/// data-plane range table.
pub const MAX_RANGES: usize = 16;

/// Maximum owners per range (a per-range mini-chain).
pub const MAX_RANGE_OWNERS: usize = 4;

/// Cells per range in the data-plane encoding:
/// `start, end, epoch, mig_to(+1), n_owners, owners[MAX_RANGE_OWNERS](+1)`.
pub const RANGE_CELLS: usize = 5 + MAX_RANGE_OWNERS;

/// Length of the per-register range-table register array (`rangeblk`):
/// cell 0 holds the range count, then [`RANGE_CELLS`] cells per range.
pub const RANGEBLK_LEN: usize = 1 + MAX_RANGES * RANGE_CELLS;

/// One key range's ownership as installed on a switch (the unit the
/// migration state machine operates on).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeView {
    /// First key (inclusive).
    pub start: Key,
    /// One past the last key (exclusive).
    pub end: Key,
    /// Per-range ownership epoch (0 = never configured).
    pub epoch: u32,
    /// Migration destination while a transfer is in flight.
    pub mig_to: Option<NodeId>,
    /// Owner set; `owners[0]` is the primary (sequencer).
    pub owners: Vec<NodeId>,
}

impl RangeView {
    /// Does this range contain `key`?
    pub fn contains(&self, key: Key) -> bool {
        self.start <= key && key < self.end
    }

    /// The sequencing primary, if configured.
    pub fn primary(&self) -> Option<NodeId> {
        self.owners.first().copied()
    }

    /// The effective write chain: the owner mini-chain, extended by the
    /// migration destination as acking tail while a transfer is open.
    pub fn write_chain(&self) -> Vec<NodeId> {
        let mut v = self.owners.clone();
        if let Some(to) = self.mig_to {
            if !v.contains(&to) {
                v.push(to);
            }
        }
        v
    }
}

impl fmt::Display for RangeView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) e{} owners=[", self.start, self.end, self.epoch)?;
        for (i, o) in self.owners.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, "]")?;
        if let Some(t) = self.mig_to {
            write!(f, " ->{t}")?;
        }
        Ok(())
    }
}

/// Encode a range table into `RANGEBLK_LEN` u64 cells (the data-plane
/// representation the pipeline consults on every partitioned write).
/// Node ids are stored `+1` so cell value 0 reads back as "none".
pub fn encode_ranges(ranges: &[RangeView]) -> Vec<u64> {
    assert!(ranges.len() <= MAX_RANGES, "too many ranges");
    let mut cells = vec![0u64; RANGEBLK_LEN];
    cells[0] = ranges.len() as u64;
    for (i, r) in ranges.iter().enumerate() {
        assert!(r.owners.len() <= MAX_RANGE_OWNERS, "too many owners");
        let base = 1 + i * RANGE_CELLS;
        cells[base] = u64::from(r.start);
        cells[base + 1] = u64::from(r.end);
        cells[base + 2] = u64::from(r.epoch);
        cells[base + 3] = r.mig_to.map(|n| u64::from(n.0) + 1).unwrap_or(0);
        cells[base + 4] = r.owners.len() as u64;
        for (j, o) in r.owners.iter().enumerate() {
            cells[base + 5 + j] = u64::from(o.0) + 1;
        }
    }
    cells
}

/// Decode a range table from its cell representation; the inverse of
/// [`encode_ranges`]. Returns an empty table for an all-zero block (a
/// fresh or crash-wiped switch).
pub fn decode_ranges(cells: &[u64]) -> Vec<RangeView> {
    let n = (cells.first().copied().unwrap_or(0) as usize).min(MAX_RANGES);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let base = 1 + i * RANGE_CELLS;
        if base + RANGE_CELLS > cells.len() {
            break;
        }
        let n_owners = (cells[base + 4] as usize).min(MAX_RANGE_OWNERS);
        let owners = (0..n_owners)
            .filter(|&j| cells[base + 5 + j] != 0)
            .map(|j| NodeId((cells[base + 5 + j] - 1) as u16))
            .collect();
        let mig = cells[base + 3];
        out.push(RangeView {
            start: cells[base] as Key,
            end: cells[base + 1] as Key,
            epoch: cells[base + 2] as u32,
            mig_to: if mig == 0 {
                None
            } else {
                Some(NodeId((mig - 1) as u16))
            },
            owners,
        });
    }
    out
}

/// Phase of one range's migration (see the module-level diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// No transfer in flight.
    Idle,
    /// `MigrateBegin` broadcast; source streaming chunk passes.
    Transferring,
    /// Destination reported a complete pass; commit pending.
    DualOwner,
    /// Ownership flipped; the range is stable under its new owners.
    Committed,
    /// A crash interrupted the transfer; owners were re-asserted.
    Aborted,
}

/// One entry of the controller's reconfiguration event log — the audit
/// trail experiments and oracles read (per-range epochs in `Begin`/
/// `Commit` events must be strictly increasing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigEvent {
    /// The planner (or a trigger) decided to move a range.
    Planned {
        /// Register.
        reg: RegId,
        /// Range start.
        start: Key,
        /// Current primary.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// `MigrateBegin` broadcast at `epoch`.
    Begin {
        /// Register.
        reg: RegId,
        /// Range start.
        start: Key,
        /// Source (current primary).
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// The per-range epoch the transfer opened.
        epoch: u32,
    },
    /// Destination confirmed a complete chunk pass (dual-owner point).
    Done {
        /// Register.
        reg: RegId,
        /// Range start.
        start: Key,
        /// Destination that completed.
        to: NodeId,
        /// The pass that completed.
        pass: u32,
    },
    /// `OwnershipCommit` broadcast: the range now belongs to `owners`.
    Commit {
        /// Register.
        reg: RegId,
        /// Range start.
        start: Key,
        /// New owner set.
        owners: Vec<NodeId>,
        /// The committing per-range epoch.
        epoch: u32,
    },
    /// The transfer was abandoned (crash of a participant); the previous
    /// owner set was re-asserted at a fresh epoch.
    Abort {
        /// Register.
        reg: RegId,
        /// Range start.
        start: Key,
        /// Why.
        reason: &'static str,
    },
}

impl ReconfigEvent {
    /// The `(reg, range start)` this event concerns.
    pub fn range_key(&self) -> (RegId, Key) {
        match self {
            ReconfigEvent::Planned { reg, start, .. }
            | ReconfigEvent::Begin { reg, start, .. }
            | ReconfigEvent::Done { reg, start, .. }
            | ReconfigEvent::Commit { reg, start, .. }
            | ReconfigEvent::Abort { reg, start, .. } => (*reg, *start),
        }
    }

    /// The per-range epoch this event issued, for events that issue one.
    pub fn issued_epoch(&self) -> Option<u32> {
        match self {
            ReconfigEvent::Begin { epoch, .. } | ReconfigEvent::Commit { epoch, .. } => {
                Some(*epoch)
            }
            _ => None,
        }
    }
}

/// A timestamped [`ReconfigEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigLogEntry {
    /// When the controller logged it.
    pub time: SimTime,
    /// What happened.
    pub event: ReconfigEvent,
}

/// Controller-timer trigger tokens: bit 63 distinguishes a migration
/// trigger from the controller's ordinary timers, the rest packs the
/// move. Fault schedules inject these as plain timer events
/// (`FaultAction::Trigger`), which keeps migration-under-fault runs on
/// the engine's deterministic `(time, seq)` order.
pub const TRIGGER_BIT: u64 = 1 << 63;

/// What a trigger token asks the controller to do with the range — the
/// elastic-replica-group operations, injectable from fault schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerOp {
    /// Move the range: the target replaces the current primary.
    Move,
    /// Grow the replica group: the target joins as an additional owner
    /// (after a state transfer, like a move).
    Grow,
    /// Shrink the replica group: the target leaves the owner set (no
    /// transfer needed; surviving owners already hold all acked writes).
    Shrink,
    /// Add a controller replica to the consensus group. The token's
    /// node field carries the replica *index* (controller node ids are
    /// near `u16::MAX` and do not fit the 12-bit field); the reg/key
    /// fields are unused.
    AddCtrl,
    /// Remove a controller replica from the consensus group, by replica
    /// index (same encoding as [`TriggerOp::AddCtrl`]).
    RemoveCtrl,
}

impl TriggerOp {
    fn code(self) -> u64 {
        match self {
            TriggerOp::Move => 0,
            TriggerOp::Grow => 1,
            TriggerOp::Shrink => 2,
            TriggerOp::AddCtrl => 3,
            TriggerOp::RemoveCtrl => 4,
        }
    }

    fn from_code(c: u64) -> Option<TriggerOp> {
        match c {
            0 => Some(TriggerOp::Move),
            1 => Some(TriggerOp::Grow),
            2 => Some(TriggerOp::Shrink),
            3 => Some(TriggerOp::AddCtrl),
            4 => Some(TriggerOp::RemoveCtrl),
            _ => None,
        }
    }
}

/// Pack a "migrate the range containing `key` of `reg` to `to`" trigger.
/// Layout: bit 63 set, op in bits 60..63, reg in bits 44..60, key in
/// bits 12..44, node in bits 0..12 (switch ids are small; asserted).
pub fn trigger_token(reg: RegId, key: Key, to: NodeId) -> u64 {
    trigger_token_op(TriggerOp::Move, reg, key, to)
}

/// Pack a trigger token for an arbitrary [`TriggerOp`].
pub fn trigger_token_op(op: TriggerOp, reg: RegId, key: Key, to: NodeId) -> u64 {
    assert!(to.0 < (1 << 12), "trigger target id too large");
    TRIGGER_BIT
        | (op.code() << 60)
        | (u64::from(reg) << 44)
        | (u64::from(key) << 12)
        | u64::from(to.0)
}

/// Unpack a trigger token; `None` if `token` is not a trigger.
pub fn decode_trigger(token: u64) -> Option<(TriggerOp, RegId, Key, NodeId)> {
    if token & TRIGGER_BIT == 0 {
        return None;
    }
    let op = TriggerOp::from_code((token >> 60) & 0x7)?;
    let reg = ((token >> 44) & 0xffff) as RegId;
    let key = ((token >> 12) & 0xffff_ffff) as Key;
    let to = NodeId((token & 0xfff) as u16);
    Some((op, reg, key, to))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<RangeView> {
        vec![
            RangeView {
                start: 0,
                end: 22,
                epoch: 3,
                mig_to: Some(NodeId(2)),
                owners: vec![NodeId(0)],
            },
            RangeView {
                start: 22,
                end: 44,
                epoch: 1,
                mig_to: None,
                owners: vec![NodeId(1), NodeId(0)],
            },
            RangeView {
                start: 44,
                end: 64,
                epoch: 9,
                mig_to: None,
                owners: vec![NodeId(2)],
            },
        ]
    }

    #[test]
    fn range_table_round_trips_through_cells() {
        let t = table();
        let cells = encode_ranges(&t);
        assert_eq!(cells.len(), RANGEBLK_LEN);
        assert_eq!(decode_ranges(&cells), t);
        // Node 0 as owner/mig_to must survive the +1 offset.
        assert_eq!(decode_ranges(&encode_ranges(&[])), vec![]);
    }

    #[test]
    fn empty_block_decodes_empty() {
        assert!(decode_ranges(&vec![0u64; RANGEBLK_LEN]).is_empty());
        assert!(decode_ranges(&[]).is_empty());
    }

    #[test]
    fn write_chain_appends_destination_once() {
        let mut r = table().remove(0);
        assert_eq!(r.write_chain(), vec![NodeId(0), NodeId(2)]);
        r.owners = vec![NodeId(0), NodeId(2)];
        // Destination already an owner: no duplicate tail.
        assert_eq!(r.write_chain(), vec![NodeId(0), NodeId(2)]);
        r.mig_to = None;
        assert_eq!(r.write_chain(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn trigger_tokens_round_trip() {
        let t = trigger_token(7, 1_000_000, NodeId(2));
        assert!(t & TRIGGER_BIT != 0);
        assert_eq!(
            decode_trigger(t),
            Some((TriggerOp::Move, 7, 1_000_000, NodeId(2)))
        );
        for op in [
            TriggerOp::Move,
            TriggerOp::Grow,
            TriggerOp::Shrink,
            TriggerOp::AddCtrl,
            TriggerOp::RemoveCtrl,
        ] {
            let t = trigger_token_op(op, 3, 42, NodeId(1));
            assert_eq!(decode_trigger(t), Some((op, 3, 42, NodeId(1))));
        }
        assert_eq!(decode_trigger(5), None);
    }
}

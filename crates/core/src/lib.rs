//! # swishmem
//!
//! A reproduction of **SwiShmem: Distributed Shared State Abstractions
//! for Programmable Switches** (HotNets '20): a distributed shared-state
//! layer for data-plane programs, providing replicated shared registers
//! across a fabric of PISA switches so stateful network functions behave
//! like "one big reliable switch".
//!
//! ## Register classes (§5)
//!
//! | Class | Consistency | Write path | Read path |
//! |-------|-------------|-----------|-----------|
//! | [`RegisterClass::Sro`] | linearizable | chain replication via control plane (§6.1) | local unless pending → tail |
//! | [`RegisterClass::Ero`] | eventual | same chain writes | always local |
//! | [`RegisterClass::Ewo`] | (strong) eventual | local + async broadcast + periodic sync (§6.2) | always local |
//!
//! ## Quick start
//!
//! ```
//! use swishmem::prelude::*;
//!
//! // An NF that counts packets in a replicated G-counter.
//! struct CountNf;
//! impl NfApp for CountNf {
//!     fn process(&mut self, pkt: &DataPacket, _ingress: NodeId,
//!                st: &mut dyn SharedState) -> NfDecision {
//!         st.add(0, 0, 1);
//!         NfDecision::Forward { dst: NodeId(1000), pkt: *pkt }
//!     }
//! }
//!
//! let mut dep = DeploymentBuilder::new(3)
//!     .register(RegisterSpec::ewo_counter(0, "pkts", 16))
//!     .build(|_| Box::new(CountNf));
//! dep.settle();
//! // Inject one packet at switch 0 and let replication run.
//! let flow = FlowKey::udp("10.0.0.1".parse().unwrap(), 1,
//!                         "10.0.0.2".parse().unwrap(), 2);
//! let t = dep.now();
//! dep.inject(t, 0, 0, DataPacket::udp(flow, 0, 64));
//! dep.run_for(SimDuration::millis(10));
//! // Every replica converged on the global count.
//! assert_eq!(dep.peek(0, 0, 0), 1);
//! assert_eq!(dep.peek(2, 0, 0), 1);
//! ```

pub mod api;
pub mod config;
pub mod consensus;
pub mod controller;
pub mod crdt;
pub mod deployment;
pub mod directory;
pub mod layer;
pub mod metrics;
pub mod oracle;
pub mod reconfig;
pub mod telemetry;
pub mod typed;
pub mod version;

pub use api::{NfApp, NfDecision, SharedState};
pub use config::{
    ClockMode, MergePolicy, Placement, ReconfigPolicy, RegisterClass, RegisterSpec, SwishConfig,
};
pub use consensus::{Consensus, ConsensusError, Role};
pub use controller::{ConfigEvent, ConfigEventKind, ConsensusMetrics, Controller};
pub use deployment::{
    Deployment, DeploymentBuilder, Fabric, ReplicatedController, SwishSwitch, HOST_BASE, SPINE_BASE,
};
pub use directory::DirectoryService;
pub use layer::{ChainView, REPLICA_GROUP};
pub use metrics::{CpMetrics, DpMetrics, Histogram, HistogramSummary, SwitchMetrics};
pub use oracle::{OracleConfig, OracleSuite, ReplayGuard, SloBudgets, Violation, ViolationKind};
pub use reconfig::{
    decode_trigger, trigger_token, trigger_token_op, MigrationPhase, RangeView, ReconfigEvent,
    ReconfigLogEntry, TriggerOp,
};
pub use telemetry::journal::{
    CompactionRecord, CtrlEvent, Failover, Journal, JournalEntry, MigrationTimeline,
};
pub use telemetry::{MetricsSample, RingBuffer, TimeSeriesSampler};
pub use typed::{SharedCounter, SharedValue};
pub use version::SwitchClock;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use crate::api::{NfApp, NfDecision, SharedState};
    pub use crate::config::{ClockMode, MergePolicy, RegisterClass, RegisterSpec, SwishConfig};
    pub use crate::deployment::{Deployment, DeploymentBuilder, Fabric, SwishSwitch, HOST_BASE};
    pub use swishmem_simnet::{LinkParams, SimDuration, SimTime};
    pub use swishmem_wire::{DataPacket, FlowKey, NodeId};
}

//! The central controller (§6.3): failure detection, chain and replica
//! group reconfiguration, and recovery orchestration.
//!
//! "We assume that a central controller can detect which switches have
//! failed." Detection here is heartbeat-based: a switch silent for
//! `failure_timeout` is declared failed, removed from the chain and the
//! multicast group, and a new epoch is broadcast. A switch that starts
//! heartbeating again (fresh state after recovery) is reintroduced as a
//! *learner*: it receives new writes and a snapshot stream, and is
//! promoted to tail once it reports catch-up completion.
//!
//! # Replicated control plane (DESIGN.md §12)
//!
//! The controller can run as a singleton (the paper's model) or as one
//! replica of a consensus group. In replicated mode every state-changing
//! decision — membership epochs, range-table commits, migration intents —
//! is first chosen as a [`CtrlCmd`] decree through [`crate::consensus`]
//! (single-decree Paxos per log slot), then applied by every replica in
//! slot order. Only the acting leader *emits* the resulting fabric
//! messages; followers apply silently, so a failover promotes a replica
//! whose state already equals the leader's applied prefix. The decision
//! logic (failure detector, planner, migration driver) runs on the
//! leader against the same replicated state plus replica-local soft
//! state (heartbeat times, load counters) that every replica maintains
//! from the switches' broadcasts.

use crate::config::{RegisterSpec, SwishConfig};
use crate::consensus::{Consensus, ConsensusError, NoteKind, Role, Slot};
use crate::directory::{DirectoryService, RangeEntry};
use crate::layer::{ChainView, REPLICA_GROUP};
use crate::reconfig::{
    decode_trigger, MigrationPhase, RangeView, ReconfigEvent, ReconfigLogEntry, TriggerOp,
    MAX_RANGE_OWNERS,
};
use crate::telemetry::journal::{
    CtrlEvent, ABORT_DEST_FAILED, ABORT_OWNER_FAILED, ABORT_SOLE_OWNER_PROMOTE,
};
use swishmem_simnet::{Ctx, Node, SimDuration, SimTime};
use swishmem_wire::swish::{
    ChainConfig, CtrlCmd, CtrlHb, CtrlLead, CtrlSnap, CtrlSnapMig, CtrlSnapRange, CtrlSnapReg,
    GroupConfig, Key, MigrateBegin, OwnershipCommit, RegId, SnapshotRequest,
};
use swishmem_wire::{NodeId, Packet, PacketBody, SwishMsg};

/// A logged reconfiguration event (consumed by the failover experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigEvent {
    /// When the controller issued the new configuration.
    pub time: SimTime,
    /// The new epoch.
    pub epoch: u32,
    /// What happened.
    pub kind: ConfigEventKind,
}

/// Reconfiguration causes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigEventKind {
    /// Initial configuration broadcast.
    Bootstrap,
    /// A switch was declared failed and removed.
    Failed(NodeId),
    /// A recovered switch joined as a learner (snapshot initiated).
    LearnerAdded(NodeId),
    /// A learner finished catch-up and became the tail.
    Promoted(NodeId),
    /// A controller replica won an election (replicated mode only).
    LeaderElected(NodeId),
    /// A controller replica joined the consensus group (a committed
    /// `AddReplica` decree; replicated mode only).
    ReplicaAdded(NodeId),
    /// A controller replica left the consensus group.
    ReplicaRemoved(NodeId),
}

/// Aggregate consensus counters of one controller replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsensusMetrics {
    /// Consensus protocol messages this replica sent (all phases +
    /// heartbeats + leader announcements).
    pub msgs_sent: u64,
    /// Leader changes observed in the committed log prefix.
    pub leader_changes: u64,
    /// Elections this replica started.
    pub elections: u64,
    /// Contiguously chosen log prefix (gauge).
    pub commit: u64,
    /// Log compactions applied (register-window recycles).
    pub log_compactions: u64,
    /// Bytes of controller state persisted into the snapshot register
    /// region across all compactions.
    pub snapshot_bytes: u64,
    /// Failure-detector suspicion transitions (a healthy-looking leader
    /// crossing the phi threshold counts once per episode).
    pub suspect_events: u64,
    /// Directory lookups served by this replica while NOT leading
    /// (lease-gated follower reads).
    pub follower_reads: u64,
}

/// An in-flight range migration, controller side.
#[derive(Debug, Clone)]
struct Mig {
    from: NodeId,
    to: NodeId,
    /// The per-range epoch the transfer opened under.
    epoch: u32,
    phase: MigrationPhase,
    /// The owner set to install once the destination holds the range.
    commit_owners: Vec<NodeId>,
}

/// Controller-side per-range reconfiguration state. The key-range bounds
/// themselves live in the directory; this carries what the directory
/// does not: the per-range epoch counter and the migration state
/// machine. A `Vec` (not a map) so every iteration order that reaches
/// the wire is deterministic.
#[derive(Debug, Clone)]
struct RangeMeta {
    reg: RegId,
    start: Key,
    end: Key,
    /// Epoch of the last `OwnershipCommit` broadcast for this range.
    committed_epoch: u32,
    /// Highest per-range epoch ever issued (strictly increases across
    /// `MigrateBegin` and `OwnershipCommit`).
    issued_epoch: u32,
    mig: Option<Mig>,
    /// Planner holdoff after a commit, so one hot range does not
    /// ping-pong between talkers every planning window. Replica-local
    /// soft state (stamped at apply time): it gates *decisions*, never
    /// command application, so replicas may disagree on it harmlessly.
    cooldown_until: Option<SimTime>,
}

/// Replica-mode state: the consensus instance plus the apply cursor and
/// election timing.
struct Rep {
    cons: Consensus,
    /// Next slot to apply (slots below are applied into controller state).
    applied: Slot,
    /// Last time a leader beacon (or election win) was seen.
    last_leader_hb: SimTime,
    /// Last time this replica started an election (retry pacing).
    last_attempt: SimTime,
    /// Last beacon heard per group member, keyed by node id (runtime
    /// reconfiguration makes positional indexing unsound — the group
    /// can grow, shrink, and reorder). A leader that cannot hear a
    /// quorum within `failure_timeout` demotes itself — its decrees
    /// cannot commit anyway, and self-demotion bounds how long an
    /// isolated old leader keeps *acting* (emitting resyncs) after the
    /// group moved on.
    peer_hb: Vec<(NodeId, SimTime)>,
    /// Leader-beacon inter-arrival history (nanoseconds, newest last),
    /// feeding the phi-accrual-style failure detector.
    hb_gaps: Vec<u64>,
    /// Whether this replica currently suspects the leader (transition
    /// tracking for the `suspect_events` counter).
    suspected: bool,
    /// Highest `Compact` boundary this replica proposed as leader
    /// (suppresses duplicate proposals while one is in flight).
    last_compact_upto: Slot,
    /// Operator-requested membership changes `(replica, add)` not yet
    /// reflected in the consensus group. Stored at *every* replica the
    /// trigger reached: whoever leads re-proposes until the group
    /// matches, so a decree racing a leader crash is never lost.
    pending_member: Vec<(NodeId, bool)>,
    msgs_sent: u64,
    elections: u64,
    suspect_events: u64,
    follower_reads: u64,
    snapshot_bytes: u64,
}

/// Leader-beacon inter-arrival samples retained by the detector.
const HB_HISTORY: usize = 8;

/// Effect sink for command application: followers apply state changes
/// silently (`emit == false`); the leader and the singleton also send
/// the resulting fabric messages.
struct Io<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    emit: bool,
}

impl Io<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn send(&mut self, to: NodeId, body: PacketBody) -> bool {
        if self.emit {
            self.ctx.send(to, body);
        }
        self.emit
    }

    fn set_group(&mut self, members: Vec<NodeId>) {
        if self.emit {
            self.ctx.set_group(REPLICA_GROUP, members);
        }
    }
}

/// The controller node: a singleton, or one replica of the consensus
/// group (see [`Controller::replica`]).
pub struct Controller {
    cfg: SwishConfig,
    switches: Vec<NodeId>,
    /// Register declarations (the reconfiguration engine needs to know
    /// which registers are partitioned and how many keys they span).
    specs: Vec<RegisterSpec>,
    /// Per switch: (last heartbeat time, epoch the switch reported).
    /// Replica-local soft state: switches heartbeat every replica.
    last_hb: Vec<(NodeId, SimTime, u32)>,
    view: ChainView,
    events: Vec<ConfigEvent>,
    /// The partitioned-state directory (§7/§9 extension). Empty unless
    /// registers were partitioned via [`Controller::directory_mut`].
    directory: DirectoryService,
    rmeta: Vec<RangeMeta>,
    reconfig_log: Vec<ReconfigLogEntry>,
    /// Guards `on_start` re-entry: the engine re-dispatches `on_start`
    /// when a crashed node recovers, which must re-arm timers but not
    /// re-bootstrap state.
    started: bool,
    /// Whether the `Bootstrap` decree has been applied. Replicated state
    /// (set by `broadcast`, restored from snapshots) — the event log is
    /// NOT a faithful mirror after a snapshot install, so bootstrap
    /// dedup cannot scan it.
    boot_done: bool,
    rep: Option<Rep>,
}

const CHECK_TIMER: u64 = 1;
const PLAN_TIMER: u64 = 2;
const RESYNC_TIMER: u64 = 3;
const REP_TICK: u64 = 4;

impl Controller {
    /// A singleton controller managing `switches` (initial chain =
    /// declaration order) running the given register declarations.
    pub fn new(cfg: SwishConfig, switches: Vec<NodeId>, specs: Vec<RegisterSpec>) -> Controller {
        Controller {
            cfg,
            switches: switches.clone(),
            specs,
            last_hb: Vec::new(),
            view: ChainView {
                epoch: 0,
                chain: switches,
                learners: vec![],
            },
            events: Vec::new(),
            directory: DirectoryService::new(),
            rmeta: Vec::new(),
            reconfig_log: Vec::new(),
            started: false,
            boot_done: false,
            rep: None,
        }
    }

    /// Controller replica `idx` of `group` (replica node ids, index
    /// order). Replica 0 bootstraps the group by electing itself at
    /// start; the others begin as followers.
    pub fn replica(
        cfg: SwishConfig,
        switches: Vec<NodeId>,
        specs: Vec<RegisterSpec>,
        idx: u8,
        group: Vec<NodeId>,
    ) -> Controller {
        let me = group[idx as usize];
        Controller::replica_at(cfg, switches, specs, idx, me, group)
    }

    /// A spare controller replica: consensus-capable but NOT a member of
    /// `group` yet. It stays passive (never campaigns, gets no catch-up
    /// traffic) until a committed `AddReplica` decree admits it — the
    /// runtime path for replacing a dead replica.
    pub fn spare(
        cfg: SwishConfig,
        switches: Vec<NodeId>,
        specs: Vec<RegisterSpec>,
        idx: u8,
        me: NodeId,
        group: Vec<NodeId>,
    ) -> Controller {
        Controller::replica_at(cfg, switches, specs, idx, me, group)
    }

    fn replica_at(
        cfg: SwishConfig,
        switches: Vec<NodeId>,
        specs: Vec<RegisterSpec>,
        idx: u8,
        me: NodeId,
        group: Vec<NodeId>,
    ) -> Controller {
        let peer_hb = group
            .iter()
            .copied()
            .filter(|&g| g != me)
            .map(|g| (g, SimTime::ZERO))
            .collect();
        let mut c = Controller::new(cfg, switches, specs);
        c.rep = Some(Rep {
            cons: Consensus::new(me, idx, group),
            applied: 0,
            last_leader_hb: SimTime::ZERO,
            last_attempt: SimTime::ZERO,
            peer_hb,
            hb_gaps: Vec::new(),
            suspected: false,
            last_compact_upto: 0,
            pending_member: Vec::new(),
            msgs_sent: 0,
            elections: 0,
            suspect_events: 0,
            follower_reads: 0,
            snapshot_bytes: 0,
        });
        c
    }

    /// Mutable access to the directory service, for declaring partitioned
    /// registers before the simulation starts.
    pub fn directory_mut(&mut self) -> &mut DirectoryService {
        &mut self.directory
    }

    /// Read access to the directory service.
    pub fn directory(&self) -> &DirectoryService {
        &self.directory
    }

    /// The configuration event log.
    pub fn events(&self) -> &[ConfigEvent] {
        &self.events
    }

    /// The current configuration.
    pub fn view(&self) -> &ChainView {
        &self.view
    }

    /// The reconfiguration-engine event log (planner decisions, transfer
    /// begin/done, commits, aborts).
    pub fn reconfig_log(&self) -> &[ReconfigLogEntry] {
        &self.reconfig_log
    }

    /// True if this node currently acts for the group: the singleton
    /// always does; a replica only while it leads.
    pub fn is_acting_leader(&self) -> bool {
        self.rep
            .as_ref()
            .map(|r| r.cons.role == Role::Leader)
            .unwrap_or(true)
    }

    /// The leader named by the committed log prefix (replicas), or
    /// `None` for a singleton.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.rep.as_ref().and_then(|r| r.cons.leader_hint)
    }

    /// Consensus counters (zeros for a singleton).
    pub fn consensus_metrics(&self) -> ConsensusMetrics {
        match &self.rep {
            None => ConsensusMetrics::default(),
            Some(r) => ConsensusMetrics {
                msgs_sent: r.msgs_sent,
                leader_changes: r.cons.leader_changes,
                elections: r.elections,
                commit: r.cons.commit,
                log_compactions: r.cons.compactions,
                snapshot_bytes: r.snapshot_bytes,
                suspect_events: r.suspect_events,
                follower_reads: r.follower_reads,
            },
        }
    }

    /// The sticky consensus-layer error, if this replica's log window
    /// ever overflowed (`None` for singletons and healthy replicas). The
    /// oracle suite polls this: overflow is a protocol violation once
    /// compaction exists, not a panic.
    pub fn consensus_error(&self) -> Option<ConsensusError> {
        self.rep.as_ref().and_then(|r| r.cons.error)
    }

    /// The consensus membership this replica currently believes (empty
    /// for a singleton). Changes at runtime as `AddReplica` /
    /// `RemoveReplica` decrees commit.
    pub fn consensus_group(&self) -> Vec<NodeId> {
        self.rep
            .as_ref()
            .map(|r| r.cons.group.clone())
            .unwrap_or_default()
    }

    /// The replica's consensus-log compaction boundary (0 for a
    /// singleton or before the first compaction).
    pub fn log_base(&self) -> u64 {
        self.rep.as_ref().map(|r| r.cons.base()).unwrap_or(0)
    }

    /// The controller's master range table for `reg`: directory owners
    /// plus per-range epochs and any open migration.
    pub fn range_table(&self, reg: RegId) -> Vec<RangeView> {
        self.directory
            .ranges(reg)
            .iter()
            .map(|r| {
                let meta = self
                    .rmeta
                    .iter()
                    .find(|m| m.reg == reg && m.start == r.start);
                RangeView {
                    start: r.start,
                    end: r.end,
                    epoch: meta
                        .map(|m| m.mig.as_ref().map(|g| g.epoch).unwrap_or(m.committed_epoch))
                        .unwrap_or(0),
                    mig_to: meta.and_then(|m| m.mig.as_ref().map(|g| g.to)),
                    owners: r.owners.clone(),
                }
            })
            .collect()
    }

    /// The migration phase of the range containing `key` of `reg`.
    pub fn migration_phase(&self, reg: RegId, key: Key) -> MigrationPhase {
        let Some(meta) = self
            .rmeta
            .iter()
            .find(|m| m.reg == reg && m.start <= key && key < m.end)
        else {
            return MigrationPhase::Idle;
        };
        if let Some(mig) = &meta.mig {
            return mig.phase;
        }
        // No open migration: the last logged outcome for the range.
        for e in self.reconfig_log.iter().rev() {
            if e.event.range_key() != (reg, meta.start) {
                continue;
            }
            return match e.event {
                ReconfigEvent::Commit { .. } => MigrationPhase::Committed,
                ReconfigEvent::Abort { .. } => MigrationPhase::Aborted,
                _ => MigrationPhase::Idle,
            };
        }
        MigrationPhase::Idle
    }

    /// Migrations currently in flight.
    pub fn open_migrations(&self) -> usize {
        self.rmeta.iter().filter(|m| m.mig.is_some()).count()
    }

    fn has_partitioned(&self) -> bool {
        self.specs.iter().any(|s| s.is_partitioned())
    }

    fn is_live(&self, n: NodeId) -> bool {
        self.view.chain.contains(&n) || self.view.learners.contains(&n)
    }

    fn group_members(&self) -> Vec<NodeId> {
        self.view.write_order()
    }

    // ------------------------------------------------------------------
    // Command submission and application
    // ------------------------------------------------------------------

    /// Route a decision: a singleton applies it on the spot; a leading
    /// replica proposes it as the next consensus decree (followers never
    /// submit — their decisions are skipped at the call sites).
    fn submit(&mut self, cmd: CtrlCmd, ctx: &mut Ctx<'_>) {
        if self.rep.is_none() {
            let mut io = Io { ctx, emit: true };
            self.apply_cmd(cmd, &mut io);
            return;
        }
        let rep = self.rep.as_mut().expect("replica");
        if rep.cons.role != Role::Leader || rep.cons.has_pending(&cmd) {
            return;
        }
        let out = rep.cons.enqueue(cmd);
        self.send_consensus(out, ctx);
        self.drain_chosen(ctx);
    }

    /// Record an operator membership change and propose it if leading.
    /// Every replica that saw the trigger keeps the intent; see
    /// [`Controller::flush_member_changes`].
    fn queue_member_change(&mut self, node: NodeId, add: bool, ctx: &mut Ctx<'_>) {
        let Some(rep) = self.rep.as_mut() else {
            // Singleton: membership decrees are meaningless; apply the
            // no-op directly so the event log still records the request.
            let cmd = if add {
                CtrlCmd::AddReplica { node }
            } else {
                CtrlCmd::RemoveReplica { node }
            };
            self.submit(cmd, ctx);
            return;
        };
        if !rep.pending_member.contains(&(node, add)) {
            rep.pending_member.push((node, add));
        }
        self.flush_member_changes(ctx);
    }

    /// Drop membership intents the group already reflects; as leader,
    /// propose the rest. Called on the trigger and on every replica
    /// tick, so an intent survives leader crashes and churn: whichever
    /// replica leads next re-proposes it until the decree commits.
    fn flush_member_changes(&mut self, ctx: &mut Ctx<'_>) {
        let Some(rep) = self.rep.as_mut() else { return };
        rep.pending_member
            .retain(|&(node, add)| rep.cons.group.contains(&node) != add);
        if rep.cons.role != Role::Leader {
            return;
        }
        let cmds: Vec<CtrlCmd> = rep
            .pending_member
            .iter()
            .map(|&(node, add)| {
                if add {
                    CtrlCmd::AddReplica { node }
                } else {
                    CtrlCmd::RemoveReplica { node }
                }
            })
            .collect();
        for cmd in cmds {
            self.submit(cmd, ctx);
        }
    }

    fn send_consensus(&mut self, out: Vec<(NodeId, SwishMsg)>, ctx: &mut Ctx<'_>) {
        if let Some(rep) = self.rep.as_mut() {
            rep.msgs_sent += out.len() as u64;
        }
        for (to, msg) in out {
            ctx.send(to, PacketBody::Swish(msg));
        }
    }

    /// Mirror the journal attachment into the consensus note buffer.
    /// Called at the top of every node callback so the pure state
    /// machine records transitions exactly while a recorder listens.
    fn sync_notes(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(rep) = self.rep.as_mut() {
            rep.cons.notes_on = ctx.journaling();
        }
    }

    /// Translate buffered consensus transition notes into journal
    /// events, stamped at the current callback's time (the transitions
    /// happened inside this callback, so the stamp is exact).
    fn drain_notes(&mut self, ctx: &mut Ctx<'_>) {
        let Some(rep) = self.rep.as_mut() else { return };
        if !rep.cons.notes_on {
            return;
        }
        for n in rep.cons.take_notes() {
            let ev = match n.kind {
                NoteKind::PrepareIssued => CtrlEvent::Propose {
                    slot: n.slot,
                    ballot: n.ballot,
                },
                NoteKind::PromiseGranted => CtrlEvent::Promise {
                    slot: n.slot,
                    ballot: n.ballot,
                },
                NoteKind::Accepted => CtrlEvent::Accepted {
                    slot: n.slot,
                    ballot: n.ballot,
                },
                NoteKind::Chosen => CtrlEvent::Chosen {
                    slot: n.slot,
                    ballot: n.ballot,
                },
                NoteKind::Learned => CtrlEvent::Learned { slot: n.slot },
                NoteKind::StepDown => CtrlEvent::StepDown {
                    slot: n.slot,
                    ballot: n.ballot,
                },
            };
            ev.emit(ctx);
        }
    }

    /// Journal the semantic effect of a decree after applying it.
    /// Leader/singleton side only so each transition appears once.
    fn journal_decree(&mut self, slot: Slot, cmd: &CtrlCmd, ctx: &mut Ctx<'_>) {
        match *cmd {
            CtrlCmd::Reassert { leader } => CtrlEvent::LeaderElected {
                leader,
                epoch: self.view.epoch,
                slot,
            }
            .emit(ctx),
            CtrlCmd::AddReplica { node } => CtrlEvent::MemberChange {
                node,
                add: true,
                slot,
            }
            .emit(ctx),
            CtrlCmd::RemoveReplica { node } => CtrlEvent::MemberChange {
                node,
                add: false,
                slot,
            }
            .emit(ctx),
            _ => {}
        }
    }

    /// Apply every newly chosen decree, in slot order. Only the leader
    /// emits the resulting fabric messages.
    fn drain_chosen(&mut self, ctx: &mut Ctx<'_>) {
        self.drain_notes(ctx);
        loop {
            let Some(rep) = self.rep.as_mut() else { return };
            if rep.applied >= rep.cons.commit {
                return;
            }
            let slot = rep.applied;
            let cmd = rep.cons.chosen_at(slot).expect("slot below commit");
            rep.applied += 1;
            let emit = rep.cons.role == Role::Leader;
            if ctx.journaling() {
                CtrlEvent::Applied {
                    slot,
                    tag: cmd_tag(&cmd),
                }
                .emit(ctx);
            }
            let journal_cmd = (emit && ctx.journaling()).then_some(cmd);
            let mut io = Io { ctx, emit };
            self.apply_cmd(cmd, &mut io);
            if let Some(cmd) = journal_cmd {
                self.journal_decree(slot, &cmd, ctx);
            }
        }
    }

    /// Apply one decree to the replicated state. Must be deterministic
    /// given (command, state): every guard reads replicated state only —
    /// time-based heuristics (cooldown) are checked at decision time
    /// instead.
    fn apply_cmd(&mut self, cmd: CtrlCmd, io: &mut Io<'_, '_>) {
        match cmd {
            CtrlCmd::Bootstrap => {
                if self.bootstrapped() {
                    return;
                }
                self.broadcast(io, ConfigEventKind::Bootstrap);
                if self.has_partitioned() {
                    self.bootstrap_ranges(io);
                }
            }
            CtrlCmd::Reassert { leader } => {
                self.broadcast(io, ConfigEventKind::LeaderElected(leader));
                if io.emit {
                    // The new leader re-announces itself to the switches
                    // and re-asserts the range tables (anti-entropy for
                    // anything the old leader's loss left unconfirmed).
                    self.announce_lead(io);
                    self.resync_ranges(io);
                    // Failure-detection grace: heartbeat times observed
                    // as a follower may predate a partition; re-baseline
                    // so failover does not mass-expire the fabric.
                    let now = io.now();
                    for (_, t, _) in self.last_hb.iter_mut() {
                        *t = (*t).max(now);
                    }
                }
            }
            CtrlCmd::Fail { node } => {
                if !self.is_live(node) {
                    return;
                }
                self.view.chain.retain(|&n| n != node);
                self.view.learners.retain(|&n| n != node);
                self.broadcast(io, ConfigEventKind::Failed(node));
                self.handle_partitioned_failure(node, io);
            }
            CtrlCmd::Admit { node } => {
                if self.is_live(node) || !self.switches.contains(&node) {
                    return;
                }
                // A failed switch came back with fresh state: admit it as
                // a learner and start a snapshot stream from the head
                // (§6.3: "the control plane on one of the switches takes
                // a snapshot").
                self.view.learners.push(node);
                let source = self.view.head();
                self.broadcast(io, ConfigEventKind::LearnerAdded(node));
                match source {
                    Some(src) => {
                        io.send(
                            src,
                            PacketBody::Swish(SwishMsg::SnapReq(SnapshotRequest {
                                target: node,
                                epoch: self.view.epoch,
                            })),
                        );
                    }
                    None => {
                        // Nothing to catch up from: promote immediately.
                        self.view.learners.retain(|&n| n != node);
                        self.view.chain.push(node);
                        self.broadcast(io, ConfigEventKind::Promoted(node));
                    }
                }
            }
            CtrlCmd::Promote { node } => {
                if !self.view.learners.contains(&node) {
                    return;
                }
                self.view.learners.retain(|&n| n != node);
                self.view.chain.push(node);
                self.broadcast(io, ConfigEventKind::Promoted(node));
            }
            CtrlCmd::Move {
                reg,
                key,
                to,
                planned,
            } => self.start_move(reg, key, to, planned, io),
            CtrlCmd::Grow { reg, key, to } => self.start_grow(reg, key, to, io),
            CtrlCmd::Shrink { reg, key, node } => self.start_shrink(reg, key, node, io),
            CtrlCmd::MigDone {
                reg,
                start,
                node,
                epoch,
                pass,
            } => self.apply_mig_done(reg, start, node, epoch, pass, io),
            CtrlCmd::Compact { upto } => {
                // Recycle the log window at the *apply* cursor — the
                // same boundary on every replica, and never ahead of any
                // replica's own applied prefix (a committed-but-unapplied
                // suffix must keep its register cells). The snapshot that
                // makes the prefix recoverable is costed in wire bytes as
                // if persisted to the snapshot register region.
                let snap_len = SwishMsg::CtrlSnap(self.make_snapshot()).wire_len() as u64;
                let journal = io.emit && io.ctx.journaling();
                let Some(rep) = self.rep.as_mut() else { return };
                if rep.cons.compact_to(upto) {
                    rep.snapshot_bytes += snap_len;
                    if journal {
                        CtrlEvent::Compact {
                            upto,
                            snap_bytes: snap_len,
                        }
                        .emit(io.ctx);
                    }
                }
            }
            CtrlCmd::AddReplica { node } => self.apply_replica_change(node, true, io),
            CtrlCmd::RemoveReplica { node } => self.apply_replica_change(node, false, io),
        }
    }

    /// Consensus already switched membership at commit time (quorum math
    /// must change the moment the decree is chosen); the controller's
    /// apply side re-keys its replica-liveness table to the new group and
    /// logs the event for the operator.
    fn apply_replica_change(&mut self, node: NodeId, added: bool, io: &mut Io<'_, '_>) {
        let now = io.now();
        let epoch = self.view.epoch;
        let Some(rep) = self.rep.as_mut() else { return };
        let me = rep.cons.me;
        let group = rep.cons.group.clone();
        rep.peer_hb.retain(|(n, _)| group.contains(n));
        for &g in &group {
            if g != me && !rep.peer_hb.iter().any(|(n, _)| *n == g) {
                // A freshly admitted member starts with a live baseline
                // so the leader-lease check does not count it dead.
                rep.peer_hb.push((g, now));
            }
        }
        self.events.push(ConfigEvent {
            time: now,
            epoch,
            kind: if added {
                ConfigEventKind::ReplicaAdded(node)
            } else {
                ConfigEventKind::ReplicaRemoved(node)
            },
        });
    }

    fn bootstrapped(&self) -> bool {
        self.boot_done
    }

    /// Send the current configuration to one switch (idempotent; used for
    /// both broadcasts and per-switch reconciliation of lost messages).
    fn send_config_to(&self, io: &mut Io<'_, '_>, sw: NodeId) {
        io.send(
            sw,
            PacketBody::Swish(SwishMsg::Chain(ChainConfig {
                epoch: self.view.epoch,
                chain: self.view.chain.clone(),
                learners: self.view.learners.clone(),
            })),
        );
        io.send(
            sw,
            PacketBody::Swish(SwishMsg::Group(GroupConfig {
                epoch: self.view.epoch,
                members: self.group_members(),
            })),
        );
        // Replicated mode: piggyback the leader announcement so a switch
        // that missed a failover redirects its controller-bound traffic.
        if let Some(rep) = &self.rep {
            io.send(
                sw,
                PacketBody::Swish(SwishMsg::CtrlLead(CtrlLead {
                    leader: rep.cons.me,
                    ballot: rep.cons.bal,
                })),
            );
        }
    }

    fn announce_lead(&mut self, io: &mut Io<'_, '_>) {
        let Some(rep) = &self.rep else { return };
        let lead = CtrlLead {
            leader: rep.cons.me,
            ballot: rep.cons.bal,
        };
        let mut sent = 0;
        for &sw in &self.switches {
            if io.send(sw, PacketBody::Swish(SwishMsg::CtrlLead(lead))) {
                sent += 1;
            }
        }
        if let Some(rep) = self.rep.as_mut() {
            rep.msgs_sent += sent;
        }
    }

    fn broadcast(&mut self, io: &mut Io<'_, '_>, kind: ConfigEventKind) {
        self.view.epoch += 1;
        if matches!(kind, ConfigEventKind::Bootstrap) {
            self.boot_done = true;
        }
        self.events.push(ConfigEvent {
            time: io.now(),
            epoch: self.view.epoch,
            kind,
        });
        // Reprogram the fabric multicast tree (controller privilege).
        io.set_group(self.group_members());
        for &sw in &self.switches.clone() {
            self.send_config_to(io, sw);
        }
    }

    // ------------------------------------------------------------------
    // Decisions (leader / singleton only)
    // ------------------------------------------------------------------

    fn note_heartbeat(&mut self, from: NodeId, epoch: u32, now: SimTime, ctx: &mut Ctx<'_>) {
        let mut amnesia = false;
        match self.last_hb.iter_mut().find(|(n, _, _)| *n == from) {
            Some((_, t, e)) => {
                // A member that previously reported a non-zero epoch and
                // now reports 0 has restarted with fresh state faster
                // than the failure detector could notice. Left in place
                // it would serve amnesiac (wiped) replicas; demote it so
                // it rejoins through the learner/snapshot path.
                amnesia = *e > 0
                    && epoch == 0
                    && (self.view.chain.contains(&from) || self.view.learners.contains(&from));
                *t = now;
                *e = epoch;
            }
            None => self.last_hb.push((from, now, epoch)),
        }
        if !self.is_acting_leader() {
            return;
        }
        if amnesia {
            self.submit(CtrlCmd::Fail { node: from }, ctx);
        }
        let known = self.view.chain.contains(&from) || self.view.learners.contains(&from);
        if !known && self.switches.contains(&from) {
            self.submit(CtrlCmd::Admit { node: from }, ctx);
        }
    }

    fn check_liveness(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let timeout = self.cfg.failure_timeout;
        let dead: Vec<NodeId> = self
            .last_hb
            .iter()
            .filter(|(n, t, _)| {
                now.since(*t) > timeout
                    && (self.view.chain.contains(n) || self.view.learners.contains(n))
            })
            .map(|(n, _, _)| *n)
            .collect();
        for d in dead {
            self.submit(CtrlCmd::Fail { node: d }, ctx);
        }
        // Reconciliation: configuration messages ride the same lossy
        // fabric as everything else; re-send to any live switch whose
        // heartbeat reports a stale epoch. Pure messaging, no decree.
        let stale: Vec<NodeId> = self
            .last_hb
            .iter()
            .filter(|(_, _, e)| *e < self.view.epoch)
            .map(|(n, _, _)| *n)
            .collect();
        let mut io = Io { ctx, emit: true };
        for sw in stale {
            self.send_config_to(&mut io, sw);
        }
    }

    /// Decision-side planner holdoff check. Time-based, so it must never
    /// gate `apply_cmd` — replicas apply at (slightly) different times.
    fn cooldown_ok(&self, reg: RegId, key: Key, now: SimTime) -> bool {
        let Some(meta) = self
            .rmeta
            .iter()
            .find(|m| m.reg == reg && m.start <= key && key < m.end)
        else {
            return true;
        };
        meta.cooldown_until.map(|t| now >= t).unwrap_or(true)
    }

    /// One planning pass: for every partitioned range, if some switch
    /// ingressed decisively more writes than the current primary this
    /// window, migrate the range onto that talker. Counters are drained
    /// per window (per-interval semantics).
    fn run_planner(&mut self, ctx: &mut Ctx<'_>) {
        let pol = self.cfg.reconfig;
        let now = ctx.now();
        let mut moves: Vec<(RegId, Key, NodeId)> = Vec::new();
        for spec in &self.specs {
            if !spec.is_partitioned() {
                continue;
            }
            let reg = spec.id;
            for r in self.directory.ranges(reg) {
                let Some(&primary) = r.owners.first() else {
                    continue;
                };
                let Some(hot) = self.directory.hottest_requester(reg, r.start) else {
                    continue;
                };
                if r.owners.contains(&hot) {
                    continue;
                }
                let hot_n = self.directory.access_count(reg, r.start, hot);
                let primary_n = self.directory.access_count(reg, r.start, primary);
                if hot_n < pol.min_writes
                    || hot_n < pol.min_advantage.saturating_mul(primary_n.max(1))
                {
                    continue;
                }
                moves.push((reg, r.start, hot));
            }
        }
        for (reg, start, to) in moves {
            // Structural guards (open migration, concurrency, liveness)
            // are re-checked at apply; the time-based cooldown is
            // decision-side only.
            if self.cooldown_ok(reg, start, now) {
                self.submit(
                    CtrlCmd::Move {
                        reg,
                        key: start,
                        to,
                        planned: true,
                    },
                    ctx,
                );
            }
        }
        self.clear_load_window();
    }

    /// Drain the per-window access counters (all replicas, so follower
    /// soft state stays bounded).
    fn clear_load_window(&mut self) {
        for spec in self.specs.clone() {
            if spec.is_partitioned() {
                self.directory.clear_accesses(spec.id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Reconfiguration engine: per-range migration driver (apply side)
    // ------------------------------------------------------------------

    fn log_reconfig(&mut self, now: SimTime, event: ReconfigEvent) {
        self.reconfig_log
            .push(ReconfigLogEntry { time: now, event });
    }

    /// Bootstrap the partitioned-register directory and per-range state:
    /// any partitioned register not explicitly partitioned by the
    /// deployment is spread evenly across all switches, and the initial
    /// table is installed everywhere via epoch-1 `OwnershipCommit`s.
    fn bootstrap_ranges(&mut self, io: &mut Io<'_, '_>) {
        let now = io.now();
        for spec in self.specs.clone() {
            if !spec.is_partitioned() {
                continue;
            }
            if self.directory.ranges(spec.id).is_empty() {
                self.directory
                    .partition_even(spec.id, spec.keys, &self.switches.clone());
            }
            for r in self.directory.ranges(spec.id).to_vec() {
                self.rmeta.push(RangeMeta {
                    reg: spec.id,
                    start: r.start,
                    end: r.end,
                    committed_epoch: 1,
                    issued_epoch: 1,
                    mig: None,
                    cooldown_until: None,
                });
                self.log_reconfig(
                    now,
                    ReconfigEvent::Commit {
                        reg: spec.id,
                        start: r.start,
                        owners: r.owners.clone(),
                        epoch: 1,
                    },
                );
                self.broadcast_commit(io, spec.id, r.start, r.end, 1, &r.owners);
            }
        }
    }

    fn broadcast_commit(
        &self,
        io: &mut Io<'_, '_>,
        reg: RegId,
        start: Key,
        end: Key,
        epoch: u32,
        owners: &[NodeId],
    ) {
        for &sw in &self.switches {
            io.send(
                sw,
                PacketBody::Swish(SwishMsg::OwnershipCommit(OwnershipCommit {
                    reg,
                    start,
                    end,
                    epoch,
                    owners: owners.to_vec(),
                })),
            );
        }
    }

    fn broadcast_begin(&self, io: &mut Io<'_, '_>, m: &MigrateBegin) {
        for &sw in &self.switches {
            io.send(sw, PacketBody::Swish(SwishMsg::MigrateBegin(*m)));
        }
    }

    fn meta_idx(&self, reg: RegId, start: Key) -> Option<usize> {
        self.rmeta
            .iter()
            .position(|m| m.reg == reg && m.start == start)
    }

    /// Journal a migration lifecycle event (leader/singleton side only,
    /// so a replicated apply records each step once).
    fn journal_mig(&self, io: &mut Io<'_, '_>, ev: CtrlEvent) {
        if io.emit {
            ev.emit(io.ctx);
        }
    }

    /// Commit `owners` as the range's owner set at a fresh per-range
    /// epoch: update the directory, retire any open migration, start the
    /// planner cooldown, and broadcast the `OwnershipCommit`.
    fn commit_range(&mut self, reg: RegId, start: Key, owners: Vec<NodeId>, io: &mut Io<'_, '_>) {
        let Some(i) = self.meta_idx(reg, start) else {
            return;
        };
        let now = io.now();
        let was_dual = matches!(
            &self.rmeta[i].mig,
            Some(m) if m.phase == MigrationPhase::DualOwner
        );
        self.rmeta[i].issued_epoch += 1;
        let epoch = self.rmeta[i].issued_epoch;
        let end = self.rmeta[i].end;
        self.rmeta[i].committed_epoch = epoch;
        self.rmeta[i].mig = None;
        if was_dual {
            self.journal_mig(io, CtrlEvent::MigCommit { reg, start, epoch });
        }
        self.rmeta[i].cooldown_until = Some(now + self.cfg.reconfig.cooldown);
        self.directory.set_owners(reg, start, &owners);
        self.log_reconfig(
            now,
            ReconfigEvent::Commit {
                reg,
                start,
                owners: owners.clone(),
                epoch,
            },
        );
        self.broadcast_commit(io, reg, start, end, epoch, &owners);
    }

    /// Open a migration for the range containing `key`: `to` becomes the
    /// range's acking tail while the source streams state, and
    /// `commit_owners` is installed once a full pass lands. Shared by
    /// planner moves, trigger moves, and replica-group grows.
    fn begin_migration(
        &mut self,
        reg: RegId,
        key: Key,
        to: NodeId,
        commit_owners: Vec<NodeId>,
        planned: bool,
        io: &mut Io<'_, '_>,
    ) {
        let pol = self.cfg.reconfig;
        let Some(range) = self
            .directory
            .ranges(reg)
            .iter()
            .find(|r| r.start <= key && key < r.end)
            .cloned()
        else {
            return;
        };
        let Some(i) = self.meta_idx(reg, range.start) else {
            return;
        };
        let now = io.now();
        let Some(&from) = range.owners.first() else {
            return;
        };
        if self.rmeta[i].mig.is_some()
            || range.owners.contains(&to)
            || !self.switches.contains(&to)
            || !self.is_live(to)
            || !self.is_live(from)
            || commit_owners.is_empty()
            || commit_owners.len() > MAX_RANGE_OWNERS
            || self.open_migrations() >= pol.max_concurrent.max(1)
        {
            return;
        }
        if planned {
            self.log_reconfig(
                now,
                ReconfigEvent::Planned {
                    reg,
                    start: range.start,
                    from,
                    to,
                },
            );
        }
        self.rmeta[i].issued_epoch += 1;
        let epoch = self.rmeta[i].issued_epoch;
        self.rmeta[i].mig = Some(Mig {
            from,
            to,
            epoch,
            phase: MigrationPhase::Transferring,
            commit_owners,
        });
        self.log_reconfig(
            now,
            ReconfigEvent::Begin {
                reg,
                start: range.start,
                from,
                to,
                epoch,
            },
        );
        self.journal_mig(
            io,
            CtrlEvent::MigBegin {
                reg,
                start: range.start,
                from,
                to,
                epoch,
            },
        );
        self.broadcast_begin(
            io,
            &MigrateBegin {
                reg,
                start: range.start,
                end: range.end,
                from,
                to,
                epoch,
            },
        );
    }

    /// Move the range containing `key` so `to` becomes its primary.
    fn start_move(&mut self, reg: RegId, key: Key, to: NodeId, planned: bool, io: &mut Io<'_, '_>) {
        let Some(range) = self
            .directory
            .ranges(reg)
            .iter()
            .find(|r| r.start <= key && key < r.end)
            .cloned()
        else {
            return;
        };
        let Some(&from) = range.owners.first() else {
            return;
        };
        let commit_owners: Vec<NodeId> = range
            .owners
            .iter()
            .map(|&o| if o == from { to } else { o })
            .collect();
        self.begin_migration(reg, key, to, commit_owners, planned, io);
    }

    /// Grow the replica group of the range containing `key`: `node`
    /// joins as an additional owner after a state transfer.
    fn start_grow(&mut self, reg: RegId, key: Key, node: NodeId, io: &mut Io<'_, '_>) {
        let Some(range) = self
            .directory
            .ranges(reg)
            .iter()
            .find(|r| r.start <= key && key < r.end)
            .cloned()
        else {
            return;
        };
        let mut commit_owners = range.owners.clone();
        commit_owners.push(node);
        self.begin_migration(reg, key, node, commit_owners, false, io);
    }

    /// Shrink the replica group of the range containing `key`: `node`
    /// leaves the owner set. No transfer needed — every acked write is
    /// already applied at all owners (chain prefix property) — so this
    /// is a direct commit.
    fn start_shrink(&mut self, reg: RegId, key: Key, node: NodeId, io: &mut Io<'_, '_>) {
        let Some(range) = self
            .directory
            .ranges(reg)
            .iter()
            .find(|r| r.start <= key && key < r.end)
            .cloned()
        else {
            return;
        };
        if !range.owners.contains(&node) || range.owners.len() < 2 {
            return;
        }
        if let Some(i) = self.meta_idx(reg, range.start) {
            if self.rmeta[i].mig.is_some() {
                return; // resolve the open transfer first
            }
        }
        let owners: Vec<NodeId> = range
            .owners
            .iter()
            .copied()
            .filter(|&o| o != node)
            .collect();
        self.commit_range(reg, range.start, owners, io);
    }

    /// Apply a migration-complete decree: flip the range to its commit
    /// owners if the transfer is still the one the report describes.
    fn apply_mig_done(
        &mut self,
        reg: RegId,
        start: Key,
        node: NodeId,
        epoch: u32,
        pass: u32,
        io: &mut Io<'_, '_>,
    ) {
        let now = io.now();
        let Some(i) = self.meta_idx(reg, start) else {
            return;
        };
        let commit = match &mut self.rmeta[i].mig {
            Some(mig)
                if mig.epoch == epoch
                    && mig.to == node
                    && mig.phase == MigrationPhase::Transferring =>
            {
                mig.phase = MigrationPhase::DualOwner;
                Some((mig.to, mig.commit_owners.clone()))
            }
            _ => None, // stale/duplicate report
        };
        if let Some((to, owners)) = commit {
            self.log_reconfig(
                now,
                ReconfigEvent::Done {
                    reg,
                    start,
                    to,
                    pass,
                },
            );
            self.journal_mig(
                io,
                CtrlEvent::MigDualOwner {
                    reg,
                    start,
                    epoch,
                    pass,
                },
            );
            self.commit_range(reg, start, owners, io);
        }
    }

    /// A switch failed (or was demoted amnesiac): repair every
    /// partitioned range it participated in. Destination gone → abort
    /// (re-assert owners at a fresh epoch). Owner gone with survivors →
    /// shrink commit (survivors hold every acked write). Sole owner gone
    /// with a live transfer destination → promote the destination (it
    /// holds every write acked during the window; older state it never
    /// received is lost with the sole owner either way).
    fn handle_partitioned_failure(&mut self, d: NodeId, io: &mut Io<'_, '_>) {
        let now = io.now();
        for i in 0..self.rmeta.len() {
            let (reg, start) = (self.rmeta[i].reg, self.rmeta[i].start);
            let Some(range) = self
                .directory
                .ranges(reg)
                .iter()
                .find(|r| r.start == start)
                .cloned()
            else {
                continue;
            };
            let mig = self.rmeta[i].mig.clone();
            let survivors: Vec<NodeId> = range.owners.iter().copied().filter(|&o| o != d).collect();
            if let Some(mig) = mig {
                if mig.to == d {
                    self.log_reconfig(
                        now,
                        ReconfigEvent::Abort {
                            reg,
                            start,
                            reason: "destination failed",
                        },
                    );
                    self.journal_mig(
                        io,
                        CtrlEvent::MigAbort {
                            reg,
                            start,
                            epoch: mig.epoch,
                            reason: ABORT_DEST_FAILED,
                        },
                    );
                    // Re-assert the current owners at a fresh epoch:
                    // clears `mig_to` at every switch and stops the
                    // source's streamer.
                    self.commit_range(reg, start, range.owners.clone(), io);
                } else if range.owners.contains(&d) {
                    if survivors.is_empty() {
                        self.log_reconfig(
                            now,
                            ReconfigEvent::Abort {
                                reg,
                                start,
                                reason: "sole owner failed; promoting destination",
                            },
                        );
                        self.journal_mig(
                            io,
                            CtrlEvent::MigAbort {
                                reg,
                                start,
                                epoch: mig.epoch,
                                reason: ABORT_SOLE_OWNER_PROMOTE,
                            },
                        );
                        self.commit_range(reg, start, vec![mig.to], io);
                    } else {
                        self.log_reconfig(
                            now,
                            ReconfigEvent::Abort {
                                reg,
                                start,
                                reason: "owner failed during transfer",
                            },
                        );
                        self.journal_mig(
                            io,
                            CtrlEvent::MigAbort {
                                reg,
                                start,
                                epoch: mig.epoch,
                                reason: ABORT_OWNER_FAILED,
                            },
                        );
                        self.commit_range(reg, start, survivors, io);
                    }
                }
            } else if range.owners.contains(&d) && !survivors.is_empty() {
                // Plain owner failure: shrink the replica group.
                self.commit_range(reg, start, survivors, io);
            }
            // Sole owner failed with no transfer in flight: the range's
            // state dies with it; the table is left pointing at the
            // owner so writes resume if it returns (the oracle taints
            // such ranges).
        }
    }

    /// Periodic anti-entropy for the range tables: re-broadcast every
    /// range's committed ownership (and any open transfer) to every
    /// switch. Idempotent at the receivers — per-range epochs guard the
    /// installs — and self-healing for crash-wiped tables and lost
    /// control messages.
    fn resync_ranges(&mut self, io: &mut Io<'_, '_>) {
        for i in 0..self.rmeta.len() {
            let m = self.rmeta[i].clone();
            let Some(range) = self
                .directory
                .ranges(m.reg)
                .iter()
                .find(|r| r.start == m.start)
                .cloned()
            else {
                continue;
            };
            self.broadcast_commit(io, m.reg, m.start, m.end, m.committed_epoch, &range.owners);
            if let Some(mig) = &m.mig {
                self.broadcast_begin(
                    io,
                    &MigrateBegin {
                        reg: m.reg,
                        start: m.start,
                        end: m.end,
                        from: mig.from,
                        to: mig.to,
                        epoch: mig.epoch,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Replica plumbing
    // ------------------------------------------------------------------

    fn rep_tick(&mut self, ctx: &mut Ctx<'_>) {
        let hb_interval = self.cfg.heartbeat_interval;
        let retry_pace = self.cfg.failure_timeout;
        let cfg = self.cfg;
        let Some(rep) = self.rep.as_mut() else { return };
        let now = ctx.now();
        let me = rep.cons.me;
        // Leader lease: a leader that cannot hear a quorum of peers
        // within `failure_timeout` cannot commit anything either — stop
        // acting so an isolated old leader bounds its own tenure. (This
        // same lease is what bounds follower-read staleness: every
        // lookup a *deposed-but-unaware* leader can serve is confined to
        // this window.)
        if rep.cons.role == Role::Leader {
            let group = rep.cons.group.clone();
            let heard = rep
                .peer_hb
                .iter()
                .filter(|(n, t)| *n != me && group.contains(n) && now.since(*t) <= retry_pace)
                .count();
            if heard + 1 < rep.cons.quorum() {
                if ctx.journaling() {
                    CtrlEvent::LeaseLost {
                        heard: heard as u32,
                        quorum: rep.cons.quorum() as u32,
                    }
                    .emit(ctx);
                }
                rep.cons.on_restart();
                rep.last_leader_hb = now;
                rep.last_attempt = now;
            }
        }
        let is_leader = rep.cons.role == Role::Leader;
        // Liveness beacon both ways: the leader's suppresses elections,
        // a follower's reports its committed prefix for learn-replay.
        let hb = CtrlHb {
            from: me,
            ballot: rep.cons.bal,
            commit: rep.cons.commit,
            leader: is_leader,
        };
        let peers: Vec<NodeId> = rep
            .cons
            .group
            .iter()
            .copied()
            .filter(|&p| p != me)
            .collect();
        rep.msgs_sent += peers.len() as u64;
        for p in peers {
            ctx.send(p, PacketBody::Swish(SwishMsg::CtrlHb(hb)));
        }
        // Loss recovery for in-flight proposals.
        let out = rep.cons.retransmit();
        self.send_consensus(out, ctx);
        self.drain_chosen(ctx);
        // An established leader decrees the initial configuration if the
        // group has not bootstrapped yet (the singleton path does this
        // directly in `on_start`; here it must ride the log).
        if self
            .rep
            .as_ref()
            .is_some_and(|r| r.cons.role == Role::Leader)
            && !self.bootstrapped()
        {
            self.submit(CtrlCmd::Bootstrap, ctx);
        }
        // Log compaction: once the window crosses the threshold and the
        // leader's apply cursor has caught up with commit (so the decree
        // boundary captures exactly the applied prefix), propose a
        // `Compact`. `last_compact_upto` suppresses re-proposing while
        // one is in flight.
        let compact_upto = self.rep.as_ref().and_then(|r| {
            (r.cons.role == Role::Leader
                && r.applied == r.cons.commit
                && r.cons.window_len() >= cfg.log_compact_threshold
                && r.cons.commit > r.last_compact_upto)
                .then_some(r.cons.commit)
        });
        if let Some(upto) = compact_upto {
            self.rep.as_mut().expect("replica").last_compact_upto = upto;
            self.submit(CtrlCmd::Compact { upto }, ctx);
        }
        // Re-propose operator membership intents the group does not yet
        // reflect (survives leader crashes between trigger and commit).
        self.flush_member_changes(ctx);
        // Election timer, phi-accrual style: with enough leader-beacon
        // inter-arrival history the suspicion threshold adapts to the
        // *observed* beacon cadence (mean + phi deviations + floor,
        // capped at 2x the static timeout) instead of the conservative
        // static `failure_timeout`. Staggered by position in the current
        // group so the first live member normally wins uncontested. A
        // spare (group does not contain us yet) never campaigns.
        let Some(rep) = self.rep.as_mut() else { return };
        let pos = rep.cons.group.iter().position(|&g| g == me);
        let stagger = hb_interval.0 * pos.unwrap_or(0) as u64;
        let timeout_ns = if cfg.adaptive_detector && rep.hb_gaps.len() >= 3 {
            let n = rep.hb_gaps.len() as u64;
            let mean = rep.hb_gaps.iter().sum::<u64>() / n;
            let dev = rep.hb_gaps.iter().map(|&g| g.abs_diff(mean)).sum::<u64>() / n;
            (mean + u64::from(cfg.detector_phi) * dev + cfg.detector_floor.0).min(2 * retry_pace.0)
        } else {
            retry_pace.0
        };
        let election_timeout = SimDuration(timeout_ns + stagger);
        if pos.is_some()
            && rep.cons.role != Role::Leader
            && now.since(rep.last_leader_hb) > election_timeout
        {
            if !rep.suspected {
                rep.suspected = true;
                rep.suspect_events += 1;
                if ctx.journaling() {
                    CtrlEvent::Suspect {
                        target: rep.cons.leader_hint.unwrap_or(me),
                        silence_ns: now.since(rep.last_leader_hb).0,
                        timeout_ns: election_timeout.0,
                    }
                    .emit(ctx);
                }
            }
            if now.since(rep.last_attempt) > retry_pace {
                rep.last_attempt = now;
                rep.elections += 1;
                let out = rep.cons.start_candidacy();
                if ctx.journaling() {
                    CtrlEvent::ElectionStart {
                        ballot: rep.cons.bal,
                        timeout_ns: election_timeout.0,
                    }
                    .emit(ctx);
                }
                self.send_consensus(out, ctx);
                self.drain_chosen(ctx);
            }
        }
        ctx.set_timer(hb_interval, REP_TICK);
    }

    /// Record liveness contact with a fellow replica (feeds the leader
    /// lease in `rep_tick`).
    fn note_peer(&mut self, from: NodeId, now: SimTime) {
        let Some(rep) = self.rep.as_mut() else { return };
        let member = rep.cons.group.contains(&from);
        match rep.peer_hb.iter_mut().find(|(n, _)| *n == from) {
            Some((_, t)) => *t = now,
            None if member => rep.peer_hb.push((from, now)),
            None => {}
        }
    }

    fn on_ctrl_hb(&mut self, hb: CtrlHb, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.note_peer(hb.from, now);
        let Some(rep) = self.rep.as_mut() else { return };
        if hb.leader {
            // Feed the failure detector with the beacon inter-arrival
            // gap. Gaps spanning elections or our own downtime would
            // poison the history; anything beyond 2x the static timeout
            // is discarded as not a normal-operation sample.
            let gap = now.since(rep.last_leader_hb);
            if rep.last_leader_hb != SimTime::ZERO
                && gap.0 > 0
                && gap.0 <= 2 * self.cfg.failure_timeout.0
            {
                rep.hb_gaps.push(gap.0);
                if rep.hb_gaps.len() > HB_HISTORY {
                    rep.hb_gaps.remove(0);
                }
            }
            if rep.suspected && ctx.journaling() {
                CtrlEvent::Unsuspect { target: hb.from }.emit(ctx);
            }
            rep.last_leader_hb = now;
            rep.suspected = false;
        }
        // Catch-up is for group members only: a spare that has not been
        // admitted by an `AddReplica` decree yet gets nothing (its state
        // transfer happens when the decree commits and its beacons start
        // reflecting membership).
        let member = rep.cons.group.contains(&hb.from)
            || rep
                .cons
                .old_group
                .as_ref()
                .is_some_and(|g| g.contains(&hb.from));
        if !member {
            return;
        }
        // A member below our compaction boundary cannot be healed by
        // learn-replay alone — the decrees are recycled. Send a snapshot
        // of the applied prefix; the learns below cover the suffix.
        let needs_snap = hb.commit < rep.cons.base();
        let needs_replay = hb.commit < rep.cons.commit;
        if needs_snap {
            let snap = self.make_snapshot();
            let base = snap.base;
            let msg = SwishMsg::CtrlSnap(snap);
            if ctx.journaling() {
                CtrlEvent::SnapshotSent {
                    base,
                    bytes: msg.wire_len() as u64,
                    to: hb.from,
                }
                .emit(ctx);
            }
            self.send_consensus(vec![(hb.from, msg)], ctx);
        }
        if needs_replay {
            let rep = self.rep.as_ref().expect("replica");
            let learns: Vec<(NodeId, SwishMsg)> = rep
                .cons
                .learns_since(hb.commit)
                .into_iter()
                .map(|l| (hb.from, SwishMsg::CtrlLearn(l)))
                .collect();
            self.send_consensus(learns, ctx);
        }
    }

    /// Serialize the applied controller state for a lagging replica:
    /// consensus bookkeeping up to this replica's apply cursor plus the
    /// fabric view and the full partitioned-range tables.
    fn make_snapshot(&self) -> CtrlSnap {
        let rep = self.rep.as_ref().expect("replica");
        let mut regs = Vec::new();
        for spec in self.specs.iter().filter(|s| s.is_partitioned()) {
            let ranges = self
                .directory
                .ranges(spec.id)
                .iter()
                .map(|r| {
                    let meta = self
                        .rmeta
                        .iter()
                        .find(|m| m.reg == spec.id && m.start == r.start);
                    CtrlSnapRange {
                        start: r.start,
                        end: r.end,
                        committed_epoch: meta.map(|m| m.committed_epoch).unwrap_or(0),
                        issued_epoch: meta.map(|m| m.issued_epoch).unwrap_or(0),
                        owners: r.owners.clone(),
                        mig: meta.and_then(|m| m.mig.as_ref()).map(|g| CtrlSnapMig {
                            from: g.from,
                            to: g.to,
                            epoch: g.epoch,
                            phase: phase_code(g.phase),
                            commit_owners: g.commit_owners.clone(),
                        }),
                    }
                })
                .collect();
            regs.push(CtrlSnapReg {
                reg: spec.id,
                ranges,
            });
        }
        CtrlSnap {
            from: rep.cons.me,
            base: rep.applied,
            epoch: self.view.epoch,
            chain: self.view.chain.clone(),
            learners: self.view.learners.clone(),
            group: rep.cons.group.clone(),
            leader: rep.cons.leader_hint,
            leader_changes: rep.cons.leader_changes,
            boot_done: self.boot_done,
            regs,
        }
    }

    /// Install a peer's snapshot: jump the consensus log to its base and
    /// adopt the sender's applied controller state wholesale. Refused
    /// (no-op) unless it actually advances our committed prefix.
    fn on_ctrl_snap(&mut self, s: CtrlSnap, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.note_peer(s.from, now);
        let Some(rep) = self.rep.as_mut() else { return };
        if !rep
            .cons
            .install_base(s.base, s.group.clone(), s.leader, s.leader_changes)
        {
            return;
        }
        rep.applied = s.base;
        if ctx.journaling() {
            CtrlEvent::SnapshotInstalled { base: s.base }.emit(ctx);
        }
        // Re-key peer liveness to the adopted membership.
        let me = rep.cons.me;
        let group = rep.cons.group.clone();
        rep.peer_hb.retain(|(n, _)| group.contains(n));
        for &g in &group {
            if g != me && !rep.peer_hb.iter().any(|(n, _)| *n == g) {
                rep.peer_hb.push((g, now));
            }
        }
        self.boot_done = s.boot_done;
        self.view.epoch = s.epoch;
        self.view.chain = s.chain;
        self.view.learners = s.learners;
        self.rmeta.clear();
        for rg in s.regs {
            let entries: Vec<RangeEntry> = rg
                .ranges
                .iter()
                .map(|r| RangeEntry {
                    start: r.start,
                    end: r.end,
                    owners: r.owners.clone(),
                })
                .collect();
            self.directory.install_ranges(rg.reg, entries);
            for r in rg.ranges {
                self.rmeta.push(RangeMeta {
                    reg: rg.reg,
                    start: r.start,
                    end: r.end,
                    committed_epoch: r.committed_epoch,
                    issued_epoch: r.issued_epoch,
                    mig: r.mig.map(|g| Mig {
                        from: g.from,
                        to: g.to,
                        epoch: g.epoch,
                        phase: phase_from_code(g.phase),
                        commit_owners: g.commit_owners,
                    }),
                    cooldown_until: None,
                });
            }
        }
        // Apply whatever committed suffix `install_base` retained.
        self.drain_chosen(ctx);
    }
}

/// Wire code for an in-flight migration phase (only open migrations are
/// snapshotted, so terminal phases never cross the wire).
fn phase_code(p: MigrationPhase) -> u8 {
    match p {
        MigrationPhase::Transferring => 0,
        MigrationPhase::DualOwner => 1,
        _ => u8::MAX,
    }
}

fn phase_from_code(c: u8) -> MigrationPhase {
    match c {
        0 => MigrationPhase::Transferring,
        _ => MigrationPhase::DualOwner,
    }
}

/// Stable command codes carried by `Applied` journal events.
fn cmd_tag(cmd: &CtrlCmd) -> u16 {
    match cmd {
        CtrlCmd::Bootstrap => 1,
        CtrlCmd::Reassert { .. } => 2,
        CtrlCmd::Fail { .. } => 3,
        CtrlCmd::Admit { .. } => 4,
        CtrlCmd::Promote { .. } => 5,
        CtrlCmd::Move { .. } => 6,
        CtrlCmd::Grow { .. } => 7,
        CtrlCmd::Shrink { .. } => 8,
        CtrlCmd::MigDone { .. } => 9,
        CtrlCmd::Compact { .. } => 10,
        CtrlCmd::AddReplica { .. } => 11,
        CtrlCmd::RemoveReplica { .. } => 12,
    }
}

impl Node for Controller {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.sync_notes(ctx);
        let now = ctx.now();
        if self.started {
            // Recovery re-entry: the engine re-dispatches `on_start`
            // after a crash heals. Controller state survives (modeling
            // persistent controller storage; see DESIGN.md §12), but
            // pending timers were suppressed while down — re-arm them —
            // and heartbeat ages must not count the downtime.
            for (_, t, _) in self.last_hb.iter_mut() {
                *t = now;
            }
            ctx.set_timer(self.cfg.heartbeat_interval, CHECK_TIMER);
            if self.has_partitioned() {
                ctx.set_timer(self.cfg.reconfig.resync_interval, RESYNC_TIMER);
                if self.cfg.reconfig.enabled {
                    ctx.set_timer(self.cfg.reconfig.plan_interval, PLAN_TIMER);
                }
            }
            if let Some(rep) = self.rep.as_mut() {
                // Whatever we were mid-flight on is stale; rejoin as a
                // follower and let the election timer sort leadership.
                rep.cons.on_restart();
                rep.last_leader_hb = now;
                rep.last_attempt = now;
                for (_, t) in rep.peer_hb.iter_mut() {
                    *t = now;
                }
                // Inter-arrival history spans the downtime — discard it
                // so the detector re-learns the cadence from scratch.
                rep.hb_gaps.clear();
                rep.suspected = false;
                ctx.set_timer(self.cfg.heartbeat_interval, REP_TICK);
            }
            return;
        }
        self.started = true;
        self.last_hb = self.switches.iter().map(|&s| (s, now, 0)).collect();
        let has_partitioned = self.has_partitioned();
        match self.rep.as_mut() {
            None => {
                let mut io = Io { ctx, emit: true };
                self.broadcast(&mut io, ConfigEventKind::Bootstrap);
                ctx.set_timer(self.cfg.heartbeat_interval, CHECK_TIMER);
                if self.has_partitioned() {
                    let mut io = Io { ctx, emit: true };
                    self.bootstrap_ranges(&mut io);
                    ctx.set_timer(self.cfg.reconfig.resync_interval, RESYNC_TIMER);
                    if self.cfg.reconfig.enabled {
                        ctx.set_timer(self.cfg.reconfig.plan_interval, PLAN_TIMER);
                    }
                }
            }
            Some(rep) => {
                rep.last_leader_hb = now;
                rep.last_attempt = now;
                for (_, t) in rep.peer_hb.iter_mut() {
                    *t = now;
                }
                ctx.set_timer(self.cfg.heartbeat_interval, CHECK_TIMER);
                if has_partitioned {
                    ctx.set_timer(self.cfg.reconfig.resync_interval, RESYNC_TIMER);
                    if self.cfg.reconfig.enabled {
                        ctx.set_timer(self.cfg.reconfig.plan_interval, PLAN_TIMER);
                    }
                }
                ctx.set_timer(self.cfg.heartbeat_interval, REP_TICK);
                // Replica 0 bootstraps the group: elect, then decree the
                // initial configuration (`Bootstrap` follows the win).
                if rep.cons.idx == 0 {
                    rep.elections += 1;
                    let out = rep.cons.start_candidacy();
                    self.send_consensus(out, ctx);
                    self.drain_chosen(ctx);
                }
            }
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.sync_notes(ctx);
        let PacketBody::Swish(msg) = pkt.body else {
            return;
        };
        match msg {
            SwishMsg::Heartbeat(hb) => {
                let now = ctx.now();
                self.note_heartbeat(hb.from, hb.epoch, now, ctx);
            }
            SwishMsg::DirLookup(q) => {
                // Follower reads (replicated mode): a non-leading replica
                // may answer only under a fresh leader lease — a beacon
                // within `dir_lease` proves its applied prefix is at most
                // one lease behind the leader's commits. Outside the
                // lease the lookup is dropped; the querier's CP retry
                // (which also re-targets) recovers. Singletons and
                // leaders answer unconditionally.
                if let Some(rep) = self.rep.as_mut() {
                    if rep.cons.role != Role::Leader {
                        if ctx.now().since(rep.last_leader_hb) > self.cfg.dir_lease {
                            return;
                        }
                        rep.follower_reads += 1;
                        if ctx.journaling() {
                            CtrlEvent::FollowerRead {
                                reg: q.reg,
                                key: q.key,
                            }
                            .emit(ctx);
                        }
                    }
                }
                let owners = self.directory.lookup(q.reg, q.key, q.from);
                ctx.send(
                    q.from,
                    PacketBody::Swish(SwishMsg::DirReply(swishmem_wire::swish::DirReply {
                        reg: q.reg,
                        key: q.key,
                        owners,
                    })),
                );
            }
            SwishMsg::CatchupDone(c)
                if self.view.learners.contains(&c.node) && self.is_acting_leader() =>
            {
                self.submit(CtrlCmd::Promote { node: c.node }, ctx);
            }
            SwishMsg::LoadReport(lr) => {
                for e in &lr.entries {
                    self.directory
                        .record_access(e.reg, e.start, lr.from, e.writes);
                }
            }
            SwishMsg::MigrateDone(d) => {
                if !self.is_acting_leader() {
                    return;
                }
                let Some(i) = self.meta_idx(d.reg, d.start) else {
                    return;
                };
                // Only decree reports that match the open transfer, so
                // stale/duplicate reports don't burn log slots.
                let fresh = matches!(
                    &self.rmeta[i].mig,
                    Some(mig)
                        if mig.epoch == d.epoch
                            && mig.to == d.node
                            && mig.phase == MigrationPhase::Transferring
                );
                if fresh {
                    self.submit(
                        CtrlCmd::MigDone {
                            reg: d.reg,
                            start: d.start,
                            node: d.node,
                            epoch: d.epoch,
                            pass: d.pass,
                        },
                        ctx,
                    );
                }
            }
            SwishMsg::CtrlPrepare(m) => {
                self.note_peer(m.from, ctx.now());
                let Some(rep) = self.rep.as_mut() else { return };
                let out = rep.cons.on_prepare(m);
                self.send_consensus(out, ctx);
                self.drain_chosen(ctx);
            }
            SwishMsg::CtrlPromise(m) => {
                self.note_peer(m.from, ctx.now());
                let Some(rep) = self.rep.as_mut() else { return };
                let out = rep.cons.on_promise(m);
                self.send_consensus(out, ctx);
                self.drain_chosen(ctx);
            }
            SwishMsg::CtrlAccept(m) => {
                self.note_peer(m.from, ctx.now());
                let Some(rep) = self.rep.as_mut() else { return };
                let out = rep.cons.on_accept(m);
                self.send_consensus(out, ctx);
                self.drain_chosen(ctx);
            }
            SwishMsg::CtrlAccepted(m) => {
                self.note_peer(m.from, ctx.now());
                let Some(rep) = self.rep.as_mut() else { return };
                let out = rep.cons.on_accepted(m);
                self.send_consensus(out, ctx);
                self.drain_chosen(ctx);
            }
            SwishMsg::CtrlLearn(m) => {
                self.note_peer(m.from, ctx.now());
                let Some(rep) = self.rep.as_mut() else { return };
                let out = rep.cons.on_learn(m);
                self.send_consensus(out, ctx);
                self.drain_chosen(ctx);
            }
            SwishMsg::CtrlHb(hb) => self.on_ctrl_hb(hb, ctx),
            SwishMsg::CtrlSnap(s) => self.on_ctrl_snap(s, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        self.sync_notes(ctx);
        if let Some((op, reg, key, to)) = decode_trigger(token) {
            // Replica-group reconfiguration bypasses the leader gate:
            // every replica records the operator's intent and whoever
            // leads (now or after a crash) proposes it — the trigger's
            // node field carries the replica *index* (controller ids
            // don't fit 12 bits), mapped back to the `u16::MAX - idx`
            // id scheme used by the deployment.
            match op {
                TriggerOp::AddCtrl => {
                    self.queue_member_change(NodeId(u16::MAX - to.0), true, ctx);
                    return;
                }
                TriggerOp::RemoveCtrl => {
                    self.queue_member_change(NodeId(u16::MAX - to.0), false, ctx);
                    return;
                }
                _ => {}
            }
            if !self.is_acting_leader() {
                return;
            }
            let now = ctx.now();
            match op {
                TriggerOp::Move => {
                    if self.cooldown_ok(reg, key, now) {
                        self.submit(
                            CtrlCmd::Move {
                                reg,
                                key,
                                to,
                                planned: false,
                            },
                            ctx,
                        );
                    }
                }
                TriggerOp::Grow => {
                    if self.cooldown_ok(reg, key, now) {
                        self.submit(CtrlCmd::Grow { reg, key, to }, ctx);
                    }
                }
                TriggerOp::Shrink => self.submit(CtrlCmd::Shrink { reg, key, node: to }, ctx),
                // Handled above, before the leader gate.
                TriggerOp::AddCtrl | TriggerOp::RemoveCtrl => unreachable!(),
            }
            return;
        }
        match token {
            CHECK_TIMER => {
                if self.is_acting_leader() {
                    self.check_liveness(ctx);
                }
                ctx.set_timer(self.cfg.heartbeat_interval, CHECK_TIMER);
            }
            PLAN_TIMER => {
                if self.is_acting_leader() {
                    self.run_planner(ctx);
                } else {
                    self.clear_load_window();
                }
                ctx.set_timer(self.cfg.reconfig.plan_interval, PLAN_TIMER);
            }
            RESYNC_TIMER => {
                if self.is_acting_leader() {
                    let mut io = Io { ctx, emit: true };
                    self.resync_ranges(&mut io);
                }
                ctx.set_timer(self.cfg.reconfig.resync_interval, RESYNC_TIMER);
            }
            REP_TICK => self.rep_tick(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_view_uses_declaration_order() {
        let c = Controller::new(
            SwishConfig::default(),
            vec![NodeId(2), NodeId(0), NodeId(1)],
            vec![],
        );
        assert_eq!(c.view().chain, vec![NodeId(2), NodeId(0), NodeId(1)]);
        assert_eq!(c.view().epoch, 0);
        assert!(c.events().is_empty());
        assert!(c.is_acting_leader(), "singleton always acts");
    }

    #[test]
    fn replica_followers_do_not_act() {
        let group = vec![NodeId(u16::MAX), NodeId(u16::MAX - 1), NodeId(u16::MAX - 2)];
        let c = Controller::replica(
            SwishConfig::default(),
            vec![NodeId(0), NodeId(1)],
            vec![],
            1,
            group,
        );
        assert!(!c.is_acting_leader());
        assert_eq!(c.leader_hint(), None);
    }
}

//! The central controller (§6.3): failure detection, chain and replica
//! group reconfiguration, and recovery orchestration.
//!
//! "We assume that a central controller can detect which switches have
//! failed." Detection here is heartbeat-based: a switch silent for
//! `failure_timeout` is declared failed, removed from the chain and the
//! multicast group, and a new epoch is broadcast. A switch that starts
//! heartbeating again (fresh state after recovery) is reintroduced as a
//! *learner*: it receives new writes and a snapshot stream, and is
//! promoted to tail once it reports catch-up completion.

use crate::config::SwishConfig;
use crate::directory::DirectoryService;
use crate::layer::{ChainView, REPLICA_GROUP};
use swishmem_simnet::{Ctx, Node, SimTime};
use swishmem_wire::swish::{ChainConfig, GroupConfig, SnapshotRequest};
use swishmem_wire::{NodeId, Packet, PacketBody, SwishMsg};

/// A logged reconfiguration event (consumed by the failover experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigEvent {
    /// When the controller issued the new configuration.
    pub time: SimTime,
    /// The new epoch.
    pub epoch: u32,
    /// What happened.
    pub kind: ConfigEventKind,
}

/// Reconfiguration causes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigEventKind {
    /// Initial configuration broadcast.
    Bootstrap,
    /// A switch was declared failed and removed.
    Failed(NodeId),
    /// A recovered switch joined as a learner (snapshot initiated).
    LearnerAdded(NodeId),
    /// A learner finished catch-up and became the tail.
    Promoted(NodeId),
}

/// The controller node.
pub struct Controller {
    cfg: SwishConfig,
    switches: Vec<NodeId>,
    /// Per switch: (last heartbeat time, epoch the switch reported).
    last_hb: Vec<(NodeId, SimTime, u32)>,
    view: ChainView,
    events: Vec<ConfigEvent>,
    /// The partitioned-state directory (§7/§9 extension). Empty unless
    /// registers were partitioned via [`Controller::directory_mut`].
    directory: DirectoryService,
}

const CHECK_TIMER: u64 = 1;

impl Controller {
    /// A controller managing `switches` (initial chain = declaration
    /// order).
    pub fn new(cfg: SwishConfig, switches: Vec<NodeId>) -> Controller {
        Controller {
            cfg,
            switches: switches.clone(),
            last_hb: Vec::new(),
            view: ChainView {
                epoch: 0,
                chain: switches,
                learners: vec![],
            },
            events: Vec::new(),
            directory: DirectoryService::new(),
        }
    }

    /// Mutable access to the directory service, for declaring partitioned
    /// registers before the simulation starts.
    pub fn directory_mut(&mut self) -> &mut DirectoryService {
        &mut self.directory
    }

    /// Read access to the directory service.
    pub fn directory(&self) -> &DirectoryService {
        &self.directory
    }

    /// The configuration event log.
    pub fn events(&self) -> &[ConfigEvent] {
        &self.events
    }

    /// The current configuration.
    pub fn view(&self) -> &ChainView {
        &self.view
    }

    fn group_members(&self) -> Vec<NodeId> {
        self.view.write_order()
    }

    /// Send the current configuration to one switch (idempotent; used for
    /// both broadcasts and per-switch reconciliation of lost messages).
    fn send_config_to(&self, ctx: &mut Ctx<'_>, sw: NodeId) {
        ctx.send(
            sw,
            PacketBody::Swish(SwishMsg::Chain(ChainConfig {
                epoch: self.view.epoch,
                chain: self.view.chain.clone(),
                learners: self.view.learners.clone(),
            })),
        );
        ctx.send(
            sw,
            PacketBody::Swish(SwishMsg::Group(GroupConfig {
                epoch: self.view.epoch,
                members: self.group_members(),
            })),
        );
    }

    fn broadcast(&mut self, ctx: &mut Ctx<'_>, kind: ConfigEventKind) {
        self.view.epoch += 1;
        self.events.push(ConfigEvent {
            time: ctx.now(),
            epoch: self.view.epoch,
            kind,
        });
        // Reprogram the fabric multicast tree (controller privilege).
        ctx.set_group(REPLICA_GROUP, self.group_members());
        for &sw in &self.switches.clone() {
            self.send_config_to(ctx, sw);
        }
    }

    fn note_heartbeat(&mut self, from: NodeId, epoch: u32, now: SimTime, ctx: &mut Ctx<'_>) {
        let mut amnesia = false;
        match self.last_hb.iter_mut().find(|(n, _, _)| *n == from) {
            Some((_, t, e)) => {
                // A member that previously reported a non-zero epoch and
                // now reports 0 has restarted with fresh state faster
                // than the failure detector could notice. Left in place
                // it would serve amnesiac (wiped) replicas; demote it so
                // it rejoins through the learner/snapshot path.
                amnesia = *e > 0
                    && epoch == 0
                    && (self.view.chain.contains(&from) || self.view.learners.contains(&from));
                *t = now;
                *e = epoch;
            }
            None => self.last_hb.push((from, now, epoch)),
        }
        if amnesia {
            self.view.chain.retain(|&n| n != from);
            self.view.learners.retain(|&n| n != from);
            self.broadcast(ctx, ConfigEventKind::Failed(from));
        }
        let known = self.view.chain.contains(&from) || self.view.learners.contains(&from);
        if !known && self.switches.contains(&from) {
            // A failed switch came back with fresh state: admit it as a
            // learner and start a snapshot stream from the head (§6.3:
            // "the control plane on one of the switches takes a
            // snapshot").
            self.view.learners.push(from);
            let source = self.view.head();
            self.broadcast(ctx, ConfigEventKind::LearnerAdded(from));
            match source {
                Some(src) => ctx.send(
                    src,
                    PacketBody::Swish(SwishMsg::SnapReq(SnapshotRequest {
                        target: from,
                        epoch: self.view.epoch,
                    })),
                ),
                None => {
                    // Nothing to catch up from: promote immediately.
                    self.view.learners.retain(|&n| n != from);
                    self.view.chain.push(from);
                    self.broadcast(ctx, ConfigEventKind::Promoted(from));
                }
            }
        }
    }

    fn check_liveness(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let timeout = self.cfg.failure_timeout;
        let dead: Vec<NodeId> = self
            .last_hb
            .iter()
            .filter(|(n, t, _)| {
                now.since(*t) > timeout
                    && (self.view.chain.contains(n) || self.view.learners.contains(n))
            })
            .map(|(n, _, _)| *n)
            .collect();
        for d in dead {
            self.view.chain.retain(|&n| n != d);
            self.view.learners.retain(|&n| n != d);
            self.broadcast(ctx, ConfigEventKind::Failed(d));
        }
        // Reconciliation: configuration messages ride the same lossy
        // fabric as everything else; re-send to any live switch whose
        // heartbeat reports a stale epoch.
        let stale: Vec<NodeId> = self
            .last_hb
            .iter()
            .filter(|(_, _, e)| *e < self.view.epoch)
            .map(|(n, _, _)| *n)
            .collect();
        for sw in stale {
            self.send_config_to(ctx, sw);
        }
    }
}

impl Node for Controller {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.last_hb = self.switches.iter().map(|&s| (s, now, 0)).collect();
        self.broadcast(ctx, ConfigEventKind::Bootstrap);
        ctx.set_timer(self.cfg.heartbeat_interval, CHECK_TIMER);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let PacketBody::Swish(msg) = pkt.body else {
            return;
        };
        match msg {
            SwishMsg::Heartbeat(hb) => {
                let now = ctx.now();
                self.note_heartbeat(hb.from, hb.epoch, now, ctx);
            }
            SwishMsg::DirLookup(q) => {
                let owners = self.directory.lookup(q.reg, q.key, q.from);
                ctx.send(
                    q.from,
                    PacketBody::Swish(SwishMsg::DirReply(swishmem_wire::swish::DirReply {
                        reg: q.reg,
                        key: q.key,
                        owners,
                    })),
                );
            }
            SwishMsg::CatchupDone(c) if self.view.learners.contains(&c.node) => {
                self.view.learners.retain(|&n| n != c.node);
                self.view.chain.push(c.node);
                self.broadcast(ctx, ConfigEventKind::Promoted(c.node));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == CHECK_TIMER {
            self.check_liveness(ctx);
            ctx.set_timer(self.cfg.heartbeat_interval, CHECK_TIMER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_view_uses_declaration_order() {
        let c = Controller::new(
            SwishConfig::default(),
            vec![NodeId(2), NodeId(0), NodeId(1)],
        );
        assert_eq!(c.view().chain, vec![NodeId(2), NodeId(0), NodeId(1)]);
        assert_eq!(c.view().epoch, 0);
        assert!(c.events().is_empty());
    }
}

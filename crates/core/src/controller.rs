//! The central controller (§6.3): failure detection, chain and replica
//! group reconfiguration, and recovery orchestration.
//!
//! "We assume that a central controller can detect which switches have
//! failed." Detection here is heartbeat-based: a switch silent for
//! `failure_timeout` is declared failed, removed from the chain and the
//! multicast group, and a new epoch is broadcast. A switch that starts
//! heartbeating again (fresh state after recovery) is reintroduced as a
//! *learner*: it receives new writes and a snapshot stream, and is
//! promoted to tail once it reports catch-up completion.

use crate::config::{RegisterSpec, SwishConfig};
use crate::directory::DirectoryService;
use crate::layer::{ChainView, REPLICA_GROUP};
use crate::reconfig::{
    decode_trigger, MigrationPhase, RangeView, ReconfigEvent, ReconfigLogEntry, TriggerOp,
    MAX_RANGE_OWNERS,
};
use swishmem_simnet::{Ctx, Node, SimTime};
use swishmem_wire::swish::{
    ChainConfig, GroupConfig, Key, MigrateBegin, OwnershipCommit, RegId, SnapshotRequest,
};
use swishmem_wire::{NodeId, Packet, PacketBody, SwishMsg};

/// A logged reconfiguration event (consumed by the failover experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigEvent {
    /// When the controller issued the new configuration.
    pub time: SimTime,
    /// The new epoch.
    pub epoch: u32,
    /// What happened.
    pub kind: ConfigEventKind,
}

/// Reconfiguration causes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigEventKind {
    /// Initial configuration broadcast.
    Bootstrap,
    /// A switch was declared failed and removed.
    Failed(NodeId),
    /// A recovered switch joined as a learner (snapshot initiated).
    LearnerAdded(NodeId),
    /// A learner finished catch-up and became the tail.
    Promoted(NodeId),
}

/// An in-flight range migration, controller side.
#[derive(Debug, Clone)]
struct Mig {
    from: NodeId,
    to: NodeId,
    /// The per-range epoch the transfer opened under.
    epoch: u32,
    phase: MigrationPhase,
    /// The owner set to install once the destination holds the range.
    commit_owners: Vec<NodeId>,
}

/// Controller-side per-range reconfiguration state. The key-range bounds
/// themselves live in the directory; this carries what the directory
/// does not: the per-range epoch counter and the migration state
/// machine. A `Vec` (not a map) so every iteration order that reaches
/// the wire is deterministic.
#[derive(Debug, Clone)]
struct RangeMeta {
    reg: RegId,
    start: Key,
    end: Key,
    /// Epoch of the last `OwnershipCommit` broadcast for this range.
    committed_epoch: u32,
    /// Highest per-range epoch ever issued (strictly increases across
    /// `MigrateBegin` and `OwnershipCommit`).
    issued_epoch: u32,
    mig: Option<Mig>,
    /// Planner holdoff after a commit, so one hot range does not
    /// ping-pong between talkers every planning window.
    cooldown_until: Option<SimTime>,
}

/// The controller node.
pub struct Controller {
    cfg: SwishConfig,
    switches: Vec<NodeId>,
    /// Register declarations (the reconfiguration engine needs to know
    /// which registers are partitioned and how many keys they span).
    specs: Vec<RegisterSpec>,
    /// Per switch: (last heartbeat time, epoch the switch reported).
    last_hb: Vec<(NodeId, SimTime, u32)>,
    view: ChainView,
    events: Vec<ConfigEvent>,
    /// The partitioned-state directory (§7/§9 extension). Empty unless
    /// registers were partitioned via [`Controller::directory_mut`].
    directory: DirectoryService,
    rmeta: Vec<RangeMeta>,
    reconfig_log: Vec<ReconfigLogEntry>,
}

const CHECK_TIMER: u64 = 1;
const PLAN_TIMER: u64 = 2;
const RESYNC_TIMER: u64 = 3;

impl Controller {
    /// A controller managing `switches` (initial chain = declaration
    /// order) running the given register declarations.
    pub fn new(cfg: SwishConfig, switches: Vec<NodeId>, specs: Vec<RegisterSpec>) -> Controller {
        Controller {
            cfg,
            switches: switches.clone(),
            specs,
            last_hb: Vec::new(),
            view: ChainView {
                epoch: 0,
                chain: switches,
                learners: vec![],
            },
            events: Vec::new(),
            directory: DirectoryService::new(),
            rmeta: Vec::new(),
            reconfig_log: Vec::new(),
        }
    }

    /// Mutable access to the directory service, for declaring partitioned
    /// registers before the simulation starts.
    pub fn directory_mut(&mut self) -> &mut DirectoryService {
        &mut self.directory
    }

    /// Read access to the directory service.
    pub fn directory(&self) -> &DirectoryService {
        &self.directory
    }

    /// The configuration event log.
    pub fn events(&self) -> &[ConfigEvent] {
        &self.events
    }

    /// The current configuration.
    pub fn view(&self) -> &ChainView {
        &self.view
    }

    /// The reconfiguration-engine event log (planner decisions, transfer
    /// begin/done, commits, aborts).
    pub fn reconfig_log(&self) -> &[ReconfigLogEntry] {
        &self.reconfig_log
    }

    /// The controller's master range table for `reg`: directory owners
    /// plus per-range epochs and any open migration.
    pub fn range_table(&self, reg: RegId) -> Vec<RangeView> {
        self.directory
            .ranges(reg)
            .iter()
            .map(|r| {
                let meta = self
                    .rmeta
                    .iter()
                    .find(|m| m.reg == reg && m.start == r.start);
                RangeView {
                    start: r.start,
                    end: r.end,
                    epoch: meta
                        .map(|m| m.mig.as_ref().map(|g| g.epoch).unwrap_or(m.committed_epoch))
                        .unwrap_or(0),
                    mig_to: meta.and_then(|m| m.mig.as_ref().map(|g| g.to)),
                    owners: r.owners.clone(),
                }
            })
            .collect()
    }

    /// The migration phase of the range containing `key` of `reg`.
    pub fn migration_phase(&self, reg: RegId, key: Key) -> MigrationPhase {
        let Some(meta) = self
            .rmeta
            .iter()
            .find(|m| m.reg == reg && m.start <= key && key < m.end)
        else {
            return MigrationPhase::Idle;
        };
        if let Some(mig) = &meta.mig {
            return mig.phase;
        }
        // No open migration: the last logged outcome for the range.
        for e in self.reconfig_log.iter().rev() {
            if e.event.range_key() != (reg, meta.start) {
                continue;
            }
            return match e.event {
                ReconfigEvent::Commit { .. } => MigrationPhase::Committed,
                ReconfigEvent::Abort { .. } => MigrationPhase::Aborted,
                _ => MigrationPhase::Idle,
            };
        }
        MigrationPhase::Idle
    }

    /// Migrations currently in flight.
    pub fn open_migrations(&self) -> usize {
        self.rmeta.iter().filter(|m| m.mig.is_some()).count()
    }

    fn has_partitioned(&self) -> bool {
        self.specs.iter().any(|s| s.is_partitioned())
    }

    fn is_live(&self, n: NodeId) -> bool {
        self.view.chain.contains(&n) || self.view.learners.contains(&n)
    }

    fn group_members(&self) -> Vec<NodeId> {
        self.view.write_order()
    }

    /// Send the current configuration to one switch (idempotent; used for
    /// both broadcasts and per-switch reconciliation of lost messages).
    fn send_config_to(&self, ctx: &mut Ctx<'_>, sw: NodeId) {
        ctx.send(
            sw,
            PacketBody::Swish(SwishMsg::Chain(ChainConfig {
                epoch: self.view.epoch,
                chain: self.view.chain.clone(),
                learners: self.view.learners.clone(),
            })),
        );
        ctx.send(
            sw,
            PacketBody::Swish(SwishMsg::Group(GroupConfig {
                epoch: self.view.epoch,
                members: self.group_members(),
            })),
        );
    }

    fn broadcast(&mut self, ctx: &mut Ctx<'_>, kind: ConfigEventKind) {
        self.view.epoch += 1;
        self.events.push(ConfigEvent {
            time: ctx.now(),
            epoch: self.view.epoch,
            kind,
        });
        // Reprogram the fabric multicast tree (controller privilege).
        ctx.set_group(REPLICA_GROUP, self.group_members());
        for &sw in &self.switches.clone() {
            self.send_config_to(ctx, sw);
        }
    }

    fn note_heartbeat(&mut self, from: NodeId, epoch: u32, now: SimTime, ctx: &mut Ctx<'_>) {
        let mut amnesia = false;
        match self.last_hb.iter_mut().find(|(n, _, _)| *n == from) {
            Some((_, t, e)) => {
                // A member that previously reported a non-zero epoch and
                // now reports 0 has restarted with fresh state faster
                // than the failure detector could notice. Left in place
                // it would serve amnesiac (wiped) replicas; demote it so
                // it rejoins through the learner/snapshot path.
                amnesia = *e > 0
                    && epoch == 0
                    && (self.view.chain.contains(&from) || self.view.learners.contains(&from));
                *t = now;
                *e = epoch;
            }
            None => self.last_hb.push((from, now, epoch)),
        }
        if amnesia {
            self.view.chain.retain(|&n| n != from);
            self.view.learners.retain(|&n| n != from);
            self.broadcast(ctx, ConfigEventKind::Failed(from));
            self.handle_partitioned_failure(from, ctx);
        }
        let known = self.view.chain.contains(&from) || self.view.learners.contains(&from);
        if !known && self.switches.contains(&from) {
            // A failed switch came back with fresh state: admit it as a
            // learner and start a snapshot stream from the head (§6.3:
            // "the control plane on one of the switches takes a
            // snapshot").
            self.view.learners.push(from);
            let source = self.view.head();
            self.broadcast(ctx, ConfigEventKind::LearnerAdded(from));
            match source {
                Some(src) => ctx.send(
                    src,
                    PacketBody::Swish(SwishMsg::SnapReq(SnapshotRequest {
                        target: from,
                        epoch: self.view.epoch,
                    })),
                ),
                None => {
                    // Nothing to catch up from: promote immediately.
                    self.view.learners.retain(|&n| n != from);
                    self.view.chain.push(from);
                    self.broadcast(ctx, ConfigEventKind::Promoted(from));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Reconfiguration engine: planner + per-range migration driver
    // ------------------------------------------------------------------

    fn log_reconfig(&mut self, now: SimTime, event: ReconfigEvent) {
        self.reconfig_log
            .push(ReconfigLogEntry { time: now, event });
    }

    /// Bootstrap the partitioned-register directory and per-range state:
    /// any partitioned register not explicitly partitioned by the
    /// deployment is spread evenly across all switches, and the initial
    /// table is installed everywhere via epoch-1 `OwnershipCommit`s.
    fn bootstrap_ranges(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        for spec in self.specs.clone() {
            if !spec.is_partitioned() {
                continue;
            }
            if self.directory.ranges(spec.id).is_empty() {
                self.directory
                    .partition_even(spec.id, spec.keys, &self.switches.clone());
            }
            for r in self.directory.ranges(spec.id).to_vec() {
                self.rmeta.push(RangeMeta {
                    reg: spec.id,
                    start: r.start,
                    end: r.end,
                    committed_epoch: 1,
                    issued_epoch: 1,
                    mig: None,
                    cooldown_until: None,
                });
                self.log_reconfig(
                    now,
                    ReconfigEvent::Commit {
                        reg: spec.id,
                        start: r.start,
                        owners: r.owners.clone(),
                        epoch: 1,
                    },
                );
                self.broadcast_commit(ctx, spec.id, r.start, r.end, 1, &r.owners);
            }
        }
    }

    fn broadcast_commit(
        &self,
        ctx: &mut Ctx<'_>,
        reg: RegId,
        start: Key,
        end: Key,
        epoch: u32,
        owners: &[NodeId],
    ) {
        for &sw in &self.switches {
            ctx.send(
                sw,
                PacketBody::Swish(SwishMsg::OwnershipCommit(OwnershipCommit {
                    reg,
                    start,
                    end,
                    epoch,
                    owners: owners.to_vec(),
                })),
            );
        }
    }

    fn broadcast_begin(&self, ctx: &mut Ctx<'_>, m: &MigrateBegin) {
        for &sw in &self.switches {
            ctx.send(sw, PacketBody::Swish(SwishMsg::MigrateBegin(*m)));
        }
    }

    fn meta_idx(&self, reg: RegId, start: Key) -> Option<usize> {
        self.rmeta
            .iter()
            .position(|m| m.reg == reg && m.start == start)
    }

    /// Commit `owners` as the range's owner set at a fresh per-range
    /// epoch: update the directory, retire any open migration, start the
    /// planner cooldown, and broadcast the `OwnershipCommit`.
    fn commit_range(&mut self, reg: RegId, start: Key, owners: Vec<NodeId>, ctx: &mut Ctx<'_>) {
        let Some(i) = self.meta_idx(reg, start) else {
            return;
        };
        let now = ctx.now();
        self.rmeta[i].issued_epoch += 1;
        let epoch = self.rmeta[i].issued_epoch;
        let end = self.rmeta[i].end;
        self.rmeta[i].committed_epoch = epoch;
        self.rmeta[i].mig = None;
        self.rmeta[i].cooldown_until = Some(now + self.cfg.reconfig.cooldown);
        self.directory.set_owners(reg, start, &owners);
        self.log_reconfig(
            now,
            ReconfigEvent::Commit {
                reg,
                start,
                owners: owners.clone(),
                epoch,
            },
        );
        self.broadcast_commit(ctx, reg, start, end, epoch, &owners);
    }

    /// Open a migration for the range containing `key`: `to` becomes the
    /// range's acking tail while the source streams state, and
    /// `commit_owners` is installed once a full pass lands. Shared by
    /// planner moves, trigger moves, and replica-group grows.
    fn begin_migration(
        &mut self,
        reg: RegId,
        key: Key,
        to: NodeId,
        commit_owners: Vec<NodeId>,
        planned: bool,
        ctx: &mut Ctx<'_>,
    ) {
        let pol = self.cfg.reconfig;
        let Some(range) = self
            .directory
            .ranges(reg)
            .iter()
            .find(|r| r.start <= key && key < r.end)
            .cloned()
        else {
            return;
        };
        let Some(i) = self.meta_idx(reg, range.start) else {
            return;
        };
        let now = ctx.now();
        let Some(&from) = range.owners.first() else {
            return;
        };
        if self.rmeta[i].mig.is_some()
            || range.owners.contains(&to)
            || !self.switches.contains(&to)
            || !self.is_live(to)
            || !self.is_live(from)
            || commit_owners.is_empty()
            || commit_owners.len() > MAX_RANGE_OWNERS
            || self.open_migrations() >= pol.max_concurrent.max(1)
        {
            return;
        }
        if let Some(t) = self.rmeta[i].cooldown_until {
            if now < t {
                return;
            }
        }
        if planned {
            self.log_reconfig(
                now,
                ReconfigEvent::Planned {
                    reg,
                    start: range.start,
                    from,
                    to,
                },
            );
        }
        self.rmeta[i].issued_epoch += 1;
        let epoch = self.rmeta[i].issued_epoch;
        self.rmeta[i].mig = Some(Mig {
            from,
            to,
            epoch,
            phase: MigrationPhase::Transferring,
            commit_owners,
        });
        self.log_reconfig(
            now,
            ReconfigEvent::Begin {
                reg,
                start: range.start,
                from,
                to,
                epoch,
            },
        );
        self.broadcast_begin(
            ctx,
            &MigrateBegin {
                reg,
                start: range.start,
                end: range.end,
                from,
                to,
                epoch,
            },
        );
    }

    /// Move the range containing `key` so `to` becomes its primary.
    fn start_move(&mut self, reg: RegId, key: Key, to: NodeId, planned: bool, ctx: &mut Ctx<'_>) {
        let Some(range) = self
            .directory
            .ranges(reg)
            .iter()
            .find(|r| r.start <= key && key < r.end)
            .cloned()
        else {
            return;
        };
        let Some(&from) = range.owners.first() else {
            return;
        };
        let commit_owners: Vec<NodeId> = range
            .owners
            .iter()
            .map(|&o| if o == from { to } else { o })
            .collect();
        self.begin_migration(reg, key, to, commit_owners, planned, ctx);
    }

    /// Grow the replica group of the range containing `key`: `node`
    /// joins as an additional owner after a state transfer.
    fn start_grow(&mut self, reg: RegId, key: Key, node: NodeId, ctx: &mut Ctx<'_>) {
        let Some(range) = self
            .directory
            .ranges(reg)
            .iter()
            .find(|r| r.start <= key && key < r.end)
            .cloned()
        else {
            return;
        };
        let mut commit_owners = range.owners.clone();
        commit_owners.push(node);
        self.begin_migration(reg, key, node, commit_owners, false, ctx);
    }

    /// Shrink the replica group of the range containing `key`: `node`
    /// leaves the owner set. No transfer needed — every acked write is
    /// already applied at all owners (chain prefix property) — so this
    /// is a direct commit.
    fn start_shrink(&mut self, reg: RegId, key: Key, node: NodeId, ctx: &mut Ctx<'_>) {
        let Some(range) = self
            .directory
            .ranges(reg)
            .iter()
            .find(|r| r.start <= key && key < r.end)
            .cloned()
        else {
            return;
        };
        if !range.owners.contains(&node) || range.owners.len() < 2 {
            return;
        }
        if let Some(i) = self.meta_idx(reg, range.start) {
            if self.rmeta[i].mig.is_some() {
                return; // resolve the open transfer first
            }
        }
        let owners: Vec<NodeId> = range
            .owners
            .iter()
            .copied()
            .filter(|&o| o != node)
            .collect();
        self.commit_range(reg, range.start, owners, ctx);
    }

    /// One planning pass: for every partitioned range, if some switch
    /// ingressed decisively more writes than the current primary this
    /// window, migrate the range onto that talker. Counters are drained
    /// per window (per-interval semantics).
    fn run_planner(&mut self, ctx: &mut Ctx<'_>) {
        let pol = self.cfg.reconfig;
        let mut moves: Vec<(RegId, Key, NodeId)> = Vec::new();
        for spec in &self.specs {
            if !spec.is_partitioned() {
                continue;
            }
            let reg = spec.id;
            for r in self.directory.ranges(reg) {
                let Some(&primary) = r.owners.first() else {
                    continue;
                };
                let Some(hot) = self.directory.hottest_requester(reg, r.start) else {
                    continue;
                };
                if r.owners.contains(&hot) {
                    continue;
                }
                let hot_n = self.directory.access_count(reg, r.start, hot);
                let primary_n = self.directory.access_count(reg, r.start, primary);
                if hot_n < pol.min_writes
                    || hot_n < pol.min_advantage.saturating_mul(primary_n.max(1))
                {
                    continue;
                }
                moves.push((reg, r.start, hot));
            }
        }
        for (reg, start, to) in moves {
            // Per-migration guards (cooldown, concurrency, liveness)
            // re-checked inside.
            self.start_move(reg, start, to, true, ctx);
        }
        for spec in self.specs.clone() {
            if spec.is_partitioned() {
                self.directory.clear_accesses(spec.id);
            }
        }
    }

    /// A switch failed (or was demoted amnesiac): repair every
    /// partitioned range it participated in. Destination gone → abort
    /// (re-assert owners at a fresh epoch). Owner gone with survivors →
    /// shrink commit (survivors hold every acked write). Sole owner gone
    /// with a live transfer destination → promote the destination (it
    /// holds every write acked during the window; older state it never
    /// received is lost with the sole owner either way).
    fn handle_partitioned_failure(&mut self, d: NodeId, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        for i in 0..self.rmeta.len() {
            let (reg, start) = (self.rmeta[i].reg, self.rmeta[i].start);
            let Some(range) = self
                .directory
                .ranges(reg)
                .iter()
                .find(|r| r.start == start)
                .cloned()
            else {
                continue;
            };
            let mig = self.rmeta[i].mig.clone();
            let survivors: Vec<NodeId> = range.owners.iter().copied().filter(|&o| o != d).collect();
            if let Some(mig) = mig {
                if mig.to == d {
                    self.log_reconfig(
                        now,
                        ReconfigEvent::Abort {
                            reg,
                            start,
                            reason: "destination failed",
                        },
                    );
                    // Re-assert the current owners at a fresh epoch:
                    // clears `mig_to` at every switch and stops the
                    // source's streamer.
                    self.commit_range(reg, start, range.owners.clone(), ctx);
                } else if range.owners.contains(&d) {
                    if survivors.is_empty() {
                        self.log_reconfig(
                            now,
                            ReconfigEvent::Abort {
                                reg,
                                start,
                                reason: "sole owner failed; promoting destination",
                            },
                        );
                        self.commit_range(reg, start, vec![mig.to], ctx);
                    } else {
                        self.log_reconfig(
                            now,
                            ReconfigEvent::Abort {
                                reg,
                                start,
                                reason: "owner failed during transfer",
                            },
                        );
                        self.commit_range(reg, start, survivors, ctx);
                    }
                }
            } else if range.owners.contains(&d) && !survivors.is_empty() {
                // Plain owner failure: shrink the replica group.
                self.commit_range(reg, start, survivors, ctx);
            }
            // Sole owner failed with no transfer in flight: the range's
            // state dies with it; the table is left pointing at the
            // owner so writes resume if it returns (the oracle taints
            // such ranges).
        }
    }

    /// Periodic anti-entropy for the range tables: re-broadcast every
    /// range's committed ownership (and any open transfer) to every
    /// switch. Idempotent at the receivers — per-range epochs guard the
    /// installs — and self-healing for crash-wiped tables and lost
    /// control messages.
    fn resync_ranges(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.rmeta.len() {
            let m = self.rmeta[i].clone();
            let Some(range) = self
                .directory
                .ranges(m.reg)
                .iter()
                .find(|r| r.start == m.start)
                .cloned()
            else {
                continue;
            };
            self.broadcast_commit(ctx, m.reg, m.start, m.end, m.committed_epoch, &range.owners);
            if let Some(mig) = &m.mig {
                self.broadcast_begin(
                    ctx,
                    &MigrateBegin {
                        reg: m.reg,
                        start: m.start,
                        end: m.end,
                        from: mig.from,
                        to: mig.to,
                        epoch: mig.epoch,
                    },
                );
            }
        }
    }

    fn check_liveness(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let timeout = self.cfg.failure_timeout;
        let dead: Vec<NodeId> = self
            .last_hb
            .iter()
            .filter(|(n, t, _)| {
                now.since(*t) > timeout
                    && (self.view.chain.contains(n) || self.view.learners.contains(n))
            })
            .map(|(n, _, _)| *n)
            .collect();
        for d in dead {
            self.view.chain.retain(|&n| n != d);
            self.view.learners.retain(|&n| n != d);
            self.broadcast(ctx, ConfigEventKind::Failed(d));
            self.handle_partitioned_failure(d, ctx);
        }
        // Reconciliation: configuration messages ride the same lossy
        // fabric as everything else; re-send to any live switch whose
        // heartbeat reports a stale epoch.
        let stale: Vec<NodeId> = self
            .last_hb
            .iter()
            .filter(|(_, _, e)| *e < self.view.epoch)
            .map(|(n, _, _)| *n)
            .collect();
        for sw in stale {
            self.send_config_to(ctx, sw);
        }
    }
}

impl Node for Controller {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.last_hb = self.switches.iter().map(|&s| (s, now, 0)).collect();
        self.broadcast(ctx, ConfigEventKind::Bootstrap);
        ctx.set_timer(self.cfg.heartbeat_interval, CHECK_TIMER);
        if self.has_partitioned() {
            self.bootstrap_ranges(ctx);
            ctx.set_timer(self.cfg.reconfig.resync_interval, RESYNC_TIMER);
            if self.cfg.reconfig.enabled {
                ctx.set_timer(self.cfg.reconfig.plan_interval, PLAN_TIMER);
            }
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let PacketBody::Swish(msg) = pkt.body else {
            return;
        };
        match msg {
            SwishMsg::Heartbeat(hb) => {
                let now = ctx.now();
                self.note_heartbeat(hb.from, hb.epoch, now, ctx);
            }
            SwishMsg::DirLookup(q) => {
                let owners = self.directory.lookup(q.reg, q.key, q.from);
                ctx.send(
                    q.from,
                    PacketBody::Swish(SwishMsg::DirReply(swishmem_wire::swish::DirReply {
                        reg: q.reg,
                        key: q.key,
                        owners,
                    })),
                );
            }
            SwishMsg::CatchupDone(c) if self.view.learners.contains(&c.node) => {
                self.view.learners.retain(|&n| n != c.node);
                self.view.chain.push(c.node);
                self.broadcast(ctx, ConfigEventKind::Promoted(c.node));
            }
            SwishMsg::LoadReport(lr) => {
                for e in &lr.entries {
                    self.directory
                        .record_access(e.reg, e.start, lr.from, e.writes);
                }
            }
            SwishMsg::MigrateDone(d) => {
                let now = ctx.now();
                let Some(i) = self.meta_idx(d.reg, d.start) else {
                    return;
                };
                let commit = match &mut self.rmeta[i].mig {
                    Some(mig)
                        if mig.epoch == d.epoch
                            && mig.to == d.node
                            && mig.phase == MigrationPhase::Transferring =>
                    {
                        mig.phase = MigrationPhase::DualOwner;
                        Some((mig.to, mig.commit_owners.clone()))
                    }
                    _ => None, // stale/duplicate report
                };
                if let Some((to, owners)) = commit {
                    self.log_reconfig(
                        now,
                        ReconfigEvent::Done {
                            reg: d.reg,
                            start: d.start,
                            to,
                            pass: d.pass,
                        },
                    );
                    self.commit_range(d.reg, d.start, owners, ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if let Some((op, reg, key, to)) = decode_trigger(token) {
            match op {
                TriggerOp::Move => self.start_move(reg, key, to, false, ctx),
                TriggerOp::Grow => self.start_grow(reg, key, to, ctx),
                TriggerOp::Shrink => self.start_shrink(reg, key, to, ctx),
            }
            return;
        }
        match token {
            CHECK_TIMER => {
                self.check_liveness(ctx);
                ctx.set_timer(self.cfg.heartbeat_interval, CHECK_TIMER);
            }
            PLAN_TIMER => {
                self.run_planner(ctx);
                ctx.set_timer(self.cfg.reconfig.plan_interval, PLAN_TIMER);
            }
            RESYNC_TIMER => {
                self.resync_ranges(ctx);
                ctx.set_timer(self.cfg.reconfig.resync_interval, RESYNC_TIMER);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_view_uses_declaration_order() {
        let c = Controller::new(
            SwishConfig::default(),
            vec![NodeId(2), NodeId(0), NodeId(1)],
            vec![],
        );
        assert_eq!(c.view().chain, vec![NodeId(2), NodeId(0), NodeId(1)]);
        assert_eq!(c.view().epoch, 0);
        assert!(c.events().is_empty());
    }
}

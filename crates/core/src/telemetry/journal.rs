//! The control-plane flight recorder's typed event vocabulary and the
//! causal reader over raw journal records.
//!
//! The simnet layer stores journal entries as untyped word tuples
//! ([`swishmem_simnet::JournalRecord`]) so the engine stays ignorant of
//! control-plane semantics. This module owns the typed view: every
//! consensus transition, leadership/lease change, detector edge,
//! membership decree and migration lifecycle step is a [`CtrlEvent`]
//! with a lossless encode/decode to the record's `(kind, cause, a, b,
//! c)` words.
//!
//! ## Causality without run-time back-references
//!
//! Emitting an event must stay a pure observation (the passivity
//! contract that keeps the recorder bit-invisible to the golden
//! determinism fingerprint), so emitters never read back journal ids to
//! thread parent pointers. Instead every event carries a *cause key* —
//! `class << 60 | key` where the class picks the correlation namespace
//! (decree slot, election ballot, detector target, migration range,
//! compaction boundary) — and the [`Journal`] reader reconstructs the
//! parent links after the fact: an entry's parent is the latest earlier
//! entry with the same cause whose kind is in the entry's declared
//! parent-kind set (e.g. `Promise → Propose`, `Learned → Chosen`,
//! `MigCommit → MigDualOwner`). `ElectionStart` is the one special
//! case: it links to the emitting node's latest `Suspect`, crossing
//! cause namespaces, because an election is caused by a suspicion.

use std::collections::HashMap;
use std::fmt;
use swishmem_simnet::{JournalRecord, SimTime};
use swishmem_wire::swish::{Key, RegId};
use swishmem_wire::NodeId;

use crate::consensus::{Ballot, Slot};

// ---------------------------------------------------------------------
// Kind codes (the wire `kind` word of a JournalRecord)
// ---------------------------------------------------------------------

pub const KIND_PROPOSE: u16 = 1;
pub const KIND_PROMISE: u16 = 2;
pub const KIND_ACCEPTED: u16 = 3;
pub const KIND_CHOSEN: u16 = 4;
pub const KIND_LEARNED: u16 = 5;
pub const KIND_STEP_DOWN: u16 = 6;
pub const KIND_APPLIED: u16 = 7;
pub const KIND_ELECTION_START: u16 = 8;
pub const KIND_LEADER_ELECTED: u16 = 9;
pub const KIND_LEASE_LOST: u16 = 10;
pub const KIND_SUSPECT: u16 = 11;
pub const KIND_UNSUSPECT: u16 = 12;
pub const KIND_MEMBER_CHANGE: u16 = 13;
pub const KIND_COMPACT: u16 = 14;
pub const KIND_SNAPSHOT_SENT: u16 = 15;
pub const KIND_SNAPSHOT_INSTALLED: u16 = 16;
pub const KIND_FOLLOWER_READ: u16 = 17;
pub const KIND_MIG_BEGIN: u16 = 18;
pub const KIND_MIG_DUAL_OWNER: u16 = 19;
pub const KIND_MIG_COMMIT: u16 = 20;
pub const KIND_MIG_ABORT: u16 = 21;

// ---------------------------------------------------------------------
// Cause classes (top 4 bits of the `cause` word)
// ---------------------------------------------------------------------

pub const CLASS_DECREE: u64 = 1;
pub const CLASS_ELECTION: u64 = 2;
pub const CLASS_DETECTOR: u64 = 3;
pub const CLASS_MIGRATION: u64 = 4;
pub const CLASS_COMPACTION: u64 = 5;
pub const CLASS_LEASE: u64 = 6;
pub const CLASS_READ: u64 = 7;

#[inline]
fn cause(class: u64, key: u64) -> u64 {
    (class << 60) | (key & ((1 << 60) - 1))
}

/// Cause key for the consensus decree at `slot`.
#[inline]
pub fn cause_decree(slot: Slot) -> u64 {
    cause(CLASS_DECREE, slot)
}

/// Cause key for the election attempt at `ballot`.
#[inline]
pub fn cause_election(ballot: Ballot) -> u64 {
    cause(CLASS_ELECTION, ballot)
}

/// Cause key for suspicion edges about `target`.
#[inline]
pub fn cause_detector(target: NodeId) -> u64 {
    cause(CLASS_DETECTOR, u64::from(target.0))
}

/// Cause key for the migration of range `(reg, start)`.
#[inline]
pub fn cause_migration(reg: RegId, start: Key) -> u64 {
    cause(CLASS_MIGRATION, (u64::from(reg) << 32) | u64::from(start))
}

/// Cause key for the log compaction / snapshot boundary at `upto`.
#[inline]
pub fn cause_compaction(upto: Slot) -> u64 {
    cause(CLASS_COMPACTION, upto)
}

/// Cause key for leader-lease state changes.
#[inline]
pub fn cause_lease() -> u64 {
    cause(CLASS_LEASE, 0)
}

/// Cause key for follower reads of `(reg, key)`.
#[inline]
pub fn cause_read(reg: RegId, key: Key) -> u64 {
    cause(CLASS_READ, (u64::from(reg) << 32) | u64::from(key))
}

// ---------------------------------------------------------------------
// Migration abort reason codes
// ---------------------------------------------------------------------

pub const ABORT_DEST_FAILED: u8 = 1;
pub const ABORT_SOLE_OWNER_PROMOTE: u8 = 2;
pub const ABORT_OWNER_FAILED: u8 = 3;

/// Human string for a migration-abort reason code.
pub fn abort_reason_str(code: u8) -> &'static str {
    match code {
        ABORT_DEST_FAILED => "destination failed",
        ABORT_SOLE_OWNER_PROMOTE => "sole owner failed; promoting destination",
        ABORT_OWNER_FAILED => "owner failed during transfer",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------------
// The typed event vocabulary
// ---------------------------------------------------------------------

/// One typed control-plane flight-recorder event (see module docs for
/// the cause/parent scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlEvent {
    /// A leader/candidate issued a prepare or accept for `slot`.
    Propose { slot: Slot, ballot: Ballot },
    /// An acceptor granted a promise at `ballot`.
    Promise { slot: Slot, ballot: Ballot },
    /// An acceptor stored a value for `slot` at `ballot`.
    Accepted { slot: Slot, ballot: Ballot },
    /// The proposer observed an accept quorum for `slot`.
    Chosen { slot: Slot, ballot: Ballot },
    /// A replica learned the chosen value for `slot`.
    Learned { slot: Slot },
    /// A replica abandoned leadership/candidacy at `ballot`.
    StepDown { slot: Slot, ballot: Ballot },
    /// A replica applied the decree at `slot` (tag = command code).
    Applied { slot: Slot, tag: u16 },
    /// A replica started campaigning at `ballot` after `timeout_ns` of
    /// leader silence.
    ElectionStart { ballot: Ballot, timeout_ns: u64 },
    /// A new leader's election decree took effect (stamped when the
    /// `Reassert` decree at `slot` is applied, fabric epoch `epoch`).
    LeaderElected {
        leader: NodeId,
        epoch: u32,
        slot: Slot,
    },
    /// A leader lost its quorum lease (`heard` live peers of `quorum`
    /// needed) and stepped down.
    LeaseLost { heard: u32, quorum: u32 },
    /// The phi detector crossed threshold: `target` silent for
    /// `silence_ns` against a `timeout_ns` budget.
    Suspect {
        target: NodeId,
        silence_ns: u64,
        timeout_ns: u64,
    },
    /// A fresh leader beacon cleared the suspicion of `target`.
    Unsuspect { target: NodeId },
    /// A membership decree took effect: `node` joined (`add`) or left
    /// the replica group at `slot`.
    MemberChange { node: NodeId, add: bool, slot: Slot },
    /// The leader compacted the log up to `upto`, persisting a
    /// `snap_bytes`-byte snapshot.
    Compact { upto: Slot, snap_bytes: u64 },
    /// A snapshot of the applied prefix at `base` was sent to a lagging
    /// replica.
    SnapshotSent { base: Slot, bytes: u64, to: NodeId },
    /// A replica installed a peer snapshot at `base`.
    SnapshotInstalled { base: Slot },
    /// A non-leading replica served a directory lookup under lease.
    FollowerRead { reg: RegId, key: Key },
    /// A migration opened for range `(reg, start)`.
    MigBegin {
        reg: RegId,
        start: Key,
        from: NodeId,
        to: NodeId,
        epoch: u32,
    },
    /// The transfer completed a full pass; the range entered dual-owner.
    MigDualOwner {
        reg: RegId,
        start: Key,
        epoch: u32,
        pass: u32,
    },
    /// The migration committed its new owner set.
    MigCommit { reg: RegId, start: Key, epoch: u32 },
    /// The migration aborted (see `abort_reason_str`).
    MigAbort {
        reg: RegId,
        start: Key,
        epoch: u32,
        reason: u8,
    },
}

impl CtrlEvent {
    /// The record kind code for this event.
    pub fn kind(&self) -> u16 {
        match self {
            CtrlEvent::Propose { .. } => KIND_PROPOSE,
            CtrlEvent::Promise { .. } => KIND_PROMISE,
            CtrlEvent::Accepted { .. } => KIND_ACCEPTED,
            CtrlEvent::Chosen { .. } => KIND_CHOSEN,
            CtrlEvent::Learned { .. } => KIND_LEARNED,
            CtrlEvent::StepDown { .. } => KIND_STEP_DOWN,
            CtrlEvent::Applied { .. } => KIND_APPLIED,
            CtrlEvent::ElectionStart { .. } => KIND_ELECTION_START,
            CtrlEvent::LeaderElected { .. } => KIND_LEADER_ELECTED,
            CtrlEvent::LeaseLost { .. } => KIND_LEASE_LOST,
            CtrlEvent::Suspect { .. } => KIND_SUSPECT,
            CtrlEvent::Unsuspect { .. } => KIND_UNSUSPECT,
            CtrlEvent::MemberChange { .. } => KIND_MEMBER_CHANGE,
            CtrlEvent::Compact { .. } => KIND_COMPACT,
            CtrlEvent::SnapshotSent { .. } => KIND_SNAPSHOT_SENT,
            CtrlEvent::SnapshotInstalled { .. } => KIND_SNAPSHOT_INSTALLED,
            CtrlEvent::FollowerRead { .. } => KIND_FOLLOWER_READ,
            CtrlEvent::MigBegin { .. } => KIND_MIG_BEGIN,
            CtrlEvent::MigDualOwner { .. } => KIND_MIG_DUAL_OWNER,
            CtrlEvent::MigCommit { .. } => KIND_MIG_COMMIT,
            CtrlEvent::MigAbort { .. } => KIND_MIG_ABORT,
        }
    }

    /// Encode to the raw record words `(kind, cause, a, b, c)`.
    pub fn encode(&self) -> (u16, u64, u64, u64, u64) {
        match *self {
            CtrlEvent::Propose { slot, ballot } => {
                (KIND_PROPOSE, cause_decree(slot), slot, ballot, 0)
            }
            CtrlEvent::Promise { slot, ballot } => {
                (KIND_PROMISE, cause_decree(slot), slot, ballot, 0)
            }
            CtrlEvent::Accepted { slot, ballot } => {
                (KIND_ACCEPTED, cause_decree(slot), slot, ballot, 0)
            }
            CtrlEvent::Chosen { slot, ballot } => {
                (KIND_CHOSEN, cause_decree(slot), slot, ballot, 0)
            }
            CtrlEvent::Learned { slot } => (KIND_LEARNED, cause_decree(slot), slot, 0, 0),
            CtrlEvent::StepDown { slot, ballot } => {
                (KIND_STEP_DOWN, cause_decree(slot), slot, ballot, 0)
            }
            CtrlEvent::Applied { slot, tag } => {
                (KIND_APPLIED, cause_decree(slot), slot, u64::from(tag), 0)
            }
            CtrlEvent::ElectionStart { ballot, timeout_ns } => (
                KIND_ELECTION_START,
                cause_election(ballot),
                ballot,
                timeout_ns,
                0,
            ),
            CtrlEvent::LeaderElected {
                leader,
                epoch,
                slot,
            } => (
                KIND_LEADER_ELECTED,
                cause_decree(slot),
                u64::from(leader.0),
                u64::from(epoch),
                slot,
            ),
            CtrlEvent::LeaseLost { heard, quorum } => (
                KIND_LEASE_LOST,
                cause_lease(),
                u64::from(heard),
                u64::from(quorum),
                0,
            ),
            CtrlEvent::Suspect {
                target,
                silence_ns,
                timeout_ns,
            } => (
                KIND_SUSPECT,
                cause_detector(target),
                u64::from(target.0),
                silence_ns,
                timeout_ns,
            ),
            CtrlEvent::Unsuspect { target } => (
                KIND_UNSUSPECT,
                cause_detector(target),
                u64::from(target.0),
                0,
                0,
            ),
            CtrlEvent::MemberChange { node, add, slot } => (
                KIND_MEMBER_CHANGE,
                cause_decree(slot),
                u64::from(node.0),
                u64::from(add),
                slot,
            ),
            CtrlEvent::Compact { upto, snap_bytes } => {
                (KIND_COMPACT, cause_compaction(upto), upto, snap_bytes, 0)
            }
            CtrlEvent::SnapshotSent { base, bytes, to } => (
                KIND_SNAPSHOT_SENT,
                cause_compaction(base),
                base,
                bytes,
                u64::from(to.0),
            ),
            CtrlEvent::SnapshotInstalled { base } => {
                (KIND_SNAPSHOT_INSTALLED, cause_compaction(base), base, 0, 0)
            }
            CtrlEvent::FollowerRead { reg, key } => (
                KIND_FOLLOWER_READ,
                cause_read(reg, key),
                u64::from(reg),
                u64::from(key),
                0,
            ),
            CtrlEvent::MigBegin {
                reg,
                start,
                from,
                to,
                epoch,
            } => (
                KIND_MIG_BEGIN,
                cause_migration(reg, start),
                (u64::from(reg) << 32) | u64::from(start),
                (u64::from(from.0) << 16) | u64::from(to.0),
                u64::from(epoch),
            ),
            CtrlEvent::MigDualOwner {
                reg,
                start,
                epoch,
                pass,
            } => (
                KIND_MIG_DUAL_OWNER,
                cause_migration(reg, start),
                (u64::from(reg) << 32) | u64::from(start),
                u64::from(pass),
                u64::from(epoch),
            ),
            CtrlEvent::MigCommit { reg, start, epoch } => (
                KIND_MIG_COMMIT,
                cause_migration(reg, start),
                (u64::from(reg) << 32) | u64::from(start),
                0,
                u64::from(epoch),
            ),
            CtrlEvent::MigAbort {
                reg,
                start,
                epoch,
                reason,
            } => (
                KIND_MIG_ABORT,
                cause_migration(reg, start),
                (u64::from(reg) << 32) | u64::from(start),
                u64::from(reason),
                u64::from(epoch),
            ),
        }
    }

    /// Decode from raw record words. Unknown kinds decode to `None`
    /// (forward compatibility: readers skip what they don't know).
    pub fn decode(kind: u16, a: u64, b: u64, c: u64) -> Option<CtrlEvent> {
        let reg_start = |w: u64| ((w >> 32) as RegId, w as Key);
        Some(match kind {
            KIND_PROPOSE => CtrlEvent::Propose { slot: a, ballot: b },
            KIND_PROMISE => CtrlEvent::Promise { slot: a, ballot: b },
            KIND_ACCEPTED => CtrlEvent::Accepted { slot: a, ballot: b },
            KIND_CHOSEN => CtrlEvent::Chosen { slot: a, ballot: b },
            KIND_LEARNED => CtrlEvent::Learned { slot: a },
            KIND_STEP_DOWN => CtrlEvent::StepDown { slot: a, ballot: b },
            KIND_APPLIED => CtrlEvent::Applied {
                slot: a,
                tag: b as u16,
            },
            KIND_ELECTION_START => CtrlEvent::ElectionStart {
                ballot: a,
                timeout_ns: b,
            },
            KIND_LEADER_ELECTED => CtrlEvent::LeaderElected {
                leader: NodeId(a as u16),
                epoch: b as u32,
                slot: c,
            },
            KIND_LEASE_LOST => CtrlEvent::LeaseLost {
                heard: a as u32,
                quorum: b as u32,
            },
            KIND_SUSPECT => CtrlEvent::Suspect {
                target: NodeId(a as u16),
                silence_ns: b,
                timeout_ns: c,
            },
            KIND_UNSUSPECT => CtrlEvent::Unsuspect {
                target: NodeId(a as u16),
            },
            KIND_MEMBER_CHANGE => CtrlEvent::MemberChange {
                node: NodeId(a as u16),
                add: b != 0,
                slot: c,
            },
            KIND_COMPACT => CtrlEvent::Compact {
                upto: a,
                snap_bytes: b,
            },
            KIND_SNAPSHOT_SENT => CtrlEvent::SnapshotSent {
                base: a,
                bytes: b,
                to: NodeId(c as u16),
            },
            KIND_SNAPSHOT_INSTALLED => CtrlEvent::SnapshotInstalled { base: a },
            KIND_FOLLOWER_READ => CtrlEvent::FollowerRead {
                reg: a as RegId,
                key: b as Key,
            },
            KIND_MIG_BEGIN => {
                let (reg, start) = reg_start(a);
                CtrlEvent::MigBegin {
                    reg,
                    start,
                    from: NodeId((b >> 16) as u16),
                    to: NodeId(b as u16),
                    epoch: c as u32,
                }
            }
            KIND_MIG_DUAL_OWNER => {
                let (reg, start) = reg_start(a);
                CtrlEvent::MigDualOwner {
                    reg,
                    start,
                    epoch: c as u32,
                    pass: b as u32,
                }
            }
            KIND_MIG_COMMIT => {
                let (reg, start) = reg_start(a);
                CtrlEvent::MigCommit {
                    reg,
                    start,
                    epoch: c as u32,
                }
            }
            KIND_MIG_ABORT => {
                let (reg, start) = reg_start(a);
                CtrlEvent::MigAbort {
                    reg,
                    start,
                    epoch: c as u32,
                    reason: b as u8,
                }
            }
            _ => return None,
        })
    }

    /// Emit this event into the journal attached to `ctx` (no-op when
    /// detached — a pure observation either way).
    #[inline]
    pub fn emit(&self, ctx: &mut swishmem_simnet::Ctx<'_>) {
        let (kind, cause, a, b, c) = self.encode();
        ctx.journal(kind, cause, a, b, c);
    }
}

impl fmt::Display for CtrlEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CtrlEvent::Propose { slot, ballot } => {
                write!(f, "propose slot {slot} at ballot {ballot}")
            }
            CtrlEvent::Promise { slot, ballot } => {
                write!(f, "promise slot {slot} at ballot {ballot}")
            }
            CtrlEvent::Accepted { slot, ballot } => {
                write!(f, "accepted slot {slot} at ballot {ballot}")
            }
            CtrlEvent::Chosen { slot, ballot } => {
                write!(f, "chosen slot {slot} at ballot {ballot}")
            }
            CtrlEvent::Learned { slot } => write!(f, "learned slot {slot}"),
            CtrlEvent::StepDown { slot, ballot } => {
                write!(f, "step down at slot {slot}, ballot {ballot}")
            }
            CtrlEvent::Applied { slot, tag } => write!(f, "applied slot {slot} (cmd tag {tag})"),
            CtrlEvent::ElectionStart { ballot, timeout_ns } => {
                write!(
                    f,
                    "election started at ballot {ballot} after {timeout_ns} ns silence"
                )
            }
            CtrlEvent::LeaderElected {
                leader,
                epoch,
                slot,
            } => {
                write!(
                    f,
                    "leader {} elected (epoch {epoch}, decree slot {slot})",
                    leader.0
                )
            }
            CtrlEvent::LeaseLost { heard, quorum } => {
                write!(f, "leader lease lost (heard {heard} of quorum {quorum})")
            }
            CtrlEvent::Suspect {
                target,
                silence_ns,
                timeout_ns,
            } => write!(
                f,
                "suspect node {} ({silence_ns} ns silent, budget {timeout_ns} ns)",
                target.0
            ),
            CtrlEvent::Unsuspect { target } => write!(f, "unsuspect node {}", target.0),
            CtrlEvent::MemberChange { node, add, slot } => write!(
                f,
                "member {} {} at slot {slot}",
                node.0,
                if add { "added" } else { "removed" }
            ),
            CtrlEvent::Compact { upto, snap_bytes } => {
                write!(f, "compacted log to slot {upto} ({snap_bytes} B snapshot)")
            }
            CtrlEvent::SnapshotSent { base, bytes, to } => {
                write!(
                    f,
                    "snapshot at base {base} sent to node {} ({bytes} B)",
                    to.0
                )
            }
            CtrlEvent::SnapshotInstalled { base } => {
                write!(f, "snapshot installed at base {base}")
            }
            CtrlEvent::FollowerRead { reg, key } => {
                write!(f, "follower read reg {reg} key {key}")
            }
            CtrlEvent::MigBegin {
                reg,
                start,
                from,
                to,
                epoch,
            } => write!(
                f,
                "migration begin reg {reg} start {start}: {} -> {} (epoch {epoch})",
                from.0, to.0
            ),
            CtrlEvent::MigDualOwner {
                reg,
                start,
                epoch,
                pass,
            } => write!(
                f,
                "migration dual-owner reg {reg} start {start} (epoch {epoch}, pass {pass})"
            ),
            CtrlEvent::MigCommit { reg, start, epoch } => {
                write!(
                    f,
                    "migration commit reg {reg} start {start} (epoch {epoch})"
                )
            }
            CtrlEvent::MigAbort {
                reg,
                start,
                epoch,
                reason,
            } => write!(
                f,
                "migration abort reg {reg} start {start} (epoch {epoch}): {}",
                abort_reason_str(reason)
            ),
        }
    }
}

// ---------------------------------------------------------------------
// The causal reader
// ---------------------------------------------------------------------

/// Parent-kind sets per event kind: an entry's parent is the latest
/// earlier entry sharing its cause whose kind appears here.
fn parent_kinds(kind: u16) -> &'static [u16] {
    match kind {
        KIND_PROMISE => &[KIND_PROPOSE],
        KIND_ACCEPTED => &[KIND_PROPOSE],
        KIND_CHOSEN => &[KIND_ACCEPTED, KIND_PROPOSE],
        KIND_LEARNED => &[KIND_CHOSEN],
        KIND_APPLIED => &[KIND_LEARNED, KIND_CHOSEN],
        KIND_LEADER_ELECTED => &[KIND_APPLIED, KIND_LEARNED, KIND_CHOSEN],
        KIND_UNSUSPECT => &[KIND_SUSPECT],
        KIND_MEMBER_CHANGE => &[KIND_APPLIED, KIND_LEARNED, KIND_CHOSEN],
        KIND_SNAPSHOT_SENT => &[KIND_COMPACT],
        KIND_SNAPSHOT_INSTALLED => &[KIND_SNAPSHOT_SENT],
        KIND_MIG_DUAL_OWNER => &[KIND_MIG_BEGIN],
        KIND_MIG_COMMIT => &[KIND_MIG_DUAL_OWNER, KIND_MIG_BEGIN],
        KIND_MIG_ABORT => &[KIND_MIG_DUAL_OWNER, KIND_MIG_BEGIN],
        _ => &[],
    }
}

/// One decoded journal entry with its reconstructed causal parent
/// (an index into [`Journal::entries`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    pub time: SimTime,
    pub node: NodeId,
    pub cause: u64,
    pub event: CtrlEvent,
    pub parent: Option<usize>,
}

/// A reconstructed failover: from the last beacon of the old leader
/// through suspicion, campaign and election decree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failover {
    /// The new leader.
    pub leader: NodeId,
    /// Fabric epoch announced by the election decree.
    pub epoch: u32,
    /// Consensus slot of the `Reassert` decree.
    pub slot: Slot,
    /// When the new leader applied its election decree (earliest
    /// `LeaderElected` for this epoch — the moment E22 measures).
    pub elected_at: SimTime,
    /// When the accept quorum for the decree landed at the proposer.
    pub chosen_at: Option<SimTime>,
    /// When the new leader started campaigning.
    pub election_start: Option<SimTime>,
    /// When the new leader's detector crossed threshold.
    pub suspect_at: Option<SimTime>,
    /// The old leader's last beacon heard by the new leader
    /// (`suspect_at - silence_ns`).
    pub last_beacon: Option<SimTime>,
}

/// A reconstructed migration lifecycle for one range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationTimeline {
    pub reg: RegId,
    pub start: Key,
    pub from: NodeId,
    pub to: NodeId,
    /// Epoch issued at `MigBegin` (the commit decree re-issues a fresh
    /// one, so commit/abort events carry their own).
    pub epoch: u32,
    pub begin_at: SimTime,
    pub dual_owner_at: Option<SimTime>,
    /// Transfer passes needed before the dual-owner flip.
    pub passes: u32,
    pub commit_at: Option<SimTime>,
    pub abort_at: Option<SimTime>,
    pub abort_reason: Option<u8>,
}

impl MigrationTimeline {
    /// Total open window (begin to terminal event), when closed.
    pub fn window(&self) -> Option<u64> {
        self.commit_at
            .or(self.abort_at)
            .map(|t| t.since(self.begin_at).0)
    }

    /// Dual-owner window (dual-owner flip to commit), when both landed.
    pub fn dual_owner_window(&self) -> Option<u64> {
        match (self.dual_owner_at, self.commit_at) {
            (Some(d), Some(c)) => Some(c.since(d).0),
            _ => None,
        }
    }
}

/// One log compaction with its snapshot size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionRecord {
    pub at: SimTime,
    pub node: NodeId,
    pub upto: Slot,
    pub snap_bytes: u64,
}

/// The decoded, causally-linked journal.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// Decode raw records into typed entries and reconstruct parent
    /// links (records with unknown kinds are skipped).
    pub fn decode(records: &[JournalRecord]) -> Journal {
        let mut entries: Vec<JournalEntry> = Vec::with_capacity(records.len());
        // Latest index seen per (cause, kind), and per-node latest
        // Suspect for the ElectionStart cross-cause link.
        let mut latest: HashMap<(u64, u16), usize> = HashMap::new();
        let mut latest_suspect: HashMap<NodeId, usize> = HashMap::new();
        for r in records {
            let Some(event) = CtrlEvent::decode(r.kind, r.a, r.b, r.c) else {
                continue;
            };
            let idx = entries.len();
            let parent = if r.kind == KIND_ELECTION_START {
                latest_suspect.get(&r.node).copied()
            } else {
                parent_kinds(r.kind)
                    .iter()
                    .filter_map(|&pk| latest.get(&(r.cause, pk)).copied())
                    .max()
            };
            entries.push(JournalEntry {
                time: r.time,
                node: r.node,
                cause: r.cause,
                event,
                parent,
            });
            latest.insert((r.cause, r.kind), idx);
            if r.kind == KIND_SUSPECT {
                latest_suspect.insert(r.node, idx);
            }
        }
        Journal { entries }
    }

    /// All decoded entries in journal order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reconstruct every failover: for each epoch with a `LeaderElected`
    /// decree, walk the causal chain back through the winner's campaign
    /// and suspicion to the old leader's last beacon.
    pub fn failovers(&self) -> Vec<Failover> {
        // Earliest LeaderElected per epoch: the new leader applies its
        // own decree at accept-quorum time, before any follower learns
        // it, so the earliest is the leader's own apply.
        let mut by_epoch: HashMap<u32, usize> = HashMap::new();
        for (i, e) in self.entries.iter().enumerate() {
            if let CtrlEvent::LeaderElected { epoch, .. } = e.event {
                by_epoch.entry(epoch).or_insert(i);
            }
        }
        let mut out: Vec<Failover> = Vec::new();
        for (&epoch, &i) in &by_epoch {
            let e = self.entries[i];
            let CtrlEvent::LeaderElected { leader, slot, .. } = e.event else {
                continue;
            };
            let chosen_at = self
                .entries
                .iter()
                .find(|x| matches!(x.event, CtrlEvent::Chosen { slot: s, .. } if s == slot))
                .map(|x| x.time);
            // The winner's latest campaign start at or before the win.
            let election = self.entries[..=i]
                .iter()
                .rev()
                .find(|x| x.node == leader && matches!(x.event, CtrlEvent::ElectionStart { .. }));
            let election_start = election.map(|x| x.time);
            let horizon = election_start.unwrap_or(e.time);
            let suspect = self.entries.iter().rev().find(|x| {
                x.node == leader
                    && x.time <= horizon
                    && matches!(x.event, CtrlEvent::Suspect { .. })
            });
            let suspect_at = suspect.map(|x| x.time);
            let last_beacon = suspect.and_then(|x| match x.event {
                CtrlEvent::Suspect { silence_ns, .. } => Some(SimTime(x.time.0 - silence_ns)),
                _ => None,
            });
            out.push(Failover {
                leader,
                epoch,
                slot,
                elected_at: e.time,
                chosen_at,
                election_start,
                suspect_at,
                last_beacon,
            });
        }
        out.sort_by_key(|f| (f.elected_at, f.epoch));
        out
    }

    /// Reconstruct every migration lifecycle, in begin order.
    pub fn migrations(&self) -> Vec<MigrationTimeline> {
        let mut open: HashMap<u64, MigrationTimeline> = HashMap::new();
        let mut done: Vec<MigrationTimeline> = Vec::new();
        for e in &self.entries {
            match e.event {
                CtrlEvent::MigBegin {
                    reg,
                    start,
                    from,
                    to,
                    epoch,
                } => {
                    if let Some(prev) = open.insert(
                        e.cause,
                        MigrationTimeline {
                            reg,
                            start,
                            from,
                            to,
                            epoch,
                            begin_at: e.time,
                            dual_owner_at: None,
                            passes: 0,
                            commit_at: None,
                            abort_at: None,
                            abort_reason: None,
                        },
                    ) {
                        done.push(prev);
                    }
                }
                CtrlEvent::MigDualOwner { pass, .. } => {
                    if let Some(m) = open.get_mut(&e.cause) {
                        m.dual_owner_at = Some(e.time);
                        m.passes = pass;
                    }
                }
                CtrlEvent::MigCommit { .. } => {
                    if let Some(mut m) = open.remove(&e.cause) {
                        m.commit_at = Some(e.time);
                        done.push(m);
                    }
                }
                CtrlEvent::MigAbort { reason, .. } => {
                    if let Some(mut m) = open.remove(&e.cause) {
                        m.abort_at = Some(e.time);
                        m.abort_reason = Some(reason);
                        done.push(m);
                    }
                }
                _ => {}
            }
        }
        done.extend(open.into_values());
        done.sort_by_key(|m| (m.begin_at, m.reg, m.start));
        done
    }

    /// Every log compaction, in time order.
    pub fn compactions(&self) -> Vec<CompactionRecord> {
        self.entries
            .iter()
            .filter_map(|e| match e.event {
                CtrlEvent::Compact { upto, snap_bytes } => Some(CompactionRecord {
                    at: e.time,
                    node: e.node,
                    upto,
                    snap_bytes,
                }),
                _ => None,
            })
            .collect()
    }

    /// The last `n` entries rendered as human lines (oracle violations
    /// attach these as pre-violation context).
    pub fn tail_strings(&self, n: usize) -> Vec<String> {
        let skip = self.entries.len().saturating_sub(n);
        self.entries[skip..]
            .iter()
            .map(|e| format!("[{} ns] n{} {}", e.time.0, e.node.0, e.event))
            .collect()
    }

    /// The last `n` entries at or before `at`, rendered as human lines.
    pub fn tail_strings_at(&self, at: SimTime, n: usize) -> Vec<String> {
        let upto = self.entries.partition_point(|e| e.time <= at);
        let skip = upto.saturating_sub(n);
        self.entries[skip..upto]
            .iter()
            .map(|e| format!("[{} ns] n{} {}", e.time.0, e.node.0, e.event))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swishmem_simnet::JournalCollector;

    fn rec(time: u64, node: u16, ev: CtrlEvent) -> JournalRecord {
        let (kind, cause, a, b, c) = ev.encode();
        JournalRecord {
            time: SimTime(time),
            node: NodeId(node),
            kind,
            cause,
            a,
            b,
            c,
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_kinds() {
        let events = vec![
            CtrlEvent::Propose {
                slot: 3,
                ballot: 258,
            },
            CtrlEvent::Promise {
                slot: 3,
                ballot: 258,
            },
            CtrlEvent::Accepted {
                slot: 3,
                ballot: 258,
            },
            CtrlEvent::Chosen {
                slot: 3,
                ballot: 258,
            },
            CtrlEvent::Learned { slot: 3 },
            CtrlEvent::StepDown {
                slot: 4,
                ballot: 513,
            },
            CtrlEvent::Applied { slot: 3, tag: 7 },
            CtrlEvent::ElectionStart {
                ballot: 513,
                timeout_ns: 1_000_000,
            },
            CtrlEvent::LeaderElected {
                leader: NodeId(u16::MAX - 1),
                epoch: 5,
                slot: 9,
            },
            CtrlEvent::LeaseLost {
                heard: 0,
                quorum: 2,
            },
            CtrlEvent::Suspect {
                target: NodeId(u16::MAX),
                silence_ns: 2_500_000,
                timeout_ns: 2_000_000,
            },
            CtrlEvent::Unsuspect {
                target: NodeId(u16::MAX),
            },
            CtrlEvent::MemberChange {
                node: NodeId(u16::MAX - 3),
                add: true,
                slot: 12,
            },
            CtrlEvent::Compact {
                upto: 40,
                snap_bytes: 512,
            },
            CtrlEvent::SnapshotSent {
                base: 40,
                bytes: 512,
                to: NodeId(u16::MAX - 2),
            },
            CtrlEvent::SnapshotInstalled { base: 40 },
            CtrlEvent::FollowerRead { reg: 2, key: 77 },
            CtrlEvent::MigBegin {
                reg: 1,
                start: 1024,
                from: NodeId(0),
                to: NodeId(2),
                epoch: 3,
            },
            CtrlEvent::MigDualOwner {
                reg: 1,
                start: 1024,
                epoch: 3,
                pass: 2,
            },
            CtrlEvent::MigCommit {
                reg: 1,
                start: 1024,
                epoch: 4,
            },
            CtrlEvent::MigAbort {
                reg: 1,
                start: 1024,
                epoch: 3,
                reason: ABORT_DEST_FAILED,
            },
        ];
        for ev in events {
            let (kind, _cause, a, b, c) = ev.encode();
            assert_eq!(CtrlEvent::decode(kind, a, b, c), Some(ev), "{ev}");
        }
        assert_eq!(CtrlEvent::decode(9999, 0, 0, 0), None);
    }

    #[test]
    fn parent_links_follow_cause_chains() {
        let records = vec![
            rec(10, 1, CtrlEvent::Propose { slot: 5, ballot: 1 }),
            rec(20, 2, CtrlEvent::Promise { slot: 5, ballot: 1 }),
            rec(30, 2, CtrlEvent::Accepted { slot: 5, ballot: 1 }),
            rec(40, 1, CtrlEvent::Chosen { slot: 5, ballot: 1 }),
            rec(50, 2, CtrlEvent::Learned { slot: 5 }),
            rec(50, 2, CtrlEvent::Applied { slot: 5, tag: 1 }),
            // Different slot: chain must not cross causes.
            rec(60, 1, CtrlEvent::Propose { slot: 6, ballot: 1 }),
            rec(70, 1, CtrlEvent::Chosen { slot: 6, ballot: 1 }),
        ];
        let j = Journal::decode(&records);
        let e = j.entries();
        assert_eq!(e[1].parent, Some(0), "promise -> propose");
        assert_eq!(e[2].parent, Some(0), "accepted -> propose");
        assert_eq!(e[3].parent, Some(2), "chosen -> accepted");
        assert_eq!(e[4].parent, Some(3), "learned -> chosen");
        assert_eq!(e[5].parent, Some(4), "applied -> learned");
        assert_eq!(e[6].parent, None);
        assert_eq!(e[7].parent, Some(6), "chosen -> propose (no accepted)");
    }

    #[test]
    fn election_start_links_to_same_node_suspect() {
        let records = vec![
            rec(
                100,
                7,
                CtrlEvent::Suspect {
                    target: NodeId(1),
                    silence_ns: 60,
                    timeout_ns: 50,
                },
            ),
            rec(
                105,
                8,
                CtrlEvent::Suspect {
                    target: NodeId(1),
                    silence_ns: 65,
                    timeout_ns: 50,
                },
            ),
            rec(
                110,
                7,
                CtrlEvent::ElectionStart {
                    ballot: 259,
                    timeout_ns: 50,
                },
            ),
        ];
        let j = Journal::decode(&records);
        assert_eq!(
            j.entries()[2].parent,
            Some(0),
            "own suspicion, not node 8's"
        );
    }

    #[test]
    fn failover_reconstruction_walks_back_to_last_beacon() {
        let leader = NodeId(u16::MAX - 1);
        let records = vec![
            rec(
                1_000,
                leader.0,
                CtrlEvent::Suspect {
                    target: NodeId(u16::MAX),
                    silence_ns: 400,
                    timeout_ns: 350,
                },
            ),
            rec(
                1_100,
                leader.0,
                CtrlEvent::ElectionStart {
                    ballot: 257,
                    timeout_ns: 350,
                },
            ),
            rec(
                1_150,
                leader.0,
                CtrlEvent::Propose {
                    slot: 8,
                    ballot: 257,
                },
            ),
            rec(
                1_200,
                leader.0,
                CtrlEvent::Chosen {
                    slot: 8,
                    ballot: 257,
                },
            ),
            rec(
                1_200,
                leader.0,
                CtrlEvent::LeaderElected {
                    leader,
                    epoch: 2,
                    slot: 8,
                },
            ),
            // A follower learns later; must not shift the failover time.
            rec(
                1_300,
                u16::MAX - 2,
                CtrlEvent::LeaderElected {
                    leader,
                    epoch: 2,
                    slot: 8,
                },
            ),
        ];
        let j = Journal::decode(&records);
        let f = j.failovers();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].leader, leader);
        assert_eq!(f[0].epoch, 2);
        assert_eq!(f[0].elected_at, SimTime(1_200));
        assert_eq!(f[0].chosen_at, Some(SimTime(1_200)));
        assert_eq!(f[0].election_start, Some(SimTime(1_100)));
        assert_eq!(f[0].suspect_at, Some(SimTime(1_000)));
        assert_eq!(f[0].last_beacon, Some(SimTime(600)));
    }

    #[test]
    fn migration_lifecycle_groups_by_range() {
        let records = vec![
            rec(
                10,
                0,
                CtrlEvent::MigBegin {
                    reg: 1,
                    start: 0,
                    from: NodeId(0),
                    to: NodeId(2),
                    epoch: 1,
                },
            ),
            rec(
                20,
                0,
                CtrlEvent::MigDualOwner {
                    reg: 1,
                    start: 0,
                    epoch: 1,
                    pass: 2,
                },
            ),
            rec(
                30,
                0,
                CtrlEvent::MigCommit {
                    reg: 1,
                    start: 0,
                    epoch: 2,
                },
            ),
            rec(
                40,
                0,
                CtrlEvent::MigBegin {
                    reg: 1,
                    start: 4096,
                    from: NodeId(1),
                    to: NodeId(2),
                    epoch: 1,
                },
            ),
            rec(
                50,
                0,
                CtrlEvent::MigAbort {
                    reg: 1,
                    start: 4096,
                    epoch: 1,
                    reason: ABORT_DEST_FAILED,
                },
            ),
        ];
        let j = Journal::decode(&records);
        let m = j.migrations();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].window(), Some(20));
        assert_eq!(m[0].dual_owner_window(), Some(10));
        assert_eq!(m[0].passes, 2);
        assert_eq!(m[1].abort_reason, Some(ABORT_DEST_FAILED));
        assert_eq!(m[1].window(), Some(10));
        assert!(m[1].dual_owner_window().is_none());
    }

    #[test]
    fn tail_strings_bound_and_render() {
        let handle = JournalCollector::new(16);
        {
            let mut col = handle.borrow_mut();
            for i in 0..5u64 {
                let (kind, cause, a, b, c) = CtrlEvent::Learned { slot: i }.encode();
                col.record(JournalRecord {
                    time: SimTime(i * 10),
                    node: NodeId(9),
                    kind,
                    cause,
                    a,
                    b,
                    c,
                });
            }
        }
        let j = Journal::decode(handle.borrow().records());
        let tail = j.tail_strings(2);
        assert_eq!(tail.len(), 2);
        assert!(tail[1].contains("learned slot 4"), "{tail:?}");
        let at = j.tail_strings_at(SimTime(25), 10);
        assert_eq!(at.len(), 3, "{at:?}");
    }
}

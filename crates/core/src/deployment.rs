//! Deployment: build an N-switch SwiShmem fabric inside the simulator.
//!
//! This is the "one big switch" entry point (§1): the user supplies
//! register specs and an NF factory; the builder instantiates one switch
//! per replica (identical program), a central controller, edge hosts, the
//! full-mesh inter-switch fabric, and the replica multicast group.

use crate::api::NfApp;
use crate::config::{ClockMode, RegisterSpec, SwishConfig};
use crate::controller::{ConfigEvent, ConsensusMetrics, Controller};
use crate::layer::cp::SwishCp;
use crate::layer::program::SwishProgram;
use crate::layer::{ChainView, Handles, RegKind, PENDING_SWEEP_PKTGEN_TOKEN, SYNC_PKTGEN_TOKEN};
use crate::metrics::SwitchMetrics;
use crate::version::SwitchClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;
use swishmem_pisa::{DataPlane, MemoryBudget, Switch, SwitchConfig};
use swishmem_simnet::{
    FaultSchedule, LinkParams, ObserverHandle, RecorderNode, Recording, SimDuration, SimTime,
    Simulator,
};
use swishmem_wire::swish::{Key, RegId};
use swishmem_wire::{DataPacket, NodeId, Packet};

/// The concrete switch type of a SwiShmem deployment.
pub type SwishSwitch = Switch<SwishProgram, SwishCp>;

/// First spine (relay) node id in leaf-spine fabrics.
pub const SPINE_BASE: u16 = 500;

/// Inter-switch fabric shape (§3.2's deployment scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fabric {
    /// Every switch directly linked to every other (the dedicated
    /// NF-cluster deployment).
    FullMesh,
    /// Switches are leaves behind `spines` relay switches; inter-switch
    /// traffic crosses a spine hop, ECMP-spread per (src, dst) pair (the
    /// in-fabric deployment).
    LeafSpine {
        /// Number of spine relays.
        spines: usize,
    },
}

/// First host node id (switches occupy 0..n).
pub const HOST_BASE: u16 = 1000;

/// Builder for a [`Deployment`].
pub struct DeploymentBuilder {
    n_switches: usize,
    n_hosts: usize,
    seed: u64,
    link: LinkParams,
    switch_cfg: SwitchConfig,
    swish_cfg: SwishConfig,
    registers: Vec<RegisterSpec>,
    memory: usize,
    fabric: Fabric,
    ctrl_spares: u8,
}

impl DeploymentBuilder {
    /// A deployment of `n_switches` replicas.
    pub fn new(n_switches: usize) -> DeploymentBuilder {
        DeploymentBuilder {
            n_switches,
            n_hosts: 2,
            seed: 1,
            link: LinkParams::datacenter(),
            switch_cfg: SwitchConfig::default(),
            swish_cfg: SwishConfig::default(),
            registers: Vec::new(),
            memory: swishmem_pisa::memory::DEFAULT_CAPACITY,
            fabric: Fabric::FullMesh,
            ctrl_spares: 0,
        }
    }

    /// Inter-switch fabric shape (default: full mesh).
    pub fn fabric(mut self, fabric: Fabric) -> Self {
        self.fabric = fabric;
        self
    }

    /// Number of edge hosts (traffic destinations), default 2.
    pub fn hosts(mut self, n: usize) -> Self {
        self.n_hosts = n;
        self
    }

    /// RNG seed (determinism knob).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inter-switch (and host/controller) link parameters.
    pub fn link(mut self, link: LinkParams) -> Self {
        self.link = link;
        self
    }

    /// Switch cost model (control-plane latency etc.).
    pub fn switch_config(mut self, cfg: SwitchConfig) -> Self {
        self.switch_cfg = cfg;
        self
    }

    /// Protocol configuration.
    pub fn swish_config(mut self, cfg: SwishConfig) -> Self {
        self.swish_cfg = cfg;
        self
    }

    /// Size of the controller replica group (default 1 = the classic
    /// singleton controller). Even values are rounded up to the next odd
    /// so a strict majority quorum exists. Shorthand for setting
    /// [`SwishConfig::ctrl_replicas`] via [`Self::swish_config`].
    pub fn ctrl_replicas(mut self, n: u8) -> Self {
        self.swish_cfg.ctrl_replicas = n;
        self
    }

    /// Number of spare controller replicas (default 0). Spares are
    /// deployed and wired into the fabric but are NOT members of the
    /// initial consensus group: they stay passive until an `AddReplica`
    /// decree (see [`Deployment::schedule_ctrl_add`]) admits them at
    /// runtime — the replacement pool for dead replicas. Requires
    /// `ctrl_replicas > 1`.
    pub fn ctrl_spares(mut self, n: u8) -> Self {
        self.ctrl_spares = n;
        self
    }

    /// Per-switch data-plane memory budget.
    pub fn memory(mut self, bytes: usize) -> Self {
        self.memory = bytes;
        self
    }

    /// Declare a shared register. Ids must be dense, in declaration order.
    pub fn register(mut self, spec: RegisterSpec) -> Self {
        assert_eq!(
            spec.id as usize,
            self.registers.len(),
            "register ids must be dense"
        );
        self.registers.push(spec);
        self
    }

    /// Build the deployment, instantiating the NF via `app_factory` once
    /// per switch.
    pub fn build<F>(self, app_factory: F) -> Deployment
    where
        F: Fn(NodeId) -> Box<dyn NfApp>,
    {
        let mut sim = Simulator::new(self.seed);
        let mut skew_rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_cafe);
        let switch_ids: Vec<NodeId> = (0..self.n_switches as u16).map(NodeId).collect();
        // Controller replica group (DESIGN.md §12): odd size, replica 0
        // at NodeId::CONTROLLER so singleton addressing is unchanged.
        let n_active = {
            let r = usize::from(self.swish_cfg.ctrl_replicas.max(1));
            if r % 2 == 0 {
                r + 1
            } else {
                r
            }
        };
        let n_spares = if n_active > 1 {
            usize::from(self.ctrl_spares)
        } else {
            0
        };
        let n_ctrl = n_active + n_spares;
        let ctrl_ids: Vec<NodeId> = (0..n_ctrl as u16).map(|i| NodeId(u16::MAX - i)).collect();
        let active_ids: Vec<NodeId> = ctrl_ids[..n_active].to_vec();

        for &id in &switch_ids {
            let mut dp = DataPlane::new(MemoryBudget::new(self.memory));
            let handles = Rc::new(
                Handles::build(&mut dp, &self.registers, &self.swish_cfg, self.n_switches)
                    .expect("register specs exceed data-plane memory"),
            );
            let skew = match self.swish_cfg.clock {
                ClockMode::Synced { max_skew_ns } if max_skew_ns > 0 => {
                    skew_rng.gen_range(-(max_skew_ns as i64)..=max_skew_ns as i64)
                }
                _ => 0,
            };
            let clock = SwitchClock::new(id, self.swish_cfg.clock, skew);
            let program =
                SwishProgram::new(id, self.swish_cfg, handles.clone(), app_factory(id), clock);
            let mut cp = SwishCp::new(id, self.swish_cfg, NodeId::CONTROLLER, handles);
            if n_active > 1 {
                // Switches address the ACTIVE group only: spares hold no
                // lease (no leader beacons reach them) so routing fabric
                // lookups at them would only burn retries.
                cp.set_ctrl_group(active_ids.clone());
            }
            let mut sw = Switch::new(self.switch_cfg, dp, program, cp);
            sw.add_pktgen(self.swish_cfg.sync_period, SYNC_PKTGEN_TOKEN);
            if self.swish_cfg.pending_sweep_period.as_nanos() > 0 {
                sw.add_pktgen(
                    self.swish_cfg.pending_sweep_period,
                    PENDING_SWEEP_PKTGEN_TOKEN,
                );
            }
            sim.add_node(id, Box::new(sw));
        }

        if n_ctrl == 1 {
            sim.add_node(
                NodeId::CONTROLLER,
                Box::new(Controller::new(
                    self.swish_cfg,
                    switch_ids.clone(),
                    self.registers.clone(),
                )),
            );
        } else {
            for (i, &id) in active_ids.iter().enumerate() {
                sim.add_node(
                    id,
                    Box::new(Controller::replica(
                        self.swish_cfg,
                        switch_ids.clone(),
                        self.registers.clone(),
                        i as u8,
                        active_ids.clone(),
                    )),
                );
            }
            for (i, &id) in ctrl_ids.iter().enumerate().skip(n_active) {
                sim.add_node(
                    id,
                    Box::new(Controller::spare(
                        self.swish_cfg,
                        switch_ids.clone(),
                        self.registers.clone(),
                        i as u8,
                        id,
                        active_ids.clone(),
                    )),
                );
            }
        }

        let mut hosts = Vec::with_capacity(self.n_hosts);
        let mut recordings = Vec::with_capacity(self.n_hosts);
        for i in 0..self.n_hosts as u16 {
            let id = NodeId(HOST_BASE + i);
            let (rec, log) = RecorderNode::new();
            sim.add_node(id, Box::new(rec));
            hosts.push(id);
            recordings.push(log);
        }

        // Fabric: inter-switch connectivity per the chosen shape,
        // controller star, host-switch bipartite.
        match self.fabric {
            Fabric::FullMesh => sim.topology_mut().full_mesh(&switch_ids, self.link),
            Fabric::LeafSpine { spines } => {
                assert!(spines > 0, "need at least one spine");
                let spine_ids: Vec<NodeId> =
                    (0..spines as u16).map(|i| NodeId(SPINE_BASE + i)).collect();
                for &sp in &spine_ids {
                    sim.add_node(sp, Box::new(swishmem_simnet::RelayNode));
                    for &leaf in &switch_ids {
                        sim.topology_mut().connect(sp, leaf, self.link);
                    }
                }
                // ECMP: each (src, dst) leaf pair pins a spine by hash.
                for &a in &switch_ids {
                    for &b in &switch_ids {
                        if a != b {
                            let h = (u64::from(a.0) * 31 + u64::from(b.0)) as usize;
                            sim.topology_mut().set_route(a, b, spine_ids[h % spines]);
                        }
                    }
                }
            }
        }
        // Internal loopback port per switch: a control-plane packet-out
        // addressed to the switch itself (e.g. the writer is the chain
        // head) re-enters its own pipeline. Fast and lossless, like a
        // real loopback port.
        let loopback = LinkParams {
            latency: SimDuration::nanos(200),
            bandwidth_bps: 0,
            drop_prob: 0.0,
            jitter: SimDuration::ZERO,
            corrupt_prob: 0.0,
        };
        for &s in &switch_ids {
            sim.topology_mut().add_link(s, s, loopback);
        }
        for &c in &ctrl_ids {
            sim.topology_mut().star(c, &switch_ids, self.link);
        }
        if n_ctrl > 1 {
            sim.topology_mut().full_mesh(&ctrl_ids, self.link);
        }
        for &h in &hosts {
            for &s in &switch_ids {
                sim.topology_mut().connect(h, s, self.link);
            }
        }

        Deployment {
            sim,
            switches: switch_ids,
            ctrls: ctrl_ids,
            n_ctrl_active: n_active,
            hosts,
            recordings,
            cfg: self.swish_cfg,
            specs: self.registers,
            ingest_records: 0,
            ingest_stalls: 0,
        }
    }
}

/// A running SwiShmem fabric.
pub struct Deployment {
    /// The underlying simulator (exposed for fault-injection schedules and
    /// statistics).
    pub sim: Simulator,
    switches: Vec<NodeId>,
    ctrls: Vec<NodeId>,
    /// Replicas `0..n_ctrl_active` form the initial consensus group;
    /// the rest are spares awaiting an `AddReplica` decree.
    n_ctrl_active: usize,
    hosts: Vec<NodeId>,
    recordings: Vec<Recording>,
    cfg: SwishConfig,
    specs: Vec<RegisterSpec>,
    /// Trace records fed into the fabric by a replay engine (cumulative;
    /// sampled into `MetricsSample::ingest_records` deltas).
    ingest_records: u64,
    /// Ring-ingest backpressure stalls observed while feeding this
    /// deployment (cumulative).
    ingest_stalls: u64,
}

impl Deployment {
    /// Run until the bootstrap configuration has propagated (a couple of
    /// heartbeat intervals).
    pub fn settle(&mut self) {
        let d = SimDuration::nanos(2 * self.cfg.heartbeat_interval.as_nanos().max(1_000_000));
        self.sim.run_for(d);
    }

    /// Switch node ids.
    pub fn switch_ids(&self) -> &[NodeId] {
        &self.switches
    }

    /// Host node ids.
    pub fn host_ids(&self) -> &[NodeId] {
        &self.hosts
    }

    /// The i-th host id.
    pub fn host(&self, i: usize) -> NodeId {
        self.hosts[i]
    }

    /// Packets received by host `i`.
    pub fn recording(&self, i: usize) -> &Recording {
        &self.recordings[i]
    }

    /// Inject a data packet arriving at switch `sw` from host `from` at
    /// absolute time `t`.
    pub fn inject(&mut self, t: SimTime, sw: usize, from: usize, pkt: DataPacket) {
        let p = Packet::data(self.hosts[from], self.switches[sw], pkt);
        self.sim.inject(t, p);
    }

    /// Account trace-replay ingest against this deployment: `records`
    /// fed, `stalls` backpressure bounces. Pure bookkeeping — it never
    /// touches the simulator, so replay accounting cannot perturb a run.
    pub fn note_ingest(&mut self, records: u64, stalls: u64) {
        self.ingest_records += records;
        self.ingest_stalls += stalls;
    }

    /// Cumulative trace records fed by a replay engine.
    pub fn ingest_records(&self) -> u64 {
        self.ingest_records
    }

    /// Cumulative replay backpressure stalls.
    pub fn ingest_stalls(&self) -> u64 {
        self.ingest_stalls
    }

    /// Attach an ingress capture tap of `capacity` records to the
    /// underlying simulator and return its handle. Every subsequent
    /// [`Deployment::inject`] (and any raw `sim.inject`) is recorded so
    /// the run's input stream can be exported as a `.swtrace`.
    pub fn attach_capture(&mut self, capacity: usize) -> swishmem_simnet::CaptureHandle {
        let h = swishmem_simnet::CaptureBuffer::handle(capacity);
        self.sim.set_capture(h.clone());
        h
    }

    /// Detach the ingress capture tap.
    pub fn detach_capture(&mut self) {
        self.sim.clear_capture();
    }

    /// Typed access to switch `i` (panics if the node is missing).
    pub fn switch(&self, i: usize) -> &SwishSwitch {
        self.sim
            .node::<SwishSwitch>(self.switches[i])
            .expect("switch present")
    }

    /// Management-plane read of `reg[key]` at switch `i`.
    pub fn peek(&self, i: usize, reg: RegId, key: Key) -> u64 {
        let now = self.sim.now();
        let sw = self.switch(i);
        sw.program().peek(sw.dp(), reg, key, now)
    }

    /// Combined protocol metrics of switch `i`.
    pub fn metrics(&self, i: usize) -> SwitchMetrics {
        let sw = self.switch(i);
        SwitchMetrics {
            dp: sw.program().metrics().clone(),
            cp: sw.cp_app().metrics().clone(),
        }
    }

    /// Sum of a `u64` metric across switches.
    pub fn sum_metric<F: Fn(&SwitchMetrics) -> u64>(&self, f: F) -> u64 {
        (0..self.switches.len()).map(|i| f(&self.metrics(i))).sum()
    }

    /// Controller node ids: `[NodeId::CONTROLLER]` for a singleton, the
    /// replica group otherwise.
    pub fn controller_ids(&self) -> &[NodeId] {
        &self.ctrls
    }

    /// The controller node whose answers are authoritative right now:
    /// the live acting leader if there is one, else the live replica
    /// with the highest configuration epoch (the most caught-up
    /// follower), else replica 0.
    pub fn acting_controller_id(&self) -> NodeId {
        let mut best = self.ctrls[0];
        let mut best_epoch = 0;
        for &c in &self.ctrls {
            let Some(ctrl) = self.sim.node::<Controller>(c) else {
                continue;
            };
            if self.sim.is_failed(c) {
                continue;
            }
            if ctrl.is_acting_leader() {
                return c;
            }
            if ctrl.view().epoch >= best_epoch {
                best_epoch = ctrl.view().epoch;
                best = c;
            }
        }
        best
    }

    fn acting_controller(&self) -> Option<&Controller> {
        self.sim.node::<Controller>(self.acting_controller_id())
    }

    /// Read front-end over the whole controller group (singleton or
    /// replicated): per-replica access plus group-level summaries.
    pub fn controller(&self) -> ReplicatedController<'_> {
        ReplicatedController {
            ids: self.ctrls.clone(),
            n_active: self.n_ctrl_active,
            reps: self
                .ctrls
                .iter()
                .map(|&c| self.sim.node::<Controller>(c))
                .collect(),
            failed: self.ctrls.iter().map(|&c| self.sim.is_failed(c)).collect(),
        }
    }

    /// Schedule a fail-stop crash of controller replica `idx` at `t`.
    pub fn schedule_ctrl_fail(&mut self, t: SimTime, idx: usize) {
        let id = self.ctrls[idx];
        self.sim.schedule_fail(t, id);
    }

    /// Schedule recovery of controller replica `idx` at `t`. Unlike a
    /// switch recovery, controller state survives the crash (persistent
    /// controller storage; DESIGN.md §12).
    pub fn schedule_ctrl_recover(&mut self, t: SimTime, idx: usize) {
        let id = self.ctrls[idx];
        self.sim.schedule_recover(t, id);
    }

    /// The controller's reconfiguration log.
    pub fn controller_events(&self) -> Vec<ConfigEvent> {
        self.acting_controller()
            .map(|c| c.events().to_vec())
            .unwrap_or_default()
    }

    /// The deployment's register specifications.
    pub fn register_specs(&self) -> &[RegisterSpec] {
        &self.specs
    }

    /// The protocol configuration in effect.
    pub fn config(&self) -> &SwishConfig {
        &self.cfg
    }

    /// Index of a switch id in [`Deployment::switch_ids`], if it is one.
    pub fn switch_index(&self, id: NodeId) -> Option<usize> {
        self.switches.iter().position(|&s| s == id)
    }

    /// Whether switch `i` is currently failed.
    pub fn is_switch_failed(&self, i: usize) -> bool {
        self.sim.is_failed(self.switches[i])
    }

    /// The configuration epoch switch `i`'s control plane has adopted.
    pub fn adopted_epoch(&self, i: usize) -> u32 {
        self.switch(i).cp_app().view().epoch
    }

    /// The controller's current chain view.
    pub fn controller_view(&self) -> ChainView {
        self.acting_controller()
            .map(|c| c.view().clone())
            .unwrap_or_default()
    }

    /// The range table switch `i` has installed for a partitioned
    /// register (empty for replicated registers or before the
    /// controller's initial broadcast lands).
    pub fn installed_ranges(&self, i: usize, reg: RegId) -> Vec<crate::reconfig::RangeView> {
        let sw = self.switch(i);
        let Some(h) = sw.program().handles().rangeblk(reg) else {
            return Vec::new();
        };
        crate::layer::read_ranges_dp(sw.dp(), h)
    }

    /// The controller's master range table for a partitioned register.
    pub fn controller_ranges(&self, reg: RegId) -> Vec<crate::reconfig::RangeView> {
        self.acting_controller()
            .map(|c| c.range_table(reg))
            .unwrap_or_default()
    }

    /// The controller's reconfiguration-engine event log.
    pub fn reconfig_events(&self) -> Vec<crate::reconfig::ReconfigLogEntry> {
        self.acting_controller()
            .map(|c| c.reconfig_log().to_vec())
            .unwrap_or_default()
    }

    /// The migration phase of the range containing `reg[key]`.
    pub fn migration_phase(&self, reg: RegId, key: Key) -> crate::reconfig::MigrationPhase {
        self.acting_controller()
            .map(|c| c.migration_phase(reg, key))
            .unwrap_or(crate::reconfig::MigrationPhase::Idle)
    }

    /// Schedule an explicit reconfiguration trigger at absolute time `t`:
    /// fires a controller timer through the engine's ordinary event
    /// order, exactly as a fault schedule would inject it.
    pub fn schedule_trigger(
        &mut self,
        t: SimTime,
        op: crate::reconfig::TriggerOp,
        reg: RegId,
        key: Key,
        to: NodeId,
    ) {
        let token = crate::reconfig::trigger_token_op(op, reg, key, to);
        let now = self.sim.now();
        // Every replica receives the trigger; only whoever acts as
        // leader at fire time submits it (so a pre-fire failover does
        // not lose the trigger).
        let mut sched = swishmem_simnet::FaultSchedule::new();
        for &c in &self.ctrls {
            sched = sched.trigger(t.since(now), c, token);
        }
        self.sim.schedule_faults(now, &sched);
    }

    /// Schedule a replica-group reconfiguration decree admitting
    /// controller replica `idx` (normally a spare) at `t`. Rides the
    /// ordinary trigger path: whoever leads at fire time submits an
    /// `AddReplica` through the log.
    pub fn schedule_ctrl_add(&mut self, t: SimTime, idx: usize) {
        self.schedule_trigger(
            t,
            crate::reconfig::TriggerOp::AddCtrl,
            0,
            0,
            NodeId(idx as u16),
        );
    }

    /// Schedule a decree removing controller replica `idx` from the
    /// consensus group at `t` (runtime replacement of a dead replica).
    pub fn schedule_ctrl_remove(&mut self, t: SimTime, idx: usize) {
        self.schedule_trigger(
            t,
            crate::reconfig::TriggerOp::RemoveCtrl,
            0,
            0,
            NodeId(idx as u16),
        );
    }

    /// Controller replicas in the initial consensus group (spares are
    /// deployed after this prefix of [`Deployment::controller_ids`]).
    pub fn ctrl_active(&self) -> usize {
        self.n_ctrl_active
    }

    /// Per-group applied sequence numbers of a chain register at switch
    /// `i` (empty for EWO registers).
    pub fn chain_seqs(&self, i: usize, reg: RegId) -> Vec<u64> {
        let sw = self.switch(i);
        let entry = &sw.program().handles().regs[reg as usize];
        let RegKind::Chain { seq, .. } = &entry.kind else {
            return Vec::new();
        };
        // Partitioned registers sequence per key, not per group.
        let slots = crate::layer::Handles::seq_slots(&entry.spec, &self.cfg);
        (0..slots)
            .map(|g| sw.dp().reg(*seq).read(g as usize))
            .collect()
    }

    /// Per-group pending (in-flight) sequence numbers of an SRO register
    /// at switch `i` (empty for ERO/EWO registers; 0 = not pending).
    pub fn pending_seqs(&self, i: usize, reg: RegId) -> Vec<u64> {
        let sw = self.switch(i);
        let entry = &sw.program().handles().regs[reg as usize];
        let RegKind::Chain {
            pending: Some(p), ..
        } = &entry.kind
        else {
            return Vec::new();
        };
        let slots = self.cfg.group_slots(entry.spec.keys);
        (0..slots)
            .map(|g| sw.dp().reg(*p).read(g as usize))
            .collect()
    }

    /// Install a [`FaultSchedule`] with offsets relative to `base`.
    pub fn schedule_faults(&mut self, base: SimTime, sched: &FaultSchedule) {
        self.sim.schedule_faults(base, sched);
    }

    /// Attach a passive engine observer (e.g. the oracle suite's wire
    /// checker).
    pub fn add_observer(&mut self, obs: ObserverHandle) {
        self.sim.add_observer(obs);
    }

    /// Attach a causal span collector: every protocol phase marker
    /// (ingress, punt, chain hops, ack, release, …) is recorded into the
    /// returned handle, capped at `capacity` events. Purely passive —
    /// attaching changes no simulation outcome (see the determinism
    /// tests).
    pub fn attach_tracing(&mut self, capacity: usize) -> swishmem_simnet::SpanHandle {
        let h = swishmem_simnet::SpanCollector::new(capacity);
        self.sim.set_spans(h.clone());
        h
    }

    /// Detach the span collector; span emission reverts to a no-op.
    pub fn detach_tracing(&mut self) {
        self.sim.clear_spans();
    }

    /// Attach the control-plane flight recorder: every consensus
    /// transition, leadership/lease change, detector edge, membership
    /// decree and migration lifecycle step is journaled into the
    /// returned handle, capped at `capacity` records. Purely passive —
    /// attaching changes no simulation outcome (see the determinism
    /// tests). Decode with [`crate::telemetry::journal::Journal`].
    pub fn attach_journal(&mut self, capacity: usize) -> swishmem_simnet::JournalHandle {
        let h = swishmem_simnet::JournalCollector::new(capacity);
        self.sim.set_journal(h.clone());
        h
    }

    /// Detach the flight recorder; journal emission reverts to a no-op.
    pub fn detach_journal(&mut self) {
        self.sim.clear_journal();
    }

    /// Run to absolute time `t`, pausing every `sampler.interval()` to
    /// take a metrics sample of every switch.
    pub fn run_sampled(&mut self, t: SimTime, sampler: &mut crate::telemetry::TimeSeriesSampler) {
        while self.now() < t {
            let next = (self.now() + sampler.interval()).min(t);
            self.sim.run_until(next);
            sampler.sample(self);
        }
    }

    /// Fault-plane link targets of this deployment: every inter-switch
    /// pair plus the controller star (the latter models control-plane
    /// message delay/drop when degraded). Pairs without a physical link
    /// (e.g. leaf-leaf under a spine fabric) are tolerated no-ops.
    pub fn fault_links(&self) -> Vec<(NodeId, NodeId)> {
        let mut links = Vec::new();
        for (i, &a) in self.switches.iter().enumerate() {
            for &b in &self.switches[i + 1..] {
                links.push((a, b));
            }
        }
        for &s in &self.switches {
            for &c in &self.ctrls {
                links.push((s, c));
            }
        }
        // Replica-replica links: partitions here are what consensus is
        // for, so the fault plane must be able to cut them.
        for (i, &a) in self.ctrls.iter().enumerate() {
            for &b in &self.ctrls[i + 1..] {
                links.push((a, b));
            }
        }
        links
    }

    /// Schedule a fail-stop failure of switch `i` at `t`.
    pub fn schedule_fail(&mut self, t: SimTime, i: usize) {
        let id = self.switches[i];
        self.sim.schedule_fail(t, id);
    }

    /// Schedule recovery (fresh state) of switch `i` at `t`.
    pub fn schedule_recover(&mut self, t: SimTime, i: usize) {
        let id = self.switches[i];
        self.sim.schedule_recover(t, id);
    }

    /// Run to an absolute time.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Run for a duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Partition a register's key space across the switches in the
    /// controller's directory (§7 extension). Call before running.
    /// Applied to every replica: the layout is part of the replicated
    /// initial state, so all replicas must agree on it before slot 0.
    pub fn partition_register(&mut self, reg: RegId, keys: Key, owners: &[NodeId]) {
        for c in self.ctrls.clone() {
            let ctrl = self
                .sim
                .node_mut::<crate::controller::Controller>(c)
                .expect("controller present");
            ctrl.directory_mut().partition_even(reg, keys, owners);
        }
    }

    /// Issue a directory lookup from switch `sw`'s control plane: injects
    /// the query packet toward the controller; the reply is cached in the
    /// switch CP (see [`Deployment::dir_owners`]).
    pub fn dir_lookup(&mut self, t: SimTime, sw: usize, reg: RegId, key: Key) {
        let target = self.switch(sw).cp_app().dir_query_target(reg, key);
        let from = self.switches[sw];
        let pkt = Packet::swish(
            from,
            target,
            swishmem_wire::SwishMsg::DirLookup(swishmem_wire::swish::DirLookup { from, reg, key }),
        );
        self.sim.inject(t, pkt);
    }

    /// Like [`Deployment::dir_lookup`] but pinned to controller replica
    /// `ctrl` — the lease-edge tests aim lookups at a specific follower.
    pub fn dir_lookup_at(&mut self, t: SimTime, sw: usize, ctrl: usize, reg: RegId, key: Key) {
        let from = self.switches[sw];
        let pkt = Packet::swish(
            from,
            self.ctrls[ctrl],
            swishmem_wire::SwishMsg::DirLookup(swishmem_wire::swish::DirLookup { from, reg, key }),
        );
        self.sim.inject(t, pkt);
    }

    /// The owner set switch `sw` has cached for `reg[key]`, if any.
    pub fn dir_owners(&self, sw: usize, reg: RegId, key: Key) -> Option<Vec<NodeId>> {
        self.switch(sw)
            .cp_app()
            .dir_owners(reg, key)
            .map(|o| o.to_vec())
    }
}

/// Read front-end over the controller group (DESIGN.md §12): one place
/// to ask group-level questions — who leads, what the quorum is, how
/// much consensus traffic the group spent — whether the deployment runs
/// the paper's singleton or a replica group. Obtained from
/// [`Deployment::controller`].
pub struct ReplicatedController<'a> {
    ids: Vec<NodeId>,
    n_active: usize,
    reps: Vec<Option<&'a Controller>>,
    failed: Vec<bool>,
}

impl<'a> ReplicatedController<'a> {
    /// Replica node ids, index order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Group size (1 for a singleton).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for a singleton group.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Majority quorum size of the current consensus membership: the
    /// leader's live group when one exists (it tracks runtime
    /// `AddReplica`/`RemoveReplica` decrees), else the deployment's
    /// initial active group.
    pub fn quorum(&self) -> usize {
        let group = self
            .leader()
            .map(|(_, l)| l.consensus_group().len())
            .filter(|&n| n > 0)
            .unwrap_or(self.n_active);
        group / 2 + 1
    }

    /// Replica `idx`, if present.
    pub fn replica(&self, idx: usize) -> Option<&'a Controller> {
        self.reps.get(idx).copied().flatten()
    }

    /// Whether replica `idx` is currently crashed.
    pub fn is_failed(&self, idx: usize) -> bool {
        self.failed.get(idx).copied().unwrap_or(false)
    }

    /// The live replica currently acting as leader, if any.
    pub fn leader(&self) -> Option<(NodeId, &'a Controller)> {
        self.ids
            .iter()
            .zip(&self.reps)
            .zip(&self.failed)
            .filter(|((_, r), &f)| !f && r.map(|c| c.is_acting_leader()).unwrap_or(false))
            .map(|((&id, r), _)| (id, r.expect("filtered")))
            .next()
    }

    /// Consensus counters summed across replicas; `commit` reports the
    /// group's highest committed prefix.
    pub fn consensus_metrics(&self) -> ConsensusMetrics {
        let mut total = ConsensusMetrics::default();
        for c in self.reps.iter().flatten() {
            let m = c.consensus_metrics();
            total.msgs_sent += m.msgs_sent;
            total.elections += m.elections;
            total.commit = total.commit.max(m.commit);
            total.leader_changes = total.leader_changes.max(m.leader_changes);
            total.log_compactions = total.log_compactions.max(m.log_compactions);
            total.snapshot_bytes = total.snapshot_bytes.max(m.snapshot_bytes);
            total.suspect_events += m.suspect_events;
            total.follower_reads += m.follower_reads;
        }
        total
    }

    /// Sticky consensus-layer errors across the group: `(replica id,
    /// error)` for every replica whose log window overflowed. The oracle
    /// suite reports any entry here as a protocol violation.
    pub fn consensus_errors(&self) -> Vec<(NodeId, crate::consensus::ConsensusError)> {
        self.ids
            .iter()
            .zip(&self.reps)
            .filter_map(|(&id, r)| r.and_then(|c| c.consensus_error()).map(|e| (id, e)))
            .collect()
    }

    /// Leader changes committed to the group's log (max across
    /// replicas: each counts the changes in its own committed prefix).
    pub fn leader_changes(&self) -> u64 {
        self.consensus_metrics().leader_changes
    }

    /// Consensus protocol messages sent, summed across the group.
    pub fn consensus_msgs(&self) -> u64 {
        self.consensus_metrics().msgs_sent
    }

    /// Lease-gated directory lookups served by non-leading replicas,
    /// summed across the group.
    pub fn follower_reads(&self) -> u64 {
        self.consensus_metrics().follower_reads
    }

    /// Controller-state snapshot bytes persisted across compactions
    /// (max across replicas: every replica applies the same decrees).
    pub fn snapshot_bytes(&self) -> u64 {
        self.consensus_metrics().snapshot_bytes
    }

    /// `LeaderElected` events merged across every replica's log, keeping
    /// the earliest record per epoch: each replica stamps the decree at
    /// its own apply, so the earliest is the new leader's apply — the
    /// instant the election takes effect (and the instant the flight
    /// recorder journals). Sorted by time, for failover-gap measurement.
    pub fn elections(&self) -> Vec<ConfigEvent> {
        let mut by_epoch: std::collections::BTreeMap<u32, ConfigEvent> =
            std::collections::BTreeMap::new();
        for c in self.reps.iter().flatten() {
            for e in c.events() {
                if matches!(e.kind, crate::controller::ConfigEventKind::LeaderElected(_)) {
                    by_epoch
                        .entry(e.epoch)
                        .and_modify(|cur| {
                            if e.time < cur.time {
                                *cur = e.clone();
                            }
                        })
                        .or_insert_with(|| e.clone());
                }
            }
        }
        let mut out: Vec<ConfigEvent> = by_epoch.into_values().collect();
        out.sort_by_key(|e| (e.time, e.epoch));
        out
    }
}

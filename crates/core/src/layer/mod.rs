//! The SwiShmem protocol layer: the per-switch engine that wraps a user
//! [`crate::api::NfApp`] and implements the three register classes.
//!
//! Split:
//! * [`mod@self`] — shared definitions: register layouts, the data-plane
//!   configuration block, control-plane work items;
//! * [`nfctx`] — the [`crate::api::SharedState`] proxy handed to the NF;
//! * [`program`] — the data-plane program: NF invocation, chain-write
//!   handling, EWO apply/merge/periodic sync, snapshot apply;
//! * [`cp`] — the control-plane app: write buffering and retries (§6.1),
//!   heartbeats, configuration adoption, snapshot streaming (§6.3).

pub mod cp;
pub mod nfctx;
pub mod program;

use crate::config::{RegisterClass, RegisterSpec, SwishConfig};
use crate::reconfig::{self, RangeView, RANGEBLK_LEN};
use swishmem_pisa::{DataPlane, DpView, OutOfMemory, PairRegHandle, RegHandle};
use swishmem_simnet::GroupId;
use swishmem_wire::swish::{Key, RegId, WriteOp};
use swishmem_wire::{DataPacket, NodeId, SwishMsg};

/// The multicast group containing every live replica switch.
pub const REPLICA_GROUP: GroupId = GroupId(0);

/// Packet-generator token used for the EWO periodic sync task.
pub const SYNC_PKTGEN_TOKEN: u64 = 1;

/// Packet-generator token for the tail's pending sweep: periodic
/// re-multicast of `Clear` for committed group slots, repairing pending
/// bits orphaned by a lost clear or a tail crash mid-commit.
pub const PENDING_SWEEP_PKTGEN_TOKEN: u64 = 2;

/// Maximum chain length encodable in the data-plane config block.
pub const MAX_NODES: usize = 32;

/// Maximum simultaneous learners (recovering switches).
pub const MAX_LEARNERS: usize = 8;

/// Data-plane layout of one shared register.
#[derive(Debug)]
pub(crate) enum RegKind {
    /// SRO/ERO: value array + per-group sequence numbers (+ pending bits
    /// for SRO; `None` for ERO, which is how ERO "saves space by
    /// eliminating the need for pending bits", §6.1).
    Chain {
        /// Values, one cell per key.
        val: RegHandle,
        /// Last applied sequence number per key group.
        seq: RegHandle,
        /// Sequence number of the latest in-flight write per key group
        /// (0 = none); SRO only.
        pending: Option<RegHandle>,
    },
    /// EWO: `(version, value)` pair arrays — one per replica slot for
    /// counter policies, a single array for LWW (§7).
    Ewo {
        /// Slot arrays, indexed by replica slot.
        slots: Vec<PairRegHandle>,
    },
}

/// One shared register's spec and layout.
#[derive(Debug)]
pub(crate) struct RegEntry {
    pub spec: RegisterSpec,
    pub kind: RegKind,
}

/// All data-plane handles of the SwiShmem layer on one switch.
#[derive(Debug)]
pub struct Handles {
    pub(crate) regs: Vec<RegEntry>,
    /// The configuration block register (chain/learners/epoch), installed
    /// by the control plane, read by the pipeline.
    pub(crate) cfgblk: RegHandle,
    /// Per-partitioned-register range tables (`rangeblk`), same idiom as
    /// the config block: installed by control messages, consulted by the
    /// pipeline on every partitioned write. `(reg id, handle)` pairs;
    /// empty when no register is partitioned, so replicated deployments
    /// pay nothing.
    pub(crate) rangeblks: Vec<(RegId, RegHandle)>,
}

/// Length of the configuration block register array.
const CFGBLK_LEN: usize = 3 + MAX_NODES + MAX_LEARNERS;

impl Handles {
    /// Allocate the layer's data-plane state for `specs` on `dp`.
    ///
    /// `n_switches` sizes EWO counter slot vectors. Register ids must be
    /// dense (`specs[i].id == i`), which the deployment builder enforces.
    pub fn build(
        dp: &mut DataPlane,
        specs: &[RegisterSpec],
        cfg: &SwishConfig,
        n_switches: usize,
    ) -> Result<Handles, OutOfMemory> {
        assert!(
            n_switches <= MAX_NODES,
            "at most {MAX_NODES} switches supported"
        );
        let mut regs = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(
                spec.id as usize, i,
                "register ids must be dense and ordered"
            );
            let kind = match spec.class {
                RegisterClass::Sro | RegisterClass::Ero => {
                    let val =
                        dp.alloc_register(&format!("swish.{}.val", spec.name), spec.keys as usize)?;
                    let slots = Handles::seq_slots(spec, cfg) as usize;
                    let seq = dp.alloc_register(&format!("swish.{}.seq", spec.name), slots)?;
                    let pending = if spec.class == RegisterClass::Sro {
                        Some(dp.alloc_register(&format!("swish.{}.pending", spec.name), slots)?)
                    } else {
                        None
                    };
                    RegKind::Chain { val, seq, pending }
                }
                RegisterClass::Ewo => {
                    let n_slots = match spec.policy {
                        crate::config::MergePolicy::Lww => 1,
                        _ => n_switches,
                    };
                    let mut slots = Vec::with_capacity(n_slots);
                    for s in 0..n_slots {
                        slots.push(dp.alloc_pair_register(
                            &format!("swish.{}.slot{}", spec.name, s),
                            spec.keys as usize,
                        )?);
                    }
                    RegKind::Ewo { slots }
                }
            };
            regs.push(RegEntry {
                spec: spec.clone(),
                kind,
            });
        }
        let cfgblk = dp.alloc_register("swish.cfg", CFGBLK_LEN)?;
        let mut rangeblks = Vec::new();
        for spec in specs.iter().filter(|s| s.is_partitioned()) {
            rangeblks.push((
                spec.id,
                dp.alloc_register(&format!("swish.{}.ranges", spec.name), RANGEBLK_LEN)?,
            ));
        }
        Ok(Handles {
            regs,
            cfgblk,
            rangeblks,
        })
    }

    /// Look up a register entry; panics on unknown id (programming error).
    pub(crate) fn entry(&self, reg: RegId) -> &RegEntry {
        &self.regs[reg as usize]
    }

    /// The range-table handle for a partitioned register.
    pub(crate) fn rangeblk(&self, reg: RegId) -> Option<RegHandle> {
        self.rangeblks
            .iter()
            .find(|(r, _)| *r == reg)
            .map(|(_, h)| *h)
    }

    /// Sequence/pending slots for a register: partitioned registers
    /// sequence per key (grouping would alias slots across directory
    /// range boundaries), replicated ones per key group.
    pub(crate) fn seq_slots(spec: &RegisterSpec, cfg: &SwishConfig) -> u32 {
        if spec.is_partitioned() {
            spec.keys.max(1)
        } else {
            cfg.group_slots(spec.keys)
        }
    }

    /// The group slot (shared sequence/pending index) for `key` under
    /// grouping factor `key_group` (identity for partitioned registers).
    pub(crate) fn group_slot(spec: &RegisterSpec, cfg: &SwishConfig, key: Key) -> usize {
        let slots = Handles::seq_slots(spec, cfg);
        (key % slots) as usize
    }
}

/// The chain configuration as read from (or written to) the config block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChainView {
    /// Configuration epoch.
    pub epoch: u32,
    /// Chain order, head first, tail last.
    pub chain: Vec<NodeId>,
    /// Learners appended after the tail for write propagation.
    pub learners: Vec<NodeId>,
}

impl ChainView {
    /// Write-propagation order: chain members then learners.
    pub fn write_order(&self) -> Vec<NodeId> {
        let mut v = self.chain.clone();
        v.extend_from_slice(&self.learners);
        v
    }

    /// The chain head (sequencer), if any.
    pub fn head(&self) -> Option<NodeId> {
        self.chain.first().copied()
    }

    /// The tail (ack source and authoritative reader), if any.
    pub fn tail(&self) -> Option<NodeId> {
        self.chain.last().copied()
    }
}

/// Read the configuration block from the pipeline.
pub(crate) fn read_chain(dp: &DpView<'_>, h: RegHandle) -> ChainView {
    let epoch = dp.reg_read(h, 0) as u32;
    let chain_len = (dp.reg_read(h, 1) as usize).min(MAX_NODES);
    let learn_len = (dp.reg_read(h, 2) as usize).min(MAX_LEARNERS);
    let mut chain = Vec::with_capacity(chain_len);
    for i in 0..chain_len {
        chain.push(NodeId(dp.reg_read(h, 3 + i) as u16));
    }
    let mut learners = Vec::with_capacity(learn_len);
    for i in 0..learn_len {
        learners.push(NodeId(dp.reg_read(h, 3 + MAX_NODES + i) as u16));
    }
    ChainView {
        epoch,
        chain,
        learners,
    }
}

/// Install a configuration block from the control plane.
pub(crate) fn write_chain(dp: &mut DataPlane, h: RegHandle, view: &ChainView) {
    assert!(view.chain.len() <= MAX_NODES);
    assert!(view.learners.len() <= MAX_LEARNERS);
    let r = dp.reg_mut(h);
    r.write(0, u64::from(view.epoch));
    r.write(1, view.chain.len() as u64);
    r.write(2, view.learners.len() as u64);
    for i in 0..MAX_NODES {
        r.write(
            3 + i,
            view.chain.get(i).map(|n| u64::from(n.0)).unwrap_or(0),
        );
    }
    for i in 0..MAX_LEARNERS {
        r.write(
            3 + MAX_NODES + i,
            view.learners.get(i).map(|n| u64::from(n.0)).unwrap_or(0),
        );
    }
}

/// Read a partitioned register's range table from the pipeline.
pub(crate) fn read_ranges(dp: &DpView<'_>, h: RegHandle) -> Vec<RangeView> {
    let mut cells = vec![0u64; RANGEBLK_LEN];
    for (i, c) in cells.iter_mut().enumerate() {
        *c = dp.reg_read(h, i);
    }
    reconfig::decode_ranges(&cells)
}

/// Read a partitioned register's range table directly from the data
/// plane (the control-plane-side variant of [`read_ranges`]).
pub(crate) fn read_ranges_dp(dp: &DataPlane, h: RegHandle) -> Vec<RangeView> {
    let r = dp.reg(h);
    let mut cells = vec![0u64; RANGEBLK_LEN];
    for (i, c) in cells.iter_mut().enumerate() {
        *c = r.read(i);
    }
    reconfig::decode_ranges(&cells)
}

/// Plan the pipeline-stage placement of a register-spec set (the second
/// resource dimension beside the byte budget, §2: "memory is split
/// between pipeline stages"). Returns the planner with all SwiShmem
/// objects placed, or the placement error a P4 compiler would raise.
pub fn plan_stages(
    specs: &[RegisterSpec],
    cfg: &SwishConfig,
    n_switches: usize,
    planner: &mut swishmem_pisa::StagePlanner,
) -> Result<(), swishmem_pisa::PlacementError> {
    use swishmem_pisa::{PairRegisterArray, RegisterArray};
    for spec in specs {
        match spec.class {
            RegisterClass::Sro | RegisterClass::Ero => {
                planner.place(
                    &format!("swish.{}.val", spec.name),
                    spec.keys as usize * RegisterArray::CELL_BYTES,
                )?;
                let slots = Handles::seq_slots(spec, cfg) as usize;
                planner.place(
                    &format!("swish.{}.seq", spec.name),
                    slots * RegisterArray::CELL_BYTES,
                )?;
                if spec.class == RegisterClass::Sro {
                    planner.place(
                        &format!("swish.{}.pending", spec.name),
                        slots * RegisterArray::CELL_BYTES,
                    )?;
                }
                if spec.is_partitioned() {
                    planner.place(
                        &format!("swish.{}.ranges", spec.name),
                        RANGEBLK_LEN * RegisterArray::CELL_BYTES,
                    )?;
                }
            }
            RegisterClass::Ewo => {
                let n_slots = match spec.policy {
                    crate::config::MergePolicy::Lww => 1,
                    _ => n_switches,
                };
                for s in 0..n_slots {
                    planner.place(
                        &format!("swish.{}.slot{}", spec.name, s),
                        spec.keys as usize * PairRegisterArray::CELL_BYTES,
                    )?;
                }
            }
        }
    }
    Ok(())
}

/// Install a chain configuration directly into a data plane — the
/// white-box hook unit tests use to put a [`program::SwishProgram`] into a
/// known chain position without running a controller.
pub fn write_chain_for_tests(dp: &mut DataPlane, handles: &Handles, view: &ChainView) {
    write_chain(dp, handles.cfgblk, view);
}

/// One staged write from an NF's packet processing (the paper's write set
/// `Q`, §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedWrite {
    /// Target register.
    pub reg: RegId,
    /// Target key.
    pub key: Key,
    /// The operation.
    pub op: WriteOp,
}

/// Work items the data plane punts to the switch-local control plane.
#[derive(Debug)]
pub enum CpItem {
    /// A packet produced SRO/ERO writes: buffer the output packet `P'`
    /// and drive the chain protocol (§6.1).
    WriteJob {
        /// The write set `Q`.
        writes: Vec<StagedWrite>,
        /// The output packet `P'` and its destination, released on ack.
        decision: Option<(NodeId, DataPacket)>,
        /// Causal trace assigned at NF ingress, carried through every
        /// protocol message this job spawns.
        trace: swishmem_wire::TraceId,
        /// NF-ingress time of the packet that staged these writes; the
        /// `write_latency` histogram measures ingress → release.
        ingress: swishmem_simnet::SimTime,
    },
    /// A protocol message the control plane handles (acks, configuration,
    /// snapshot requests).
    Proto(SwishMsg),
    /// The final snapshot chunk was applied; announce catch-up completion.
    SnapshotDone,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegisterSpec;
    use swishmem_pisa::MemoryBudget;

    fn specs() -> Vec<RegisterSpec> {
        vec![
            RegisterSpec::sro(0, "conn", 64),
            RegisterSpec::ero(1, "sigs", 32),
            RegisterSpec::ewo_counter(2, "sketch", 128),
            RegisterSpec::ewo_lww(3, "cache", 16),
        ]
    }

    #[test]
    fn build_allocates_expected_layout() {
        let mut dp = DataPlane::standard();
        let cfg = SwishConfig::default();
        let h = Handles::build(&mut dp, &specs(), &cfg, 4).unwrap();
        assert_eq!(h.regs.len(), 4);
        match &h.regs[0].kind {
            RegKind::Chain {
                pending: Some(_), ..
            } => {}
            other => panic!("sro should have pending bits: {other:?}"),
        }
        match &h.regs[1].kind {
            RegKind::Chain { pending: None, .. } => {}
            other => panic!("ero must not have pending bits: {other:?}"),
        }
        match &h.regs[2].kind {
            RegKind::Ewo { slots } => assert_eq!(slots.len(), 4), // one per switch
            other => panic!("{other:?}"),
        }
        match &h.regs[3].kind {
            RegKind::Ewo { slots } => assert_eq!(slots.len(), 1), // lww single
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn grouping_reduces_seq_memory() {
        let mut cfg = SwishConfig::default();
        let spec = vec![RegisterSpec::sro(0, "t", 1024)];

        let mut dp1 = DataPlane::new(MemoryBudget::new(1 << 20));
        cfg.key_group = 1;
        Handles::build(&mut dp1, &spec, &cfg, 2).unwrap();
        let fine = dp1.budget().used_by_prefix("swish.t.seq")
            + dp1.budget().used_by_prefix("swish.t.pending");

        let mut dp2 = DataPlane::new(MemoryBudget::new(1 << 20));
        cfg.key_group = 16;
        Handles::build(&mut dp2, &spec, &cfg, 2).unwrap();
        let coarse = dp2.budget().used_by_prefix("swish.t.seq")
            + dp2.budget().used_by_prefix("swish.t.pending");

        assert_eq!(fine, 16 * coarse);
    }

    #[test]
    fn chain_view_round_trips_through_registers() {
        let mut dp = DataPlane::standard();
        let cfg = SwishConfig::default();
        let h = Handles::build(&mut dp, &[], &cfg, 2).unwrap();
        let view = ChainView {
            epoch: 7,
            chain: vec![NodeId(0), NodeId(2), NodeId(1)],
            learners: vec![NodeId(3)],
        };
        write_chain(&mut dp, h.cfgblk, &view);
        let got = read_chain(
            &DpView::new(&mut dp, swishmem_simnet::SimTime::ZERO),
            h.cfgblk,
        );
        assert_eq!(got, view);
        assert_eq!(got.head(), Some(NodeId(0)));
        assert_eq!(got.tail(), Some(NodeId(1)));
        assert_eq!(
            got.write_order(),
            vec![NodeId(0), NodeId(2), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn stage_planning_enforces_the_grouping_need() {
        // §7's claim, in the stage dimension: a 1M-key SRO register's
        // metadata fits a Tofino-like pipeline only with key grouping.
        let mut cfg = SwishConfig::default();
        let spec = vec![RegisterSpec::sro(0, "big", 1_000_000)];

        // Ungrouped: the 8 MB seq array exceeds a 1.25 MB stage.
        cfg.key_group = 1;
        let mut p = swishmem_pisa::StagePlanner::standard();
        assert!(plan_stages(&spec, &cfg, 4, &mut p).is_err());

        // Grouped 16×: everything places.
        cfg.key_group = 16;
        let mut p = swishmem_pisa::StagePlanner::standard();
        // Values are 8 MB: place as 8 chunked arrays of 128k keys each to
        // model a compiler splitting the value table across stages.
        let split: Vec<RegisterSpec> = (0..8)
            .map(|i| RegisterSpec::sro(i, &format!("big{i}"), 125_000))
            .collect();
        plan_stages(&split, &cfg, 4, &mut p).unwrap();
        assert!(p.depth_used() <= 12);
    }

    #[test]
    fn group_slot_maps_within_bounds() {
        let cfg = SwishConfig {
            key_group: 8,
            ..SwishConfig::default()
        };
        let spec = RegisterSpec::sro(0, "t", 100);
        let slots = cfg.group_slots(100); // ceil(100/8)=13
        assert_eq!(slots, 13);
        for key in 0..100 {
            assert!((Handles::group_slot(&spec, &cfg, key) as u32) < slots);
        }
    }
}

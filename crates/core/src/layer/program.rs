//! The SwiShmem data-plane program: wraps the user NF and implements the
//! data-plane halves of the three protocols (§6).

use super::nfctx::NfCtx;
use super::{
    read_chain, read_ranges, ChainView, CpItem, Handles, RegKind, StagedWrite,
    PENDING_SWEEP_PKTGEN_TOKEN, REPLICA_GROUP, SYNC_PKTGEN_TOKEN,
};
use crate::api::{NfApp, NfDecision};
use crate::config::{MergePolicy, RegisterClass, SwishConfig};
use crate::metrics::DpMetrics;
use crate::reconfig::{encode_ranges, RangeView};
use crate::version::SwitchClock;
use std::rc::Rc;
use swishmem_pisa::{DataPlane, DataPlaneProgram, DpView, Effects, RegHandle};
use swishmem_simnet::{SimTime, SpanPhase};
use swishmem_wire::swish::{
    MigrateBegin, MigrateChunk, OwnershipCommit, PendingClear, ReadForward, RegId, SnapshotChunk,
    SyncEntry, SyncUpdate, WriteOp, WriteRequest,
};
use swishmem_wire::{DataPacket, NodeId, Packet, PacketBody, SwishMsg, TraceId};

/// The data-plane program of one SwiShmem switch.
pub struct SwishProgram {
    me: NodeId,
    me_slot: usize,
    cfg: SwishConfig,
    handles: Rc<Handles>,
    app: Box<dyn NfApp>,
    clock: SwitchClock,
    metrics: DpMetrics,
    /// Periodic-sync walk position: (register id, next key).
    sync_cursor: (usize, u32),
    /// Pending-sweep walk position: (register index, next group slot).
    sweep_cursor: (usize, u32),
    /// Eager-mirror entries awaiting a batch flush.
    mirror_buf: Vec<(RegId, SyncEntry)>,
    /// Per-switch causal-trace counter: each logical operation entering
    /// the NF at this switch gets `TraceId::new(me, counter)`. Pure
    /// bookkeeping — advancing it draws no randomness and schedules no
    /// events, so tracing never perturbs the simulation.
    next_trace: u64,
}

impl SwishProgram {
    /// Build the program for switch `me`.
    pub fn new(
        me: NodeId,
        cfg: SwishConfig,
        handles: Rc<Handles>,
        app: Box<dyn NfApp>,
        clock: SwitchClock,
    ) -> SwishProgram {
        SwishProgram {
            me,
            me_slot: me.index(),
            cfg,
            handles,
            app,
            clock,
            metrics: DpMetrics::default(),
            sync_cursor: (0, 0),
            sweep_cursor: (0, 0),
            mirror_buf: Vec::new(),
            next_trace: 0,
        }
    }

    /// Allocate the next causal trace id originating at this switch.
    fn alloc_trace(&mut self) -> TraceId {
        self.next_trace += 1;
        TraceId::new(self.me, self.next_trace)
    }

    /// Data-plane metrics.
    pub fn metrics(&self) -> &DpMetrics {
        &self.metrics
    }

    /// The register layout (for deployment-level peeks).
    pub fn handles(&self) -> &Handles {
        &self.handles
    }

    /// Protocol configuration.
    pub fn config(&self) -> &SwishConfig {
        &self.cfg
    }

    /// Management-plane read of `reg[key]` directly from a data plane
    /// (class-aware: counters sum slots). Used by the deployment and the
    /// experiment harness, not by the protocols.
    pub fn peek(&self, dp: &DataPlane, reg: RegId, key: u32, now: SimTime) -> u64 {
        let entry = self.handles.entry(reg);
        match &entry.kind {
            RegKind::Chain { val, .. } => dp.reg(*val).read(key as usize),
            RegKind::Ewo { slots } => match entry.spec.policy {
                MergePolicy::Lww => dp.pair(slots[0]).read(key as usize).1,
                MergePolicy::GCounter => {
                    slots.iter().map(|&h| dp.pair(h).read(key as usize).1).sum()
                }
                MergePolicy::Windowed { window } => {
                    let epoch = now.nanos() / window.as_nanos().max(1);
                    slots
                        .iter()
                        .map(|&h| {
                            let (e, c) = dp.pair(h).read(key as usize);
                            if e == epoch {
                                c
                            } else {
                                0
                            }
                        })
                        .sum()
                }
            },
        }
    }

    /// The chain view currently installed in this switch's config block.
    pub fn chain_view(&self, dp: &mut DataPlane, now: SimTime) -> ChainView {
        read_chain(&DpView::new(dp, now), self.handles.cfgblk)
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn handle_data(
        &mut self,
        d: DataPacket,
        ingress: NodeId,
        may_redirect: bool,
        trace: TraceId,
        dp: &mut DpView<'_>,
        eff: &mut Effects,
    ) {
        let (decision, staged, need_tail) = {
            let mut ctx = NfCtx {
                dp,
                handles: &self.handles,
                cfg: &self.cfg,
                me: self.me,
                staged: Vec::new(),
                need_tail: false,
                read_ops: 0,
            };
            let decision = self.app.process(&d, ingress, &mut ctx);
            self.metrics.nf_reads += ctx.read_ops;
            self.metrics.nf_writes += ctx.staged.len() as u64;
            (decision, ctx.staged, ctx.need_tail)
        };

        if need_tail && may_redirect {
            let chain = read_chain(dp, self.handles.cfgblk);
            if let Some(tail) = chain.tail() {
                if tail != self.me {
                    // Discard this pass entirely; the tail re-executes the
                    // packet against committed state (§6.1).
                    self.metrics.reads_forwarded += 1;
                    eff.span(trace, SpanPhase::RedirectToTail);
                    eff.forward(
                        tail,
                        PacketBody::Swish(SwishMsg::ReadForward(ReadForward {
                            origin: self.me,
                            trace,
                            inner: d,
                        })),
                    );
                    return;
                }
            }
            // Tail is us (or no chain installed yet): serve locally.
        }
        self.metrics.reads_local += 1;

        let (chain_writes, ewo_writes): (Vec<StagedWrite>, Vec<StagedWrite>) =
            staged.into_iter().partition(|w| {
                matches!(
                    self.handles.entry(w.reg).spec.class,
                    RegisterClass::Sro | RegisterClass::Ero
                )
            });

        if !ewo_writes.is_empty() {
            let entries = self.apply_ewo(&ewo_writes, dp);
            self.queue_mirror(entries, trace, eff);
        }

        if !chain_writes.is_empty() {
            // P' is buffered by the control plane until the chain acks
            // (§6.1: "both P' and Q are forwarded to the control plane").
            self.metrics.sro_jobs_punted += 1;
            let decision = match decision {
                NfDecision::Forward { dst, pkt } => Some((dst, pkt)),
                NfDecision::Drop => None,
            };
            eff.punt_traced(
                CpItem::WriteJob {
                    writes: chain_writes,
                    decision,
                    trace,
                    ingress: dp.now(),
                },
                trace,
            );
            return;
        }

        match decision {
            NfDecision::Forward { dst, pkt } => eff.forward(dst, PacketBody::Data(pkt)),
            NfDecision::Drop => eff.drop_packet(),
        }
    }

    /// Apply EWO writes to this switch's own slots; returns the sync
    /// entries describing the new state for eager mirroring.
    fn apply_ewo(
        &mut self,
        writes: &[StagedWrite],
        dp: &mut DpView<'_>,
    ) -> Vec<(RegId, SyncEntry)> {
        let mut out = Vec::with_capacity(writes.len());
        for w in writes {
            let entry = self.handles.entry(w.reg);
            let RegKind::Ewo { slots } = &entry.kind else {
                continue;
            };
            let key = w.key as usize;
            match entry.spec.policy {
                MergePolicy::GCounter => {
                    let WriteOp::Add(delta) = w.op else { continue };
                    debug_assert!(delta >= 0);
                    let h = slots[self.me_slot % slots.len()];
                    let (v, c) = dp.pair_read(h, key);
                    let (nv, nc) = (v + 1, c + delta as u64);
                    dp.pair_write(h, key, nv, nc);
                    out.push((
                        w.reg,
                        SyncEntry {
                            key: w.key,
                            slot: self.me_slot as u8,
                            version: nv,
                            value: nc,
                        },
                    ));
                }
                MergePolicy::Windowed { window } => {
                    let WriteOp::Add(delta) = w.op else { continue };
                    debug_assert!(delta >= 0);
                    let epoch = dp.now().nanos() / window.as_nanos().max(1);
                    let h = slots[self.me_slot % slots.len()];
                    let (e, c) = dp.pair_read(h, key);
                    let (ne, nc) = if epoch > e {
                        (epoch, delta as u64)
                    } else {
                        (e, c + delta as u64)
                    };
                    dp.pair_write(h, key, ne, nc);
                    out.push((
                        w.reg,
                        SyncEntry {
                            key: w.key,
                            slot: self.me_slot as u8,
                            version: ne,
                            value: nc,
                        },
                    ));
                }
                MergePolicy::Lww => {
                    let value = match w.op {
                        WriteOp::Set(v) => v,
                        WriteOp::Add(d) => dp.pair_read(slots[0], key).1.wrapping_add(d as u64),
                    };
                    let version = self.clock.next_version(dp.now());
                    dp.pair_write(slots[0], key, version, value);
                    out.push((
                        w.reg,
                        SyncEntry {
                            key: w.key,
                            slot: 0,
                            version,
                            value,
                        },
                    ));
                }
            }
            self.metrics.ewo_writes += 1;
        }
        out
    }

    /// Queue eager-mirror entries, flushing when the batch threshold is
    /// reached (§7: batching trades bandwidth for staleness).
    fn queue_mirror(
        &mut self,
        entries: Vec<(RegId, SyncEntry)>,
        trace: TraceId,
        eff: &mut Effects,
    ) {
        if !self.cfg.eager_updates || entries.is_empty() {
            return;
        }
        self.mirror_buf.extend(entries);
        if self.mirror_buf.len() >= self.cfg.batch_size.max(1) {
            self.flush_mirror(trace, eff);
        }
    }

    /// `trace` attributes the flush: the packet that tipped the batch
    /// over, or the sync round that drained a lingering batch.
    fn flush_mirror(&mut self, trace: TraceId, eff: &mut Effects) {
        if self.mirror_buf.is_empty() {
            return;
        }
        // Group entries by register, one SyncUpdate per register.
        let mut by_reg: Vec<(RegId, Vec<SyncEntry>)> = Vec::new();
        for (reg, e) in self.mirror_buf.drain(..) {
            match by_reg.iter_mut().find(|(r, _)| *r == reg) {
                Some((_, v)) => v.push(e),
                None => by_reg.push((reg, vec![e])),
            }
        }
        for (reg, entries) in by_reg {
            self.metrics.mirror_packets += 1;
            eff.multicast(
                REPLICA_GROUP,
                PacketBody::Swish(SwishMsg::Sync(SyncUpdate {
                    reg,
                    origin: self.me,
                    trace,
                    entries: entries.into(),
                })),
            );
        }
    }

    // ------------------------------------------------------------------
    // Chain protocol (SRO/ERO data-plane half, §6.1)
    // ------------------------------------------------------------------

    fn on_chain_write(&mut self, req: WriteRequest, dp: &mut DpView<'_>, eff: &mut Effects) {
        let chain = read_chain(dp, self.handles.cfgblk);
        let order = chain.write_order();
        let Some(pos) = order.iter().position(|&n| n == self.me) else {
            self.metrics.chain_stale += 1;
            return;
        };
        let entry = self.handles.entry(req.reg);
        let RegKind::Chain { val, seq, pending } = &entry.kind else {
            self.metrics.chain_stale += 1;
            return;
        };
        let (val, seq, pending) = (*val, *seq, *pending);
        let g = Handles::group_slot(&entry.spec, &self.cfg, req.key);
        let cur = dp.reg_read(seq, g);

        let is_head = pos == 0;
        let is_tail = chain.tail() == Some(self.me);

        // The head sequences unnumbered requests and rewrites Add into Set
        // so every replica applies an identical value.
        let (assigned, op) = if is_head && req.seq == 0 {
            let value = match req.op {
                WriteOp::Set(v) => v,
                WriteOp::Add(d) => dp.reg_read(val, req.key as usize).wrapping_add(d as u64),
            };
            (cur + 1, WriteOp::Set(value))
        } else if req.seq == 0 {
            // Sequencing request reached a non-head switch (stale routing
            // at the writer); drop, the writer's retry will find the head.
            self.metrics.chain_stale += 1;
            return;
        } else {
            (req.seq, req.op)
        };

        // Monotonic apply: reject anything not newer than local state.
        // (Chain replication's in-order rule, generalized to tolerate
        // loss: a skipped write was never acknowledged and its writer
        // retries through the head, obtaining a fresh sequence number.)
        if assigned <= cur {
            self.metrics.chain_stale += 1;
            return;
        }
        let WriteOp::Set(value) = op else {
            self.metrics.chain_stale += 1;
            return;
        };
        dp.reg_write(val, req.key as usize, value);
        dp.reg_write(seq, g, assigned);
        self.metrics.chain_applies += 1;
        eff.span(req.trace, SpanPhase::ChainHop(pos as u8));

        let fwd = WriteRequest {
            seq: assigned,
            op,
            ..req
        };
        if is_tail {
            // Tail: acknowledge the writer and clear pending bits
            // everywhere — ack processing entirely in the data plane
            // (§3.3). The tail itself never sets a pending bit, so its
            // reads always reflect committed state (CRAQ).
            eff.span(req.trace, SpanPhase::Ack);
            eff.forward(
                req.writer,
                PacketBody::Swish(SwishMsg::Ack(swishmem_wire::swish::WriteAck {
                    write_id: req.write_id,
                    writer: req.writer,
                    reg: req.reg,
                    key: req.key,
                    seq: assigned,
                    trace: req.trace,
                })),
            );
            eff.multicast(
                REPLICA_GROUP,
                PacketBody::Swish(SwishMsg::Clear(PendingClear {
                    epoch: chain.epoch,
                    reg: req.reg,
                    key: req.key,
                    seq: assigned,
                })),
            );
        } else if let Some(p) = pending {
            // Mark the write in flight (SRO only).
            dp.reg_write(p, g, assigned);
        }
        if let Some(&next) = order.get(pos + 1) {
            eff.forward(next, PacketBody::Swish(SwishMsg::Write(fwd)));
        }
    }

    fn on_clear(&mut self, c: PendingClear, dp: &mut DpView<'_>) {
        let entry = self.handles.entry(c.reg);
        let RegKind::Chain {
            pending: Some(p), ..
        } = &entry.kind
        else {
            return;
        };
        let g = Handles::group_slot(&entry.spec, &self.cfg, c.key);
        let in_flight = dp.reg_read(*p, g);
        // Clear only if no later write has marked the group again.
        if in_flight != 0 && in_flight <= c.seq {
            dp.reg_write(*p, g, 0);
            self.metrics.clears_applied += 1;
        }
    }

    /// The tail's pending sweep: periodically re-multicast `Clear` for
    /// group slots with a committed sequence number. A clear lost on the
    /// wire — or never sent because the tail crashed mid-commit — would
    /// otherwise park a pending bit forever, forcing every read of that
    /// group to the tail. Only committed sequence numbers are swept:
    /// `on_clear`'s `in_flight <= seq` guard keeps genuinely in-flight
    /// writes pending, preserving SRO linearizability. Cursor-bounded to
    /// `sync_chunk` slots per tick, like the EWO sync walk.
    fn pending_sweep(&mut self, dp: &mut DpView<'_>, eff: &mut Effects) {
        let chain = read_chain(dp, self.handles.cfgblk);
        if chain.tail() != Some(self.me) || chain.chain.len() < 2 {
            return; // only the tail sweeps, and only for a real chain
        }
        let sro_regs: Vec<usize> = self
            .handles
            .regs
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(
                    r.kind,
                    RegKind::Chain {
                        pending: Some(_),
                        ..
                    }
                )
            })
            .map(|(i, _)| i)
            .collect();
        if sro_regs.is_empty() {
            return;
        }
        let (mut reg_i, mut slot) = self.sweep_cursor;
        if !sro_regs.contains(&reg_i) {
            reg_i = sro_regs[0];
            slot = 0;
        }
        let mut budget = self.cfg.sync_chunk.max(1);
        let total_slots: usize = sro_regs
            .iter()
            .map(|&i| self.cfg.group_slots(self.handles.regs[i].spec.keys) as usize)
            .sum();
        let mut visited = 0usize;
        while budget > 0 && visited < total_slots {
            let (reg_id, seq_h, slots_n) = {
                let entry = &self.handles.regs[reg_i];
                let RegKind::Chain { seq, .. } = &entry.kind else {
                    unreachable!()
                };
                (entry.spec.id, *seq, self.cfg.group_slots(entry.spec.keys))
            };
            if slot >= slots_n {
                let next = sro_regs
                    .iter()
                    .position(|&i| i == reg_i)
                    .map(|p| sro_regs[(p + 1) % sro_regs.len()])
                    .unwrap_or(sro_regs[0]);
                reg_i = next;
                slot = 0;
                continue;
            }
            let committed = dp.reg_read(seq_h, slot as usize);
            if committed > 0 {
                self.metrics.pending_sweep_clears += 1;
                // `key % slots == slot` for `key == slot`, so the slot
                // index doubles as a representative key for the group.
                eff.multicast(
                    REPLICA_GROUP,
                    PacketBody::Swish(SwishMsg::Clear(PendingClear {
                        epoch: chain.epoch,
                        reg: reg_id,
                        key: slot,
                        seq: committed,
                    })),
                );
            }
            budget -= 1;
            slot += 1;
            visited += 1;
        }
        self.sweep_cursor = (reg_i, slot);
    }

    // ------------------------------------------------------------------
    // EWO merge + periodic sync (§6.2, §7)
    // ------------------------------------------------------------------

    fn on_sync(&mut self, u: &SyncUpdate, dp: &mut DpView<'_>, eff: &mut Effects) {
        let entry = self.handles.entry(u.reg);
        let RegKind::Ewo { slots } = &entry.kind else {
            return;
        };
        eff.span(u.trace, SpanPhase::SyncMerge);
        let slots = slots.clone();
        for e in &u.entries {
            let changed = match entry.spec.policy {
                MergePolicy::GCounter => {
                    let h = slots[e.slot as usize % slots.len()];
                    dp.pair_merge_max(h, e.key as usize, e.version, e.value)
                }
                MergePolicy::Lww => {
                    self.clock.observe(e.version);
                    dp.pair_merge_lww(slots[0], e.key as usize, e.version, e.value)
                }
                MergePolicy::Windowed { .. } => {
                    let h = slots[e.slot as usize % slots.len()];
                    let (le, lc) = dp.pair_read(h, e.key as usize);
                    // Newer epoch supersedes; same epoch merges by max.
                    let wins = e.version > le || (e.version == le && e.value > lc);
                    if wins {
                        dp.pair_write(h, e.key as usize, e.version, e.value);
                    }
                    wins
                }
            };
            self.metrics.merge_entries += 1;
            if changed {
                self.metrics.merge_applied += 1;
            }
        }
    }

    /// Walk the next chunk of EWO state and push it to a random peer
    /// (§7: the packet generator "iterates over the register array,
    /// forming write update packets ... forwarding each one to a
    /// randomly-selected switch in the replica group").
    fn periodic_sync(&mut self, trace: TraceId, dp: &mut DpView<'_>, eff: &mut Effects) {
        let ewo_regs: Vec<usize> = self
            .handles
            .regs
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.kind, RegKind::Ewo { .. }))
            .map(|(i, _)| i)
            .collect();
        if ewo_regs.is_empty() {
            return;
        }
        let (mut reg_i, mut key) = self.sync_cursor;
        if !ewo_regs.contains(&reg_i) {
            reg_i = ewo_regs[0];
            key = 0;
        }
        let mut budget = self.cfg.sync_chunk.max(1);
        let mut per_reg: Vec<(RegId, Vec<SyncEntry>)> = Vec::new();
        let mut visited_keys = 0usize;
        let total_keys: usize = ewo_regs
            .iter()
            .map(|&i| self.handles.regs[i].spec.keys as usize)
            .sum();

        while budget > 0 && visited_keys < total_keys {
            let entry = &self.handles.regs[reg_i];
            let RegKind::Ewo { slots } = &entry.kind else {
                unreachable!()
            };
            if key >= entry.spec.keys {
                // advance to next EWO register
                let next = ewo_regs
                    .iter()
                    .position(|&i| i == reg_i)
                    .map(|p| ewo_regs[(p + 1) % ewo_regs.len()])
                    .unwrap_or(ewo_regs[0]);
                reg_i = next;
                key = 0;
                continue;
            }
            for (si, &h) in slots.iter().enumerate() {
                let (v, x) = dp.pair_read(h, key as usize);
                if v == 0 && x == 0 {
                    continue; // nothing to say about this slot
                }
                let reg_id = entry.spec.id;
                let e = SyncEntry {
                    key,
                    slot: si as u8,
                    version: v,
                    value: x,
                };
                match per_reg.iter_mut().find(|(r, _)| *r == reg_id) {
                    Some((_, list)) => list.push(e),
                    None => per_reg.push((reg_id, vec![e])),
                }
                budget = budget.saturating_sub(1);
            }
            key += 1;
            visited_keys += 1;
        }
        self.sync_cursor = (reg_i, key);
        for (reg, entries) in per_reg {
            if entries.is_empty() {
                continue;
            }
            self.metrics.sync_packets += 1;
            eff.anycast_random(
                REPLICA_GROUP,
                PacketBody::Swish(SwishMsg::Sync(SyncUpdate {
                    reg,
                    origin: self.me,
                    trace,
                    entries: entries.into(),
                })),
            );
        }
    }

    // ------------------------------------------------------------------
    // Partitioned registers: per-range mini-chains + live migration
    // ------------------------------------------------------------------

    /// Install `ranges` into a partitioned register's range table through
    /// the pipeline view (the control path owns [`super::write_ranges`];
    /// this is the in-dispatch variant used by migration control
    /// messages, which are applied where they land: in the data plane).
    fn install_ranges(dp: &mut DpView<'_>, h: RegHandle, ranges: &[RangeView]) {
        for (i, c) in encode_ranges(ranges).iter().enumerate() {
            dp.reg_write(h, i, *c);
        }
    }

    /// The chain-write handler for partitioned registers: the effective
    /// chain is the *range's* owner set — extended by the migration
    /// destination as acking tail while a transfer is open — and
    /// sequencing is per key. A write landing at a switch that is not in
    /// the key's chain was routed off a stale table; dropping it makes
    /// the writer's retry re-route through the updated table.
    fn on_part_write(&mut self, req: WriteRequest, dp: &mut DpView<'_>, eff: &mut Effects) {
        let entry = self.handles.entry(req.reg);
        let RegKind::Chain { val, seq, .. } = &entry.kind else {
            self.metrics.part_stale += 1;
            return;
        };
        let (val, seq) = (*val, *seq);
        let Some(h) = self.handles.rangeblk(req.reg) else {
            self.metrics.part_stale += 1;
            return;
        };
        let ranges = read_ranges(dp, h);
        let Some(r) = ranges.iter().find(|r| r.contains(req.key)) else {
            self.metrics.part_stale += 1;
            return;
        };
        let chain = r.write_chain();
        let Some(pos) = chain.iter().position(|&n| n == self.me) else {
            self.metrics.part_stale += 1;
            return;
        };
        let g = Handles::group_slot(&entry.spec, &self.cfg, req.key);
        let cur = dp.reg_read(seq, g);

        let is_head = pos == 0;
        let is_tail = pos + 1 == chain.len();

        let (assigned, op) = if is_head && req.seq == 0 {
            let value = match req.op {
                WriteOp::Set(v) => v,
                WriteOp::Add(d) => dp.reg_read(val, req.key as usize).wrapping_add(d as u64),
            };
            (cur + 1, WriteOp::Set(value))
        } else if req.seq == 0 {
            // Sequencing request at a non-primary: stale routing.
            self.metrics.part_stale += 1;
            return;
        } else {
            (req.seq, req.op)
        };

        if assigned <= cur {
            self.metrics.chain_stale += 1;
            return;
        }
        let WriteOp::Set(value) = op else {
            self.metrics.chain_stale += 1;
            return;
        };
        dp.reg_write(val, req.key as usize, value);
        dp.reg_write(seq, g, assigned);
        self.metrics.chain_applies += 1;
        eff.span(req.trace, SpanPhase::ChainHop(pos as u8));

        if is_tail {
            // Per-range tail acks the writer. No pending bits to clear:
            // partitioned registers are ERO-class.
            eff.span(req.trace, SpanPhase::Ack);
            eff.forward(
                req.writer,
                PacketBody::Swish(SwishMsg::Ack(swishmem_wire::swish::WriteAck {
                    write_id: req.write_id,
                    writer: req.writer,
                    reg: req.reg,
                    key: req.key,
                    seq: assigned,
                    trace: req.trace,
                })),
            );
        } else {
            eff.forward(
                chain[pos + 1],
                PacketBody::Swish(SwishMsg::Write(WriteRequest {
                    seq: assigned,
                    op,
                    ..req
                })),
            );
        }
    }

    /// `MigrateBegin`: record the destination as the range's `mig_to` in
    /// the data-plane table (epoch-guarded, so re-broadcasts and stale
    /// duplicates are idempotent), then punt to the control plane, which
    /// starts streaming (source) or pass tracking (destination).
    fn on_migrate_begin(&mut self, m: MigrateBegin, dp: &mut DpView<'_>, eff: &mut Effects) {
        if let Some(h) = self.handles.rangeblk(m.reg) {
            let mut ranges = read_ranges(dp, h);
            if let Some(r) = ranges
                .iter_mut()
                .find(|r| r.start == m.start && r.end == m.end)
            {
                if m.epoch > r.epoch {
                    r.epoch = m.epoch;
                    r.mig_to = Some(m.to);
                    SwishProgram::install_ranges(dp, h, &ranges);
                }
            }
        }
        eff.punt(CpItem::Proto(SwishMsg::MigrateBegin(m)));
    }

    /// `OwnershipCommit`: flip the range's owner set atomically at this
    /// switch (per-range epoch bump; stale epochs ignored). A range the
    /// switch has never heard of — fresh boot, crash-wiped table — is
    /// inserted, which is also how the controller's initial table and
    /// periodic resync install themselves.
    fn on_ownership_commit(&mut self, c: OwnershipCommit, dp: &mut DpView<'_>, eff: &mut Effects) {
        if let Some(h) = self.handles.rangeblk(c.reg) {
            let mut ranges = read_ranges(dp, h);
            let changed = match ranges
                .iter_mut()
                .find(|r| r.start == c.start && r.end == c.end)
            {
                Some(r) => {
                    if c.epoch > r.epoch {
                        r.epoch = c.epoch;
                        r.owners = c.owners.clone();
                        r.mig_to = None;
                        true
                    } else {
                        false
                    }
                }
                None => {
                    ranges.push(RangeView {
                        start: c.start,
                        end: c.end,
                        epoch: c.epoch,
                        mig_to: None,
                        owners: c.owners.clone(),
                    });
                    ranges.sort_by_key(|r| r.start);
                    true
                }
            };
            if changed {
                SwishProgram::install_ranges(dp, h, &ranges);
            }
        }
        eff.punt(CpItem::Proto(SwishMsg::OwnershipCommit(c)));
    }

    /// Apply one migration chunk at the destination: the same seq-guarded
    /// idempotent apply as snapshot catch-up, but per key (partitioned
    /// registers sequence per key). The control plane tracks pass
    /// completeness, so the chunk is punted whole after the apply.
    fn on_migrate_chunk(&mut self, ch: MigrateChunk, dp: &mut DpView<'_>, eff: &mut Effects) {
        let entry = self.handles.entry(ch.reg);
        if let RegKind::Chain { val, seq, .. } = &entry.kind {
            let (val, seq) = (*val, *seq);
            for e in &ch.entries {
                let g = Handles::group_slot(&entry.spec, &self.cfg, e.key);
                let cur = dp.reg_read(seq, g);
                if e.seq >= cur {
                    dp.reg_write(val, e.key as usize, e.value);
                    dp.reg_write(seq, g, e.seq.max(cur));
                    self.metrics.migrate_applied += 1;
                } else {
                    self.metrics.migrate_stale += 1;
                }
            }
        }
        eff.punt(CpItem::Proto(SwishMsg::MigrateChunk(ch)));
    }

    // ------------------------------------------------------------------
    // Recovery (§6.3): guarded snapshot apply
    // ------------------------------------------------------------------

    fn on_snap_chunk(&mut self, ch: &SnapshotChunk, dp: &mut DpView<'_>, eff: &mut Effects) {
        let entry = self.handles.entry(ch.reg);
        if let RegKind::Chain { val, seq, .. } = &entry.kind {
            let (val, seq) = (*val, *seq);
            for e in &ch.entries {
                let g = Handles::group_slot(&entry.spec, &self.cfg, e.key);
                let cur = dp.reg_read(seq, g);
                // "These writes contain the sequence number at the time of
                // the snapshot, to prevent overwriting new values with old
                // ones" (§6.3). Equal seq means the snapshot entry is the
                // newest write for this group: apply.
                if e.seq >= cur {
                    dp.reg_write(val, e.key as usize, e.value);
                    dp.reg_write(seq, g, e.seq.max(cur));
                    self.metrics.snapshot_applied += 1;
                } else {
                    self.metrics.snapshot_stale += 1;
                }
            }
        }
        if ch.last {
            eff.punt(CpItem::SnapshotDone);
        }
    }
}

impl DataPlaneProgram for SwishProgram {
    fn on_packet(&mut self, pkt: Packet, dp: &mut DpView<'_>, eff: &mut Effects) {
        match pkt.body {
            PacketBody::Data(d) => {
                // Each data packet entering the NF is one logical
                // operation: assign its causal trace here (§ tracing).
                let trace = self.alloc_trace();
                eff.span(trace, SpanPhase::Ingress);
                self.handle_data(d, pkt.src, true, trace, dp, eff);
            }
            PacketBody::Swish(msg) => match msg {
                SwishMsg::Write(req) => {
                    if self.handles.entry(req.reg).spec.is_partitioned() {
                        self.on_part_write(req, dp, eff)
                    } else {
                        self.on_chain_write(req, dp, eff)
                    }
                }
                SwishMsg::Clear(c) => self.on_clear(c, dp),
                SwishMsg::Sync(u) => self.on_sync(&u, dp, eff),
                SwishMsg::ReadForward(rf) => {
                    self.metrics.tail_reads_served += 1;
                    eff.span(rf.trace, SpanPhase::TailServe);
                    self.handle_data(rf.inner, rf.origin, false, rf.trace, dp, eff);
                }
                SwishMsg::SnapChunk(ch) => self.on_snap_chunk(&ch, dp, eff),
                SwishMsg::MigrateBegin(m) => self.on_migrate_begin(m, dp, eff),
                SwishMsg::OwnershipCommit(c) => self.on_ownership_commit(c, dp, eff),
                SwishMsg::MigrateChunk(ch) => self.on_migrate_chunk(ch, dp, eff),
                // Control-plane messages move into the punt item whole —
                // the punt path never deep-copies.
                other => eff.punt(CpItem::Proto(other)),
            },
        }
    }

    fn on_pktgen(&mut self, token: u64, dp: &mut DpView<'_>, eff: &mut Effects) {
        if token == SYNC_PKTGEN_TOKEN {
            // One EWO sync round is one logical operation — but an idle
            // tick (nothing to flush or walk) emits nothing, span
            // included, so quiescent switches stay silent.
            let trace = self.alloc_trace();
            let before = eff.len();
            self.flush_mirror(trace, eff); // batched eager entries must not linger
            self.periodic_sync(trace, dp, eff);
            if eff.len() > before {
                eff.span(trace, SpanPhase::SyncRound);
            }
        } else if token == PENDING_SWEEP_PKTGEN_TOKEN {
            self.pending_sweep(dp, eff);
        }
    }

    fn reset(&mut self) {
        self.metrics = DpMetrics::default();
        self.sync_cursor = (0, 0);
        self.sweep_cursor = (0, 0);
        self.mirror_buf.clear();
        self.next_trace = 0;
        self.clock.reset();
        self.app.reset();
    }
}

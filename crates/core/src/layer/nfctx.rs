//! The [`SharedState`] proxy the layer hands to an NF while it processes
//! one packet.
//!
//! Writes are *staged* (the paper's write set `Q`); reads come from the
//! local replica overlaid with this packet's own staged writes
//! (read-your-writes). A read that touches an SRO key whose pending bit is
//! set flips `need_tail`: the layer will discard this packet's outcome and
//! forward the original packet to the chain tail (§6.1).

use super::{Handles, RegKind, StagedWrite};
use crate::api::SharedState;
use crate::config::{MergePolicy, RegisterClass, SwishConfig};
use swishmem_pisa::DpView;
use swishmem_simnet::SimTime;
use swishmem_wire::swish::{Key, RegId, WriteOp};
use swishmem_wire::NodeId;

/// The per-packet shared-state proxy.
pub struct NfCtx<'a, 'v> {
    pub(crate) dp: &'a mut DpView<'v>,
    pub(crate) handles: &'a Handles,
    pub(crate) cfg: &'a SwishConfig,
    pub(crate) me: NodeId,
    pub(crate) staged: Vec<StagedWrite>,
    pub(crate) need_tail: bool,
    /// Read operations issued (for access-pattern accounting, E1).
    pub(crate) read_ops: u64,
}

impl<'a, 'v> NfCtx<'a, 'v> {
    /// Base value of `reg[key]` from the local replica (before staged
    /// writes), flagging `need_tail` for pending SRO keys.
    fn base_read(&mut self, reg: RegId, key: Key) -> u64 {
        let entry = self.handles.entry(reg);
        match &entry.kind {
            RegKind::Chain { val, pending, .. } => {
                if let Some(p) = pending {
                    let g = Handles::group_slot(&entry.spec, self.cfg, key);
                    if self.dp.reg_read(*p, g) != 0 {
                        self.need_tail = true;
                    }
                }
                self.dp.reg_read(*val, key as usize)
            }
            RegKind::Ewo { slots } => match entry.spec.policy {
                MergePolicy::Lww => self.dp.pair_read(slots[0], key as usize).1,
                MergePolicy::GCounter => slots
                    .iter()
                    .map(|&h| self.dp.pair_read(h, key as usize).1)
                    .sum(),
                MergePolicy::Windowed { window } => {
                    let epoch = self.dp.now().nanos() / window.as_nanos().max(1);
                    slots
                        .iter()
                        .map(|&h| {
                            let (e, c) = self.dp.pair_read(h, key as usize);
                            if e == epoch {
                                c
                            } else {
                                0
                            }
                        })
                        .sum()
                }
            },
        }
    }
}

impl<'a, 'v> SharedState for NfCtx<'a, 'v> {
    fn read(&mut self, reg: RegId, key: Key) -> u64 {
        self.read_ops += 1;
        let mut v = self.base_read(reg, key);
        // Overlay this packet's own staged writes, in order.
        for w in &self.staged {
            if w.reg == reg && w.key == key {
                match w.op {
                    WriteOp::Set(x) => v = x,
                    WriteOp::Add(d) => v = v.wrapping_add(d as u64),
                }
            }
        }
        v
    }

    fn write(&mut self, reg: RegId, key: Key, value: u64) {
        let entry = self.handles.entry(reg);
        debug_assert!(
            !matches!(
                (entry.spec.class, entry.spec.policy),
                (RegisterClass::Ewo, MergePolicy::GCounter)
                    | (RegisterClass::Ewo, MergePolicy::Windowed { .. })
            ),
            "Set on a counter register '{}' — counters only support add()",
            entry.spec.name
        );
        self.staged.push(StagedWrite {
            reg,
            key,
            op: WriteOp::Set(value),
        });
    }

    fn add(&mut self, reg: RegId, key: Key, delta: i64) {
        let entry = self.handles.entry(reg);
        match (entry.spec.class, entry.spec.policy) {
            // Chain registers replicate Set: stage a read-modify-write.
            (RegisterClass::Sro | RegisterClass::Ero, _) => {
                let cur = self.read(reg, key);
                self.staged.push(StagedWrite {
                    reg,
                    key,
                    op: WriteOp::Set(cur.wrapping_add(delta as u64)),
                });
            }
            // LWW cells likewise carry whole values.
            (RegisterClass::Ewo, MergePolicy::Lww) => {
                let cur = self.read(reg, key);
                self.staged.push(StagedWrite {
                    reg,
                    key,
                    op: WriteOp::Set(cur.wrapping_add(delta as u64)),
                });
            }
            // True commutative increments.
            (RegisterClass::Ewo, _) => {
                debug_assert!(
                    delta >= 0,
                    "counter register '{}' cannot decrement",
                    entry.spec.name
                );
                self.staged.push(StagedWrite {
                    reg,
                    key,
                    op: WriteOp::Add(delta),
                });
            }
        }
    }

    fn now(&self) -> SimTime {
        self.dp.now()
    }

    fn self_id(&self) -> NodeId {
        self.me
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RegisterSpec;
    use swishmem_pisa::DataPlane;

    fn setup(dp: &mut DataPlane) -> (Handles, SwishConfig) {
        let cfg = SwishConfig::default();
        let specs = vec![
            RegisterSpec::sro(0, "s", 16),
            RegisterSpec::ewo_counter(1, "c", 16),
            RegisterSpec::ewo_lww(2, "l", 16),
        ];
        let h = Handles::build(dp, &specs, &cfg, 3).unwrap();
        (h, cfg)
    }

    fn ctx<'a, 'v>(dp: &'a mut DpView<'v>, h: &'a Handles, cfg: &'a SwishConfig) -> NfCtx<'a, 'v> {
        NfCtx {
            dp,
            handles: h,
            cfg,
            me: NodeId(1),
            staged: vec![],
            need_tail: false,
            read_ops: 0,
        }
    }

    #[test]
    fn read_your_writes_within_packet() {
        let mut dp = DataPlane::standard();
        let (h, cfg) = setup(&mut dp);
        let mut view = DpView::new(&mut dp, SimTime::ZERO);
        let mut c = ctx(&mut view, &h, &cfg);
        assert_eq!(c.read(0, 5), 0);
        c.write(0, 5, 42);
        assert_eq!(c.read(0, 5), 42);
        c.add(0, 5, 8);
        assert_eq!(c.read(0, 5), 50);
        assert_eq!(c.staged.len(), 2);
    }

    #[test]
    fn counter_read_sums_slots() {
        let mut dp = DataPlane::standard();
        let (h, cfg) = setup(&mut dp);
        // Pre-populate two slots as if two switches had incremented.
        if let RegKind::Ewo { slots } = &h.regs[1].kind {
            dp.pair_mut(slots[0]).write(3, 1, 10);
            dp.pair_mut(slots[2]).write(3, 1, 5);
        }
        let mut view = DpView::new(&mut dp, SimTime::ZERO);
        let mut c = ctx(&mut view, &h, &cfg);
        assert_eq!(c.read(1, 3), 15);
        c.add(1, 3, 7); // staged on top
        assert_eq!(c.read(1, 3), 22);
    }

    #[test]
    fn pending_bit_flags_need_tail() {
        let mut dp = DataPlane::standard();
        let (h, cfg) = setup(&mut dp);
        if let RegKind::Chain {
            pending: Some(p), ..
        } = &h.regs[0].kind
        {
            dp.reg_mut(*p).write(7, 9); // in-flight write, seq 9
        }
        let mut view = DpView::new(&mut dp, SimTime::ZERO);
        let mut c = ctx(&mut view, &h, &cfg);
        let _ = c.read(0, 7);
        assert!(c.need_tail);
        // A different key (different group slot) is unaffected.
        let mut view = DpView::new(&mut dp, SimTime::ZERO);
        let mut c = ctx(&mut view, &h, &cfg);
        let _ = c.read(0, 8);
        assert!(!c.need_tail);
    }

    #[test]
    fn lww_add_stages_whole_value() {
        let mut dp = DataPlane::standard();
        let (h, cfg) = setup(&mut dp);
        if let RegKind::Ewo { slots } = &h.regs[2].kind {
            dp.pair_mut(slots[0]).write(0, 1, 100);
        }
        let mut view = DpView::new(&mut dp, SimTime::ZERO);
        let mut c = ctx(&mut view, &h, &cfg);
        c.add(2, 0, 5);
        assert_eq!(c.staged[0].op, WriteOp::Set(105));
    }
}

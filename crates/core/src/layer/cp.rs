//! The SwiShmem control-plane app (§6.1's writer side, §6.3's recovery
//! machinery).
//!
//! Responsibilities:
//! * **Write buffering and retry** — a packet whose processing produced
//!   SRO/ERO writes is buffered here (in DRAM); write requests are sent to
//!   the chain head and retried on timeout; the buffered output packet is
//!   released only when every write in the set is acknowledged by the
//!   tail.
//! * **Configuration adoption** — `ChainConfig` messages from the
//!   controller are installed into the data-plane config block.
//! * **Liveness** — periodic heartbeats to the controller.
//! * **Recovery source** — on `SnapshotRequest`, snapshot the chain
//!   registers (value + sequence number) and stream them to the
//!   recovering switch through the data plane, paced chunk by chunk.
//! * **Recovery target** — when the pipeline reports the final snapshot
//!   chunk applied, announce `CatchupComplete` to the controller.

use super::{read_ranges_dp, write_chain, ChainView, CpItem, Handles, RegKind};
use crate::config::SwishConfig;
use crate::metrics::CpMetrics;
use crate::reconfig::RangeView;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use swishmem_pisa::{ControlApp, CpCtx, RegHandle};
use swishmem_simnet::{SimDuration, SimTime, SpanPhase};
use swishmem_wire::swish::{
    CatchupComplete, Heartbeat, Key, LoadEntry, LoadReport, MigrateBegin, MigrateChunk,
    MigrateDone, OwnershipCommit, RegId, SnapEntry, SnapshotChunk, WriteOp, WriteRequest,
};
use swishmem_wire::{DataPacket, NodeId, PacketBody, SwishMsg, TraceId};

const TT_RETRY: u64 = 1 << 44;
const TT_HEARTBEAT: u64 = 2 << 44;
const TT_SNAP: u64 = 3 << 44;
const TT_MIGRATE: u64 = 4 << 44;
const TT_MASK: u64 = 0xf << 44;
const ID_MASK: u64 = (1 << 44) - 1;

/// SplitMix64 finalizer: the deterministic hash behind retry jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug)]
struct Job {
    remaining: usize,
    decision: Option<(NodeId, DataPacket)>,
    /// Causal trace assigned at NF ingress; every span this job's writes
    /// produce carries it.
    trace: TraceId,
    /// NF-ingress time of the punted packet: `write_latency` measures
    /// ingress → output-packet release, so punt + CP queueing delay is
    /// part of the reported write latency.
    ingress: SimTime,
}

#[derive(Debug)]
struct WriteState {
    job: u64,
    reg: RegId,
    key: Key,
    op: WriteOp,
    attempts: u32,
    trace: TraceId,
}

/// Source-side state of one in-flight range migration: the CP streams
/// the range's `(key, seq, value)` entries to the destination in paced
/// chunks, and — because chunks ride the lossy fabric unacknowledged —
/// re-snapshots and re-streams the whole range in numbered *passes*
/// until an `OwnershipCommit` (or abort, which is also a commit) retires
/// the stream. Writes that race a pass are safe regardless: during the
/// transfer the destination is the range's acking tail, so every
/// acknowledged write is already applied there.
#[derive(Debug)]
struct MigOut {
    reg: RegId,
    start: Key,
    end: Key,
    to: NodeId,
    epoch: u32,
    pass: u32,
    /// Range snapshot taken at pass start (`None` = snapshot on next
    /// pump), so chunks within one pass are mutually consistent.
    pass_entries: Option<Vec<SnapEntry>>,
    next_chunk: usize,
    next_due: SimTime,
}

/// Destination-side tracker: which chunk indices of the current pass
/// have arrived. A pass is complete when indices `0..=last` are all
/// present; the destination then reports `MigrateDone` and the
/// controller commits ownership.
#[derive(Debug)]
struct MigIn {
    reg: RegId,
    start: Key,
    end: Key,
    epoch: u32,
    pass: u32,
    /// Bitmap of received chunk indices (passes are capped at 64 chunks
    /// by the sender).
    got: u64,
    last_idx: Option<u16>,
    done_sent: bool,
}

impl MigIn {
    fn complete(&self) -> bool {
        let Some(last) = self.last_idx else {
            return false;
        };
        let need = if last >= 63 {
            u64::MAX
        } else {
            (1u64 << (u64::from(last) + 1)) - 1
        };
        self.got & need == need
    }
}

/// The control-plane application of one SwiShmem switch.
pub struct SwishCp {
    me: NodeId,
    cfg: SwishConfig,
    controller: NodeId,
    /// Controller replica group (empty = singleton controller).
    /// Heartbeats fan out to every member so all replicas track
    /// liveness; decision-bound traffic follows `believed_leader`.
    ctrl_group: Vec<NodeId>,
    /// Highest-ballot leader announcement adopted so far (replicated
    /// mode; equals `controller` for a singleton).
    believed_leader: NodeId,
    /// Ballot of the adopted announcement (stale `CtrlLead`s lose).
    ctrl_ballot: u64,
    /// This switch finished snapshot catch-up but has not seen itself
    /// promoted yet: re-announce `CatchupDone` on the heartbeat tick so
    /// a leader failover cannot strand it as a learner.
    caught_up: bool,
    handles: Rc<Handles>,
    view: ChainView,
    next_job: u64,
    next_write: u64,
    jobs: HashMap<u64, Job>,
    writes: HashMap<u64, WriteState>,
    snap_out: VecDeque<(NodeId, SnapshotChunk)>,
    /// Cached directory answers: (reg, key) → owner set (§7 extension).
    dir_cache: HashMap<(RegId, Key), Vec<NodeId>>,
    /// Outbound migration streams (this switch is the source).
    mig_out: Vec<MigOut>,
    /// Inbound migration pass trackers (this switch is the destination).
    mig_in: Vec<MigIn>,
    mig_timer_armed: bool,
    /// Partitioned-write ingress counts per `(reg, range start)`, drained
    /// into a `LoadReport` on the heartbeat tick. A `Vec`, not a map:
    /// the drain order goes on the wire and must be deterministic.
    load: Vec<((RegId, Key), u64)>,
    metrics: CpMetrics,
}

impl SwishCp {
    /// Build the control app for switch `me`.
    pub fn new(me: NodeId, cfg: SwishConfig, controller: NodeId, handles: Rc<Handles>) -> SwishCp {
        SwishCp {
            me,
            cfg,
            controller,
            ctrl_group: Vec::new(),
            believed_leader: controller,
            ctrl_ballot: 0,
            caught_up: false,
            handles,
            view: ChainView::default(),
            next_job: 0,
            next_write: 0,
            jobs: HashMap::new(),
            writes: HashMap::new(),
            snap_out: VecDeque::new(),
            dir_cache: HashMap::new(),
            mig_out: Vec::new(),
            mig_in: Vec::new(),
            mig_timer_armed: false,
            load: Vec::new(),
            metrics: CpMetrics::default(),
        }
    }

    /// Run against a replicated controller group (DESIGN.md §12):
    /// heartbeats fan out to every replica, decision traffic follows
    /// the announced leader. Call before the simulation starts.
    pub fn set_ctrl_group(&mut self, group: Vec<NodeId>) {
        self.believed_leader = group.first().copied().unwrap_or(self.controller);
        self.ctrl_group = group;
    }

    /// The controller node this switch currently addresses decisions to
    /// (the singleton, or the last-announced replica leader).
    pub fn believed_leader(&self) -> NodeId {
        self.believed_leader
    }

    /// Cached owner set for a partitioned key, if a directory reply has
    /// arrived.
    pub fn dir_owners(&self, reg: RegId, key: Key) -> Option<&[NodeId]> {
        self.dir_cache.get(&(reg, key)).map(Vec::as_slice)
    }

    /// The controller replica this switch addresses a directory lookup
    /// for `reg[key]` to. A singleton answers everything; against a
    /// replica group, lookups spread deterministically by (switch, reg,
    /// key) so followers absorb read load under their leader lease
    /// instead of funneling every query through the leader.
    pub fn dir_query_target(&self, reg: RegId, key: Key) -> NodeId {
        if self.ctrl_group.is_empty() {
            return self.controller;
        }
        let h = u64::from(self.me.0)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(reg) << 32 | u64::from(key));
        self.ctrl_group[(h % self.ctrl_group.len() as u64) as usize]
    }

    /// Control-plane metrics.
    pub fn metrics(&self) -> &CpMetrics {
        &self.metrics
    }

    /// Writes currently awaiting acknowledgment (blocked-write window
    /// measurements in E7 read this).
    pub fn outstanding_writes(&self) -> usize {
        self.writes.len()
    }

    /// Jobs currently buffered (output packet held in DRAM). The
    /// time-series sampler records this as the CP queue depth.
    pub fn buffered_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Snapshot chunks queued toward a recovering switch.
    pub fn snapshot_backlog(&self) -> usize {
        self.snap_out.len()
    }

    /// The chain configuration this switch currently operates under.
    pub fn view(&self) -> &ChainView {
        &self.view
    }

    /// Migration streams this switch is currently sourcing.
    pub fn migration_streams_out(&self) -> usize {
        self.mig_out.len()
    }

    /// Migration transfers this switch is currently receiving.
    pub fn migration_streams_in(&self) -> usize {
        self.mig_in.len()
    }

    /// Capped exponential backoff with deterministic jitter: base
    /// `retry_timeout` doubled per attempt up to `retry_backoff_max`,
    /// plus a hashed jitter in `[0, delay/4]`. Hashed — not drawn from
    /// the engine RNG — so CP retry timing adds no RNG draw sites and
    /// replays bit-for-bit, while still desynchronizing the retry storms
    /// of concurrent writers after a chain outage.
    fn retry_delay(&self, write_id: u64, attempts: u32) -> SimDuration {
        let base = self.cfg.retry_timeout.as_nanos().max(1);
        let cap = self.cfg.retry_backoff_max.as_nanos().max(base);
        let backed = base.saturating_mul(1u64 << attempts.min(20)).min(cap);
        // Replicated mode folds the believed controller replica into the
        // jitter stream: a failover re-shuffles retry phases per
        // (switch, destination replica) so post-failover retry storms
        // from many switches do not arrive in lockstep at the new
        // leader. Singleton deployments keep the original stream (the
        // golden determinism fingerprint depends on it).
        let dest = if self.ctrl_group.is_empty() {
            0
        } else {
            u64::from(self.believed_leader.0) << 36
        };
        let h =
            splitmix64((u64::from(self.me.0) << 52) ^ dest ^ (write_id << 8) ^ u64::from(attempts));
        SimDuration::nanos(backed + h % (backed / 4 + 1))
    }

    /// The range of a partitioned register containing `key`, read from
    /// this switch's own installed table (empty until the controller's
    /// initial broadcast lands; callers fall back to the retry timer).
    fn part_range(&self, reg: RegId, key: Key, cp: &mut CpCtx<'_, '_>) -> Option<RangeView> {
        let h = self.handles.rangeblk(reg)?;
        read_ranges_dp(cp.dataplane(), h)
            .into_iter()
            .find(|r| r.contains(key))
    }

    fn send_write(&mut self, write_id: u64, cp: &mut CpCtx<'_, '_>) {
        let Some(ws) = self.writes.get(&write_id) else {
            return;
        };
        let head = if self.handles.entry(ws.reg).spec.is_partitioned() {
            // Partitioned registers route per key: seq==0 goes to the
            // primary of the key's range, not the global chain head. A
            // retry after an `OwnershipCommit` re-reads the table and
            // re-routes automatically.
            let (reg, key) = (ws.reg, ws.key);
            let Some(primary) = self.part_range(reg, key, cp).and_then(|r| r.primary()) else {
                return; // no installed range yet; the retry timer will try again
            };
            primary
        } else {
            let Some(head) = self.view.head() else {
                return; // no chain yet; the retry timer will try again
            };
            head
        };
        self.metrics.write_sends += 1;
        cp.packet_out(
            head,
            PacketBody::Swish(SwishMsg::Write(WriteRequest {
                write_id,
                writer: self.me,
                epoch: self.view.epoch,
                reg: ws.reg,
                key: ws.key,
                seq: 0, // the head sequences
                op: ws.op,
                trace: ws.trace,
            })),
        );
    }

    fn handle_write_job(
        &mut self,
        writes: Vec<super::StagedWrite>,
        decision: Option<(NodeId, DataPacket)>,
        trace: TraceId,
        ingress: SimTime,
        cp: &mut CpCtx<'_, '_>,
    ) {
        // Bounded buffer: shed (and count) rather than queueing without
        // limit — a dead chain must not OOM the writer CP. The buffered
        // output packet is dropped here, explicitly.
        if self.jobs.len() >= self.cfg.cp_job_buffer.max(1) {
            self.metrics.jobs_shed += 1;
            if decision.is_some() {
                self.metrics.packets_shed += 1;
            }
            cp.span(trace, SpanPhase::Shed);
            return;
        }
        let job_id = self.next_job;
        self.next_job += 1;
        self.metrics.jobs_started += 1;
        cp.span(trace, SpanPhase::JobStart);
        self.jobs.insert(
            job_id,
            Job {
                remaining: writes.len(),
                decision,
                trace,
                ingress,
            },
        );
        for w in writes {
            if self.handles.entry(w.reg).spec.is_partitioned() {
                self.note_part_load(w.reg, w.key, cp);
            }
            let write_id = self.next_write & ID_MASK;
            self.next_write += 1;
            self.writes.insert(
                write_id,
                WriteState {
                    job: job_id,
                    reg: w.reg,
                    key: w.key,
                    op: w.op,
                    attempts: 0,
                    trace,
                },
            );
            self.send_write(write_id, cp);
            cp.set_timer(self.retry_delay(write_id, 0), TT_RETRY | write_id);
        }
    }

    /// Count one partitioned-write ingress against the key's range, for
    /// the heartbeat-piggybacked load report feeding the planner.
    fn note_part_load(&mut self, reg: RegId, key: Key, cp: &mut CpCtx<'_, '_>) {
        let Some(start) = self.part_range(reg, key, cp).map(|r| r.start) else {
            return;
        };
        match self.load.iter_mut().find(|(k, _)| *k == (reg, start)) {
            Some((_, n)) => *n += 1,
            None => self.load.push(((reg, start), 1)),
        }
    }

    /// Drain the ingress counts into a `LoadReport`. Sent only when
    /// nonzero, so deployments without partitioned registers emit no new
    /// traffic (the golden determinism fingerprint stays bit-identical).
    fn flush_load_report(&mut self, cp: &mut CpCtx<'_, '_>) {
        if self.load.is_empty() {
            return;
        }
        let entries = self
            .load
            .drain(..)
            .map(|((reg, start), writes)| LoadEntry { reg, start, writes })
            .collect();
        self.metrics.load_reports_sent += 1;
        cp.packet_out(
            self.believed_leader,
            PacketBody::Swish(SwishMsg::LoadReport(LoadReport {
                from: self.me,
                entries,
            })),
        );
    }

    // ------------------------------------------------------------------
    // Live migration: source streamer and destination pass tracker
    // ------------------------------------------------------------------

    fn on_migrate_begin(&mut self, m: MigrateBegin, cp: &mut CpCtx<'_, '_>) {
        if m.to == self.me {
            match self
                .mig_in
                .iter_mut()
                .find(|t| t.reg == m.reg && t.start == m.start)
            {
                Some(t) if t.epoch >= m.epoch => {}
                Some(t) => {
                    *t = MigIn {
                        reg: m.reg,
                        start: m.start,
                        end: m.end,
                        epoch: m.epoch,
                        pass: 0,
                        got: 0,
                        last_idx: None,
                        done_sent: false,
                    };
                }
                None => self.mig_in.push(MigIn {
                    reg: m.reg,
                    start: m.start,
                    end: m.end,
                    epoch: m.epoch,
                    pass: 0,
                    got: 0,
                    last_idx: None,
                    done_sent: false,
                }),
            }
        }
        if m.from == self.me {
            let exists = self
                .mig_out
                .iter()
                .any(|o| o.reg == m.reg && o.start == m.start && o.epoch >= m.epoch);
            if !exists {
                self.mig_out
                    .retain(|o| !(o.reg == m.reg && o.start == m.start));
                self.mig_out.push(MigOut {
                    reg: m.reg,
                    start: m.start,
                    end: m.end,
                    to: m.to,
                    epoch: m.epoch,
                    pass: 0,
                    pass_entries: None,
                    next_chunk: 0,
                    next_due: cp.now(),
                });
                if !self.mig_timer_armed {
                    self.mig_timer_armed = true;
                    cp.set_timer(self.cfg.reconfig.chunk_interval, TT_MIGRATE);
                }
            }
        }
    }

    /// Destination bookkeeping for one received chunk (the data plane has
    /// already applied its entries, seq-guarded). When a full pass has
    /// arrived, report `MigrateDone` so the controller can commit.
    fn on_migrate_chunk(&mut self, ch: &MigrateChunk, cp: &mut CpCtx<'_, '_>) {
        let me = self.me;
        let Some(t) = self
            .mig_in
            .iter_mut()
            .find(|t| t.reg == ch.reg && t.start == ch.start)
        else {
            return; // Begin not seen yet (lost); resync will re-send it
        };
        if ch.pass < t.pass {
            return; // chunk from a superseded pass
        }
        if ch.pass > t.pass {
            t.pass = ch.pass;
            t.got = 0;
            t.last_idx = None;
            t.done_sent = false;
        }
        if ch.idx >= 64 {
            return; // sender caps passes at 64 chunks; defensive
        }
        t.got |= 1 << ch.idx;
        if ch.last {
            t.last_idx = Some(ch.idx);
        }
        if t.complete() && !t.done_sent {
            t.done_sent = true;
            let done = MigrateDone {
                reg: t.reg,
                start: t.start,
                end: t.end,
                node: me,
                epoch: t.epoch,
                pass: t.pass,
            };
            self.metrics.migrate_done_sent += 1;
            // Addressed to the *current* leader belief: after a failover
            // mid-transfer, the source's next pass resets `done_sent`,
            // so the completion report is re-sent to the new leader.
            cp.packet_out(
                self.believed_leader,
                PacketBody::Swish(SwishMsg::MigrateDone(done)),
            );
        }
    }

    /// An `OwnershipCommit` at a newer epoch retires any migration stream
    /// or tracker for that range — a controller abort is also delivered
    /// as a commit (re-asserting the old owners at a fresh epoch), so
    /// this is the single stop signal for both outcomes.
    fn on_ownership_commit(&mut self, c: &OwnershipCommit) {
        self.mig_out
            .retain(|o| !(o.reg == c.reg && o.start == c.start && o.epoch < c.epoch));
        self.mig_in
            .retain(|t| !(t.reg == c.reg && t.start == c.start && t.epoch < c.epoch));
    }

    /// Snapshot a key range of a partitioned register for one transfer
    /// pass: `(key, per-key seq, value)` for every written key.
    fn snapshot_range(
        &self,
        reg: RegId,
        start: Key,
        end: Key,
        cp: &mut CpCtx<'_, '_>,
    ) -> Vec<SnapEntry> {
        let entry = self.handles.entry(reg);
        let RegKind::Chain { val, seq, .. } = &entry.kind else {
            return vec![];
        };
        let dp = cp.dataplane();
        let mut out = Vec::new();
        for key in start..end {
            let g = Handles::group_slot(&entry.spec, &self.cfg, key);
            let s = dp.reg(*seq).read(g);
            let v = dp.reg(*val).read(key as usize);
            if s == 0 && v == 0 {
                continue; // never written
            }
            out.push(SnapEntry {
                key,
                seq: s,
                value: v,
            });
        }
        out
    }

    /// One tick of the migration streamer: for every due outbound stream,
    /// send the next chunk of the current pass (snapshotting the range at
    /// pass start so a pass is internally consistent). After the last
    /// chunk of a pass the stream idles for `repass_interval`, then
    /// re-snapshots and streams again — chunk loss is repaired by
    /// repetition, not acknowledgment, and the seq guard at the
    /// destination makes re-application idempotent.
    fn pump_migration(&mut self, cp: &mut CpCtx<'_, '_>) {
        let now = cp.now();
        let pol = self.cfg.reconfig;
        for i in 0..self.mig_out.len() {
            if self.mig_out[i].next_due > now {
                continue;
            }
            if self.mig_out[i].pass_entries.is_none() {
                let (reg, start, end) = {
                    let m = &self.mig_out[i];
                    (m.reg, m.start, m.end)
                };
                let entries = self.snapshot_range(reg, start, end, cp);
                self.mig_out[i].pass_entries = Some(entries);
            }
            let me = self.me;
            let m = &mut self.mig_out[i];
            let entries = m.pass_entries.as_ref().expect("snapshotted at pass start");
            // ≤64 chunks per pass: the destination tracks receipt in a
            // u64 bitmap, so widen chunks instead of overflowing it.
            let per = pol.chunk_keys.max(1).max(entries.len().div_ceil(64));
            let n_chunks = entries.len().div_ceil(per).max(1);
            let idx = m.next_chunk;
            let last = idx + 1 >= n_chunks;
            let lo = (idx * per).min(entries.len());
            let hi = (lo + per).min(entries.len());
            let chunk = MigrateChunk {
                reg: m.reg,
                start: m.start,
                end: m.end,
                origin: me,
                pass: m.pass,
                idx: idx as u16,
                last,
                entries: entries[lo..hi].into(),
            };
            let to = m.to;
            if last {
                m.pass += 1;
                m.next_chunk = 0;
                m.pass_entries = None;
                m.next_due = now + pol.repass_interval;
            } else {
                m.next_chunk += 1;
                m.next_due = now + pol.chunk_interval;
            }
            self.metrics.migrate_chunks_sent += 1;
            cp.packet_out(to, PacketBody::Swish(SwishMsg::MigrateChunk(chunk)));
        }
        if self.mig_out.is_empty() {
            self.mig_timer_armed = false;
        } else {
            cp.set_timer(pol.chunk_interval, TT_MIGRATE);
        }
    }

    fn handle_ack(&mut self, write_id: u64, cp: &mut CpCtx<'_, '_>) {
        let Some(ws) = self.writes.remove(&write_id) else {
            return; // duplicate ack for a retried write: already released
        };
        let Some(job) = self.jobs.get_mut(&ws.job) else {
            return;
        };
        job.remaining -= 1;
        if job.remaining == 0 {
            let job = self.jobs.remove(&ws.job).expect("job present");
            self.metrics.jobs_completed += 1;
            self.metrics.write_latency.record(cp.now() - job.ingress);
            cp.span(job.trace, SpanPhase::Release);
            if let Some((dst, pkt)) = job.decision {
                // Release P': "the packet is injected back to the data
                // plane and forwarded to its destination" (§7).
                cp.packet_out(dst, PacketBody::Data(pkt));
            }
        }
    }

    /// Retry exhaustion: abandon `write_id` *and* its sibling writes (the
    /// job can never complete once one member is given up), release the
    /// buffered output packet explicitly, and record every abandoned
    /// `(reg, key)` so the convergence oracle can exclude those groups —
    /// an abandoned write may legitimately leave a chain prefix applied
    /// ahead of the tail forever.
    fn abandon_write(&mut self, write_id: u64, cp: &mut CpCtx<'_, '_>) {
        let Some(ws) = self.writes.remove(&write_id) else {
            return;
        };
        let job_id = ws.job;
        cp.span(ws.trace, SpanPhase::Abandon);
        self.metrics.writes_exhausted += 1;
        self.metrics.record_abandoned(ws.reg, ws.key);
        let siblings: Vec<u64> = self
            .writes
            .iter()
            .filter(|(_, w)| w.job == job_id)
            .map(|(&id, _)| id)
            .collect();
        for id in siblings {
            let w = self.writes.remove(&id).expect("sibling present");
            self.metrics.writes_exhausted += 1;
            self.metrics.record_abandoned(w.reg, w.key);
        }
        if let Some(job) = self.jobs.remove(&job_id) {
            self.metrics.jobs_failed += 1;
            if job.decision.is_some() {
                self.metrics.packets_shed += 1;
            }
            // `job.decision` drops here: the buffered packet is freed, not
            // leaked; sibling retry timers now find no write state and die.
        }
    }

    /// On epoch adoption: drop write state orphaned from any live job and
    /// queued snapshot chunks whose target left the configuration.
    /// CRAQ rule on becoming tail: the tail's applied state *is* the
    /// committed state, so any pending bit this switch still holds (set
    /// while it was a mid-chain member or a catching-up learner) is
    /// stale. Multicast clears never loop back to their sender, so
    /// nothing else would ever clear them once we are the tail.
    fn clear_own_pending(&mut self, cp: &mut CpCtx<'_, '_>) {
        for entry in &self.handles.regs {
            let RegKind::Chain {
                pending: Some(p), ..
            } = &entry.kind
            else {
                continue;
            };
            let slots = self.cfg.group_slots(entry.spec.keys) as usize;
            let r = cp.dataplane().reg_mut(*p);
            for s in 0..slots {
                r.write(s, 0);
            }
        }
    }

    fn gc_on_epoch_change(&mut self) {
        let before = self.writes.len();
        let jobs = &self.jobs;
        self.writes.retain(|_, w| jobs.contains_key(&w.job));
        self.metrics.writes_gced += (before - self.writes.len()) as u64;

        let before = self.snap_out.len();
        let view = &self.view;
        self.snap_out
            .retain(|(t, _)| view.chain.contains(t) || view.learners.contains(t));
        self.metrics.snap_chunks_gced += (before - self.snap_out.len()) as u64;
    }

    fn handle_snapshot_request(&mut self, target: NodeId, cp: &mut CpCtx<'_, '_>) {
        // Snapshot every chain register: (key, group seq, value) entries.
        let chunk_size = self.cfg.snapshot_chunk.max(1);
        let mut all: Vec<(RegId, Vec<SnapEntry>)> = Vec::new();
        {
            let dp = cp.dataplane();
            for entry in &self.handles.regs {
                let RegKind::Chain { val, seq, .. } = &entry.kind else {
                    continue;
                };
                let mut entries = Vec::with_capacity(entry.spec.keys as usize);
                for key in 0..entry.spec.keys {
                    let g = Handles::group_slot(&entry.spec, &self.cfg, key);
                    let s = dp.reg(*seq).read(g);
                    let v = dp.reg(*val).read(key as usize);
                    if s == 0 && v == 0 {
                        continue; // never written
                    }
                    entries.push(SnapEntry {
                        key,
                        seq: s,
                        value: v,
                    });
                }
                all.push((entry.spec.id, entries));
            }
        }
        // Even with no chain registers, send one empty terminal chunk so
        // the target still reports catch-up completion.
        let was_empty = self.snap_out.is_empty();
        let mut chunks: Vec<SnapshotChunk> = Vec::new();
        for (reg, entries) in all {
            if entries.is_empty() {
                chunks.push(SnapshotChunk {
                    reg,
                    origin: self.me,
                    entries: vec![].into(),
                    last: false,
                });
                continue;
            }
            for slice in entries.chunks(chunk_size) {
                chunks.push(SnapshotChunk {
                    reg,
                    origin: self.me,
                    entries: slice.into(),
                    last: false,
                });
            }
        }
        if chunks.is_empty() {
            chunks.push(SnapshotChunk {
                reg: 0,
                origin: self.me,
                entries: vec![].into(),
                last: true,
            });
        } else {
            chunks.last_mut().expect("nonempty").last = true;
        }
        for ch in chunks {
            self.snap_out.push_back((target, ch));
        }
        if was_empty {
            cp.set_timer(self.cfg.snapshot_interval, TT_SNAP);
        }
    }

    fn pump_snapshot(&mut self, cp: &mut CpCtx<'_, '_>) {
        if let Some((target, chunk)) = self.snap_out.pop_front() {
            self.metrics.snapshot_chunks_sent += 1;
            cp.packet_out(target, PacketBody::Swish(SwishMsg::SnapChunk(chunk)));
        }
        if !self.snap_out.is_empty() {
            cp.set_timer(self.cfg.snapshot_interval, TT_SNAP);
        }
    }

    /// Send liveness heartbeats: the singleton controller, or every
    /// member of the replica group (each replica runs its own failure
    /// detector so the next leader starts with fresh observations).
    fn send_heartbeats(&mut self, cp: &mut CpCtx<'_, '_>) {
        let hb = Heartbeat {
            from: self.me,
            epoch: self.view.epoch,
        };
        if self.ctrl_group.is_empty() {
            self.metrics.heartbeats += 1;
            cp.packet_out(self.controller, PacketBody::Swish(SwishMsg::Heartbeat(hb)));
        } else {
            for i in 0..self.ctrl_group.len() {
                let c = self.ctrl_group[i];
                self.metrics.heartbeats += 1;
                cp.packet_out(c, PacketBody::Swish(SwishMsg::Heartbeat(hb)));
            }
        }
    }

    fn send_catchup_done(&mut self, cp: &mut CpCtx<'_, '_>) {
        cp.packet_out(
            self.believed_leader,
            PacketBody::Swish(SwishMsg::CatchupDone(CatchupComplete {
                node: self.me,
                epoch: self.view.epoch,
            })),
        );
    }
}

impl ControlApp for SwishCp {
    fn on_start(&mut self, cp: &mut CpCtx<'_, '_>) {
        self.send_heartbeats(cp);
        cp.set_timer(self.cfg.heartbeat_interval, TT_HEARTBEAT);
    }

    fn on_item(&mut self, item: Box<dyn Any>, cp: &mut CpCtx<'_, '_>) {
        let Ok(item) = item.downcast::<CpItem>() else {
            return;
        };
        match *item {
            CpItem::WriteJob {
                writes,
                decision,
                trace,
                ingress,
            } => self.handle_write_job(writes, decision, trace, ingress, cp),
            CpItem::SnapshotDone => {
                self.caught_up = true;
                self.send_catchup_done(cp);
            }
            CpItem::Proto(msg) => match msg {
                SwishMsg::Ack(a) => self.handle_ack(a.write_id, cp),
                SwishMsg::Chain(c) if c.epoch > self.view.epoch => {
                    self.view = ChainView {
                        epoch: c.epoch,
                        chain: c.chain,
                        learners: c.learners,
                    };
                    let cfgblk: RegHandle = self.handles.cfgblk;
                    write_chain(cp.dataplane(), cfgblk, &self.view);
                    self.metrics.epochs_adopted += 1;
                    if self.view.chain.contains(&self.me) {
                        // Promoted (or already a member): stop the
                        // catch-up re-announcement.
                        self.caught_up = false;
                    }
                    if self.view.chain.last() == Some(&self.me) {
                        self.clear_own_pending(cp);
                    }
                    self.gc_on_epoch_change();
                }
                SwishMsg::Group(_) => {
                    // Replica-group membership is enforced by the fabric's
                    // multicast tree, which the controller reprograms
                    // directly; nothing to install locally.
                }
                SwishMsg::SnapReq(r) => self.handle_snapshot_request(r.target, cp),
                SwishMsg::DirReply(r) => {
                    self.dir_cache.insert((r.reg, r.key), r.owners);
                }
                SwishMsg::MigrateBegin(m) => self.on_migrate_begin(m, cp),
                SwishMsg::MigrateChunk(ch) => self.on_migrate_chunk(&ch, cp),
                SwishMsg::OwnershipCommit(c) => self.on_ownership_commit(&c),
                // Adopt the highest-ballot leadership announcement;
                // redirect controller-bound traffic to the new leader.
                SwishMsg::CtrlLead(l)
                    if !self.ctrl_group.is_empty()
                        && l.ballot >= self.ctrl_ballot
                        && self.ctrl_group.contains(&l.leader) =>
                {
                    self.ctrl_ballot = l.ballot;
                    self.believed_leader = l.leader;
                }
                _ => {}
            },
        }
    }

    fn on_timer(&mut self, token: u64, cp: &mut CpCtx<'_, '_>) {
        match token & TT_MASK {
            TT_RETRY => {
                let write_id = token & ID_MASK;
                let Some(ws) = self.writes.get_mut(&write_id) else {
                    return; // acked (or stale token from before a failure)
                };
                ws.attempts += 1;
                if ws.attempts > self.cfg.max_retries {
                    self.abandon_write(write_id, cp);
                    return;
                }
                let attempts = ws.attempts;
                let trace = ws.trace;
                self.metrics.retries += 1;
                cp.span(trace, SpanPhase::Retry(attempts as u16));
                self.send_write(write_id, cp);
                cp.set_timer(self.retry_delay(write_id, attempts), TT_RETRY | write_id);
            }
            TT_HEARTBEAT => {
                self.send_heartbeats(cp);
                cp.set_timer(self.cfg.heartbeat_interval, TT_HEARTBEAT);
                self.flush_load_report(cp);
                // Learner stuck waiting for promotion (e.g. the leader
                // that received our CatchupDone died): keep announcing.
                if self.caught_up && self.view.learners.contains(&self.me) {
                    self.send_catchup_done(cp);
                }
            }
            TT_SNAP => self.pump_snapshot(cp),
            TT_MIGRATE => self.pump_migration(cp),
            _ => {}
        }
    }

    fn reset(&mut self) {
        self.view = ChainView::default();
        self.believed_leader = self.ctrl_group.first().copied().unwrap_or(self.controller);
        self.ctrl_ballot = 0;
        self.caught_up = false;
        self.jobs.clear();
        self.writes.clear();
        self.snap_out.clear();
        self.dir_cache.clear();
        self.mig_out.clear();
        self.mig_in.clear();
        self.mig_timer_armed = false;
        self.load.clear();
        self.metrics = CpMetrics::default();
    }
}

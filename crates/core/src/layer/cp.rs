//! The SwiShmem control-plane app (§6.1's writer side, §6.3's recovery
//! machinery).
//!
//! Responsibilities:
//! * **Write buffering and retry** — a packet whose processing produced
//!   SRO/ERO writes is buffered here (in DRAM); write requests are sent to
//!   the chain head and retried on timeout; the buffered output packet is
//!   released only when every write in the set is acknowledged by the
//!   tail.
//! * **Configuration adoption** — `ChainConfig` messages from the
//!   controller are installed into the data-plane config block.
//! * **Liveness** — periodic heartbeats to the controller.
//! * **Recovery source** — on `SnapshotRequest`, snapshot the chain
//!   registers (value + sequence number) and stream them to the
//!   recovering switch through the data plane, paced chunk by chunk.
//! * **Recovery target** — when the pipeline reports the final snapshot
//!   chunk applied, announce `CatchupComplete` to the controller.

use super::{write_chain, ChainView, CpItem, Handles, RegKind};
use crate::config::SwishConfig;
use crate::metrics::CpMetrics;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use swishmem_pisa::{ControlApp, CpCtx, RegHandle};
use swishmem_simnet::{SimDuration, SimTime, SpanPhase};
use swishmem_wire::swish::{
    CatchupComplete, Heartbeat, Key, RegId, SnapEntry, SnapshotChunk, WriteOp, WriteRequest,
};
use swishmem_wire::{DataPacket, NodeId, PacketBody, SwishMsg, TraceId};

const TT_RETRY: u64 = 1 << 44;
const TT_HEARTBEAT: u64 = 2 << 44;
const TT_SNAP: u64 = 3 << 44;
const TT_MASK: u64 = 0xf << 44;
const ID_MASK: u64 = (1 << 44) - 1;

/// SplitMix64 finalizer: the deterministic hash behind retry jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug)]
struct Job {
    remaining: usize,
    decision: Option<(NodeId, DataPacket)>,
    /// Causal trace assigned at NF ingress; every span this job's writes
    /// produce carries it.
    trace: TraceId,
    /// NF-ingress time of the punted packet: `write_latency` measures
    /// ingress → output-packet release, so punt + CP queueing delay is
    /// part of the reported write latency.
    ingress: SimTime,
}

#[derive(Debug)]
struct WriteState {
    job: u64,
    reg: RegId,
    key: Key,
    op: WriteOp,
    attempts: u32,
    trace: TraceId,
}

/// The control-plane application of one SwiShmem switch.
pub struct SwishCp {
    me: NodeId,
    cfg: SwishConfig,
    controller: NodeId,
    handles: Rc<Handles>,
    view: ChainView,
    next_job: u64,
    next_write: u64,
    jobs: HashMap<u64, Job>,
    writes: HashMap<u64, WriteState>,
    snap_out: VecDeque<(NodeId, SnapshotChunk)>,
    /// Cached directory answers: (reg, key) → owner set (§7 extension).
    dir_cache: HashMap<(RegId, Key), Vec<NodeId>>,
    metrics: CpMetrics,
}

impl SwishCp {
    /// Build the control app for switch `me`.
    pub fn new(me: NodeId, cfg: SwishConfig, controller: NodeId, handles: Rc<Handles>) -> SwishCp {
        SwishCp {
            me,
            cfg,
            controller,
            handles,
            view: ChainView::default(),
            next_job: 0,
            next_write: 0,
            jobs: HashMap::new(),
            writes: HashMap::new(),
            snap_out: VecDeque::new(),
            dir_cache: HashMap::new(),
            metrics: CpMetrics::default(),
        }
    }

    /// Cached owner set for a partitioned key, if a directory reply has
    /// arrived.
    pub fn dir_owners(&self, reg: RegId, key: Key) -> Option<&[NodeId]> {
        self.dir_cache.get(&(reg, key)).map(Vec::as_slice)
    }

    /// Control-plane metrics.
    pub fn metrics(&self) -> &CpMetrics {
        &self.metrics
    }

    /// Writes currently awaiting acknowledgment (blocked-write window
    /// measurements in E7 read this).
    pub fn outstanding_writes(&self) -> usize {
        self.writes.len()
    }

    /// Jobs currently buffered (output packet held in DRAM). The
    /// time-series sampler records this as the CP queue depth.
    pub fn buffered_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Snapshot chunks queued toward a recovering switch.
    pub fn snapshot_backlog(&self) -> usize {
        self.snap_out.len()
    }

    /// The chain configuration this switch currently operates under.
    pub fn view(&self) -> &ChainView {
        &self.view
    }

    /// Capped exponential backoff with deterministic jitter: base
    /// `retry_timeout` doubled per attempt up to `retry_backoff_max`,
    /// plus a hashed jitter in `[0, delay/4]`. Hashed — not drawn from
    /// the engine RNG — so CP retry timing adds no RNG draw sites and
    /// replays bit-for-bit, while still desynchronizing the retry storms
    /// of concurrent writers after a chain outage.
    fn retry_delay(&self, write_id: u64, attempts: u32) -> SimDuration {
        let base = self.cfg.retry_timeout.as_nanos().max(1);
        let cap = self.cfg.retry_backoff_max.as_nanos().max(base);
        let backed = base.saturating_mul(1u64 << attempts.min(20)).min(cap);
        let h = splitmix64((u64::from(self.me.0) << 52) ^ (write_id << 8) ^ u64::from(attempts));
        SimDuration::nanos(backed + h % (backed / 4 + 1))
    }

    fn send_write(&mut self, write_id: u64, cp: &mut CpCtx<'_, '_>) {
        let Some(ws) = self.writes.get(&write_id) else {
            return;
        };
        let Some(head) = self.view.head() else {
            return; // no chain yet; the retry timer will try again
        };
        self.metrics.write_sends += 1;
        cp.packet_out(
            head,
            PacketBody::Swish(SwishMsg::Write(WriteRequest {
                write_id,
                writer: self.me,
                epoch: self.view.epoch,
                reg: ws.reg,
                key: ws.key,
                seq: 0, // the head sequences
                op: ws.op,
                trace: ws.trace,
            })),
        );
    }

    fn handle_write_job(
        &mut self,
        writes: Vec<super::StagedWrite>,
        decision: Option<(NodeId, DataPacket)>,
        trace: TraceId,
        ingress: SimTime,
        cp: &mut CpCtx<'_, '_>,
    ) {
        // Bounded buffer: shed (and count) rather than queueing without
        // limit — a dead chain must not OOM the writer CP. The buffered
        // output packet is dropped here, explicitly.
        if self.jobs.len() >= self.cfg.cp_job_buffer.max(1) {
            self.metrics.jobs_shed += 1;
            if decision.is_some() {
                self.metrics.packets_shed += 1;
            }
            cp.span(trace, SpanPhase::Shed);
            return;
        }
        let job_id = self.next_job;
        self.next_job += 1;
        self.metrics.jobs_started += 1;
        cp.span(trace, SpanPhase::JobStart);
        self.jobs.insert(
            job_id,
            Job {
                remaining: writes.len(),
                decision,
                trace,
                ingress,
            },
        );
        for w in writes {
            let write_id = self.next_write & ID_MASK;
            self.next_write += 1;
            self.writes.insert(
                write_id,
                WriteState {
                    job: job_id,
                    reg: w.reg,
                    key: w.key,
                    op: w.op,
                    attempts: 0,
                    trace,
                },
            );
            self.send_write(write_id, cp);
            cp.set_timer(self.retry_delay(write_id, 0), TT_RETRY | write_id);
        }
    }

    fn handle_ack(&mut self, write_id: u64, cp: &mut CpCtx<'_, '_>) {
        let Some(ws) = self.writes.remove(&write_id) else {
            return; // duplicate ack for a retried write: already released
        };
        let Some(job) = self.jobs.get_mut(&ws.job) else {
            return;
        };
        job.remaining -= 1;
        if job.remaining == 0 {
            let job = self.jobs.remove(&ws.job).expect("job present");
            self.metrics.jobs_completed += 1;
            self.metrics.write_latency.record(cp.now() - job.ingress);
            cp.span(job.trace, SpanPhase::Release);
            if let Some((dst, pkt)) = job.decision {
                // Release P': "the packet is injected back to the data
                // plane and forwarded to its destination" (§7).
                cp.packet_out(dst, PacketBody::Data(pkt));
            }
        }
    }

    /// Retry exhaustion: abandon `write_id` *and* its sibling writes (the
    /// job can never complete once one member is given up), release the
    /// buffered output packet explicitly, and record every abandoned
    /// `(reg, key)` so the convergence oracle can exclude those groups —
    /// an abandoned write may legitimately leave a chain prefix applied
    /// ahead of the tail forever.
    fn abandon_write(&mut self, write_id: u64, cp: &mut CpCtx<'_, '_>) {
        let Some(ws) = self.writes.remove(&write_id) else {
            return;
        };
        let job_id = ws.job;
        cp.span(ws.trace, SpanPhase::Abandon);
        self.metrics.writes_exhausted += 1;
        self.metrics.record_abandoned(ws.reg, ws.key);
        let siblings: Vec<u64> = self
            .writes
            .iter()
            .filter(|(_, w)| w.job == job_id)
            .map(|(&id, _)| id)
            .collect();
        for id in siblings {
            let w = self.writes.remove(&id).expect("sibling present");
            self.metrics.writes_exhausted += 1;
            self.metrics.record_abandoned(w.reg, w.key);
        }
        if let Some(job) = self.jobs.remove(&job_id) {
            self.metrics.jobs_failed += 1;
            if job.decision.is_some() {
                self.metrics.packets_shed += 1;
            }
            // `job.decision` drops here: the buffered packet is freed, not
            // leaked; sibling retry timers now find no write state and die.
        }
    }

    /// On epoch adoption: drop write state orphaned from any live job and
    /// queued snapshot chunks whose target left the configuration.
    /// CRAQ rule on becoming tail: the tail's applied state *is* the
    /// committed state, so any pending bit this switch still holds (set
    /// while it was a mid-chain member or a catching-up learner) is
    /// stale. Multicast clears never loop back to their sender, so
    /// nothing else would ever clear them once we are the tail.
    fn clear_own_pending(&mut self, cp: &mut CpCtx<'_, '_>) {
        for entry in &self.handles.regs {
            let RegKind::Chain {
                pending: Some(p), ..
            } = &entry.kind
            else {
                continue;
            };
            let slots = self.cfg.group_slots(entry.spec.keys) as usize;
            let r = cp.dataplane().reg_mut(*p);
            for s in 0..slots {
                r.write(s, 0);
            }
        }
    }

    fn gc_on_epoch_change(&mut self) {
        let before = self.writes.len();
        let jobs = &self.jobs;
        self.writes.retain(|_, w| jobs.contains_key(&w.job));
        self.metrics.writes_gced += (before - self.writes.len()) as u64;

        let before = self.snap_out.len();
        let view = &self.view;
        self.snap_out
            .retain(|(t, _)| view.chain.contains(t) || view.learners.contains(t));
        self.metrics.snap_chunks_gced += (before - self.snap_out.len()) as u64;
    }

    fn handle_snapshot_request(&mut self, target: NodeId, cp: &mut CpCtx<'_, '_>) {
        // Snapshot every chain register: (key, group seq, value) entries.
        let chunk_size = self.cfg.snapshot_chunk.max(1);
        let mut all: Vec<(RegId, Vec<SnapEntry>)> = Vec::new();
        {
            let dp = cp.dataplane();
            for entry in &self.handles.regs {
                let RegKind::Chain { val, seq, .. } = &entry.kind else {
                    continue;
                };
                let mut entries = Vec::with_capacity(entry.spec.keys as usize);
                for key in 0..entry.spec.keys {
                    let g = Handles::group_slot(&entry.spec, &self.cfg, key);
                    let s = dp.reg(*seq).read(g);
                    let v = dp.reg(*val).read(key as usize);
                    if s == 0 && v == 0 {
                        continue; // never written
                    }
                    entries.push(SnapEntry {
                        key,
                        seq: s,
                        value: v,
                    });
                }
                all.push((entry.spec.id, entries));
            }
        }
        // Even with no chain registers, send one empty terminal chunk so
        // the target still reports catch-up completion.
        let was_empty = self.snap_out.is_empty();
        let mut chunks: Vec<SnapshotChunk> = Vec::new();
        for (reg, entries) in all {
            if entries.is_empty() {
                chunks.push(SnapshotChunk {
                    reg,
                    origin: self.me,
                    entries: vec![].into(),
                    last: false,
                });
                continue;
            }
            for slice in entries.chunks(chunk_size) {
                chunks.push(SnapshotChunk {
                    reg,
                    origin: self.me,
                    entries: slice.into(),
                    last: false,
                });
            }
        }
        if chunks.is_empty() {
            chunks.push(SnapshotChunk {
                reg: 0,
                origin: self.me,
                entries: vec![].into(),
                last: true,
            });
        } else {
            chunks.last_mut().expect("nonempty").last = true;
        }
        for ch in chunks {
            self.snap_out.push_back((target, ch));
        }
        if was_empty {
            cp.set_timer(self.cfg.snapshot_interval, TT_SNAP);
        }
    }

    fn pump_snapshot(&mut self, cp: &mut CpCtx<'_, '_>) {
        if let Some((target, chunk)) = self.snap_out.pop_front() {
            self.metrics.snapshot_chunks_sent += 1;
            cp.packet_out(target, PacketBody::Swish(SwishMsg::SnapChunk(chunk)));
        }
        if !self.snap_out.is_empty() {
            cp.set_timer(self.cfg.snapshot_interval, TT_SNAP);
        }
    }
}

impl ControlApp for SwishCp {
    fn on_start(&mut self, cp: &mut CpCtx<'_, '_>) {
        self.metrics.heartbeats += 1;
        cp.packet_out(
            self.controller,
            PacketBody::Swish(SwishMsg::Heartbeat(Heartbeat {
                from: self.me,
                epoch: 0,
            })),
        );
        cp.set_timer(self.cfg.heartbeat_interval, TT_HEARTBEAT);
    }

    fn on_item(&mut self, item: Box<dyn Any>, cp: &mut CpCtx<'_, '_>) {
        let Ok(item) = item.downcast::<CpItem>() else {
            return;
        };
        match *item {
            CpItem::WriteJob {
                writes,
                decision,
                trace,
                ingress,
            } => self.handle_write_job(writes, decision, trace, ingress, cp),
            CpItem::SnapshotDone => {
                cp.packet_out(
                    self.controller,
                    PacketBody::Swish(SwishMsg::CatchupDone(CatchupComplete {
                        node: self.me,
                        epoch: self.view.epoch,
                    })),
                );
            }
            CpItem::Proto(msg) => match msg {
                SwishMsg::Ack(a) => self.handle_ack(a.write_id, cp),
                SwishMsg::Chain(c) if c.epoch > self.view.epoch => {
                    self.view = ChainView {
                        epoch: c.epoch,
                        chain: c.chain,
                        learners: c.learners,
                    };
                    let cfgblk: RegHandle = self.handles.cfgblk;
                    write_chain(cp.dataplane(), cfgblk, &self.view);
                    self.metrics.epochs_adopted += 1;
                    if self.view.chain.last() == Some(&self.me) {
                        self.clear_own_pending(cp);
                    }
                    self.gc_on_epoch_change();
                }
                SwishMsg::Group(_) => {
                    // Replica-group membership is enforced by the fabric's
                    // multicast tree, which the controller reprograms
                    // directly; nothing to install locally.
                }
                SwishMsg::SnapReq(r) => self.handle_snapshot_request(r.target, cp),
                SwishMsg::DirReply(r) => {
                    self.dir_cache.insert((r.reg, r.key), r.owners);
                }
                _ => {}
            },
        }
    }

    fn on_timer(&mut self, token: u64, cp: &mut CpCtx<'_, '_>) {
        match token & TT_MASK {
            TT_RETRY => {
                let write_id = token & ID_MASK;
                let Some(ws) = self.writes.get_mut(&write_id) else {
                    return; // acked (or stale token from before a failure)
                };
                ws.attempts += 1;
                if ws.attempts > self.cfg.max_retries {
                    self.abandon_write(write_id, cp);
                    return;
                }
                let attempts = ws.attempts;
                let trace = ws.trace;
                self.metrics.retries += 1;
                cp.span(trace, SpanPhase::Retry(attempts as u16));
                self.send_write(write_id, cp);
                cp.set_timer(self.retry_delay(write_id, attempts), TT_RETRY | write_id);
            }
            TT_HEARTBEAT => {
                self.metrics.heartbeats += 1;
                cp.packet_out(
                    self.controller,
                    PacketBody::Swish(SwishMsg::Heartbeat(Heartbeat {
                        from: self.me,
                        epoch: self.view.epoch,
                    })),
                );
                cp.set_timer(self.cfg.heartbeat_interval, TT_HEARTBEAT);
            }
            TT_SNAP => self.pump_snapshot(cp),
            _ => {}
        }
    }

    fn reset(&mut self) {
        self.view = ChainView::default();
        self.jobs.clear();
        self.writes.clear();
        self.snap_out.clear();
        self.dir_cache.clear();
        self.metrics = CpMetrics::default();
    }
}

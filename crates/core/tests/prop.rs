//! Property tests for the core abstractions: CRDT lattice laws, version
//! ordering, LWW convergence irrespective of delivery order, and the
//! chain sequence guard.

use proptest::prelude::*;
use swishmem::crdt::{Crdt, GCounter, LwwCell, PnCounter, WindowedSlot};
use swishmem::version::{pack, unpack, SwitchClock};
use swishmem::ClockMode;
use swishmem_wire::NodeId;

fn arb_gcounter(n: usize) -> impl Strategy<Value = GCounter> {
    prop::collection::vec(0u64..1000, n).prop_map(move |incrs| {
        let mut g = GCounter::new(incrs.len());
        for (i, v) in incrs.iter().enumerate() {
            g.increment(NodeId(i as u16), *v);
        }
        g
    })
}

fn arb_lww() -> impl Strategy<Value = LwwCell> {
    (0u64..1000, any::<u64>()).prop_map(|(version, value)| LwwCell { version, value })
}

fn arb_windowed() -> impl Strategy<Value = WindowedSlot> {
    (0u64..20, 0u64..1000).prop_map(|(epoch, count)| WindowedSlot { epoch, count })
}

proptest! {
    // ---- G-counter lattice laws ----

    #[test]
    fn gcounter_merge_commutative(a in arb_gcounter(4), b in arb_gcounter(4)) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn gcounter_merge_associative(a in arb_gcounter(3), b in arb_gcounter(3), c in arb_gcounter(3)) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn gcounter_merge_idempotent(a in arb_gcounter(4)) {
        let mut m = a.clone();
        m.merge(&a);
        prop_assert_eq!(m, a);
    }

    #[test]
    fn gcounter_merge_monotone(a in arb_gcounter(4), b in arb_gcounter(4)) {
        let before = a.read();
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(m.read() >= before, "counter decreased after merge (§6.2 monotonicity)");
        prop_assert!(m.read() >= b.read());
    }

    // ---- PN-counter ----

    #[test]
    fn pncounter_concurrent_ops_all_survive(
        pos in prop::collection::vec(0i64..100, 1..10),
        neg in prop::collection::vec(-100i64..0, 1..10),
    ) {
        let mut a = PnCounter::new(2);
        let mut b = PnCounter::new(2);
        let mut expect = 0i64;
        for &p in &pos {
            a.add(NodeId(0), p);
            expect += p;
        }
        for &n in &neg {
            b.add(NodeId(1), n);
            expect += n;
        }
        a.merge(&b);
        b.merge(&a);
        prop_assert_eq!(a.read(), expect);
        prop_assert_eq!(b.read(), expect);
    }

    // ---- LWW convergence regardless of delivery order ----

    #[test]
    fn lww_any_delivery_order_converges(
        raw_writes in prop::collection::vec(arb_lww(), 1..12),
        perm_seed in any::<u64>(),
    ) {
        // Deployed versions are unique by construction (timestamp +
        // switch-id tiebreak, crate::version::pack); mirror that here —
        // duplicate versions with different values would make merge order
        // observable, a state the system never produces.
        let writes: Vec<LwwCell> = raw_writes
            .iter()
            .enumerate()
            .map(|(i, w)| LwwCell { version: w.version * 16 + i as u64, value: w.value })
            .collect();
        // Replica A receives writes in order, replica B in a permutation.
        let mut order2 = writes.clone();
        let n = order2.len();
        let mut s = perm_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            order2.swap(i, j);
        }
        let mut a = LwwCell::default();
        for w in &writes {
            a.merge(w);
        }
        let mut b = LwwCell::default();
        for w in &order2 {
            b.merge(w);
        }
        prop_assert_eq!(a, b, "LWW must be order-insensitive");
        // And the survivor is the max-version write.
        let top = writes.iter().max_by_key(|w| w.version).unwrap();
        if top.version > 0 {
            prop_assert_eq!(a.version, top.version);
        }
    }

    // ---- Windowed slot lattice ----

    #[test]
    fn windowed_merge_commutative_and_monotone(a in arb_windowed(), b in arb_windowed()) {
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
        // Lexicographic monotonicity: (epoch, count) never decreases.
        prop_assert!((ab.epoch, ab.count) >= (a.epoch, a.count));
        prop_assert!((ab.epoch, ab.count) >= (b.epoch, b.count));
    }

    // ---- Version packing ----

    #[test]
    fn version_pack_unpack_round_trip(stamp in 0u64..(1 << 54), id in 0u16..1024) {
        let v = pack(stamp, NodeId(id));
        prop_assert_eq!(unpack(v), (stamp, NodeId(id)));
    }

    #[test]
    fn versions_totally_ordered_by_stamp_then_id(
        s1 in 0u64..(1 << 40), id1 in 0u16..1024,
        s2 in 0u64..(1 << 40), id2 in 0u16..1024,
    ) {
        let v1 = pack(s1, NodeId(id1));
        let v2 = pack(s2, NodeId(id2));
        if s1 != s2 {
            prop_assert_eq!(v1 < v2, s1 < s2);
        } else if id1 != id2 {
            prop_assert_eq!(v1 < v2, id1 < id2);
        } else {
            prop_assert_eq!(v1, v2);
        }
    }

    #[test]
    fn clock_versions_strictly_increase(
        times in prop::collection::vec(0u64..1_000_000, 1..50),
        lamport in any::<bool>(),
    ) {
        let mode = if lamport { ClockMode::Lamport } else { ClockMode::Synced { max_skew_ns: 10 } };
        let mut clock = SwitchClock::new(NodeId(1), mode, 5);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut last = 0;
        for t in sorted {
            let v = clock.next_version(swishmem_simnet::SimTime(t));
            prop_assert!(v > last, "clock must be strictly monotonic");
            last = v;
        }
    }
}

//! Core protocol tests: SRO chain replication, ERO local reads, EWO
//! convergence, failover and recovery, exercised through full deployments.

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{ConfigEventKind, RegisterSpec};
use swishmem_simnet::{DropReason, TrafficClass};
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::PacketBody;

/// NF: UDP packets write their payload_len into SRO register 0 at key =
/// dst_port; TCP packets read key = dst_port and forward the value in
/// `flow_seq` to host 1 (so the observed value is externally visible).
struct RwNf;

impl NfApp for RwNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        let key = u32::from(pkt.flow.dst_port);
        if pkt.flow.proto == 17 {
            st.write(0, key, u64::from(pkt.payload_len));
            NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: *pkt,
            }
        } else {
            let v = st.read(0, key);
            let mut out = *pkt;
            out.flow_seq = v as u32;
            NfDecision::Forward {
                dst: NodeId(HOST_BASE + 1),
                pkt: out,
            }
        }
    }
}

fn udp(port: u16, len: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        len,
    )
}

fn tcp(port: u16) -> DataPacket {
    DataPacket::tcp(
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        TcpFlags::data(),
        0,
        10,
    )
}

fn sro_dep(n: usize) -> Deployment {
    DeploymentBuilder::new(n)
        .register(RegisterSpec::sro(0, "t", 64))
        .build(|_| Box::new(RwNf))
}

#[test]
fn sro_write_replicates_to_every_switch() {
    let mut dep = sro_dep(3);
    dep.settle();
    let t = dep.now();
    dep.inject(t, 1, 0, udp(7, 123)); // write via switch 1
    dep.run_for(SimDuration::millis(20));
    for i in 0..3 {
        assert_eq!(dep.peek(i, 0, 7), 123, "switch {i} missing the write");
    }
    // The output packet was released to host 0 after the chain ack.
    assert_eq!(dep.recording(0).borrow().len(), 1);
    // Pending bits all cleared.
    let m0 = dep.metrics(0);
    assert!(m0.dp.chain_applies >= 1);
}

#[test]
fn sro_output_packet_held_until_ack() {
    let mut dep = sro_dep(3);
    dep.settle();
    let t = dep.now();
    dep.inject(t, 0, 0, udp(9, 50));
    // Just after injection the packet must NOT have been released: chain
    // traversal plus control-plane costs take tens of microseconds.
    dep.run_for(SimDuration::micros(20));
    assert_eq!(dep.recording(0).borrow().len(), 0, "P' released before ack");
    dep.run_for(SimDuration::millis(20));
    assert_eq!(dep.recording(0).borrow().len(), 1);
    let m = dep.metrics(0);
    assert_eq!(m.cp.jobs_completed, 1);
    assert!(m.cp.write_latency.mean_ns() > 0.0);
}

#[test]
fn sro_reads_are_local_when_no_write_in_flight() {
    let mut dep = sro_dep(3);
    dep.settle();
    let t = dep.now();
    dep.inject(t, 0, 0, udp(3, 77));
    dep.run_for(SimDuration::millis(20));
    // Read at a non-tail switch (switch 0 is head of chain 0,1,2).
    let t = dep.now();
    dep.inject(t, 0, 0, tcp(3));
    dep.run_for(SimDuration::millis(5));
    let log = dep.recording(1).borrow();
    assert_eq!(log.len(), 1);
    match &log[0].1.body {
        PacketBody::Data(d) => assert_eq!(d.flow_seq, 77),
        other => panic!("unexpected {other:?}"),
    }
    let forwarded: u64 = (0..3).map(|i| dep.metrics(i).dp.reads_forwarded).sum();
    assert_eq!(forwarded, 0, "no read should have been redirected");
}

#[test]
fn sro_read_during_write_redirects_to_tail_and_sees_committed_value() {
    let mut dep = sro_dep(3);
    dep.settle();
    let t = dep.now();
    dep.inject(t, 0, 0, udp(5, 200));
    // While the write is still in flight (control-plane punt takes ~45 µs,
    // chain propagation more), read the same key at the head. The pending
    // bit is set once the chain write passes switch 0.
    dep.run_for(SimDuration::micros(80));
    let t2 = dep.now();
    dep.inject(t2, 0, 0, tcp(5));
    dep.run_for(SimDuration::millis(20));

    let log = dep.recording(1).borrow();
    assert_eq!(log.len(), 1);
    match &log[0].1.body {
        // Either the read waited out the pending bit at the tail (sees
        // 200) — never a torn/stale mix.
        PacketBody::Data(d) => assert!(d.flow_seq == 200 || d.flow_seq == 0),
        other => panic!("unexpected {other:?}"),
    }
    let m: u64 = (0..3).map(|i| dep.metrics(i).dp.reads_forwarded).sum();
    let served: u64 = (0..3).map(|i| dep.metrics(i).dp.tail_reads_served).sum();
    assert_eq!(m, served);
}

#[test]
fn ero_never_redirects_reads() {
    let mut dep = DeploymentBuilder::new(3)
        .register(RegisterSpec::ero(0, "t", 64))
        .build(|_| Box::new(RwNf));
    dep.settle();
    let t = dep.now();
    dep.inject(t, 0, 0, udp(5, 200));
    dep.run_for(SimDuration::micros(60));
    let t2 = dep.now();
    dep.inject(t2, 0, 0, tcp(5));
    dep.run_for(SimDuration::millis(20));
    assert_eq!(dep.sum_metric(|m| m.dp.reads_forwarded), 0);
    // ERO allocates no pending bits at all.
    let sw = dep.switch(0);
    assert_eq!(sw.dp().budget().used_by_prefix("swish.t.pending"), 0);
}

/// NF: every UDP packet increments EWO counter 0 at key dst_port.
struct CountNf;
impl NfApp for CountNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst_port), 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

#[test]
fn ewo_counters_converge_across_switches() {
    let mut dep = DeploymentBuilder::new(4)
        .register(RegisterSpec::ewo_counter(0, "cnt", 32))
        .build(|_| Box::new(CountNf));
    dep.settle();
    let t = dep.now();
    // 10 increments spread over all 4 switches.
    for i in 0..10u64 {
        dep.inject(
            t + SimDuration::micros(i * 10),
            (i % 4) as usize,
            0,
            udp(7, 10),
        );
    }
    dep.run_for(SimDuration::millis(10));
    for i in 0..4 {
        assert_eq!(dep.peek(i, 0, 7), 10, "switch {i} did not converge");
    }
    // Output packets were NOT held (EWO writes are asynchronous).
    assert_eq!(dep.recording(0).borrow().len(), 10);
    assert_eq!(dep.sum_metric(|m| m.cp.jobs_started), 0);
}

#[test]
fn ewo_converges_through_periodic_sync_alone_under_loss() {
    let cfg = SwishConfig {
        eager_updates: false,
        ..SwishConfig::default()
    }; // periodic sync only
    let mut dep = DeploymentBuilder::new(3)
        .link(LinkParams::lossy(0.3))
        .swish_config(cfg)
        .register(RegisterSpec::ewo_counter(0, "cnt", 8))
        .build(|_| Box::new(CountNf));
    dep.settle();
    let t = dep.now();
    for i in 0..6u64 {
        dep.inject(t + SimDuration::micros(i), (i % 3) as usize, 0, udp(1, 10));
    }
    // Plenty of sync rounds to beat 30% loss.
    dep.run_for(SimDuration::millis(200));
    for i in 0..3 {
        assert_eq!(
            dep.peek(i, 0, 1),
            6,
            "switch {i} did not converge via periodic sync"
        );
    }
    assert!(dep.sim.stats().dropped(DropReason::Loss).packets > 0);
    assert!(dep.sim.stats().delivered(TrafficClass::EwoSync).packets > 0);
}

#[test]
fn sro_failover_writes_block_then_resume() {
    let mut dep = sro_dep(3);
    dep.settle();
    // Kill the tail (switch 2).
    let t_fail = dep.now() + SimDuration::millis(1);
    dep.schedule_fail(t_fail, 2);
    // A write issued right after the failure cannot complete until the
    // controller reconfigures the chain.
    dep.inject(t_fail + SimDuration::micros(100), 0, 0, udp(4, 44));
    dep.run_for(SimDuration::millis(200));
    // The write eventually completed on the shortened chain.
    assert_eq!(dep.peek(0, 0, 4), 44);
    assert_eq!(dep.peek(1, 0, 4), 44);
    assert_eq!(dep.recording(0).borrow().len(), 1);
    // The writer had to retry across the reconfiguration.
    assert!(
        dep.metrics(0).cp.retries > 0,
        "expected retries during failover"
    );
    let events = dep.controller_events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == ConfigEventKind::Failed(NodeId(2))),
        "controller never declared the failure: {events:?}"
    );
}

#[test]
fn recovered_switch_catches_up_via_snapshot_and_rejoins() {
    let mut dep = sro_dep(3);
    dep.settle();
    let t0 = dep.now();
    // Populate some state.
    for k in 0..10u16 {
        dep.inject(
            t0 + SimDuration::micros(u64::from(k) * 50),
            0,
            0,
            udp(k, 100 + k),
        );
    }
    dep.run_for(SimDuration::millis(30));
    // Fail switch 2, let the controller notice, then recover it.
    let t_fail = dep.now();
    dep.schedule_fail(t_fail, 2);
    dep.run_for(SimDuration::millis(60));
    let t_rec = dep.now();
    dep.schedule_recover(t_rec, 2);
    dep.run_for(SimDuration::millis(200));

    // Switch 2 was wiped on failure but caught up via the snapshot.
    for k in 0..10u16 {
        assert_eq!(
            dep.peek(2, 0, u32::from(k)),
            u64::from(100 + k),
            "key {k} not recovered"
        );
    }
    let events = dep.controller_events();
    assert!(events
        .iter()
        .any(|e| e.kind == ConfigEventKind::LearnerAdded(NodeId(2))));
    assert!(events
        .iter()
        .any(|e| e.kind == ConfigEventKind::Promoted(NodeId(2))));
    assert!(dep.metrics(2).dp.snapshot_applied >= 10);
    // And it serves reads again as tail: write once more, read at 2.
    let t = dep.now();
    dep.inject(t, 2, 0, udp(50, 7));
    dep.run_for(SimDuration::millis(20));
    assert_eq!(dep.peek(2, 0, 50), 7);
}

#[test]
fn ewo_failover_needs_no_protocol() {
    let mut dep = DeploymentBuilder::new(3)
        .register(RegisterSpec::ewo_counter(0, "cnt", 8))
        .build(|_| Box::new(CountNf));
    dep.settle();
    let t = dep.now();
    for i in 0..6u64 {
        dep.inject(
            t + SimDuration::micros(i * 5),
            (i % 3) as usize,
            0,
            udp(1, 10),
        );
    }
    dep.run_for(SimDuration::millis(10));
    assert_eq!(dep.peek(0, 0, 1), 6);
    // Kill switch 2: survivors keep the full count (its slot was already
    // replicated to them).
    let t_fail = dep.now();
    dep.schedule_fail(t_fail, 2);
    dep.run_for(SimDuration::millis(50));
    assert_eq!(dep.peek(0, 0, 1), 6);
    assert_eq!(dep.peek(1, 0, 1), 6);
    // Recover switch 2: periodic sync restores everything, including its
    // own pre-failure contributions.
    let t_rec = dep.now();
    dep.schedule_recover(t_rec, 2);
    dep.run_for(SimDuration::millis(100));
    assert_eq!(
        dep.peek(2, 0, 1),
        6,
        "recovered switch should re-learn all slots via sync"
    );
}

#[test]
fn deterministic_deployments() {
    fn run() -> (u64, u64) {
        let mut dep = DeploymentBuilder::new(3)
            .seed(99)
            .link(LinkParams::lossy(0.1))
            .register(RegisterSpec::ewo_counter(0, "cnt", 8))
            .build(|_| Box::new(CountNf));
        dep.settle();
        let t = dep.now();
        for i in 0..20u64 {
            dep.inject(
                t + SimDuration::micros(i * 3),
                (i % 3) as usize,
                0,
                udp(1, 10),
            );
        }
        dep.run_for(SimDuration::millis(50));
        (dep.peek(0, 0, 1), dep.sim.stats().delivered_total().bytes)
    }
    assert_eq!(run(), run());
}

//! EWO-protocol edge cases at the unit level: merges, periodic sync
//! batching, and eager-mirror behaviour of the data-plane program driven
//! directly with crafted messages.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use std::net::Ipv4Addr;
use std::rc::Rc;
use swishmem::api::{ForwardAll, NfApp, NfDecision, SharedState};
use swishmem::layer::program::SwishProgram;
use swishmem::layer::{write_chain_for_tests, ChainView, Handles, SYNC_PKTGEN_TOKEN};
use swishmem::{ClockMode, RegisterSpec, SwishConfig, SwitchClock};
use swishmem_pisa::{DataPlane, DataPlaneProgram, DpView, Effect, Effects};
use swishmem_simnet::SimTime;
use swishmem_wire::swish::{SyncEntry, SyncUpdate, TraceId};
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, PacketBody, SwishMsg};

/// Adds 1 to counter register 0 at key = dst_port.
struct IncNf;
impl NfApp for IncNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst_port), 1);
        NfDecision::Forward {
            dst: NodeId(1000),
            pkt: *pkt,
        }
    }
}

struct Rig {
    dp: DataPlane,
    prog: SwishProgram,
}

fn rig(me: u16, cfg: SwishConfig, counter_nf: bool) -> Rig {
    let mut dp = DataPlane::standard();
    let handles = Rc::new(
        Handles::build(&mut dp, &[RegisterSpec::ewo_counter(0, "c", 64)], &cfg, 4).unwrap(),
    );
    write_chain_for_tests(
        &mut dp,
        &handles,
        &ChainView {
            epoch: 1,
            chain: (0..4).map(NodeId).collect(),
            learners: vec![],
        },
    );
    let clock = SwitchClock::new(NodeId(me), ClockMode::Synced { max_skew_ns: 0 }, 0);
    let app: Box<dyn NfApp> = if counter_nf {
        Box::new(IncNf)
    } else {
        Box::new(ForwardAll { dst: NodeId(1000) })
    };
    let prog = SwishProgram::new(NodeId(me), cfg, handles, app, clock);
    Rig { dp, prog }
}

fn deliver(r: &mut Rig, pkt: Packet, at_ns: u64) -> Vec<Effect> {
    let mut eff = Effects::new();
    {
        let mut view = DpView::new(&mut r.dp, SimTime(at_ns));
        r.prog.on_packet(pkt, &mut view, &mut eff);
    }
    eff.drain().collect()
}

fn pktgen(r: &mut Rig, at_ns: u64) -> Vec<Effect> {
    let mut eff = Effects::new();
    {
        let mut view = DpView::new(&mut r.dp, SimTime(at_ns));
        r.prog.on_pktgen(SYNC_PKTGEN_TOKEN, &mut view, &mut eff);
    }
    eff.drain().collect()
}

fn data(port: u16) -> Packet {
    Packet::data(
        NodeId(9),
        NodeId(0),
        DataPacket::udp(
            FlowKey::udp(
                Ipv4Addr::new(1, 1, 1, 1),
                1,
                Ipv4Addr::new(2, 2, 2, 2),
                port,
            ),
            0,
            16,
        ),
    )
}

fn sync(origin: u16, entries: Vec<SyncEntry>) -> Packet {
    Packet::swish(
        NodeId(origin),
        NodeId(0),
        SwishMsg::Sync(SyncUpdate {
            reg: 0,
            origin: NodeId(origin),
            trace: TraceId::NONE,
            entries: entries.into(),
        }),
    )
}

fn peek(r: &Rig, key: u32) -> u64 {
    r.prog.peek(&r.dp, 0, key, SimTime(0))
}

#[test]
fn merge_is_idempotent_at_the_register_level() {
    let mut r = rig(0, SwishConfig::default(), false);
    let e = SyncEntry {
        key: 3,
        slot: 2,
        version: 5,
        value: 50,
    };
    deliver(&mut r, sync(2, vec![e]), 100);
    assert_eq!(peek(&r, 3), 50);
    assert_eq!(r.prog.metrics().merge_applied, 1);
    // Replaying the identical update changes nothing.
    deliver(&mut r, sync(2, vec![e]), 200);
    assert_eq!(peek(&r, 3), 50);
    assert_eq!(r.prog.metrics().merge_applied, 1);
    assert_eq!(r.prog.metrics().merge_entries, 2);
}

#[test]
fn stale_slot_updates_never_regress_the_counter() {
    let mut r = rig(0, SwishConfig::default(), false);
    deliver(
        &mut r,
        sync(
            2,
            vec![SyncEntry {
                key: 3,
                slot: 2,
                version: 9,
                value: 90,
            }],
        ),
        100,
    );
    // An old view of the same slot must not shrink it.
    deliver(
        &mut r,
        sync(
            1,
            vec![SyncEntry {
                key: 3,
                slot: 2,
                version: 4,
                value: 40,
            }],
        ),
        200,
    );
    assert_eq!(peek(&r, 3), 90);
}

#[test]
fn relayed_sync_carries_third_party_slots() {
    // Periodic sync relays ALL slots a switch knows, not just its own:
    // switch 0 learns slot 2's value from switch 1's relay.
    let mut r = rig(0, SwishConfig::default(), false);
    deliver(
        &mut r,
        sync(
            1,
            vec![SyncEntry {
                key: 7,
                slot: 2,
                version: 3,
                value: 30,
            }],
        ),
        100,
    );
    assert_eq!(peek(&r, 7), 30);
}

#[test]
fn eager_mirror_batches_until_threshold() {
    let mut cfg = SwishConfig::default();
    cfg.batch_size = 3;
    let mut r = rig(0, cfg, true);
    // Two writes: below the batch threshold, nothing mirrored yet.
    assert!(!deliver(&mut r, data(1), 100)
        .iter()
        .any(|e| matches!(e, Effect::Multicast { .. })));
    assert!(!deliver(&mut r, data(2), 200)
        .iter()
        .any(|e| matches!(e, Effect::Multicast { .. })));
    // Third write flushes one batched Sync with 3 entries.
    let fx = deliver(&mut r, data(3), 300);
    let entries = fx
        .iter()
        .find_map(|e| match e {
            Effect::Multicast {
                body: PacketBody::Swish(SwishMsg::Sync(u)),
                ..
            } => Some(u.entries.len()),
            _ => None,
        })
        .expect("batch flush expected");
    assert_eq!(entries, 3);
}

#[test]
fn pktgen_flushes_lingering_batch() {
    let mut cfg = SwishConfig::default();
    cfg.batch_size = 100; // never reached by traffic
    let mut r = rig(0, cfg, true);
    deliver(&mut r, data(1), 100);
    // The pending entry must not linger past the next sync tick.
    let fx = pktgen(&mut r, 1_000_000);
    let mirrored = fx.iter().any(|e| {
        matches!(
            e,
            Effect::Multicast {
                body: PacketBody::Swish(SwishMsg::Sync(_)),
                ..
            }
        )
    });
    assert!(mirrored, "pktgen must flush the batch buffer");
}

#[test]
fn periodic_sync_walks_only_nonzero_state() {
    let mut r = rig(0, SwishConfig::default(), true);
    // Nothing written yet: the sync tick emits no packets.
    assert!(pktgen(&mut r, 1_000).is_empty());
    // After one write, the tick ships exactly the live entries.
    deliver(&mut r, data(5), 2_000);
    let fx = pktgen(&mut r, 10_000);
    let entries: usize = fx
        .iter()
        .filter_map(|e| match e {
            Effect::AnycastRandom {
                body: PacketBody::Swish(SwishMsg::Sync(u)),
                ..
            } => Some(u.entries.len()),
            _ => None,
        })
        .sum();
    assert_eq!(entries, 1, "exactly the one live (key, slot) pair");
}

#[test]
fn ewo_writes_never_touch_the_control_plane() {
    let mut r = rig(0, SwishConfig::default(), true);
    let fx = deliver(&mut r, data(1), 100);
    assert!(!fx.iter().any(|e| matches!(e, Effect::Punt { .. })));
    // Output packet released immediately.
    assert!(fx
        .iter()
        .any(|e| matches!(e, Effect::Forward { dst, body: PacketBody::Data(_) } if dst.0 == 1000)));
}

#[test]
fn reset_clears_cursor_batch_and_metrics() {
    let mut cfg = SwishConfig::default();
    cfg.batch_size = 100;
    let mut r = rig(0, cfg, true);
    deliver(&mut r, data(1), 100);
    assert_eq!(r.prog.metrics().ewo_writes, 1);
    // A fail-stop failure wipes data plane AND program state together
    // (pisa's Switch::on_fail does both); mirror that here.
    r.dp.clear_all();
    r.prog.reset();
    assert_eq!(r.prog.metrics().ewo_writes, 0);
    // No stale batch or register state resurfaces after the reset.
    assert!(pktgen(&mut r, 1_000_000).is_empty());
}

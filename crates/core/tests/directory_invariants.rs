//! Property tests for the directory service's structural invariants:
//! any sequence of partition / migrate / replicate / set-owners /
//! rebalance operations preserves full key-space coverage with no
//! overlapping ranges and a non-empty owner set per range — the same
//! invariants the online reconfiguration oracle enforces against the
//! controller's live table.

use proptest::prelude::*;
use swishmem::DirectoryService;
use swishmem_wire::swish::{Key, RegId};
use swishmem_wire::NodeId;

const REG: RegId = 0;

/// One directory operation. Keys and nodes are drawn from ranges wider
/// than the valid space so out-of-range no-ops are exercised too.
#[derive(Debug, Clone)]
enum Op {
    Migrate { key: Key, to: u16 },
    Replicate { key: Key, node: u16 },
    SetOwners { key: Key, owners: Vec<u16> },
    Access { key: Key, from: u16, n: u64 },
    Lookup { key: Key, from: u16 },
    Rebalance,
    Repartition { keys: Key, owners: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..80, 0u16..6).prop_map(|(key, to)| Op::Migrate { key, to }),
        (0u32..80, 0u16..6).prop_map(|(key, node)| Op::Replicate { key, node }),
        (0u32..80, prop::collection::vec(0u16..6, 0..4))
            .prop_map(|(key, owners)| Op::SetOwners { key, owners }),
        (0u32..80, 0u16..6, 1u64..50).prop_map(|(key, from, n)| Op::Access { key, from, n }),
        (0u32..80, 0u16..6).prop_map(|(key, from)| Op::Lookup { key, from }),
        Just(Op::Rebalance),
        (1u32..96, 1u16..5).prop_map(|(keys, owners)| Op::Repartition { keys, owners }),
    ]
}

/// Full coverage of `[0, keys)`, no overlap, no gap, non-empty owners.
fn check_invariants(d: &DirectoryService, keys: Key) {
    let ranges = d.ranges(REG);
    prop_assert!(!ranges.is_empty(), "table must not vanish");
    let mut expect: Key = 0;
    for r in ranges {
        prop_assert_eq!(
            r.start,
            expect,
            "range must start where the previous ended (gap/overlap)"
        );
        prop_assert!(r.start < r.end, "range must be non-empty");
        prop_assert!(!r.owners.is_empty(), "range must keep at least one owner");
        expect = r.end;
    }
    prop_assert_eq!(expect, keys, "table must cover the whole key space");
}

proptest! {
    /// Any operation sequence preserves coverage/no-overlap after every
    /// single step, not just at the end.
    #[test]
    fn directory_ops_preserve_coverage(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut d = DirectoryService::new();
        let mut keys: Key = 64;
        d.partition_even(REG, keys, &[NodeId(0), NodeId(1), NodeId(2)]);
        check_invariants(&d, keys);
        for op in ops {
            match op {
                Op::Migrate { key, to } => {
                    d.migrate(REG, key, NodeId(to));
                }
                Op::Replicate { key, node } => {
                    d.replicate(REG, key, NodeId(node));
                }
                Op::SetOwners { key, owners } => {
                    let owners: Vec<NodeId> = owners.into_iter().map(NodeId).collect();
                    d.set_owners(REG, key, &owners);
                }
                Op::Access { key, from, n } => {
                    d.record_access(REG, key, NodeId(from), n);
                }
                Op::Lookup { key, from } => {
                    d.lookup(REG, key, NodeId(from));
                }
                Op::Rebalance => {
                    d.rebalance(REG);
                }
                Op::Repartition { keys: k, owners } => {
                    let set: Vec<NodeId> = (0..owners).map(NodeId).collect();
                    d.partition_even(REG, k, &set);
                    keys = k;
                }
            }
            check_invariants(&d, keys);
        }
    }

    /// Rebalance moves every range onto its hottest requester and is
    /// idempotent: a second pass with no new accesses is a no-op.
    #[test]
    fn rebalance_is_idempotent(
        accesses in prop::collection::vec((0u32..64, 0u16..3, 1u64..20), 0..30),
    ) {
        let mut d = DirectoryService::new();
        d.partition_even(REG, 64, &[NodeId(0), NodeId(1), NodeId(2)]);
        for (key, from, n) in accesses {
            d.record_access(REG, key, NodeId(from), n);
        }
        let moves = d.rebalance(REG);
        for (range, to) in &moves {
            prop_assert!(d.is_owner(REG, range.start, *to));
        }
        prop_assert!(d.rebalance(REG).is_empty(), "second rebalance must be a no-op");
        check_invariants(&d, 64);
    }
}

//! Chain-protocol edge cases, pinned at the unit level: the SwiShmem
//! data-plane program is driven directly with crafted protocol messages
//! and its effects inspected — no simulator in the loop.

use std::rc::Rc;
use swishmem::api::ForwardAll;
use swishmem::layer::program::SwishProgram;
use swishmem::layer::{write_chain_for_tests, ChainView, Handles};
use swishmem::{ClockMode, RegisterSpec, SwishConfig, SwitchClock};
use swishmem_pisa::{DataPlane, DataPlaneProgram, DpView, Effect, Effects};
use swishmem_simnet::SimTime;
use swishmem_wire::swish::{PendingClear, TraceId, WriteOp, WriteRequest};
use swishmem_wire::{NodeId, Packet, PacketBody, SwishMsg};

struct Rig {
    dp: DataPlane,
    prog: SwishProgram,
}

fn rig(me: u16, chain: &[u16], learners: &[u16]) -> Rig {
    let cfg = SwishConfig::default();
    let mut dp = DataPlane::standard();
    let handles =
        Rc::new(Handles::build(&mut dp, &[RegisterSpec::sro(0, "t", 64)], &cfg, 4).unwrap());
    let view = ChainView {
        epoch: 1,
        chain: chain.iter().map(|&n| NodeId(n)).collect(),
        learners: learners.iter().map(|&n| NodeId(n)).collect(),
    };
    write_chain_for_tests(&mut dp, &handles, &view);
    let clock = SwitchClock::new(NodeId(me), ClockMode::Synced { max_skew_ns: 0 }, 0);
    let prog = SwishProgram::new(
        NodeId(me),
        cfg,
        handles,
        Box::new(ForwardAll { dst: NodeId(1000) }),
        clock,
    );
    Rig { dp, prog }
}

fn write_req(writer: u16, key: u32, seq: u64, value: u64) -> Packet {
    Packet::swish(
        NodeId(writer),
        NodeId(0),
        SwishMsg::Write(WriteRequest {
            write_id: 1,
            writer: NodeId(writer),
            epoch: 1,
            reg: 0,
            key,
            seq,
            op: WriteOp::Set(value),
            trace: TraceId::NONE,
        }),
    )
}

fn deliver(r: &mut Rig, pkt: Packet) -> Vec<Effect> {
    let mut eff = Effects::new();
    {
        let mut view = DpView::new(&mut r.dp, SimTime(1_000));
        r.prog.on_packet(pkt, &mut view, &mut eff);
    }
    eff.drain().collect()
}

fn peek(r: &Rig, key: u32) -> u64 {
    r.prog.peek(&r.dp, 0, key, SimTime(1_000))
}

#[test]
fn head_sequences_and_forwards() {
    let mut r = rig(0, &[0, 1, 2], &[]);
    let fx = deliver(&mut r, write_req(0, 5, 0, 42));
    assert_eq!(peek(&r, 5), 42);
    // Forwarded to the successor with the assigned sequence number.
    let fwd: Vec<_> = fx
        .iter()
        .filter_map(|e| match e {
            Effect::Forward {
                dst,
                body: PacketBody::Swish(SwishMsg::Write(w)),
            } => Some((*dst, w.seq)),
            _ => None,
        })
        .collect();
    assert_eq!(fwd, vec![(NodeId(1), 1)]);
    assert_eq!(r.prog.metrics().chain_applies, 1);
}

#[test]
fn non_head_drops_unsequenced_requests() {
    // A seq=0 request reaching a mid-chain switch (stale writer routing)
    // must be dropped, not sequenced.
    let mut r = rig(1, &[0, 1, 2], &[]);
    let fx = deliver(&mut r, write_req(3, 5, 0, 42));
    assert!(fx.is_empty());
    assert_eq!(peek(&r, 5), 0);
    assert_eq!(r.prog.metrics().chain_stale, 1);
}

#[test]
fn non_member_ignores_chain_writes() {
    let mut r = rig(3, &[0, 1, 2], &[]); // switch 3 not in the chain
    let fx = deliver(&mut r, write_req(0, 5, 7, 42));
    assert!(fx.is_empty());
    assert_eq!(peek(&r, 5), 0);
}

#[test]
fn monotonic_apply_rejects_stale_and_accepts_ahead() {
    let mut r = rig(1, &[0, 1, 2], &[]);
    deliver(&mut r, write_req(0, 5, 3, 30));
    assert_eq!(peek(&r, 5), 30);
    // A duplicate / older sequence number is dropped.
    let fx = deliver(&mut r, write_req(0, 5, 2, 20));
    assert!(fx.is_empty());
    assert_eq!(peek(&r, 5), 30);
    assert_eq!(r.prog.metrics().chain_stale, 1);
    // A gap (seq 7 after 3) applies: the skipped writes were never acked
    // and their writers retry through the head with fresh numbers.
    deliver(&mut r, write_req(0, 5, 7, 70));
    assert_eq!(peek(&r, 5), 70);
}

#[test]
fn tail_acks_clears_and_feeds_learners() {
    let mut r = rig(2, &[0, 1, 2], &[3]);
    let fx = deliver(&mut r, write_req(0, 5, 4, 40));
    assert_eq!(peek(&r, 5), 40);
    let mut acked = None;
    let mut cleared = false;
    let mut to_learner = None;
    for e in &fx {
        match e {
            Effect::Forward {
                dst,
                body: PacketBody::Swish(SwishMsg::Ack(a)),
            } => {
                acked = Some((*dst, a.seq));
            }
            Effect::Multicast {
                body: PacketBody::Swish(SwishMsg::Clear(c)),
                ..
            } => {
                cleared = c.seq == 4;
            }
            Effect::Forward {
                dst,
                body: PacketBody::Swish(SwishMsg::Write(w)),
            } => {
                to_learner = Some((*dst, w.seq));
            }
            _ => {}
        }
    }
    assert_eq!(acked, Some((NodeId(0), 4)), "tail must ack the writer");
    assert!(cleared, "tail must multicast the pending clear");
    assert_eq!(
        to_learner,
        Some((NodeId(3), 4)),
        "tail must keep the learner fed"
    );
}

#[test]
fn learner_applies_but_produces_no_protocol_output() {
    let mut r = rig(3, &[0, 1, 2], &[3]);
    let fx = deliver(&mut r, write_req(0, 5, 4, 40));
    assert_eq!(
        peek(&r, 5),
        40,
        "learner must apply new writes during catch-up"
    );
    assert!(fx.is_empty(), "the last learner forwards to no one");
}

#[test]
fn clear_only_clears_up_to_seq() {
    let mut r = rig(1, &[0, 1, 2], &[]);
    // Two writes in flight: seq 4 then 5 (pending tracks the latest).
    deliver(&mut r, write_req(0, 5, 4, 40));
    deliver(&mut r, write_req(0, 5, 5, 50));
    // Clear for the OLDER write must not clear the pending bit.
    let clear_old = Packet::swish(
        NodeId(2),
        NodeId(1),
        SwishMsg::Clear(PendingClear {
            epoch: 1,
            reg: 0,
            key: 5,
            seq: 4,
        }),
    );
    deliver(&mut r, clear_old);
    assert_eq!(r.prog.metrics().clears_applied, 0);
    // Clear for the newest write clears it.
    let clear_new = Packet::swish(
        NodeId(2),
        NodeId(1),
        SwishMsg::Clear(PendingClear {
            epoch: 1,
            reg: 0,
            key: 5,
            seq: 5,
        }),
    );
    deliver(&mut r, clear_new);
    assert_eq!(r.prog.metrics().clears_applied, 1);
}

#[test]
fn head_rewrites_add_into_set_before_forwarding() {
    let mut r = rig(0, &[0, 1], &[]);
    deliver(&mut r, write_req(0, 5, 0, 10));
    // An Add arriving at the head is converted so replicas apply equal
    // values regardless of their local state.
    let add = Packet::swish(
        NodeId(0),
        NodeId(0),
        SwishMsg::Write(WriteRequest {
            write_id: 2,
            writer: NodeId(0),
            epoch: 1,
            reg: 0,
            key: 5,
            seq: 0,
            op: WriteOp::Add(7),
            trace: TraceId::NONE,
        }),
    );
    let fx = deliver(&mut r, add);
    assert_eq!(peek(&r, 5), 17);
    let forwarded_op = fx.iter().find_map(|e| match e {
        Effect::Forward {
            body: PacketBody::Swish(SwishMsg::Write(w)),
            ..
        } => Some(w.op),
        _ => None,
    });
    assert_eq!(forwarded_op, Some(WriteOp::Set(17)));
}

#[test]
fn single_switch_chain_acks_immediately_without_pending() {
    let mut r = rig(0, &[0], &[]);
    let fx = deliver(&mut r, write_req(0, 5, 0, 42));
    assert_eq!(peek(&r, 5), 42);
    let acked = fx.iter().any(|e| {
        matches!(
            e,
            Effect::Forward {
                body: PacketBody::Swish(SwishMsg::Ack(_)),
                ..
            }
        )
    });
    assert!(acked, "head==tail must ack directly");
}

//! Observability integration tests: causal span tracing across the full
//! SRO write path, tracing passivity at deployment level, metrics
//! aggregation, and time-series sampling.

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::telemetry::TimeSeriesSampler;
use swishmem::RegisterSpec;
use swishmem_simnet::SpanPhase;
use swishmem_wire::l4::TcpFlags;

/// NF: UDP writes payload_len into SRO reg 0 at key = dst_port; TCP reads
/// the key and forwards the value to host 1.
struct RwNf;

impl NfApp for RwNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        let key = u32::from(pkt.flow.dst_port);
        if pkt.flow.proto == 17 {
            st.write(0, key, u64::from(pkt.payload_len));
            NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: *pkt,
            }
        } else {
            let v = st.read(0, key);
            let mut out = *pkt;
            out.flow_seq = v as u32;
            NfDecision::Forward {
                dst: NodeId(HOST_BASE + 1),
                pkt: out,
            }
        }
    }
}

fn udp(port: u16, len: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        len,
    )
}

fn tcp(port: u16) -> DataPacket {
    DataPacket::tcp(
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        TcpFlags::data(),
        0,
        10,
    )
}

fn sro_dep(seed: u64) -> Deployment {
    DeploymentBuilder::new(3)
        .seed(seed)
        .register(RegisterSpec::sro(0, "t", 64))
        .build(|_| Box::new(RwNf))
}

/// Drive a small SRO workload: 4 writes from two ingress switches, one
/// read. Returns the deployment after quiescing.
fn run_workload(dep: &mut Deployment) {
    dep.settle();
    let t = dep.now();
    for (i, port) in [(0usize, 7u16), (1, 8), (0, 9), (1, 7)]
        .into_iter()
        .enumerate()
    {
        dep.inject(
            t + SimDuration::millis(i as u64),
            port.0,
            0,
            udp(port.1, 100 + i as u16),
        );
    }
    dep.inject(t + SimDuration::millis(10), 2, 0, tcp(7));
    dep.run_for(SimDuration::millis(40));
}

/// Satellite: `Deployment::metrics` returns per-switch snapshots and
/// `sum_metric` equals the manual per-switch sum for every counter the
/// experiments report.
#[test]
fn metrics_aggregation_matches_per_switch_sums() {
    let mut dep = sro_dep(11);
    run_workload(&mut dep);

    let manual: u64 = (0..3).map(|i| dep.metrics(i).dp.chain_applies).sum();
    assert_eq!(dep.sum_metric(|m| m.dp.chain_applies), manual);
    assert!(manual >= 4 * 3, "4 writes x 3-switch chain");

    let manual_jobs: u64 = (0..3).map(|i| dep.metrics(i).cp.jobs_completed).sum();
    assert_eq!(dep.sum_metric(|m| m.cp.jobs_completed), manual_jobs);
    assert_eq!(manual_jobs, 4, "every write job completed");

    // Per-switch attribution is preserved: only the two ingress switches
    // punted jobs, and their sum is the total.
    let per: Vec<u64> = (0..3).map(|i| dep.metrics(i).dp.sro_jobs_punted).collect();
    assert_eq!(
        per.iter().sum::<u64>(),
        dep.sum_metric(|m| m.dp.sro_jobs_punted)
    );
    assert_eq!(per[2], 0, "switch 2 never ingressed a write");
    assert_eq!(per[0] + per[1], 4);
}

/// Tentpole invariant at deployment level: attaching a span collector
/// changes no protocol outcome — same state, same counters, same
/// delivered packet count as an untraced run of the same seed.
#[test]
fn tracing_attach_is_invisible_to_protocol_outcomes() {
    let mut plain = sro_dep(42);
    run_workload(&mut plain);

    let mut traced = sro_dep(42);
    let spans = traced.attach_tracing(100_000);
    run_workload(&mut traced);

    assert!(!spans.borrow().events().is_empty(), "spans were recorded");
    for i in 0..3 {
        for key in [7u32, 8, 9] {
            assert_eq!(plain.peek(i, 0, key), traced.peek(i, 0, key));
        }
        let (a, b) = (plain.metrics(i), traced.metrics(i));
        assert_eq!(a.dp.chain_applies, b.dp.chain_applies);
        assert_eq!(a.dp.reads_forwarded, b.dp.reads_forwarded);
        assert_eq!(a.cp.jobs_completed, b.cp.jobs_completed);
        assert_eq!(a.cp.retries, b.cp.retries);
        assert_eq!(
            a.cp.write_latency.summary(),
            b.cp.write_latency.summary(),
            "latency samples must be bit-identical"
        );
    }
    assert_eq!(
        plain.sim.stats().delivered_total().packets,
        traced.sim.stats().delivered_total().packets
    );
}

/// The telescoping-marker contract: for a completed SRO write, the sum of
/// consecutive-marker gaps equals the end-to-end ingress→release latency,
/// which equals the `write_latency` histogram sample exactly.
#[test]
fn sro_span_phases_sum_to_write_latency() {
    let mut dep = sro_dep(7);
    let spans = dep.attach_tracing(100_000);
    dep.settle();
    let t = dep.now();
    dep.inject(t, 1, 0, udp(5, 123)); // one write via switch 1
    dep.run_for(SimDuration::millis(30));

    let c = spans.borrow();
    // Find the (single) trace that reached Release.
    let released: Vec<_> = c
        .events()
        .iter()
        .filter(|e| e.phase == SpanPhase::Release)
        .collect();
    assert_eq!(released.len(), 1, "exactly one write released");
    let trace = released[0].trace;
    let tl = c.by_trace(trace);

    // The full SRO phase sequence is present.
    let phases: Vec<SpanPhase> = tl.iter().map(|e| e.phase).collect();
    for want in [
        SpanPhase::Ingress,
        SpanPhase::Punt,
        SpanPhase::CpDequeue,
        SpanPhase::JobStart,
        SpanPhase::ChainHop(0),
        SpanPhase::ChainHop(1),
        SpanPhase::ChainHop(2),
        SpanPhase::Ack,
        SpanPhase::Release,
    ] {
        assert!(
            phases.contains(&want),
            "missing phase {want:?} in {phases:?}"
        );
    }
    assert_eq!(tl[0].phase, SpanPhase::Ingress);
    assert_eq!(tl.last().unwrap().phase, SpanPhase::Release);

    // Telescoping: per-phase gaps sum to end-to-end latency...
    let gap_sum: u64 = tl
        .windows(2)
        .map(|w| (w[1].time - w[0].time).as_nanos())
        .sum();
    let end_to_end = (tl.last().unwrap().time - tl[0].time).as_nanos();
    assert_eq!(gap_sum, end_to_end);

    // ...and end-to-end equals the recorded write_latency sample.
    let m = dep.metrics(1);
    assert_eq!(m.cp.write_latency.count(), 1);
    assert_eq!(m.cp.write_latency.max_ns(), end_to_end);
}

/// A read arriving while the write is pending carries its trace through
/// redirect_to_tail at the ingress and tail_serve at the tail.
#[test]
fn redirected_read_trace_spans_both_switches() {
    let mut dep = sro_dep(3);
    let spans = dep.attach_tracing(100_000);
    dep.settle();
    let t = dep.now();
    dep.inject(t, 0, 0, udp(5, 200));
    dep.run_for(SimDuration::micros(80)); // write still in flight
    let t2 = dep.now();
    dep.inject(t2, 0, 0, tcp(5));
    dep.run_for(SimDuration::millis(20));

    if dep.sum_metric(|m| m.dp.reads_forwarded) == 0 {
        return; // timing did not produce a redirect; nothing to check
    }
    let c = spans.borrow();
    let redirect = c
        .events()
        .iter()
        .find(|e| e.phase == SpanPhase::RedirectToTail)
        .expect("redirect span recorded");
    let tl = c.by_trace(redirect.trace);
    let serve = tl
        .iter()
        .find(|e| e.phase == SpanPhase::TailServe)
        .expect("tail_serve span on the same trace");
    assert_ne!(redirect.node, serve.node, "served on a different switch");
    assert!(serve.time > redirect.time);
}

/// Time-series sampling: window deltas accumulate to the cumulative
/// counters, gauges drain back to zero, and sampling is itself passive.
#[test]
fn sampler_deltas_accumulate_to_cumulative_totals() {
    let mut plain = sro_dep(99);
    run_workload(&mut plain);

    let mut sampled = sro_dep(99);
    sampled.settle();
    let t = sampled.now();
    for (i, port) in [(0usize, 7u16), (1, 8), (0, 9), (1, 7)]
        .into_iter()
        .enumerate()
    {
        sampled.inject(
            t + SimDuration::millis(i as u64),
            port.0,
            0,
            udp(port.1, 100 + i as u16),
        );
    }
    sampled.inject(t + SimDuration::millis(10), 2, 0, tcp(7));
    let mut sampler = TimeSeriesSampler::new(3, SimDuration::millis(2), 1024);
    let end = sampled.now() + SimDuration::millis(40);
    sampled.run_sampled(end, &mut sampler);

    for i in 0..3 {
        let series = sampler.series(i);
        assert!(!series.is_empty());
        assert_eq!(sampler.evicted(i), 0);
        let m = sampled.metrics(i);
        let sum = |f: fn(&swishmem::MetricsSample) -> u64| -> u64 { series.iter().map(f).sum() };
        assert_eq!(sum(|s| s.nf_writes), m.dp.nf_writes, "switch {i} nf_writes");
        assert_eq!(sum(|s| s.chain_applies), m.dp.chain_applies);
        assert_eq!(sum(|s| s.jobs_punted), m.dp.sro_jobs_punted);
        assert_eq!(sum(|s| s.jobs_completed), m.cp.jobs_completed);
        assert_eq!(sum(|s| s.retries), m.cp.retries);
        // All writes acked by the end: gauges drained.
        let last = series.last().unwrap();
        assert_eq!(last.outstanding_writes, 0);
        assert_eq!(last.buffered_jobs, 0);
        // Sampling never perturbed the run.
        let p = plain.metrics(i);
        assert_eq!(m.dp.chain_applies, p.dp.chain_applies);
        assert_eq!(m.cp.jobs_completed, p.cp.jobs_completed);
    }
}

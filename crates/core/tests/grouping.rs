//! Key-grouping correctness (§7): keys sharing a sequence/pending slot
//! must still keep independent VALUES — grouping only coarsens the
//! protocol metadata.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState, SwishConfig};

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn wpkt(key: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            700,
            Ipv4Addr::new(10, 0, 0, 2),
            key,
        ),
        0,
        val,
    )
}

#[test]
fn grouped_keys_keep_independent_values() {
    let mut cfg = SwishConfig::default();
    cfg.key_group = 8; // 64 keys share 8 seq/pending slots
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(83)
        .swish_config(cfg)
        .register(RegisterSpec::sro(0, "t", 64))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    // Write every key; keys 0, 8, 16, ... share slot 0 and therefore a
    // sequence counter, but their values must not bleed.
    let t0 = dep.now();
    for k in 0..64u16 {
        dep.inject(
            t0 + SimDuration::micros(u64::from(k) * 300),
            (k % 3) as usize,
            0,
            wpkt(k, 100 + k),
        );
    }
    dep.run_for(SimDuration::millis(100));
    for sw in 0..3 {
        for k in 0..64u16 {
            assert_eq!(
                dep.peek(sw, 0, u32::from(k)),
                u64::from(100 + k),
                "switch {sw} key {k} value corrupted by grouping"
            );
        }
    }
}

#[test]
fn sequential_rewrites_within_a_group_all_commit() {
    let mut cfg = SwishConfig::default();
    cfg.key_group = 4;
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(84)
        .swish_config(cfg)
        .register(RegisterSpec::sro(0, "t", 16))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    // Interleave rewrites of two keys in the SAME group (0 and 4 share
    // slot 0 at group=4: slots = 16/4 = 4, slot = key % 4).
    let t0 = dep.now();
    let mut expect = [0u64; 2];
    for round in 0..10u16 {
        for (i, key) in [0u16, 4].iter().enumerate() {
            let val = 200 + round * 2 + i as u16;
            dep.inject(
                t0 + SimDuration::millis(u64::from(round)) + SimDuration::micros(i as u64 * 300),
                0,
                0,
                wpkt(*key, val),
            );
            expect[i] = u64::from(val);
        }
    }
    dep.run_for(SimDuration::millis(100));
    for sw in 0..3 {
        assert_eq!(dep.peek(sw, 0, 0), expect[0], "switch {sw} key 0");
        assert_eq!(dep.peek(sw, 0, 4), expect[1], "switch {sw} key 4");
    }
}

//! NF edge cases: behaviors at the boundaries of each application's
//! state machine, run through full deployments.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::*;
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::PacketBody;

// ---------------------------------------------------------------- NAT

fn nat_cfg() -> NatConfig {
    NatConfig {
        fwd_reg: 0,
        rev_reg: 1,
        keys: 512,
        nat_ip: Ipv4Addr::new(203, 0, 113, 1),
        inside_octet: 10,
        ports_per_switch: 4, // tiny pool: force wrap-around
        port_base: 40_000,
        outside_host: NodeId(HOST_BASE),
        inside_host: NodeId(HOST_BASE + 1),
    }
}

#[test]
fn nat_port_pool_wraps_without_panicking() {
    let stats = NatStatsHandle::default();
    let s2 = stats.clone();
    let mut dep = DeploymentBuilder::new(2)
        .hosts(2)
        .register(RegisterSpec::sro(0, "fwd", 512))
        .register(RegisterSpec::sro(1, "rev", 512))
        .build(move |_| Box::new(Nat::new(nat_cfg(), s2.clone())));
    dep.settle();
    let t = dep.now();
    // 10 distinct flows through a 4-port pool: allocation wraps; old
    // reverse mappings get overwritten (a real small-NAT failure mode) —
    // but forwarding must never wedge.
    for i in 0..10u16 {
        let f = DataPacket::udp(
            FlowKey::udp(
                Ipv4Addr::new(10, 0, 0, 9),
                6000 + i,
                Ipv4Addr::new(8, 8, 8, 8),
                53,
            ),
            0,
            32,
        );
        dep.inject(t + SimDuration::millis(u64::from(i)), 0, 0, f);
    }
    dep.run_for(SimDuration::millis(100));
    assert_eq!(
        dep.recording(0).borrow().len(),
        10,
        "all outbound packets translated"
    );
    assert_eq!(stats.borrow().allocations, 10);
    // Every translated source port stayed within switch 0's range.
    for (_, p) in dep.recording(0).borrow().iter() {
        let PacketBody::Data(d) = &p.body else {
            panic!()
        };
        assert!((40_000..40_004).contains(&d.flow.src_port));
    }
}

#[test]
fn nat_second_packet_of_flow_reuses_mapping() {
    let stats = NatStatsHandle::default();
    let s2 = stats.clone();
    let mut dep = DeploymentBuilder::new(2)
        .hosts(2)
        .register(RegisterSpec::sro(0, "fwd", 512))
        .register(RegisterSpec::sro(1, "rev", 512))
        .build(move |_| Box::new(Nat::new(nat_cfg(), s2.clone())));
    dep.settle();
    let f = DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 9),
            7777,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
        ),
        0,
        32,
    );
    let t = dep.now();
    dep.inject(t, 0, 0, f);
    dep.run_for(SimDuration::millis(30));
    // Second packet of the same flow — even via the OTHER switch.
    let t = dep.now();
    dep.inject(t, 1, 0, f);
    dep.run_for(SimDuration::millis(30));
    assert_eq!(
        stats.borrow().allocations,
        1,
        "one mapping for the whole flow"
    );
    assert_eq!(stats.borrow().outbound_hits, 1);
    let log = dep.recording(0).borrow();
    let ports: Vec<u16> = log
        .iter()
        .map(|(_, p)| match &p.body {
            PacketBody::Data(d) => d.flow.src_port,
            _ => panic!(),
        })
        .collect();
    assert_eq!(ports.len(), 2);
    assert_eq!(ports[0], ports[1], "same external port for both packets");
}

// ----------------------------------------------------------- Firewall

#[test]
fn firewall_rst_moves_connection_to_closing() {
    let cfg = FirewallConfig {
        conn_reg: 0,
        keys: 256,
        inside_octet: 10,
        outside_host: NodeId(HOST_BASE),
        inside_host: NodeId(HOST_BASE + 1),
    };
    let stats = FirewallStatsHandle::default();
    let s2 = stats.clone();
    let c2 = cfg.clone();
    let mut dep = DeploymentBuilder::new(2)
        .hosts(2)
        .register(RegisterSpec::sro(0, "conn", 256))
        .build(move |_| Box::new(Firewall::new(c2.clone(), s2.clone())));
    dep.settle();
    let flow = FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, 1),
        4000,
        Ipv4Addr::new(9, 9, 9, 9),
        443,
    );
    let t = dep.now();
    dep.inject(t, 0, 1, DataPacket::tcp(flow, TcpFlags::syn(), 0, 0));
    dep.run_for(SimDuration::millis(30));
    let mut rst = TcpFlags::default();
    rst.rst = true;
    let t = dep.now();
    dep.inject(t, 0, 1, DataPacket::tcp(flow, rst, 1, 0));
    dep.run_for(SimDuration::millis(30));
    let key = (flow.canonical_hash64() % 256) as u32;
    assert_eq!(
        dep.peek(1, 0, key),
        swishmem_nf::firewall::conn_state::CLOSING
    );
}

// ---------------------------------------------------------------- IPS

#[test]
fn ips_threshold_is_a_hard_boundary() {
    let cfg = IpsConfig {
        sig_reg: 0,
        match_reg: 1,
        keys: 512,
        prevention_threshold: 3,
        admin_port: 9999,
        egress_host: NodeId(HOST_BASE),
    };
    let stats = IpsStatsHandle::default();
    let s2 = stats.clone();
    let c2 = cfg.clone();
    let mut dep = DeploymentBuilder::new(1)
        .hosts(1)
        .register(RegisterSpec::ero(0, "sigs", 512))
        .register(RegisterSpec::ewo_counter(1, "matches", 4))
        .build(move |_| Box::new(Ips::new(c2.clone(), s2.clone())));
    dep.settle();
    let bad = |sport: u16| {
        DataPacket::udp(
            FlowKey::udp(
                Ipv4Addr::new(6, 6, 6, 6),
                sport,
                Ipv4Addr::new(10, 0, 0, 1),
                31337,
            ),
            0,
            666,
        )
    };
    // Install the signature, then send 6 matching packets.
    let t = dep.now();
    dep.inject(t, 0, 0, bad(9999));
    dep.run_for(SimDuration::millis(10));
    let t = dep.now();
    for i in 0..6u64 {
        dep.inject(t + SimDuration::micros(i * 100), 0, 0, bad(2000 + i as u16));
    }
    dep.run_for(SimDuration::millis(10));
    let s = stats.borrow();
    assert_eq!(s.matches, 6);
    // Counter reaches threshold after 3 matches; packets 4..6 dropped.
    assert_eq!(s.prevented, 3);
    assert_eq!(
        dep.recording(0).borrow().len(),
        3,
        "first three matches pass through"
    );
}

// ----------------------------------------------------------------- LB

#[test]
fn lb_non_vip_traffic_passes_through_untouched() {
    let cfg = LbConfig {
        conn_reg: 0,
        keys: 256,
        vip: Ipv4Addr::new(10, 99, 0, 1),
        backends: vec![(Ipv4Addr::new(10, 1, 0, 1), NodeId(HOST_BASE))],
    };
    let stats = LbStatsHandle::default();
    let s2 = stats.clone();
    let c2 = cfg.clone();
    let mut dep = DeploymentBuilder::new(1)
        .hosts(1)
        .register(RegisterSpec::sro(0, "conn", 256))
        .build(move |_| Box::new(LoadBalancer::new(c2.clone(), s2.clone())));
    dep.settle();
    let direct = DataPacket::tcp(
        FlowKey::tcp(
            Ipv4Addr::new(1, 2, 3, 4),
            1000,
            Ipv4Addr::new(5, 6, 7, 8),
            80,
        ),
        TcpFlags::syn(),
        0,
        10,
    );
    let t = dep.now();
    dep.inject(t, 0, 0, direct);
    dep.run_for(SimDuration::millis(10));
    let log = dep.recording(0).borrow();
    assert_eq!(log.len(), 1);
    let PacketBody::Data(d) = &log[0].1.body else {
        panic!()
    };
    assert_eq!(
        d.flow.dst,
        Ipv4Addr::new(5, 6, 7, 8),
        "non-VIP dst must not be rewritten"
    );
    assert_eq!(stats.borrow().assigned, 0);
}

// --------------------------------------------------------- Heavy hitter

#[test]
fn heavy_hitter_threshold_exact_boundary() {
    let cfg = HhConfig {
        count_reg: 0,
        keys: 64,
        threshold_bytes: 128 * 3, // exactly 3 packets of 128 B
        egress_host: NodeId(HOST_BASE),
    };
    let stats = HhStatsHandle::default();
    let s2 = stats.clone();
    let c2 = cfg.clone();
    let mut dep = DeploymentBuilder::new(1)
        .hosts(1)
        .register(RegisterSpec::ewo_counter(0, "hh", 64))
        .build(move |_| Box::new(HeavyHitter::new(c2.clone(), s2.clone())));
    dep.settle();
    let dst = Ipv4Addr::new(20, 0, 0, 5);
    let key = u32::from(dst) % 64;
    let t = dep.now();
    for i in 0..4u64 {
        let pkt = DataPacket::udp(
            FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1000 + i as u16, dst, 80),
            0,
            100, // 128 B wire
        );
        dep.inject(t + SimDuration::micros(i * 10), 0, 0, pkt);
    }
    dep.run_for(SimDuration::millis(5));
    // Count after 3 packets == threshold (not >), flag fires on the 4th.
    assert!(stats.borrow().is_flagged(key));
    let flagged_at = stats.borrow().flagged[0].1;
    assert!(flagged_at >= (t + SimDuration::micros(30)).nanos());
}

//! Stateful firewall (Table 1, row 2).
//!
//! "Monitors connection states to enforce context-based rules. These
//! states are stored in a shared table, updated as connections are opened
//! and closed, and accessed for each packet to make filtering decisions.
//! Like the NAT, the firewall NF requires strong consistency to avoid
//! incorrect forwarding behavior" (§4.1).
//!
//! Policy: inside hosts may open connections to the outside; outside
//! packets are admitted only when they belong to a connection the inside
//! opened. Connection state lives in one SRO register keyed by the
//! canonical (direction-insensitive) flow hash.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use swishmem::{NfApp, NfDecision, SharedState};
use swishmem_wire::swish::RegId;
use swishmem_wire::{DataPacket, NodeId};

/// Connection states stored in the shared table.
pub mod conn_state {
    /// No state.
    pub const NONE: u64 = 0;
    /// SYN seen from inside.
    pub const SYN_SENT: u64 = 1;
    /// Established (inside saw a reply or sent data).
    pub const ESTABLISHED: u64 = 2;
    /// FIN/RST observed; still admitted briefly, re-open allowed.
    pub const CLOSING: u64 = 3;
}

/// Observable firewall behaviour.
#[derive(Debug, Default)]
pub struct FirewallStats {
    /// Outbound packets admitted.
    pub outbound_allowed: u64,
    /// Inbound packets admitted via connection state.
    pub inbound_allowed: u64,
    /// Inbound packets dropped for lack of state — includes false drops
    /// when state failed to replicate (the incorrect forwarding behaviour
    /// §4.1 warns about).
    pub inbound_dropped: u64,
}

/// Shared handle to [`FirewallStats`].
pub type FirewallStatsHandle = Rc<RefCell<FirewallStats>>;

/// Firewall configuration.
#[derive(Debug, Clone)]
pub struct FirewallConfig {
    /// SRO register holding connection states.
    pub conn_reg: RegId,
    /// Keys in the register.
    pub keys: u32,
    /// Inside network's first octet.
    pub inside_octet: u8,
    /// Host standing in for the outside.
    pub outside_host: NodeId,
    /// Host standing in for the inside.
    pub inside_host: NodeId,
}

/// The stateful firewall.
pub struct Firewall {
    cfg: FirewallConfig,
    stats: FirewallStatsHandle,
}

impl Firewall {
    /// Build a firewall instance.
    pub fn new(cfg: FirewallConfig, stats: FirewallStatsHandle) -> Firewall {
        Firewall { cfg, stats }
    }

    fn is_inside(&self, ip: Ipv4Addr) -> bool {
        ip.octets()[0] == self.cfg.inside_octet
    }

    fn key(&self, pkt: &DataPacket) -> u32 {
        (pkt.flow.canonical_hash64() % u64::from(self.cfg.keys)) as u32
    }
}

impl NfApp for Firewall {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        let key = self.key(pkt);
        let state = st.read(self.cfg.conn_reg, key);
        if self.is_inside(pkt.flow.src) {
            // Outbound: always allowed; advance connection state.
            let next = if pkt.tcp_flags.rst || pkt.tcp_flags.fin {
                conn_state::CLOSING
            } else if pkt.tcp_flags.syn {
                conn_state::SYN_SENT
            } else {
                conn_state::ESTABLISHED
            };
            if next != state {
                st.write(self.cfg.conn_reg, key, next);
            }
            self.stats.borrow_mut().outbound_allowed += 1;
            NfDecision::Forward {
                dst: self.cfg.outside_host,
                pkt: *pkt,
            }
        } else {
            // Inbound: requires established context.
            if state == conn_state::NONE {
                self.stats.borrow_mut().inbound_dropped += 1;
                return NfDecision::Drop;
            }
            if pkt.tcp_flags.rst || pkt.tcp_flags.fin {
                st.write(self.cfg.conn_reg, key, conn_state::CLOSING);
            } else if state == conn_state::SYN_SENT {
                st.write(self.cfg.conn_reg, key, conn_state::ESTABLISHED);
            }
            self.stats.borrow_mut().inbound_allowed += 1;
            NfDecision::Forward {
                dst: self.cfg.inside_host,
                pkt: *pkt,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swishmem::prelude::*;
    use swishmem::RegisterSpec;
    use swishmem_wire::l4::TcpFlags;
    use swishmem_wire::FlowKey;

    fn config() -> FirewallConfig {
        FirewallConfig {
            conn_reg: 0,
            keys: 256,
            inside_octet: 10,
            outside_host: NodeId(swishmem::HOST_BASE),
            inside_host: NodeId(swishmem::HOST_BASE + 1),
        }
    }

    fn deployment(n: usize) -> (Deployment, Vec<FirewallStatsHandle>) {
        let stats: Vec<FirewallStatsHandle> =
            (0..n).map(|_| FirewallStatsHandle::default()).collect();
        let s2 = stats.clone();
        let dep = DeploymentBuilder::new(n)
            .hosts(2)
            .register(RegisterSpec::sro(0, "fw_conn", 256))
            .build(move |id| Box::new(Firewall::new(config(), s2[id.index()].clone())));
        (dep, stats)
    }

    fn syn_out() -> DataPacket {
        DataPacket::tcp(
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                4000,
                Ipv4Addr::new(93, 184, 216, 34),
                443,
            ),
            TcpFlags::syn(),
            0,
            0,
        )
    }

    fn reply_in(seq: u32) -> DataPacket {
        DataPacket::tcp(
            FlowKey::tcp(
                Ipv4Addr::new(93, 184, 216, 34),
                443,
                Ipv4Addr::new(10, 0, 0, 1),
                4000,
            ),
            TcpFlags::data(),
            seq,
            100,
        )
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let (mut dep, stats) = deployment(2);
        dep.settle();
        let t = dep.now();
        dep.inject(t, 0, 0, reply_in(0));
        dep.run_for(SimDuration::millis(10));
        assert_eq!(stats[0].borrow().inbound_dropped, 1);
        assert!(dep.recording(1).borrow().is_empty());
    }

    #[test]
    fn reply_admitted_at_other_switch_after_outbound_syn() {
        let (mut dep, stats) = deployment(3);
        dep.settle();
        let t = dep.now();
        dep.inject(t, 0, 1, syn_out());
        dep.run_for(SimDuration::millis(30)); // SRO write completes
                                              // Reply takes a different path (different switch).
        let t = dep.now();
        dep.inject(t, 2, 0, reply_in(1));
        dep.run_for(SimDuration::millis(20));
        assert_eq!(
            stats[2].borrow().inbound_allowed,
            1,
            "reply wrongly dropped"
        );
        assert_eq!(dep.recording(1).borrow().len(), 1);
    }

    #[test]
    fn closing_state_recorded_on_fin() {
        let (mut dep, _stats) = deployment(2);
        dep.settle();
        let t = dep.now();
        dep.inject(t, 0, 1, syn_out());
        dep.run_for(SimDuration::millis(30));
        let mut fin = syn_out();
        fin.tcp_flags = TcpFlags::fin();
        let t = dep.now();
        dep.inject(t, 0, 1, fin);
        dep.run_for(SimDuration::millis(30));
        let key = (syn_out().flow.canonical_hash64() % 256) as u32;
        assert_eq!(dep.peek(0, 0, key), conn_state::CLOSING);
        assert_eq!(dep.peek(1, 0, key), conn_state::CLOSING);
    }
}

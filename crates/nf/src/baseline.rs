//! Baseline (non-SwiShmem) NF variants the experiments compare against.
//!
//! These implement the alternatives the paper argues against:
//! * [`LocalLb`] — the sharded load balancer of §3.2 ("store the load
//!   balancer's connection mapping only on the switch that assigned it,
//!   on the assumption that future packets for that flow will be
//!   processed by the same switch"), which breaks per-connection
//!   consistency under multipath routing and failures;
//! * [`LocalDdos`] — per-switch unshared sketches, which miss attacks
//!   whose traffic is spread across ingress switches.
//!
//! Both keep their state in app-local memory (`HashMap`/[`CmSketch`]),
//! i.e. exactly what a single-switch P4 program compiled per switch with
//! no sharing would hold.

use crate::ddos::{DdosConfig, DdosStatsHandle};
use crate::lb::{LbConfig, LbStatsHandle};
use crate::sketch::CmSketch;
use std::collections::HashMap;
use swishmem::{NfApp, NfDecision, SharedState};
use swishmem_wire::{DataPacket, NodeId};

/// Shard-local L4 load balancer: same policy as
/// [`crate::lb::LoadBalancer`], but the connection→DIP map is per-switch.
pub struct LocalLb {
    cfg: LbConfig,
    table: HashMap<u32, u64>,
    stats: LbStatsHandle,
}

impl LocalLb {
    /// Build a shard-local LB instance.
    pub fn new(cfg: LbConfig, stats: LbStatsHandle) -> LocalLb {
        assert!(!cfg.backends.is_empty());
        LocalLb {
            cfg,
            table: HashMap::new(),
            stats,
        }
    }

    fn key(&self, pkt: &DataPacket) -> u32 {
        (pkt.flow.hash64() % u64::from(self.cfg.keys)) as u32
    }

    fn choose(&self, pkt: &DataPacket) -> u64 {
        (pkt.flow.hash64() >> 17) % self.cfg.backends.len() as u64 + 1
    }

    fn forward_to(&self, idx1: u64, pkt: &DataPacket) -> NfDecision {
        let (dip, host) = self.cfg.backends[(idx1 - 1) as usize % self.cfg.backends.len()];
        let mut out = *pkt;
        out.flow.dst = dip;
        NfDecision::Forward {
            dst: host,
            pkt: out,
        }
    }
}

impl NfApp for LocalLb {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        _st: &mut dyn SharedState,
    ) -> NfDecision {
        if pkt.flow.dst != self.cfg.vip {
            return NfDecision::Forward {
                dst: self.cfg.backends[0].1,
                pkt: *pkt,
            };
        }
        let key = self.key(pkt);
        if let Some(&assigned) = self.table.get(&key) {
            self.stats.borrow_mut().mapped += 1;
            return self.forward_to(assigned, pkt);
        }
        if pkt.tcp_flags.syn {
            let choice = self.choose(pkt);
            self.table.insert(key, choice);
            self.stats.borrow_mut().assigned += 1;
            return self.forward_to(choice, pkt);
        }
        self.stats.borrow_mut().unmapped_drops += 1;
        NfDecision::Drop
    }

    fn reset(&mut self) {
        self.table.clear();
    }
}

/// Per-switch unshared DDoS detector: same policy as
/// [`crate::ddos::DdosDetector`], but sketch and total counter are local.
pub struct LocalDdos {
    cfg: DdosConfig,
    sketch: CmSketch,
    total: u64,
    stats: DdosStatsHandle,
}

impl LocalDdos {
    /// Build an unshared detector instance.
    pub fn new(cfg: DdosConfig, stats: DdosStatsHandle) -> LocalDdos {
        let sketch = CmSketch::new(cfg.row_regs.len(), cfg.width as usize);
        LocalDdos {
            cfg,
            sketch,
            total: 0,
            stats,
        }
    }
}

impl NfApp for LocalDdos {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        self.stats.borrow_mut().packets += 1;
        let dst_key = u64::from(u32::from(pkt.flow.dst));
        self.sketch.add(dst_key, 1);
        self.total += 1;
        if self.total >= self.cfg.min_total {
            let est = self.sketch.estimate(dst_key);
            if est >= self.cfg.min_est && est * 1000 > self.cfg.share_millis * self.total {
                let mut s = self.stats.borrow_mut();
                s.mitigated += 1;
                s.first_alarm_ns.get_or_insert(st.now().nanos());
                return NfDecision::Drop;
            }
        }
        NfDecision::Forward {
            dst: self.cfg.egress_host,
            pkt: *pkt,
        }
    }

    fn reset(&mut self) {
        self.sketch = CmSketch::new(self.cfg.row_regs.len(), self.cfg.width as usize);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use swishmem::prelude::*;
    use swishmem_wire::l4::TcpFlags;
    use swishmem_wire::FlowKey;

    fn lb_cfg() -> LbConfig {
        LbConfig {
            conn_reg: 0,
            keys: 1024,
            vip: Ipv4Addr::new(10, 99, 0, 1),
            backends: vec![
                (Ipv4Addr::new(10, 1, 0, 1), NodeId(swishmem::HOST_BASE)),
                (Ipv4Addr::new(10, 1, 0, 2), NodeId(swishmem::HOST_BASE + 1)),
            ],
        }
    }

    fn vip_pkt(port: u16, flags: TcpFlags, seq: u32) -> DataPacket {
        DataPacket::tcp(
            FlowKey::tcp(
                Ipv4Addr::new(172, 16, 0, 9),
                port,
                Ipv4Addr::new(10, 99, 0, 1),
                443,
            ),
            flags,
            seq,
            64,
        )
    }

    #[test]
    fn local_lb_breaks_pcc_when_path_changes() {
        // One register declared so the deployment builds, though LocalLb
        // ignores shared state entirely.
        let stats: Vec<LbStatsHandle> = (0..2).map(|_| LbStatsHandle::default()).collect();
        let s2 = stats.clone();
        let mut dep = DeploymentBuilder::new(2)
            .hosts(2)
            .register(swishmem::RegisterSpec::sro(0, "unused", 4))
            .build(move |id| Box::new(LocalLb::new(lb_cfg(), s2[id.index()].clone())));
        dep.settle();
        let t = dep.now();
        // SYN at switch 0, data packet for the same flow at switch 1.
        dep.inject(t, 0, 0, vip_pkt(5000, TcpFlags::syn(), 0));
        dep.inject(
            t + SimDuration::millis(1),
            1,
            0,
            vip_pkt(5000, TcpFlags::data(), 1),
        );
        dep.run_for(SimDuration::millis(10));
        // The sharded baseline drops the rerouted mid-flow packet.
        let drops: u64 = stats.iter().map(|s| s.borrow().unmapped_drops).sum();
        assert_eq!(
            drops, 1,
            "sharded LB should break PCC on the alternate path"
        );
    }

    #[test]
    fn local_ddos_misses_spread_attack() {
        use crate::ddos::DdosConfig;
        let cfg = DdosConfig {
            row_regs: vec![0, 1, 2],
            width: 512,
            total_reg: 3,
            share_millis: 300,
            min_total: 50,
            min_est: 100,
            egress_host: NodeId(swishmem::HOST_BASE),
        };
        let stats: Vec<DdosStatsHandle> = (0..4).map(|_| DdosStatsHandle::default()).collect();
        let s2 = stats.clone();
        let cfg2 = cfg.clone();
        let mut dep = DeploymentBuilder::new(4)
            .hosts(1)
            .register(swishmem::RegisterSpec::sro(0, "unused", 4))
            .build(move |id| Box::new(LocalDdos::new(cfg2.clone(), s2[id.index()].clone())));
        dep.settle();
        let victim = Ipv4Addr::new(10, 0, 0, 99);
        let t = dep.now();
        // Same mix as the shared-detector test: 40 attack packets per
        // switch — but each local total never reaches min_total=50, so no
        // switch alarms.
        for i in 0..160u64 {
            let pkt = DataPacket::udp(
                FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1000 + i as u16, victim, 80),
                0,
                64,
            );
            dep.inject(t + SimDuration::micros(i * 20), (i % 4) as usize, 0, pkt);
        }
        dep.run_for(SimDuration::millis(20));
        let mitigated: u64 = stats.iter().map(|s| s.borrow().mitigated).sum();
        assert_eq!(
            mitigated, 0,
            "unshared sketches should miss the spread attack"
        );
    }
}

//! L4 load balancer (Table 1, row 4).
//!
//! "Assign incoming connections to a particular destination IP, then
//! forward subsequent packets to the appropriate destination IP.
//! Per-connection consistency (PCC) requires that once an IP is assigned
//! to a connection, it does not change, implying a need for strong
//! consistency of application state" (§4.1).
//!
//! The connection→DIP mapping is one SRO register. The E8 experiment
//! swaps it for a deliberately-broken shard-local map to reproduce the
//! PCC violations §3.2 predicts for sharding under multipath.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use swishmem::{NfApp, NfDecision, SharedState};
use swishmem_wire::swish::RegId;
use swishmem_wire::{DataPacket, NodeId};

/// Observable LB behaviour.
#[derive(Debug, Default)]
pub struct LbStats {
    /// Connections assigned (SYN packets that created a mapping).
    pub assigned: u64,
    /// Packets forwarded via an existing mapping.
    pub mapped: u64,
    /// Non-SYN packets with no mapping: the flow's assignment was lost —
    /// a per-connection-consistency break.
    pub unmapped_drops: u64,
}

/// Shared handle to [`LbStats`].
pub type LbStatsHandle = Rc<RefCell<LbStats>>;

/// Load balancer configuration.
#[derive(Debug, Clone)]
pub struct LbConfig {
    /// SRO register: flow-hash → (DIP index + 1); 0 = unassigned.
    pub conn_reg: RegId,
    /// Keys in the register.
    pub keys: u32,
    /// The virtual IP clients connect to.
    pub vip: Ipv4Addr,
    /// Backend DIPs, each paired with the host node standing in for it.
    pub backends: Vec<(Ipv4Addr, NodeId)>,
}

/// The L4 load balancer.
pub struct LoadBalancer {
    cfg: LbConfig,
    stats: LbStatsHandle,
}

impl LoadBalancer {
    /// Build an LB instance.
    pub fn new(cfg: LbConfig, stats: LbStatsHandle) -> LoadBalancer {
        assert!(!cfg.backends.is_empty(), "need at least one backend");
        LoadBalancer { cfg, stats }
    }

    fn key(&self, pkt: &DataPacket) -> u32 {
        (pkt.flow.hash64() % u64::from(self.cfg.keys)) as u32
    }

    /// Deterministic initial choice: hash the flow over the backends.
    fn choose(&self, pkt: &DataPacket) -> u64 {
        (pkt.flow.hash64() >> 17) % self.cfg.backends.len() as u64 + 1
    }

    fn forward_to(&self, idx1: u64, pkt: &DataPacket) -> NfDecision {
        let (dip, host) = self.cfg.backends[(idx1 - 1) as usize % self.cfg.backends.len()];
        let mut out = *pkt;
        out.flow.dst = dip; // DIP rewrite (encapsulation stand-in)
        NfDecision::Forward {
            dst: host,
            pkt: out,
        }
    }
}

impl NfApp for LoadBalancer {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        if pkt.flow.dst != self.cfg.vip {
            // Direct (non-VIP) traffic: pass through to backend 0's host.
            return NfDecision::Forward {
                dst: self.cfg.backends[0].1,
                pkt: *pkt,
            };
        }
        let key = self.key(pkt);
        let assigned = st.read(self.cfg.conn_reg, key);
        if assigned != 0 {
            self.stats.borrow_mut().mapped += 1;
            return self.forward_to(assigned, pkt);
        }
        if pkt.tcp_flags.syn {
            let choice = self.choose(pkt);
            st.write(self.cfg.conn_reg, key, choice);
            self.stats.borrow_mut().assigned += 1;
            return self.forward_to(choice, pkt);
        }
        // Mid-connection packet with no mapping anywhere: PCC break.
        self.stats.borrow_mut().unmapped_drops += 1;
        NfDecision::Drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swishmem::prelude::*;
    use swishmem::RegisterSpec;
    use swishmem_wire::l4::TcpFlags;
    use swishmem_wire::{FlowKey, PacketBody};

    fn config() -> LbConfig {
        LbConfig {
            conn_reg: 0,
            keys: 1024,
            vip: Ipv4Addr::new(10, 99, 0, 1),
            backends: vec![
                (Ipv4Addr::new(10, 1, 0, 1), NodeId(swishmem::HOST_BASE)),
                (Ipv4Addr::new(10, 1, 0, 2), NodeId(swishmem::HOST_BASE + 1)),
                (Ipv4Addr::new(10, 1, 0, 3), NodeId(swishmem::HOST_BASE + 2)),
            ],
        }
    }

    fn deployment(n: usize) -> (Deployment, Vec<LbStatsHandle>) {
        let stats: Vec<LbStatsHandle> = (0..n).map(|_| LbStatsHandle::default()).collect();
        let s2 = stats.clone();
        let dep = DeploymentBuilder::new(n)
            .hosts(3)
            .register(RegisterSpec::sro(0, "lb_conn", 1024))
            .build(move |id| Box::new(LoadBalancer::new(config(), s2[id.index()].clone())));
        (dep, stats)
    }

    fn pkt(client_port: u16, flags: TcpFlags, seq: u32) -> DataPacket {
        DataPacket::tcp(
            FlowKey::tcp(
                Ipv4Addr::new(172, 16, 0, 9),
                client_port,
                Ipv4Addr::new(10, 99, 0, 1),
                443,
            ),
            flags,
            seq,
            64,
        )
    }

    fn backend_of(dep: &Deployment, host_idx: usize) -> usize {
        dep.recording(host_idx).borrow().len()
    }

    #[test]
    fn connection_sticks_to_one_backend_across_switches() {
        let (mut dep, stats) = deployment(3);
        dep.settle();
        let t = dep.now();
        dep.inject(t, 0, 0, pkt(5000, TcpFlags::syn(), 0));
        dep.run_for(SimDuration::millis(30)); // mapping replicates
                                              // Subsequent packets arrive at every switch (multipath).
        let t = dep.now();
        for (i, sw) in [1usize, 2, 0, 2].iter().enumerate() {
            dep.inject(
                t + SimDuration::micros(i as u64 * 100),
                *sw,
                0,
                pkt(5000, TcpFlags::data(), i as u32 + 1),
            );
        }
        dep.run_for(SimDuration::millis(30));
        // Exactly one backend received all 5 packets.
        let counts: Vec<usize> = (0..3).map(|h| backend_of(&dep, h)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert_eq!(
            counts.iter().filter(|&&c| c > 0).count(),
            1,
            "flow split: {counts:?}"
        );
        let drops: u64 = stats.iter().map(|s| s.borrow().unmapped_drops).sum();
        assert_eq!(drops, 0);
        // All delivered to the same DIP.
        let nonzero = counts.iter().position(|&c| c > 0).unwrap();
        let log = dep.recording(nonzero).borrow();
        let dips: std::collections::HashSet<Ipv4Addr> = log
            .iter()
            .map(|(_, p)| match &p.body {
                PacketBody::Data(d) => d.flow.dst,
                _ => panic!(),
            })
            .collect();
        assert_eq!(dips.len(), 1);
    }

    #[test]
    fn distinct_flows_spread_over_backends() {
        let (mut dep, _stats) = deployment(2);
        dep.settle();
        let t = dep.now();
        for i in 0..30u16 {
            dep.inject(
                t + SimDuration::micros(u64::from(i) * 500),
                usize::from(i % 2),
                0,
                pkt(4000 + i, TcpFlags::syn(), 0),
            );
        }
        dep.run_for(SimDuration::millis(60));
        let counts: Vec<usize> = (0..3).map(|h| backend_of(&dep, h)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 30);
        assert!(counts.iter().all(|&c| c > 0), "skewed spread: {counts:?}");
    }

    #[test]
    fn midflow_packet_without_mapping_is_dropped() {
        let (mut dep, stats) = deployment(2);
        dep.settle();
        let t = dep.now();
        dep.inject(t, 0, 0, pkt(7000, TcpFlags::data(), 5)); // no SYN ever
        dep.run_for(SimDuration::millis(10));
        let drops: u64 = stats.iter().map(|s| s.borrow().unmapped_drops).sum();
        assert_eq!(drops, 1);
    }
}

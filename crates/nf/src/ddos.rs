//! DDoS detection (Table 1, row 5).
//!
//! "Requires tracking the frequency of source and destination IPs using
//! approximate sketch data structures. The sketches are updated and read
//! on every packet, triggering an alarm when the analysis of the IP
//! frequencies raises suspicion of the attack. Approximate sketches have
//! been shown to behave correctly under eventual consistency" (§4.2).
//!
//! The sketch rows are EWO G-counter registers (one register per row), so
//! every switch's local increments merge commutatively across the fabric;
//! a victim whose traffic is spread over many ingress switches is still
//! detected because each switch reads the *global* estimate.

use crate::sketch::cm_hash;
use std::cell::RefCell;
use std::rc::Rc;
use swishmem::{NfApp, NfDecision, SharedState};
use swishmem_wire::swish::RegId;
use swishmem_wire::{DataPacket, NodeId};

/// Observable detector behaviour.
#[derive(Debug, Default)]
pub struct DdosStats {
    /// Packets processed.
    pub packets: u64,
    /// Packets dropped as attack traffic.
    pub mitigated: u64,
    /// First time (ns) the alarm fired on this switch, if ever.
    pub first_alarm_ns: Option<u64>,
}

/// Shared handle to [`DdosStats`].
pub type DdosStatsHandle = Rc<RefCell<DdosStats>>;

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DdosConfig {
    /// EWO G-counter registers, one per sketch row (ids must be
    /// contiguous starting at `row_regs[0]`).
    pub row_regs: Vec<RegId>,
    /// Columns per row.
    pub width: u32,
    /// EWO G-counter register holding the total packet count at key 0.
    pub total_reg: RegId,
    /// Alarm when a destination's estimated share exceeds this fraction
    /// of total traffic (×1000, e.g. 200 = 20%).
    pub share_millis: u64,
    /// Minimum total packets before the detector may alarm.
    pub min_total: u64,
    /// Absolute floor on the victim's estimated count before alarming —
    /// a volumetric threshold that a single switch seeing only a slice of
    /// a spread attack cannot reach (the E9 discriminator).
    pub min_est: u64,
    /// Egress for clean traffic.
    pub egress_host: NodeId,
}

/// The DDoS detector NF.
pub struct DdosDetector {
    cfg: DdosConfig,
    stats: DdosStatsHandle,
}

impl DdosDetector {
    /// Build a detector instance.
    pub fn new(cfg: DdosConfig, stats: DdosStatsHandle) -> DdosDetector {
        assert!(!cfg.row_regs.is_empty());
        DdosDetector { cfg, stats }
    }

    fn estimate(&self, st: &mut dyn SharedState, key: u64) -> u64 {
        self.cfg
            .row_regs
            .iter()
            .enumerate()
            .map(|(r, &reg)| {
                let col = (cm_hash(r, key) % u64::from(self.cfg.width)) as u32;
                st.read(reg, col)
            })
            .min()
            .unwrap_or(0)
    }
}

impl NfApp for DdosDetector {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        self.stats.borrow_mut().packets += 1;
        let dst_key = u64::from(u32::from(pkt.flow.dst));
        // Update all rows + the total counter.
        for (r, &reg) in self.cfg.row_regs.iter().enumerate() {
            let col = (cm_hash(r, dst_key) % u64::from(self.cfg.width)) as u32;
            st.add(reg, col, 1);
        }
        st.add(self.cfg.total_reg, 0, 1);

        let total = st.read(self.cfg.total_reg, 0);
        if total >= self.cfg.min_total {
            let est = self.estimate(st, dst_key);
            if est >= self.cfg.min_est && est * 1000 > self.cfg.share_millis * total {
                let mut s = self.stats.borrow_mut();
                s.mitigated += 1;
                s.first_alarm_ns.get_or_insert(st.now().nanos());
                return NfDecision::Drop;
            }
        }
        NfDecision::Forward {
            dst: self.cfg.egress_host,
            pkt: *pkt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use swishmem::prelude::*;
    use swishmem::RegisterSpec;
    use swishmem_wire::FlowKey;

    const DEPTH: usize = 3;
    const WIDTH: u32 = 512;

    fn config() -> DdosConfig {
        DdosConfig {
            row_regs: (0..DEPTH as u16).collect(),
            width: WIDTH,
            total_reg: DEPTH as u16,
            share_millis: 300, // 30%
            min_total: 50,
            min_est: 100, // locally each switch sees only ~40 attack pkts
            egress_host: NodeId(swishmem::HOST_BASE),
        }
    }

    fn deployment(n: usize) -> (Deployment, Vec<DdosStatsHandle>) {
        let stats: Vec<DdosStatsHandle> = (0..n).map(|_| DdosStatsHandle::default()).collect();
        let s2 = stats.clone();
        let mut b = DeploymentBuilder::new(n).hosts(1);
        for r in 0..DEPTH as u16 {
            b = b.register(RegisterSpec::ewo_counter(r, &format!("cm_row{r}"), WIDTH));
        }
        b = b.register(RegisterSpec::ewo_counter(DEPTH as u16, "cm_total", 4));
        let dep = b.build(move |id| Box::new(DdosDetector::new(config(), s2[id.index()].clone())));
        (dep, stats)
    }

    fn to_dst(dst: Ipv4Addr, src_port: u16) -> DataPacket {
        DataPacket::udp(
            FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), src_port, dst, 80),
            0,
            64,
        )
    }

    #[test]
    fn distributed_attack_detected_even_when_spread_thin() {
        let (mut dep, stats) = deployment(4);
        dep.settle();
        let victim = Ipv4Addr::new(10, 0, 0, 99);
        let t = dep.now();
        // 160 attack packets spread over 4 switches (40 each), mixed with
        // 40 background packets to distinct destinations.
        let mut k = 0u64;
        for i in 0..160u64 {
            dep.inject(
                t + SimDuration::micros(i * 20),
                (i % 4) as usize,
                0,
                to_dst(victim, 1000 + i as u16),
            );
            if i % 4 == 0 {
                k += 1;
                let bg = Ipv4Addr::new(20, 0, (k >> 8) as u8, k as u8);
                dep.inject(
                    t + SimDuration::micros(i * 20 + 7),
                    (k % 4) as usize,
                    0,
                    to_dst(bg, 2000),
                );
            }
        }
        dep.run_for(SimDuration::millis(50));
        let mitigated: u64 = stats.iter().map(|s| s.borrow().mitigated).sum();
        assert!(
            mitigated > 50,
            "attack should be mitigated, got {mitigated}"
        );
        // Every switch individually saw only 25% of the attack — below a
        // switch-local threshold — proving detection relied on the
        // replicated global sketch.
        for (i, s) in stats.iter().enumerate() {
            assert!(
                s.borrow().packets < 60,
                "switch {i} saw too much traffic locally"
            );
        }
    }

    #[test]
    fn benign_traffic_not_mitigated() {
        let (mut dep, stats) = deployment(2);
        dep.settle();
        let t = dep.now();
        for i in 0..100u64 {
            let dst = Ipv4Addr::new(30, 0, (i >> 8) as u8, i as u8);
            dep.inject(
                t + SimDuration::micros(i * 30),
                (i % 2) as usize,
                0,
                to_dst(dst, 4000),
            );
        }
        dep.run_for(SimDuration::millis(30));
        let mitigated: u64 = stats.iter().map(|s| s.borrow().mitigated).sum();
        assert_eq!(mitigated, 0);
    }
}

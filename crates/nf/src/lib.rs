//! # swishmem-nf
//!
//! The six network functions of the paper's Table 1, implemented against
//! the SwiShmem shared-register API, plus the synthetic workload
//! generators that drive them:
//!
//! | NF | Shared state | Class |
//! |----|--------------|-------|
//! | [`nat::Nat`] | translation table | SRO |
//! | [`firewall::Firewall`] | connection-state table | SRO |
//! | [`ips::Ips`] | signature table + match counter | ERO + EWO |
//! | [`lb::LoadBalancer`] | connection→DIP mapping | SRO |
//! | [`ddos::DdosDetector`] | count-min sketch | EWO (G-counters) |
//! | [`ratelimit::RateLimiter`] | per-user meters | EWO (windowed) |
//!
//! Each NF is written exactly as a single-switch P4 program would be —
//! reads and writes against plain registers — and acquires its
//! distributed behaviour entirely from the register class it declares
//! (the paper's "one big switch" abstraction, §1).
//!
//! [`workload`] provides deterministic flow generation (Poisson arrivals,
//! Zipf destination skew), DDoS attack mixes, and the ECMP/multipath
//! ingress models of §3.2.

pub mod baseline;
pub mod ddos;
pub mod firewall;
pub mod heavyhitter;
pub mod ips;
pub mod lb;
pub mod nat;
pub mod ratelimit;
pub mod sketch;
pub mod workload;

pub use baseline::{LocalDdos, LocalLb};
pub use ddos::{DdosConfig, DdosDetector, DdosStats, DdosStatsHandle};
pub use firewall::{Firewall, FirewallConfig, FirewallStats, FirewallStatsHandle};
pub use heavyhitter::{HeavyHitter, HhConfig, HhStats, HhStatsHandle};
pub use ips::{Ips, IpsConfig, IpsStats, IpsStatsHandle};
pub use lb::{LbConfig, LbStats, LbStatsHandle, LoadBalancer};
pub use nat::{Nat, NatConfig, NatStats, NatStatsHandle};
pub use ratelimit::{RateLimitConfig, RateLimitStats, RateLimitStatsHandle, RateLimiter};
pub use sketch::CmSketch;
pub use workload::{
    generate_attack, AttackConfig, EcmpRouter, FlowGen, FlowGenConfig, RoutingMode,
    ScheduledPacket, Zipf,
};

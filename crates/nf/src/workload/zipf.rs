//! Zipf-distributed sampling (flow popularity, user skew) without
//! external distribution crates: a precomputed CDF with binary search.

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `alpha` (`alpha = 0` is
    /// uniform; web-like skew is `alpha ≈ 1`).
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_alpha_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 10,
            "rank 0 should dominate: {} vs {}",
            counts[0],
            counts[50]
        );
        // Rank order roughly holds at the head.
        assert!(counts[0] > counts[5]);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}

//! Zipf-distributed sampling (flow popularity, user skew) without
//! external distribution crates: a precomputed CDF with binary search.

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `alpha` (`alpha = 0` is
    /// uniform; web-like skew is `alpha ≈ 1`).
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "need at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_alpha_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 10,
            "rank 0 should dominate: {} vs {}",
            counts[0],
            counts[50]
        );
        // Rank order roughly holds at the head.
        assert!(counts[0] > counts[5]);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn empirical_skew_recovers_configured_exponent() {
        // 100k seeded draws per exponent: the log-log slope of the
        // head-rank frequencies (least squares over the 40 best-sampled
        // ranks) must recover the configured α within ±0.15. Seeded, so
        // the measurement is exactly reproducible.
        for &alpha in &[0.8f64, 1.2] {
            let z = Zipf::new(1_000, alpha);
            let mut rng = StdRng::seed_from_u64(100);
            let mut counts = vec![0u64; 1_000];
            for _ in 0..100_000 {
                counts[z.sample(&mut rng)] += 1;
            }
            let pts: Vec<(f64, f64)> = (0..40)
                .filter(|&k| counts[k] > 0)
                .map(|k| (((k + 1) as f64).ln(), (counts[k] as f64).ln()))
                .collect();
            let n = pts.len() as f64;
            let sx: f64 = pts.iter().map(|p| p.0).sum();
            let sy: f64 = pts.iter().map(|p| p.1).sum();
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
            let measured = -slope;
            assert!(
                (measured - alpha).abs() < 0.15,
                "α={alpha}: log-log fit measured {measured:.3}"
            );
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let z = Zipf::new(64, 1.1);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..256).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}

//! Packet-schedule trace files: export a generated workload to a plain
//! text format and replay it later, so an experiment's exact traffic can
//! be archived, shared, and re-injected independently of the generator.
//!
//! Format: one packet per line,
//! `time_ns ingress proto src:sport dst:dport flags seq payload`
//! with `#` comments and blank lines ignored.

use super::flowgen::ScheduledPacket;
use std::net::Ipv4Addr;
use std::str::FromStr;
use swishmem_simnet::SimTime;
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::{DataPacket, FlowKey};

/// Why a trace line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseReason {
    /// Wrong whitespace-separated field count.
    FieldCount {
        /// Fields found on the line.
        got: usize,
    },
    /// A field failed to parse.
    BadField {
        /// Which field.
        field: &'static str,
    },
    /// The line's timestamp went backwards relative to the previous
    /// record — schedules must be time-sorted.
    TimeRegression {
        /// Previous record's timestamp.
        prev: u64,
        /// This line's timestamp.
        got: u64,
    },
    /// The exact same record (time, ingress, and packet) appeared twice
    /// in a row — a duplicated line, not a retransmission.
    DuplicateRecord,
}

impl std::fmt::Display for TraceParseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseReason::FieldCount { got } => write!(f, "expected 8 fields, got {got}"),
            TraceParseReason::BadField { field } => write!(f, "bad {field}"),
            TraceParseReason::TimeRegression { prev, got } => {
                write!(f, "time went backwards: {prev} -> {got}")
            }
            TraceParseReason::DuplicateRecord => {
                write!(f, "exact duplicate of the previous record")
            }
        }
    }
}

/// Errors while parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: TraceParseReason,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

fn flags_str(f: TcpFlags) -> String {
    let mut s = String::new();
    if f.syn {
        s.push('S');
    }
    if f.ack {
        s.push('A');
    }
    if f.fin {
        s.push('F');
    }
    if f.rst {
        s.push('R');
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn flags_parse(s: &str) -> TcpFlags {
    TcpFlags {
        syn: s.contains('S'),
        ack: s.contains('A'),
        fin: s.contains('F'),
        rst: s.contains('R'),
    }
}

/// Serialize a schedule to the trace-file text format.
pub fn to_text(sched: &[ScheduledPacket]) -> String {
    let mut out = String::with_capacity(sched.len() * 64);
    out.push_str("# time_ns ingress proto src:sport dst:dport flags seq payload\n");
    for p in sched {
        let f = &p.pkt.flow;
        out.push_str(&format!(
            "{} {} {} {}:{} {}:{} {} {} {}\n",
            p.time.nanos(),
            p.ingress,
            f.proto,
            f.src,
            f.src_port,
            f.dst,
            f.dst_port,
            flags_str(p.pkt.tcp_flags),
            p.pkt.flow_seq,
            p.pkt.payload_len,
        ));
    }
    out
}

/// Parse a trace file back into a schedule.
///
/// Rejects (with the 1-based line number and a typed
/// [`TraceParseReason`]) any line whose timestamp goes backwards and any
/// exact consecutive duplicate record — the same ordering contract the
/// binary `.swtrace` writer enforces, so a text trace that parses here
/// always converts cleanly.
pub fn from_text(text: &str) -> Result<Vec<ScheduledPacket>, TraceParseError> {
    let mut out: Vec<ScheduledPacket> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: TraceParseReason| TraceParseError {
            line: i + 1,
            reason,
        };
        let bad = |field: &'static str| err(TraceParseReason::BadField { field });
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 8 {
            return Err(err(TraceParseReason::FieldCount { got: parts.len() }));
        }
        let time: u64 = parts[0].parse().map_err(|_| bad("time"))?;
        let ingress: usize = parts[1].parse().map_err(|_| bad("ingress"))?;
        let proto: u8 = parts[2].parse().map_err(|_| bad("proto"))?;
        let parse_ep = |s: &str| -> Result<(Ipv4Addr, u16), TraceParseError> {
            let (ip, port) = s.rsplit_once(':').ok_or_else(|| bad("endpoint"))?;
            Ok((
                Ipv4Addr::from_str(ip).map_err(|_| bad("ip"))?,
                port.parse().map_err(|_| bad("port"))?,
            ))
        };
        let (src, src_port) = parse_ep(parts[3])?;
        let (dst, dst_port) = parse_ep(parts[4])?;
        let tcp_flags = flags_parse(parts[5]);
        let flow_seq: u32 = parts[6].parse().map_err(|_| bad("seq"))?;
        let payload_len: u16 = parts[7].parse().map_err(|_| bad("payload"))?;
        let rec = ScheduledPacket {
            time: SimTime(time),
            ingress,
            pkt: DataPacket {
                flow: FlowKey {
                    src,
                    dst,
                    src_port,
                    dst_port,
                    proto,
                },
                tcp_flags,
                flow_seq,
                payload_len,
            },
        };
        if let Some(prev) = out.last() {
            if rec.time < prev.time {
                return Err(err(TraceParseReason::TimeRegression {
                    prev: prev.time.nanos(),
                    got: rec.time.nanos(),
                }));
            }
            if rec.time == prev.time && rec.ingress == prev.ingress && rec.pkt == prev.pkt {
                return Err(err(TraceParseReason::DuplicateRecord));
            }
        }
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{EcmpRouter, FlowGen, FlowGenConfig, RoutingMode};

    #[test]
    fn generated_schedule_round_trips() {
        let router = EcmpRouter::new(4, RoutingMode::EcmpStable);
        let sched = FlowGen::new(FlowGenConfig::default(), 5).generate(&router);
        assert!(!sched.is_empty());
        let text = to_text(&sched);
        let back = from_text(&text).unwrap();
        assert_eq!(back.len(), sched.len());
        for (a, b) in sched.iter().zip(back.iter()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.ingress, b.ingress);
            assert_eq!(a.pkt, b.pkt);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n1000 0 17 1.2.3.4:50 5.6.7.8:60 - 0 100\n";
        let s = from_text(text).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].time, SimTime(1000));
        assert_eq!(s[0].pkt.flow.src, Ipv4Addr::new(1, 2, 3, 4));
        assert!(!s[0].pkt.tcp_flags.syn);
    }

    #[test]
    fn flags_round_trip() {
        for raw in [0x00u8, 0x02, 0x12, 0x11, 0x04] {
            let f = TcpFlags::from_raw(raw);
            assert_eq!(flags_parse(&flags_str(f)), f);
        }
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let cases = [
            ("bad\n", 1),
            ("# ok\n1000 0 17 nonsense 5.6.7.8:60 - 0 100\n", 2),
            ("1000 0 17 1.2.3.4:50 5.6.7.8:60 - 0\n", 1), // 7 fields
            ("1000 0 17 1.2.3.4:50 5.6.7.8:xx - 0 100\n", 1),
        ];
        for (text, line) in cases {
            let e = from_text(text).unwrap_err();
            assert_eq!(e.line, line, "for {text:?}");
        }
    }

    #[test]
    fn typed_reasons_survive_matching() {
        let e = from_text("only three fields\n").unwrap_err();
        assert_eq!(e.reason, TraceParseReason::FieldCount { got: 3 });
        let e = from_text("zzz 0 17 1.2.3.4:50 5.6.7.8:60 - 0 100\n").unwrap_err();
        assert_eq!(e.reason, TraceParseReason::BadField { field: "time" });
    }

    #[test]
    fn out_of_order_lines_rejected_with_line_number() {
        let text = "2000 0 17 1.2.3.4:50 5.6.7.8:60 - 0 100\n\
                    1000 0 17 1.2.3.4:51 5.6.7.8:60 - 0 100\n";
        let e = from_text(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(
            e.reason,
            TraceParseReason::TimeRegression {
                prev: 2000,
                got: 1000
            }
        );
    }

    #[test]
    fn consecutive_duplicate_lines_rejected() {
        let text = "# hdr\n1000 0 17 1.2.3.4:50 5.6.7.8:60 - 0 100\n\
                    1000 0 17 1.2.3.4:50 5.6.7.8:60 - 0 100\n";
        let e = from_text(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.reason, TraceParseReason::DuplicateRecord);
        // Same timestamp with any differing field is legal (equal-time
        // records are common in merged schedules).
        let ok = "1000 0 17 1.2.3.4:50 5.6.7.8:60 - 0 100\n\
                  1000 0 17 1.2.3.4:51 5.6.7.8:60 - 0 100\n";
        assert_eq!(from_text(ok).unwrap().len(), 2);
    }
}

//! Packet-schedule trace files: export a generated workload to a plain
//! text format and replay it later, so an experiment's exact traffic can
//! be archived, shared, and re-injected independently of the generator.
//!
//! Format: one packet per line,
//! `time_ns ingress proto src:sport dst:dport flags seq payload`
//! with `#` comments and blank lines ignored.

use super::flowgen::ScheduledPacket;
use std::net::Ipv4Addr;
use std::str::FromStr;
use swishmem_simnet::SimTime;
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::{DataPacket, FlowKey};

/// Errors while parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

fn flags_str(f: TcpFlags) -> String {
    let mut s = String::new();
    if f.syn {
        s.push('S');
    }
    if f.ack {
        s.push('A');
    }
    if f.fin {
        s.push('F');
    }
    if f.rst {
        s.push('R');
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn flags_parse(s: &str) -> TcpFlags {
    TcpFlags {
        syn: s.contains('S'),
        ack: s.contains('A'),
        fin: s.contains('F'),
        rst: s.contains('R'),
    }
}

/// Serialize a schedule to the trace-file text format.
pub fn to_text(sched: &[ScheduledPacket]) -> String {
    let mut out = String::with_capacity(sched.len() * 64);
    out.push_str("# time_ns ingress proto src:sport dst:dport flags seq payload\n");
    for p in sched {
        let f = &p.pkt.flow;
        out.push_str(&format!(
            "{} {} {} {}:{} {}:{} {} {} {}\n",
            p.time.nanos(),
            p.ingress,
            f.proto,
            f.src,
            f.src_port,
            f.dst,
            f.dst_port,
            flags_str(p.pkt.tcp_flags),
            p.pkt.flow_seq,
            p.pkt.payload_len,
        ));
    }
    out
}

/// Parse a trace file back into a schedule.
pub fn from_text(text: &str) -> Result<Vec<ScheduledPacket>, TraceParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| TraceParseError {
            line: i + 1,
            reason: reason.to_string(),
        };
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 8 {
            return Err(err(&format!("expected 8 fields, got {}", parts.len())));
        }
        let time: u64 = parts[0].parse().map_err(|_| err("bad time"))?;
        let ingress: usize = parts[1].parse().map_err(|_| err("bad ingress"))?;
        let proto: u8 = parts[2].parse().map_err(|_| err("bad proto"))?;
        let parse_ep = |s: &str| -> Result<(Ipv4Addr, u16), TraceParseError> {
            let (ip, port) = s.rsplit_once(':').ok_or_else(|| err("bad endpoint"))?;
            Ok((
                Ipv4Addr::from_str(ip).map_err(|_| err("bad ip"))?,
                port.parse().map_err(|_| err("bad port"))?,
            ))
        };
        let (src, src_port) = parse_ep(parts[3])?;
        let (dst, dst_port) = parse_ep(parts[4])?;
        let tcp_flags = flags_parse(parts[5]);
        let flow_seq: u32 = parts[6].parse().map_err(|_| err("bad seq"))?;
        let payload_len: u16 = parts[7].parse().map_err(|_| err("bad payload"))?;
        out.push(ScheduledPacket {
            time: SimTime(time),
            ingress,
            pkt: DataPacket {
                flow: FlowKey {
                    src,
                    dst,
                    src_port,
                    dst_port,
                    proto,
                },
                tcp_flags,
                flow_seq,
                payload_len,
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{EcmpRouter, FlowGen, FlowGenConfig, RoutingMode};

    #[test]
    fn generated_schedule_round_trips() {
        let router = EcmpRouter::new(4, RoutingMode::EcmpStable);
        let sched = FlowGen::new(FlowGenConfig::default(), 5).generate(&router);
        assert!(!sched.is_empty());
        let text = to_text(&sched);
        let back = from_text(&text).unwrap();
        assert_eq!(back.len(), sched.len());
        for (a, b) in sched.iter().zip(back.iter()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.ingress, b.ingress);
            assert_eq!(a.pkt, b.pkt);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n1000 0 17 1.2.3.4:50 5.6.7.8:60 - 0 100\n";
        let s = from_text(text).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].time, SimTime(1000));
        assert_eq!(s[0].pkt.flow.src, Ipv4Addr::new(1, 2, 3, 4));
        assert!(!s[0].pkt.tcp_flags.syn);
    }

    #[test]
    fn flags_round_trip() {
        for raw in [0x00u8, 0x02, 0x12, 0x11, 0x04] {
            let f = TcpFlags::from_raw(raw);
            assert_eq!(flags_parse(&flags_str(f)), f);
        }
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let cases = [
            ("bad\n", 1),
            ("# ok\n1000 0 17 nonsense 5.6.7.8:60 - 0 100\n", 2),
            ("1000 0 17 1.2.3.4:50 5.6.7.8:60 - 0\n", 1), // 7 fields
            ("1000 0 17 1.2.3.4:50 5.6.7.8:xx - 0 100\n", 1),
        ];
        for (text, line) in cases {
            let e = from_text(text).unwrap_err();
            assert_eq!(e.line, line, "for {text:?}");
        }
    }
}

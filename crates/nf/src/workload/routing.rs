//! Ingress routing models: which switch a packet enters the NF fabric
//! through.
//!
//! §3.2's motivation for global state: "it also falls short if a flow is
//! routed through a different switch, something that may occur in various
//! failure scenarios – or in the normal case, if recent proposals for
//! adaptive routing or multi-path TCP are adopted." The router models
//! exactly these: hash-stable ECMP, a multipath mode that re-routes a
//! fraction of packets mid-flow, and failure-driven re-hashing.

use rand::Rng;
use swishmem_wire::FlowKey;

/// Ingress selection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingMode {
    /// Pure ECMP: a flow always enters through `hash(flow) % n`.
    EcmpStable,
    /// Adaptive/multipath: each packet deviates from the flow's primary
    /// switch with probability `flip_prob`.
    Multipath {
        /// Per-packet probability of taking an alternate path.
        flip_prob: f64,
    },
}

/// Maps flows to ingress switches.
#[derive(Debug, Clone)]
pub struct EcmpRouter {
    n_switches: usize,
    mode: RoutingMode,
    /// Switches currently failed (traffic re-hashes away from them).
    failed: Vec<bool>,
}

impl EcmpRouter {
    /// A router over `n_switches` ingress switches.
    pub fn new(n_switches: usize, mode: RoutingMode) -> EcmpRouter {
        assert!(n_switches > 0);
        EcmpRouter {
            n_switches,
            mode,
            failed: vec![false; n_switches],
        }
    }

    /// Mark a switch failed/recovered: flows re-hash around it.
    pub fn set_failed(&mut self, idx: usize, failed: bool) {
        self.failed[idx] = failed;
    }

    fn alive(&self) -> Vec<usize> {
        (0..self.n_switches).filter(|&i| !self.failed[i]).collect()
    }

    /// The flow's primary ingress among alive switches.
    pub fn primary(&self, flow: &FlowKey) -> usize {
        let alive = self.alive();
        assert!(!alive.is_empty(), "all switches failed");
        alive[(flow.hash64() % alive.len() as u64) as usize]
    }

    /// Pick the ingress switch for one packet of `flow`.
    pub fn route<R: Rng + ?Sized>(&self, flow: &FlowKey, rng: &mut R) -> usize {
        let primary = self.primary(flow);
        match self.mode {
            RoutingMode::EcmpStable => primary,
            RoutingMode::Multipath { flip_prob } => {
                let alive = self.alive();
                if alive.len() > 1 && rng.gen::<f64>() < flip_prob {
                    // Deviate to a different alive switch.
                    let alt: Vec<usize> = alive.into_iter().filter(|&i| i != primary).collect();
                    alt[rng.gen_range(0..alt.len())]
                } else {
                    primary
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn flow(port: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            port,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn ecmp_is_stable_per_flow() {
        let r = EcmpRouter::new(4, RoutingMode::EcmpStable);
        let mut rng = StdRng::seed_from_u64(1);
        let f = flow(1234);
        let first = r.route(&f, &mut rng);
        for _ in 0..100 {
            assert_eq!(r.route(&f, &mut rng), first);
        }
    }

    #[test]
    fn ecmp_spreads_flows() {
        let r = EcmpRouter::new(4, RoutingMode::EcmpStable);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for p in 0..64 {
            seen.insert(r.route(&flow(p), &mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn multipath_deviates_at_configured_rate() {
        let r = EcmpRouter::new(4, RoutingMode::Multipath { flip_prob: 0.3 });
        let mut rng = StdRng::seed_from_u64(7);
        let f = flow(99);
        let primary = r.primary(&f);
        let deviations = (0..10_000)
            .filter(|_| r.route(&f, &mut rng) != primary)
            .count();
        assert!((2500..3500).contains(&deviations), "got {deviations}");
    }

    #[test]
    fn failure_rehashes_traffic_away() {
        let mut r = EcmpRouter::new(3, RoutingMode::EcmpStable);
        let mut rng = StdRng::seed_from_u64(1);
        // Find a flow on switch 1, then fail switch 1.
        let f = (0..100).map(flow).find(|f| r.primary(f) == 1).unwrap();
        r.set_failed(1, true);
        let new = r.route(&f, &mut rng);
        assert_ne!(new, 1);
        r.set_failed(1, false);
        assert_eq!(r.primary(&f), 1, "recovery restores the original hash");
    }
}

//! Synthetic workload generation: flows, attacks, ingress routing.

pub mod attack;
pub mod flowgen;
pub mod routing;
pub mod tracefile;
pub mod zipf;

pub use attack::{generate_attack, AttackConfig};
pub use flowgen::{FlowGen, FlowGenConfig, ScheduledPacket};
pub use routing::{EcmpRouter, RoutingMode};
pub use tracefile::{from_text, to_text, TraceParseError, TraceParseReason};
pub use zipf::Zipf;

//! Flow/packet schedule generation: the synthetic stand-in for data
//! center traces (DESIGN.md §2).
//!
//! A [`FlowGen`] produces a deterministic, time-sorted schedule of
//! packets: flows arrive as a Poisson process, carry a geometric number
//! of packets, pick endpoints from configurable pools with Zipf-skewed
//! destination popularity, and enter the fabric through an
//! [`EcmpRouter`]. The experiment harness feeds the schedule straight
//! into `Deployment::inject`.

use super::routing::EcmpRouter;
use super::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use swishmem_simnet::{SimDuration, SimTime};
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::{DataPacket, FlowKey};

/// One scheduled packet.
#[derive(Debug, Clone)]
pub struct ScheduledPacket {
    /// Absolute injection time.
    pub time: SimTime,
    /// Ingress switch index.
    pub ingress: usize,
    /// The packet.
    pub pkt: DataPacket,
}

/// Flow generator configuration.
#[derive(Debug, Clone)]
pub struct FlowGenConfig {
    /// New flows per second.
    pub flow_rate: f64,
    /// Mean packets per flow (geometric distribution).
    pub mean_packets: f64,
    /// Gap between a flow's packets.
    pub packet_gap: SimDuration,
    /// Payload bytes per packet.
    pub payload: u16,
    /// Client address pool size (src = 10.0.x.y).
    pub clients: u32,
    /// Server address pool size (dst = 20.0.x.y).
    pub servers: u32,
    /// Zipf exponent for server popularity.
    pub server_alpha: f64,
    /// TCP if true (SYN first, FIN last), else UDP.
    pub tcp: bool,
    /// Schedule horizon.
    pub duration: SimDuration,
    /// Start offset.
    pub start: SimTime,
}

impl Default for FlowGenConfig {
    fn default() -> Self {
        FlowGenConfig {
            flow_rate: 10_000.0,
            mean_packets: 5.0,
            packet_gap: SimDuration::micros(50),
            payload: 200,
            clients: 1000,
            servers: 100,
            server_alpha: 1.0,
            tcp: true,
            duration: SimDuration::millis(50),
            start: SimTime::ZERO,
        }
    }
}

/// The flow generator.
pub struct FlowGen {
    cfg: FlowGenConfig,
    rng: StdRng,
    zipf: Zipf,
}

impl FlowGen {
    /// A generator with a deterministic seed.
    pub fn new(cfg: FlowGenConfig, seed: u64) -> FlowGen {
        let zipf = Zipf::new(cfg.servers as usize, cfg.server_alpha);
        FlowGen {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            zipf,
        }
    }

    fn client(&mut self) -> (Ipv4Addr, u16) {
        let c = self.rng.gen_range(0..self.cfg.clients);
        let port = self.rng.gen_range(1024..u16::MAX);
        (Ipv4Addr::new(10, 0, (c >> 8) as u8, c as u8), port)
    }

    fn server(&mut self) -> Ipv4Addr {
        let s = self.zipf.sample(&mut self.rng) as u32;
        Ipv4Addr::new(20, 0, (s >> 8) as u8, s as u8)
    }

    /// Geometric packets-per-flow with the configured mean (≥ 1).
    fn flow_len(&mut self) -> u32 {
        let p = 1.0 / self.cfg.mean_packets.max(1.0);
        let mut n = 1u32;
        while self.rng.gen::<f64>() > p && n < 10_000 {
            n += 1;
        }
        n
    }

    /// Generate the full schedule, time-sorted.
    pub fn generate(&mut self, router: &EcmpRouter) -> Vec<ScheduledPacket> {
        let mut out = Vec::new();
        let mut t = self.cfg.start;
        let horizon = self.cfg.start + self.cfg.duration;
        let mean_gap_ns = 1e9 / self.cfg.flow_rate;
        loop {
            // Poisson arrivals: exponential inter-arrival times.
            let u: f64 = self.rng.gen::<f64>().max(1e-12);
            t += SimDuration::nanos((-u.ln() * mean_gap_ns) as u64);
            if t >= horizon {
                break;
            }
            let (src, src_port) = self.client();
            let dst = self.server();
            let flow = if self.cfg.tcp {
                FlowKey::tcp(src, src_port, dst, 80)
            } else {
                FlowKey::udp(src, src_port, dst, 80)
            };
            let n = self.flow_len();
            for i in 0..n {
                let flags = if !self.cfg.tcp {
                    TcpFlags::default()
                } else if i == 0 {
                    TcpFlags::syn()
                } else if i == n - 1 && n > 1 {
                    TcpFlags::fin()
                } else {
                    TcpFlags::data()
                };
                let pkt = DataPacket {
                    flow,
                    tcp_flags: flags,
                    flow_seq: i,
                    payload_len: self.cfg.payload,
                };
                let time = t + self.cfg.packet_gap.times(u64::from(i));
                let ingress = router.route(&flow, &mut self.rng);
                out.push(ScheduledPacket { time, ingress, pkt });
            }
        }
        out.sort_by_key(|p| p.time);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::routing::RoutingMode;

    fn gen(cfg: FlowGenConfig) -> Vec<ScheduledPacket> {
        let router = EcmpRouter::new(4, RoutingMode::EcmpStable);
        FlowGen::new(cfg, 42).generate(&router)
    }

    #[test]
    fn schedule_is_sorted_and_within_horizon() {
        let cfg = FlowGenConfig::default();
        let start = cfg.start;
        let sched = gen(cfg);
        assert!(!sched.is_empty());
        for w in sched.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(sched[0].time >= start);
    }

    #[test]
    fn flow_rate_roughly_matches() {
        let cfg = FlowGenConfig {
            flow_rate: 100_000.0,
            mean_packets: 1.0,
            duration: SimDuration::millis(100),
            ..FlowGenConfig::default()
        };
        let sched = gen(cfg);
        // ~10k flows expected, 1 packet each; all SYN when mean is 1.
        assert!(
            (8_000..12_000).contains(&sched.len()),
            "got {}",
            sched.len()
        );
    }

    #[test]
    fn tcp_flows_open_with_syn() {
        let sched = gen(FlowGenConfig::default());
        for p in &sched {
            if p.pkt.flow_seq == 0 {
                assert!(p.pkt.tcp_flags.syn);
            } else {
                assert!(!p.pkt.tcp_flags.syn);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let router = EcmpRouter::new(2, RoutingMode::EcmpStable);
        let a = FlowGen::new(FlowGenConfig::default(), 7).generate(&router);
        let b = FlowGen::new(FlowGenConfig::default(), 7).generate(&router);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].pkt, b[0].pkt);
        let c = FlowGen::new(FlowGenConfig::default(), 8).generate(&router);
        assert_ne!(a[0].pkt.flow, c[0].pkt.flow);
    }

    #[test]
    fn zipf_skews_server_popularity() {
        let cfg = FlowGenConfig {
            server_alpha: 1.2,
            flow_rate: 50_000.0,
            mean_packets: 1.0,
            ..FlowGenConfig::default()
        };
        let sched = gen(cfg);
        let mut counts = std::collections::HashMap::new();
        for p in &sched {
            *counts.entry(p.pkt.flow.dst).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let avg = sched.len() as u32 / counts.len().max(1) as u32;
        assert!(max > avg * 3, "expected a hot server: max {max}, avg {avg}");
    }
}

//! DDoS attack traffic generation: many spoofed sources flooding one
//! victim, layered over background traffic (for E9 and the mitigation
//! example).

use super::flowgen::ScheduledPacket;
use super::routing::EcmpRouter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use swishmem_simnet::{SimDuration, SimTime};
use swishmem_wire::{DataPacket, FlowKey};

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// The victim destination address.
    pub victim: Ipv4Addr,
    /// Number of (spoofed) attack sources.
    pub attackers: u32,
    /// Aggregate attack packets per second.
    pub rate_pps: f64,
    /// Attack start.
    pub start: SimTime,
    /// Attack length.
    pub duration: SimDuration,
    /// Payload size.
    pub payload: u16,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            victim: Ipv4Addr::new(20, 0, 0, 1),
            attackers: 256,
            rate_pps: 100_000.0,
            start: SimTime::ZERO,
            duration: SimDuration::millis(50),
            payload: 64,
        }
    }
}

/// Generate the attack schedule (uniform inter-packet gaps with jitter,
/// sources cycling through the spoofed pool, ingress via the router).
pub fn generate_attack(cfg: &AttackConfig, router: &EcmpRouter, seed: u64) -> Vec<ScheduledPacket> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (cfg.rate_pps * cfg.duration.as_secs_f64()) as u64;
    let gap_ns = (cfg.duration.as_nanos() / n.max(1)).max(1);
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        let a = rng.gen_range(0..cfg.attackers);
        let src = Ipv4Addr::new(66, (a >> 16) as u8, (a >> 8) as u8, a as u8);
        let flow = FlowKey::udp(src, rng.gen_range(1024..u16::MAX), cfg.victim, 80);
        let jitter = rng.gen_range(0..gap_ns / 2 + 1);
        let time = cfg.start + SimDuration::nanos(i * gap_ns + jitter);
        let ingress = router.route(&flow, &mut rng);
        out.push(ScheduledPacket {
            time,
            ingress,
            pkt: DataPacket::udp(flow, 0, cfg.payload),
        });
    }
    out.sort_by_key(|p| p.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::routing::RoutingMode;

    #[test]
    fn attack_targets_victim_at_rate() {
        let cfg = AttackConfig {
            rate_pps: 10_000.0,
            ..AttackConfig::default()
        };
        let router = EcmpRouter::new(4, RoutingMode::EcmpStable);
        let sched = generate_attack(&cfg, &router, 1);
        assert_eq!(sched.len(), 500); // 10k pps × 50 ms
        assert!(sched.iter().all(|p| p.pkt.flow.dst == cfg.victim));
        // Spread across all ingress switches (spoofed sources hash widely).
        let switches: std::collections::HashSet<usize> = sched.iter().map(|p| p.ingress).collect();
        assert_eq!(switches.len(), 4);
    }

    #[test]
    fn attack_schedule_is_deterministic_per_seed() {
        // The generator is part of the replay determinism contract:
        // (config, seed) must pin the schedule bit-for-bit.
        let cfg = AttackConfig::default();
        let router = EcmpRouter::new(4, RoutingMode::EcmpStable);
        let a = generate_attack(&cfg, &router, 9);
        let b = generate_attack(&cfg, &router, 9);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.time == y.time && x.ingress == y.ingress && x.pkt == y.pkt));
        let c = generate_attack(&cfg, &router, 10);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.pkt != y.pkt),
            "a different seed must perturb the schedule"
        );
    }

    #[test]
    fn schedule_sorted_within_window() {
        let cfg = AttackConfig::default();
        let router = EcmpRouter::new(2, RoutingMode::EcmpStable);
        let sched = generate_attack(&cfg, &router, 2);
        for w in sched.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(sched.last().unwrap().time < cfg.start + cfg.duration + SimDuration::millis(1));
    }
}

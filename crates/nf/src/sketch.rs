//! Count-min sketch: the approximate frequency structure DDoS detection
//! offloads to switches (§4.2, citing Lapolli et al.).
//!
//! Two forms live here:
//! * deterministic row-hash functions ([`cm_hash`]) used by the in-switch
//!   sketch, whose rows are EWO G-counter registers;
//! * a pure [`CmSketch`] oracle with identical hashing, used by tests and
//!   the E9 experiment to quantify in-switch accuracy.

/// Deterministic hash for sketch row `row` over a 64-bit key: FNV-1a over
/// the key bytes with a per-row seed, mixed with a final avalanche.
pub fn cm_hash(row: usize, key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ ((row as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for b in key.to_be_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Final avalanche (xorshift-multiply) so low bits are well mixed.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// A pure count-min sketch with `depth` rows of `width` counters.
#[derive(Debug, Clone)]
pub struct CmSketch {
    depth: usize,
    width: usize,
    rows: Vec<Vec<u64>>,
}

impl CmSketch {
    /// A sketch with `depth` rows and `width` columns.
    pub fn new(depth: usize, width: usize) -> CmSketch {
        assert!(depth > 0 && width > 0);
        CmSketch {
            depth,
            width,
            rows: vec![vec![0; width]; depth],
        }
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Column index of `key` in `row`.
    pub fn index(&self, row: usize, key: u64) -> usize {
        (cm_hash(row, key) % self.width as u64) as usize
    }

    /// Add `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        for r in 0..self.depth {
            let i = self.index(r, key);
            self.rows[r][i] += count;
        }
    }

    /// Point estimate of `key`'s frequency (never under-counts).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|r| self.rows[r][self.index(r, key)])
            .min()
            .unwrap_or(0)
    }

    /// Merge another sketch (same dimensions) by element-wise addition —
    /// valid because each switch's sketch counts disjoint packets.
    pub fn merge_add(&mut self, other: &CmSketch) {
        assert_eq!((self.depth, self.width), (other.depth, other.width));
        for r in 0..self.depth {
            for i in 0..self.width {
                self.rows[r][i] += other.rows[r][i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_row_dependent() {
        assert_eq!(cm_hash(0, 42), cm_hash(0, 42));
        assert_ne!(cm_hash(0, 42), cm_hash(1, 42));
        assert_ne!(cm_hash(0, 42), cm_hash(0, 43));
    }

    #[test]
    fn estimate_never_undercounts() {
        let mut s = CmSketch::new(4, 64);
        for k in 0..100u64 {
            s.add(k, k + 1);
        }
        for k in 0..100u64 {
            assert!(s.estimate(k) > k, "undercount for {k}");
        }
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut s = CmSketch::new(4, 4096);
        s.add(7, 10);
        s.add(9, 3);
        assert_eq!(s.estimate(7), 10);
        assert_eq!(s.estimate(9), 3);
        assert_eq!(s.estimate(1234), 0);
    }

    #[test]
    fn merge_add_sums_counts() {
        let mut a = CmSketch::new(2, 128);
        let mut b = CmSketch::new(2, 128);
        a.add(5, 10);
        b.add(5, 7);
        b.add(6, 1);
        a.merge_add(&b);
        assert_eq!(a.estimate(5), 17);
        assert_eq!(a.estimate(6), 1);
    }

    #[test]
    fn heavy_hitter_dominates_noise() {
        let mut s = CmSketch::new(4, 256);
        for k in 0..200u64 {
            s.add(k, 1);
        }
        s.add(999, 1000);
        assert!(s.estimate(999) >= 1000);
        // Noise keys stay far below the heavy hitter.
        let max_noise = (0..200u64).map(|k| s.estimate(k)).max().unwrap();
        assert!(max_noise < 100, "noise estimate too high: {max_noise}");
    }
}

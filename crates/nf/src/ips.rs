//! Intrusion Prevention System (Table 1, row 3).
//!
//! "Monitors traffic by continuously computing packet signatures and
//! matching against known suspicious signatures. In case of too many
//! matches, traffic is dropped to prevent the intrusion. This application
//! can tolerate some transient inconsistencies" (§4.1) — hence the
//! signature table is **ERO** (rarely written, read per packet, weak
//! consistency acceptable) and the match counter is an **EWO** G-counter.
//!
//! Signatures here are a hash over `(dst_port, payload_len)` — a stand-in
//! for content hashing, which a PISA parser would compute over header
//! fields anyway. Operators install signatures by sending admin packets
//! from a designated source port.

use std::cell::RefCell;
use std::rc::Rc;
use swishmem::{NfApp, NfDecision, SharedState};
use swishmem_wire::swish::RegId;
use swishmem_wire::{DataPacket, NodeId};

/// Observable IPS behaviour.
#[derive(Debug, Default)]
pub struct IpsStats {
    /// Packets that matched a signature.
    pub matches: u64,
    /// Packets dropped by prevention (global matches above threshold).
    pub prevented: u64,
    /// Signatures installed through this instance.
    pub installs: u64,
}

/// Shared handle to [`IpsStats`].
pub type IpsStatsHandle = Rc<RefCell<IpsStats>>;

/// IPS configuration.
#[derive(Debug, Clone)]
pub struct IpsConfig {
    /// ERO register: signature table (1 = malicious).
    pub sig_reg: RegId,
    /// EWO G-counter register: global match counter (key 0).
    pub match_reg: RegId,
    /// Keys in the signature table.
    pub keys: u32,
    /// Drop traffic matching a signature once the *global* match count
    /// exceeds this.
    pub prevention_threshold: u64,
    /// Admin packets (signature installs) come from this source port.
    pub admin_port: u16,
    /// Where clean traffic goes.
    pub egress_host: NodeId,
}

/// Compute a packet's signature key.
pub fn signature(pkt: &DataPacket, keys: u32) -> u32 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    h ^= u64::from(pkt.flow.dst_port);
    h = h.wrapping_mul(0x1000_0000_01b3);
    h ^= u64::from(pkt.payload_len);
    h = h.wrapping_mul(0x1000_0000_01b3);
    (h % u64::from(keys)) as u32
}

/// The IPS network function.
pub struct Ips {
    cfg: IpsConfig,
    stats: IpsStatsHandle,
}

impl Ips {
    /// Build an IPS instance.
    pub fn new(cfg: IpsConfig, stats: IpsStatsHandle) -> Ips {
        Ips { cfg, stats }
    }
}

impl NfApp for Ips {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        if pkt.flow.src_port == self.cfg.admin_port {
            // Operator install: payload describes the signature; the
            // admin packet itself carries the pattern to blacklist.
            let sig = signature(pkt, self.cfg.keys);
            st.write(self.cfg.sig_reg, sig, 1);
            self.stats.borrow_mut().installs += 1;
            return NfDecision::Drop; // consumed by the switch
        }
        let sig = signature(pkt, self.cfg.keys);
        if st.read(self.cfg.sig_reg, sig) == 1 {
            self.stats.borrow_mut().matches += 1;
            st.add(self.cfg.match_reg, 0, 1);
            if st.read(self.cfg.match_reg, 0) > self.cfg.prevention_threshold {
                self.stats.borrow_mut().prevented += 1;
                return NfDecision::Drop;
            }
        }
        NfDecision::Forward {
            dst: self.cfg.egress_host,
            pkt: *pkt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use swishmem::prelude::*;
    use swishmem::RegisterSpec;
    use swishmem_wire::FlowKey;

    fn config() -> IpsConfig {
        IpsConfig {
            sig_reg: 0,
            match_reg: 1,
            keys: 512,
            prevention_threshold: 5,
            admin_port: 9999,
            egress_host: NodeId(swishmem::HOST_BASE),
        }
    }

    fn deployment(n: usize) -> (Deployment, Vec<IpsStatsHandle>) {
        let stats: Vec<IpsStatsHandle> = (0..n).map(|_| IpsStatsHandle::default()).collect();
        let s2 = stats.clone();
        let dep = DeploymentBuilder::new(n)
            .hosts(1)
            .register(RegisterSpec::ero(0, "ips_sigs", 512))
            .register(RegisterSpec::ewo_counter(1, "ips_matches", 4))
            .build(move |id| Box::new(Ips::new(config(), s2[id.index()].clone())));
        (dep, stats)
    }

    fn attack_pkt(src_port: u16) -> DataPacket {
        DataPacket::udp(
            FlowKey::udp(
                Ipv4Addr::new(66, 6, 6, 6),
                src_port,
                Ipv4Addr::new(10, 0, 0, 1),
                31337,
            ),
            0,
            666,
        )
    }

    #[test]
    fn signatures_replicate_and_prevention_trips_globally() {
        let (mut dep, stats) = deployment(3);
        dep.settle();
        // Install the signature via switch 0 only.
        let t = dep.now();
        dep.inject(t, 0, 0, attack_pkt(9999));
        dep.run_for(SimDuration::millis(30));
        // Attack packets hit ALL switches; matches accumulate globally.
        let t = dep.now();
        for i in 0..12u64 {
            dep.inject(
                t + SimDuration::micros(i * 200),
                (i % 3) as usize,
                0,
                attack_pkt(1000 + i as u16),
            );
        }
        dep.run_for(SimDuration::millis(30));
        let total_matches: u64 = stats.iter().map(|s| s.borrow().matches).sum();
        let total_prevented: u64 = stats.iter().map(|s| s.borrow().prevented).sum();
        assert_eq!(total_matches, 12, "signature should match on every switch");
        assert!(
            total_prevented > 0,
            "prevention threshold should trip from global count"
        );
        assert!(
            total_prevented < 12,
            "early packets pass before the threshold"
        );
    }

    #[test]
    fn clean_traffic_passes() {
        let (mut dep, stats) = deployment(2);
        dep.settle();
        let t = dep.now();
        let clean = DataPacket::udp(
            FlowKey::udp(
                Ipv4Addr::new(1, 2, 3, 4),
                1234,
                Ipv4Addr::new(10, 0, 0, 1),
                80,
            ),
            0,
            100,
        );
        dep.inject(t, 0, 0, clean);
        dep.run_for(SimDuration::millis(10));
        assert_eq!(dep.recording(0).borrow().len(), 1);
        assert_eq!(stats[0].borrow().matches, 0);
    }

    #[test]
    fn signature_is_deterministic() {
        let p = attack_pkt(1);
        assert_eq!(signature(&p, 512), signature(&p, 512));
    }
}

//! Per-user rate limiter (Table 1, row 6).
//!
//! "Monitor and restrict the aggregated bandwidth of flows that belong to
//! a given user. The application maintains a per-user meter that is
//! updated on every packet. Periodically, the meters are read to identify
//! users exceeding their bandwidth limit ... it is acceptable for a few
//! additional packets to go through immediately after the user reaches
//! the bandwidth limit" (§4.2).
//!
//! The per-user byte counter is an EWO *windowed* counter: each window
//! epoch resets the count, within a window per-switch slots merge by max
//! and read as a sum — so the enforced limit is the user's **aggregate**
//! bandwidth across all ingress switches, converging within a sync
//! period.

use std::cell::RefCell;
use std::rc::Rc;
use swishmem::{NfApp, NfDecision, SharedState};
use swishmem_wire::swish::RegId;
use swishmem_wire::{DataPacket, NodeId};

/// Observable limiter behaviour.
#[derive(Debug, Default)]
pub struct RateLimitStats {
    /// Packets admitted.
    pub admitted: u64,
    /// Bytes admitted.
    pub admitted_bytes: u64,
    /// Packets dropped over-limit.
    pub dropped: u64,
}

/// Shared handle to [`RateLimitStats`].
pub type RateLimitStatsHandle = Rc<RefCell<RateLimitStats>>;

/// Rate limiter configuration.
#[derive(Debug, Clone)]
pub struct RateLimitConfig {
    /// EWO windowed register: per-user byte count in the current window.
    pub meter_reg: RegId,
    /// Keys (user buckets).
    pub keys: u32,
    /// Byte budget per user per window.
    pub bytes_per_window: u64,
    /// Egress for admitted traffic.
    pub egress_host: NodeId,
}

/// Map a packet to its user bucket (by source address).
pub fn user_key(pkt: &DataPacket, keys: u32) -> u32 {
    u32::from(pkt.flow.src) % keys
}

/// The rate limiter NF.
pub struct RateLimiter {
    cfg: RateLimitConfig,
    stats: RateLimitStatsHandle,
}

impl RateLimiter {
    /// Build a limiter instance.
    pub fn new(cfg: RateLimitConfig, stats: RateLimitStatsHandle) -> RateLimiter {
        RateLimiter { cfg, stats }
    }
}

impl NfApp for RateLimiter {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        let key = user_key(pkt, self.cfg.keys);
        let wire_bytes = pkt.wire_len() as u64;
        let used = st.read(self.cfg.meter_reg, key);
        if used >= self.cfg.bytes_per_window {
            self.stats.borrow_mut().dropped += 1;
            return NfDecision::Drop;
        }
        st.add(self.cfg.meter_reg, key, wire_bytes as i64);
        let mut s = self.stats.borrow_mut();
        s.admitted += 1;
        s.admitted_bytes += wire_bytes;
        NfDecision::Forward {
            dst: self.cfg.egress_host,
            pkt: *pkt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use swishmem::prelude::*;
    use swishmem::RegisterSpec;
    use swishmem_wire::FlowKey;

    fn config() -> RateLimitConfig {
        RateLimitConfig {
            meter_reg: 0,
            keys: 64,
            bytes_per_window: 1000,
            egress_host: NodeId(swishmem::HOST_BASE),
        }
    }

    fn deployment(n: usize, window: SimDuration) -> (Deployment, Vec<RateLimitStatsHandle>) {
        let stats: Vec<RateLimitStatsHandle> =
            (0..n).map(|_| RateLimitStatsHandle::default()).collect();
        let s2 = stats.clone();
        let dep = DeploymentBuilder::new(n)
            .hosts(1)
            .register(RegisterSpec::ewo_windowed(0, "meters", 64, window))
            .build(move |id| Box::new(RateLimiter::new(config(), s2[id.index()].clone())));
        (dep, stats)
    }

    fn user_pkt(user: Ipv4Addr, seq: u32) -> DataPacket {
        DataPacket::udp(
            FlowKey::udp(user, 1000, Ipv4Addr::new(99, 9, 9, 9), 80),
            seq,
            72,
        )
        // 72 B payload → wire_len 100 B (20 ip + 8 udp + 72)
    }

    #[test]
    fn user_limited_across_switches() {
        let (mut dep, stats) = deployment(2, SimDuration::secs(10));
        dep.settle();
        let user = Ipv4Addr::new(10, 0, 0, 1);
        let t = dep.now();
        // 30 × 100 B alternating between switches: only ~1000 B should
        // pass (plus a small eventual-consistency overshoot).
        for i in 0..30u64 {
            dep.inject(
                t + SimDuration::millis(i),
                (i % 2) as usize,
                0,
                user_pkt(user, i as u32),
            );
        }
        dep.run_for(SimDuration::millis(100));
        let admitted: u64 = stats.iter().map(|s| s.borrow().admitted_bytes).sum();
        assert!(admitted >= 1000, "limit enforced too early: {admitted}");
        assert!(
            admitted <= 1400,
            "aggregate enforcement failed; admitted {admitted} B (limit 1000 + slack)"
        );
        let dropped: u64 = stats.iter().map(|s| s.borrow().dropped).sum();
        assert!(dropped >= 16);
    }

    #[test]
    fn budget_resets_each_window() {
        let window = SimDuration::millis(50);
        let (mut dep, stats) = deployment(1, window);
        dep.settle();
        let user = Ipv4Addr::new(10, 0, 0, 2);
        // Fill the budget this window.
        let t = dep.now();
        for i in 0..12u64 {
            dep.inject(
                t + SimDuration::micros(i * 10),
                0,
                0,
                user_pkt(user, i as u32),
            );
        }
        dep.run_for(SimDuration::millis(5));
        let before = stats[0].borrow().admitted;
        assert!((10..=11).contains(&before), "got {before}");
        // Next window: budget is fresh.
        dep.run_for(window);
        let t = dep.now();
        for i in 0..5u64 {
            dep.inject(
                t + SimDuration::micros(i * 10),
                0,
                0,
                user_pkt(user, 100 + i as u32),
            );
        }
        dep.run_for(SimDuration::millis(5));
        assert_eq!(stats[0].borrow().admitted, before + 5);
    }

    #[test]
    fn other_users_unaffected() {
        let (mut dep, stats) = deployment(1, SimDuration::secs(10));
        dep.settle();
        let hog = Ipv4Addr::new(10, 0, 0, 3);
        let quiet = Ipv4Addr::new(10, 0, 0, 4);
        let t = dep.now();
        for i in 0..20u64 {
            dep.inject(
                t + SimDuration::micros(i * 100),
                0,
                0,
                user_pkt(hog, i as u32),
            );
        }
        dep.inject(t + SimDuration::millis(5), 0, 0, user_pkt(quiet, 0));
        dep.run_for(SimDuration::millis(20));
        assert!(stats[0].borrow().dropped > 0, "hog should be limited");
        // The quiet user's single packet went through (20 hog packets at
        // 100 B hit the 1000 B limit; quiet's bucket is separate).
        assert!(stats[0].borrow().admitted >= 11);
    }
}

//! Network-wide heavy-hitter detection without a central controller.
//!
//! §8 (related work): "Harrison et al. propose a distributed
//! heavy-hitters detection algorithm that minimizes the communication
//! overheads between the switches and the controller. Switches maintain
//! local counters and use them to trigger updates to a centralized
//! controller. SwiShmem can be used to implement similar algorithms while
//! eliminating the need for a centralized controller, thus potentially
//! providing faster response."
//!
//! This NF realizes that suggestion: per-flow-aggregate byte counters are
//! EWO G-counters, so every switch reads the *network-wide* count
//! directly from its data plane and flags a heavy hitter the moment the
//! global count crosses the threshold — no controller round-trip.

use std::cell::RefCell;
use std::rc::Rc;
use swishmem::{NfApp, NfDecision, SharedState};
use swishmem_simnet::SimTime;
use swishmem_wire::swish::RegId;
use swishmem_wire::{DataPacket, NodeId};

/// Observable detector behaviour.
#[derive(Debug, Default)]
pub struct HhStats {
    /// Packets processed.
    pub packets: u64,
    /// Keys this switch has flagged as heavy hitters, with the time of
    /// first flagging (ns).
    pub flagged: Vec<(u32, u64)>,
}

impl HhStats {
    /// Has `key` been flagged here?
    pub fn is_flagged(&self, key: u32) -> bool {
        self.flagged.iter().any(|&(k, _)| k == key)
    }
}

/// Shared handle to [`HhStats`].
pub type HhStatsHandle = Rc<RefCell<HhStats>>;

/// Heavy-hitter detector configuration.
#[derive(Debug, Clone)]
pub struct HhConfig {
    /// EWO G-counter register: per-aggregate byte counts.
    pub count_reg: RegId,
    /// Keys (aggregate buckets; keyed by destination here).
    pub keys: u32,
    /// Byte threshold above which an aggregate is a heavy hitter.
    pub threshold_bytes: u64,
    /// Egress host for all traffic (detection only, no policing).
    pub egress_host: NodeId,
}

/// Map a packet to its aggregate bucket (destination address).
pub fn hh_key(pkt: &DataPacket, keys: u32) -> u32 {
    u32::from(pkt.flow.dst) % keys
}

/// The heavy-hitter detector NF.
pub struct HeavyHitter {
    cfg: HhConfig,
    stats: HhStatsHandle,
}

impl HeavyHitter {
    /// Build a detector instance.
    pub fn new(cfg: HhConfig, stats: HhStatsHandle) -> HeavyHitter {
        HeavyHitter { cfg, stats }
    }

    fn flag(&self, key: u32, now: SimTime) {
        let mut s = self.stats.borrow_mut();
        if !s.is_flagged(key) {
            s.flagged.push((key, now.nanos()));
        }
    }
}

impl NfApp for HeavyHitter {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        self.stats.borrow_mut().packets += 1;
        let key = hh_key(pkt, self.cfg.keys);
        st.add(self.cfg.count_reg, key, pkt.wire_len() as i64);
        if st.read(self.cfg.count_reg, key) > self.cfg.threshold_bytes {
            self.flag(key, st.now());
        }
        NfDecision::Forward {
            dst: self.cfg.egress_host,
            pkt: *pkt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use swishmem::prelude::*;
    use swishmem::RegisterSpec;
    use swishmem_wire::FlowKey;

    fn config() -> HhConfig {
        HhConfig {
            count_reg: 0,
            keys: 256,
            threshold_bytes: 4_000,
            egress_host: NodeId(swishmem::HOST_BASE),
        }
    }

    fn deployment(n: usize) -> (Deployment, Vec<HhStatsHandle>) {
        let stats: Vec<HhStatsHandle> = (0..n).map(|_| HhStatsHandle::default()).collect();
        let s2 = stats.clone();
        let dep = DeploymentBuilder::new(n)
            .hosts(1)
            .register(RegisterSpec::ewo_counter(0, "hh", 256))
            .build(move |id| Box::new(HeavyHitter::new(config(), s2[id.index()].clone())));
        (dep, stats)
    }

    fn to_dst(dst: Ipv4Addr, sport: u16) -> DataPacket {
        DataPacket::udp(
            FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), sport, dst, 80),
            0,
            100,
        )
        // 128 B on the wire
    }

    #[test]
    fn network_wide_heavy_hitter_flagged_on_every_switch() {
        let (mut dep, stats) = deployment(4);
        dep.settle();
        let hot = Ipv4Addr::new(20, 0, 0, 1);
        let key = u32::from(hot) % 256;
        let t = dep.now();
        // 48 × 128 B to the hot destination, spread over 4 switches: each
        // switch locally sees only ~1.5 KB — below the 4 KB threshold —
        // but the global count crosses it.
        for i in 0..48u64 {
            dep.inject(
                t + SimDuration::micros(i * 50),
                (i % 4) as usize,
                0,
                to_dst(hot, 1000 + i as u16),
            );
        }
        dep.run_for(SimDuration::millis(30));
        for (i, s) in stats.iter().enumerate() {
            assert!(
                s.borrow().is_flagged(key),
                "switch {i} missed the heavy hitter"
            );
        }
        // Global count is exact.
        assert_eq!(dep.peek(0, 0, key), 48 * 128);
    }

    #[test]
    fn mice_are_not_flagged() {
        let (mut dep, stats) = deployment(2);
        dep.settle();
        let t = dep.now();
        for i in 0..40u64 {
            let dst = Ipv4Addr::new(30, 0, 0, (i % 40) as u8);
            dep.inject(
                t + SimDuration::micros(i * 50),
                (i % 2) as usize,
                0,
                to_dst(dst, 2000),
            );
        }
        dep.run_for(SimDuration::millis(20));
        for s in &stats {
            assert!(s.borrow().flagged.is_empty(), "mouse flow wrongly flagged");
        }
    }

    #[test]
    fn detection_is_faster_than_a_controller_round_trip_would_allow() {
        // The switch that receives the threshold-crossing packet flags
        // immediately (same packet), and remote switches flag within the
        // eager-mirror propagation delay — microseconds, not the
        // milliseconds a controller-mediated trigger would need.
        let (mut dep, stats) = deployment(2);
        dep.settle();
        let hot = Ipv4Addr::new(20, 0, 0, 2);
        let key = u32::from(hot) % 256;
        let t = dep.now();
        // Push everything through switch 0 quickly.
        for i in 0..40u64 {
            dep.inject(
                t + SimDuration::micros(i),
                0,
                0,
                to_dst(hot, 3000 + i as u16),
            );
        }
        // A single probe packet at switch 1 shortly after.
        dep.inject(t + SimDuration::micros(100), 1, 0, to_dst(hot, 9999));
        dep.run_for(SimDuration::millis(10));
        let f0 = stats[0]
            .borrow()
            .flagged
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, t)| t);
        let f1 = stats[1]
            .borrow()
            .flagged
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, t)| t);
        let f0 = f0.expect("ingress switch flags");
        let f1 = f1.expect("remote switch flags via replicated counter");
        assert!(
            f1 - f0 < 1_000_000,
            "remote flagging should lag by <1 ms, got {} ns",
            f1 - f0
        );
    }
}

//! Network Address Translator (Table 1, row 1).
//!
//! State: a translation table shared by all NF instances — "queried on
//! every packet, but only updated when a new connection is opened; table
//! rows require strong consistency, otherwise leading to broken client
//! connections in case of multi-path routing or switch failure" (§4.1).
//!
//! Two SRO registers implement the table: `fwd` maps a flow-key hash to
//! the allocated external port, `rev` maps an external port back to the
//! internal endpoint. Port pools are *not* shared: "different port ranges
//! can be assigned to different switches to avoid sharing this state" —
//! each switch allocates from its own disjoint range out of app-local
//! state.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use swishmem::{NfApp, NfDecision, SharedState};
use swishmem_wire::swish::RegId;
use swishmem_wire::{DataPacket, FlowKey, NodeId};

/// Observable NAT behaviour (shared with the experiment harness).
#[derive(Debug, Default)]
pub struct NatStats {
    /// New translations allocated.
    pub allocations: u64,
    /// Outbound packets translated via an existing mapping.
    pub outbound_hits: u64,
    /// Inbound packets translated back successfully.
    pub inbound_hits: u64,
    /// Inbound packets dropped for lack of a mapping — the broken-client
    /// signal the paper's strong-consistency requirement prevents.
    pub inbound_misses: u64,
}

/// Shared handle to [`NatStats`].
pub type NatStatsHandle = Rc<RefCell<NatStats>>;

/// NAT configuration.
#[derive(Debug, Clone)]
pub struct NatConfig {
    /// SRO register holding flow-hash → external-port.
    pub fwd_reg: RegId,
    /// SRO register holding external-port-index → internal endpoint.
    pub rev_reg: RegId,
    /// Keys in each register.
    pub keys: u32,
    /// The NAT's public address.
    pub nat_ip: Ipv4Addr,
    /// Inside network prefix (first octet match, e.g. 10.0.0.0/8).
    pub inside_octet: u8,
    /// Ports allocated per switch (switch `i` owns
    /// `[base + i*ports_per_switch, ...)`).
    pub ports_per_switch: u16,
    /// First allocatable port.
    pub port_base: u16,
    /// Host that plays "the outside world".
    pub outside_host: NodeId,
    /// Host that plays "the inside network".
    pub inside_host: NodeId,
}

/// The NAT network function.
pub struct Nat {
    cfg: NatConfig,
    next_port_off: u16,
    stats: NatStatsHandle,
}

impl Nat {
    /// Build a NAT instance with shared stats.
    pub fn new(cfg: NatConfig, stats: NatStatsHandle) -> Nat {
        Nat {
            cfg,
            next_port_off: 0,
            stats,
        }
    }

    fn is_inside(&self, ip: Ipv4Addr) -> bool {
        ip.octets()[0] == self.cfg.inside_octet
    }

    fn alloc_port(&mut self, me: NodeId) -> u16 {
        let base = self.cfg.port_base + me.0 * self.cfg.ports_per_switch;
        let p = base + (self.next_port_off % self.cfg.ports_per_switch);
        self.next_port_off = self.next_port_off.wrapping_add(1);
        p
    }

    fn fwd_key(&self, flow: &FlowKey) -> u32 {
        (flow.hash64() % u64::from(self.cfg.keys)) as u32
    }

    fn rev_key(&self, port: u16) -> u32 {
        u32::from(port) % self.cfg.keys
    }
}

fn pack_endpoint(ip: Ipv4Addr, port: u16) -> u64 {
    (u64::from(u32::from(ip)) << 16) | u64::from(port)
}

fn unpack_endpoint(v: u64) -> (Ipv4Addr, u16) {
    (Ipv4Addr::from((v >> 16) as u32), (v & 0xffff) as u16)
}

impl NfApp for Nat {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        if self.is_inside(pkt.flow.src) {
            // Outbound: translate source to (nat_ip, external port).
            let key = self.fwd_key(&pkt.flow);
            let mut ext = st.read(self.cfg.fwd_reg, key);
            if ext == 0 {
                let p = self.alloc_port(st.self_id());
                ext = u64::from(p);
                st.write(self.cfg.fwd_reg, key, ext);
                st.write(
                    self.cfg.rev_reg,
                    self.rev_key(p),
                    pack_endpoint(pkt.flow.src, pkt.flow.src_port),
                );
                self.stats.borrow_mut().allocations += 1;
            } else {
                self.stats.borrow_mut().outbound_hits += 1;
            }
            let mut out = *pkt;
            out.flow.src = self.cfg.nat_ip;
            out.flow.src_port = (ext & 0xffff) as u16;
            NfDecision::Forward {
                dst: self.cfg.outside_host,
                pkt: out,
            }
        } else if pkt.flow.dst == self.cfg.nat_ip {
            // Inbound: translate destination back to the inside endpoint.
            let v = st.read(self.cfg.rev_reg, self.rev_key(pkt.flow.dst_port));
            if v == 0 {
                // No mapping here: the connection breaks (§4.1).
                self.stats.borrow_mut().inbound_misses += 1;
                return NfDecision::Drop;
            }
            self.stats.borrow_mut().inbound_hits += 1;
            let (ip, port) = unpack_endpoint(v);
            let mut out = *pkt;
            out.flow.dst = ip;
            out.flow.dst_port = port;
            NfDecision::Forward {
                dst: self.cfg.inside_host,
                pkt: out,
            }
        } else {
            // Transit traffic not addressed to the NAT.
            NfDecision::Forward {
                dst: self.cfg.outside_host,
                pkt: *pkt,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swishmem::prelude::*;
    use swishmem::RegisterSpec;
    use swishmem_simnet::SimDuration;

    fn config() -> NatConfig {
        NatConfig {
            fwd_reg: 0,
            rev_reg: 1,
            keys: 256,
            nat_ip: Ipv4Addr::new(203, 0, 113, 1),
            inside_octet: 10,
            ports_per_switch: 1000,
            port_base: 10000,
            outside_host: NodeId(swishmem::HOST_BASE),
            inside_host: NodeId(swishmem::HOST_BASE + 1),
        }
    }

    fn deployment(n: usize) -> (Deployment, Vec<NatStatsHandle>) {
        let stats: Vec<NatStatsHandle> = (0..n).map(|_| NatStatsHandle::default()).collect();
        let stats2 = stats.clone();
        let dep = DeploymentBuilder::new(n)
            .hosts(2)
            .register(RegisterSpec::sro(0, "nat_fwd", 256))
            .register(RegisterSpec::sro(1, "nat_rev", 256))
            .build(move |id| Box::new(Nat::new(config(), stats2[id.index()].clone())));
        (dep, stats)
    }

    fn outbound(src_port: u16) -> DataPacket {
        DataPacket::udp(
            FlowKey::udp(
                Ipv4Addr::new(10, 0, 0, 5),
                src_port,
                Ipv4Addr::new(8, 8, 8, 8),
                53,
            ),
            0,
            64,
        )
    }

    #[test]
    fn outbound_allocates_and_translates() {
        let (mut dep, stats) = deployment(3);
        dep.settle();
        let t = dep.now();
        dep.inject(t, 0, 1, outbound(5555));
        dep.run_for(SimDuration::millis(20));
        // The translated packet reached the outside host with NAT source.
        let log = dep.recording(0).borrow();
        assert_eq!(log.len(), 1);
        let swishmem_wire::PacketBody::Data(d) = &log[0].1.body else {
            panic!()
        };
        assert_eq!(d.flow.src, Ipv4Addr::new(203, 0, 113, 1));
        assert!(d.flow.src_port >= 10000);
        assert_eq!(stats[0].borrow().allocations, 1);
    }

    #[test]
    fn inbound_translates_back_from_any_switch() {
        let (mut dep, stats) = deployment(3);
        dep.settle();
        let t = dep.now();
        dep.inject(t, 0, 1, outbound(5555));
        dep.run_for(SimDuration::millis(30));
        // Find the allocated external port from the outside host's view.
        let ext_port = {
            let log = dep.recording(0).borrow();
            let swishmem_wire::PacketBody::Data(d) = &log[0].1.body else {
                panic!()
            };
            d.flow.src_port
        };
        // Reply arrives at a DIFFERENT switch (multipath): mapping must be
        // there thanks to SRO replication.
        let reply = DataPacket::udp(
            FlowKey::udp(
                Ipv4Addr::new(8, 8, 8, 8),
                53,
                Ipv4Addr::new(203, 0, 113, 1),
                ext_port,
            ),
            0,
            64,
        );
        let t = dep.now();
        dep.inject(t, 2, 0, reply);
        dep.run_for(SimDuration::millis(20));
        let log = dep.recording(1).borrow();
        assert_eq!(log.len(), 1, "reply should reach the inside host");
        let swishmem_wire::PacketBody::Data(d) = &log[0].1.body else {
            panic!()
        };
        assert_eq!(d.flow.dst, Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(d.flow.dst_port, 5555);
        assert_eq!(stats[2].borrow().inbound_hits, 1);
        assert_eq!(stats[2].borrow().inbound_misses, 0);
    }

    #[test]
    fn port_ranges_are_disjoint_across_switches() {
        let cfg = config();
        let mut nats: Vec<Nat> = (0..3)
            .map(|_| Nat::new(cfg.clone(), NatStatsHandle::default()))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for (i, nat) in nats.iter_mut().enumerate() {
            for _ in 0..100 {
                let p = nat.alloc_port(NodeId(i as u16));
                assert!(seen.insert(p), "port {p} allocated twice");
            }
        }
    }

    #[test]
    fn endpoint_packing_round_trips() {
        let (ip, port) = unpack_endpoint(pack_endpoint(Ipv4Addr::new(10, 1, 2, 3), 4567));
        assert_eq!(ip, Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(port, 4567);
    }
}

//! Minimal JSON document builder.
//!
//! The offline build has no `serde_json`, and the handful of JSON
//! artifacts this crate emits (experiment exports, perf baselines) only
//! need strings, numbers, arrays, and objects — so they are built
//! explicitly with this writer instead of derive-based serialization.

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Finite number (non-finite values render as `null`).
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if *v == v.trunc() && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::str("a \"quoted\"\nthing")),
            ("count", Json::from(3u64)),
            ("ratio", Json::from(0.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(vec![])),
        ]);
        let s = doc.pretty();
        assert!(s.contains("\"a \\\"quoted\\\"\\nthing\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("[\n"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
    }
}

//! # swishmem-bench
//!
//! The experiment harness that regenerates every table and quantitative
//! claim of the SwiShmem paper (DESIGN.md §5 maps experiment ids to paper
//! anchors; EXPERIMENTS.md records paper-vs-measured).
//!
//! Run everything:
//!
//! ```text
//! cargo run -p swishmem-bench --release --bin experiments
//! cargo run -p swishmem-bench --release --bin experiments -- e2 e5   # subset
//! cargo run -p swishmem-bench --release --bin experiments -- --quick # fast sweep
//! cargo run -p swishmem-bench --release --bin experiments -- --json out.json
//! ```
//!
//! Criterion micro-benchmarks for the hot paths live under `benches/`.
#![allow(clippy::field_reassign_with_default)] // experiment configs read clearer as sequential overrides

pub mod experiments;
pub mod json;
pub mod scenarios;
pub mod shardnet;
pub mod spans;
pub mod table;

pub use table::{ExperimentResult, Table};

//! Capture workloads into `.swtrace` binary flow traces.
//!
//! Three sources, one sink:
//!
//! ```text
//! # Synthesize a CAIDA-style heavy-tail trace (streams to disk, memory
//! # bounded by concurrent flows — millions of flows are fine):
//! cargo run -p swishmem-bench --release --bin capture -- \
//!     --synth --flows 1000000 --seed 7 --out big.swtrace
//!
//! # Record a live deployment's ingress stream through the capture tap:
//! cargo run -p swishmem-bench --release --bin capture -- \
//!     --run --seed 7 --out run.swtrace
//!
//! # Convert a text trace (nf::workload::tracefile debug format):
//! cargo run -p swishmem-bench --release --bin capture -- \
//!     --import-text sched.txt --out sched.swtrace
//! ```
//!
//! A summary of the capture (records, bytes, clock span) is appended to
//! `results/E24_capture.json` unless `--json` overrides the path.

use std::io::BufWriter;

use swishmem::prelude::*;
use swishmem::{NfDecision, RegisterSpec, SharedState};
use swishmem_bench::json::Json;
use swishmem_nf::workload::{EcmpRouter, FlowGen, FlowGenConfig, RoutingMode};
use swishmem_replay::{
    capture_deployment_trace, records_from_text, synth_to_writer, SynthConfig, TraceMeta,
    TraceRecord, TraceWriter,
};

struct CountNf;

impl swishmem::NfApp for CountNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst) % 256, 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

/// Drive a FlowGen workload through a 3-switch deployment with the
/// capture tap armed and return the taped ingress stream.
fn record_live_run(seed: u64, flows_per_sec: f64) -> Vec<TraceRecord> {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .seed(seed)
        .register(RegisterSpec::ewo_counter(0, "cnt", 256))
        .build(|_| Box::new(CountNf));
    dep.settle();
    let tap = dep.attach_capture(1 << 22);

    let router = EcmpRouter::new(3, RoutingMode::EcmpStable);
    let sched = FlowGen::new(
        FlowGenConfig {
            flow_rate: flows_per_sec,
            ..FlowGenConfig::default()
        },
        seed,
    )
    .generate(&router);
    let base = SimTime(dep.now().0 + 1_000_000);
    let n_hosts = dep.host_ids().len();
    for p in &sched {
        let t = SimTime(base.0 + p.time.nanos()).max(dep.now());
        let from = p.pkt.flow.src_port as usize % n_hosts;
        dep.inject(t, p.ingress % 3, from, p.pkt);
    }
    dep.run_for(SimDuration::millis(30));
    let (records, skipped) = capture_deployment_trace(&dep, &tap);
    eprintln!(
        "live run: {} scheduled, {} captured, {} skipped (non-ingress)",
        sched.len(),
        records.len(),
        skipped
    );
    records
}

fn write_records(path: &str, records: &[TraceRecord], meta: TraceMeta) -> (u64, TraceMeta) {
    let file = std::fs::File::create(path).expect("create output trace");
    let mut w = TraceWriter::new(BufWriter::new(file), meta).expect("write superblock");
    for r in records {
        w.push(*r).expect("records must be time-sorted");
    }
    let n = w.len();
    let (_, meta) = w.finish().expect("finalize trace");
    (n, meta)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = get("--out").unwrap_or_else(|| "capture.swtrace".to_string());
    let json_path = get("--json").unwrap_or_else(|| "results/E24_capture.json".to_string());
    let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(1);

    let (source, count, meta) = if has("--synth") {
        let flows: u64 = get("--flows")
            .and_then(|s| s.parse().ok())
            .unwrap_or(100_000);
        let cfg = SynthConfig {
            flows,
            clients: get("--clients")
                .and_then(|s| s.parse().ok())
                .unwrap_or(4_096),
            servers: get("--servers").and_then(|s| s.parse().ok()).unwrap_or(256),
            ingress: get("--ingress").and_then(|s| s.parse().ok()).unwrap_or(4),
            duration: get("--duration-ns")
                .and_then(|s| s.parse().ok())
                .unwrap_or(flows.max(10_000) * 100),
            tcp: !has("--udp"),
            ..SynthConfig::default()
        };
        let file = std::fs::File::create(&out).expect("create output trace");
        let meta_in = TraceMeta {
            flow_hint: flows,
            ..TraceMeta::new(cfg.ingress, seed, "synth")
        };
        let mut w = TraceWriter::new(BufWriter::new(file), meta_in).expect("write superblock");
        let n = synth_to_writer(&cfg, seed, &mut w).expect("synthesis");
        let (_, meta) = w.finish().expect("finalize trace");
        ("synth", n, meta)
    } else if has("--run") {
        let rate: f64 = get("--rate")
            .and_then(|s| s.parse().ok())
            .unwrap_or(10_000.0);
        let records = record_live_run(seed, rate);
        let (n, meta) = write_records(&out, &records, TraceMeta::new(3, seed, "live-run"));
        ("live-run", n, meta)
    } else if let Some(text_path) = get("--import-text") {
        let text = std::fs::read_to_string(&text_path).expect("read text trace");
        let records = records_from_text(&text).unwrap_or_else(|e| panic!("parse {text_path}: {e}"));
        let ingress = records
            .iter()
            .map(|r| u32::from(r.ingress))
            .max()
            .unwrap_or(0)
            + 1;
        let (n, meta) = write_records(&out, &records, TraceMeta::new(ingress, seed, "text-import"));
        ("text-import", n, meta)
    } else {
        eprintln!("usage: capture (--synth [--flows N] | --run [--rate F] | --import-text PATH)");
        eprintln!("               [--seed S] [--out PATH.swtrace] [--json PATH]");
        std::process::exit(2);
    };

    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "captured {count} records ({bytes} bytes) from {source} -> {out} \
         [clock {}..{} ns]",
        meta.clock_base_ns, meta.clock_end_ns
    );

    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let summary = Json::obj(vec![
        ("source", Json::str(source)),
        ("out", Json::str(&out)),
        ("seed", Json::from(seed)),
        ("records", Json::from(count)),
        ("bytes", Json::from(bytes)),
        ("ingress_count", Json::from(u64::from(meta.ingress_count))),
        ("clock_base_ns", Json::from(meta.clock_base_ns)),
        ("clock_end_ns", Json::from(meta.clock_end_ns)),
    ]);
    std::fs::write(&json_path, format!("{}\n", summary.pretty())).expect("write summary json");
    eprintln!("summary -> {json_path}");
}

//! `trace_explain` — run an E17-style SRO fault-sweep with causal span
//! tracing attached, reconstruct every write's per-phase latency
//! breakdown, reconcile it against the `write_latency` histogram, and
//! export the trace as Chrome/Perfetto JSON.
//!
//! Usage:
//!
//! ```text
//! cargo run -p swishmem-bench --release --bin trace_explain -- \
//!     [--seed N] [--no-faults] [--out-dir results]
//! ```
//!
//! Artifacts (see `results/README.md` for the naming scheme):
//! * `<out>/trace_sro_seed<N>.perfetto.json` — load in ui.perfetto.dev
//! * `<out>/trace_sro_seed<N>.explain.json` — per-phase percentile summary
//!
//! Exit status is non-zero if the span-derived end-to-end latencies fail
//! to reconcile with the `write_latency` histogram samples.

use std::collections::BTreeMap;
use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_bench::json::Json;
use swishmem_bench::scenarios::udp_write;
use swishmem_bench::spans::{explain, phase_histograms, to_perfetto, TraceBreakdown};
use swishmem_bench::table::{ns, Table};
use swishmem_simnet::{FaultAction, FaultGen, SpanEvent};

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

struct RunOutput {
    events: Vec<SpanEvent>,
    overflowed: u64,
    /// write_latency samples currently held per switch (a crashed switch
    /// loses its samples on reset — reconciliation is sub-multiset when
    /// the schedule contained crashes).
    latency_samples: Vec<u64>,
    crashes: usize,
    oracle_ok: bool,
}

fn run_sweep(seed: u64, with_faults: bool) -> RunOutput {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .register(RegisterSpec::sro(0, "t", 16))
        .build(|_| Box::new(WriteNf));
    let spans = dep.attach_tracing(1 << 20);
    dep.settle();
    let t0 = dep.now();
    let horizon = SimDuration::millis(60);
    let mut crashes = 0;
    if with_faults {
        let nodes = dep.switch_ids().to_vec();
        let links = dep.fault_links();
        let sched = FaultGen::new(seed).generate(&nodes, &links, horizon, 4);
        crashes = sched
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Crash { .. }))
            .count();
        dep.schedule_faults(t0, &sched);
    }
    for i in 0..48u64 {
        dep.inject(
            t0 + SimDuration::micros(i * 1000),
            (i % 3) as usize,
            0,
            udp_write((i % 16) as u16, 100 + i as u16),
        );
    }
    let ocfg = OracleConfig::new(t0 + horizon);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = t0 + horizon + ocfg.convergence_grace + SimDuration::millis(100);
    let oracle_ok = suite.run(&mut dep, end).is_ok();

    let c = spans.borrow();
    let mut latency_samples = Vec::new();
    for i in 0..3 {
        latency_samples.extend_from_slice(dep.metrics(i).cp.write_latency.samples());
    }
    RunOutput {
        events: c.events().to_vec(),
        overflowed: c.overflowed(),
        latency_samples,
        crashes,
        oracle_ok,
    }
}

/// Reconcile: every histogram sample must equal the end-to-end latency
/// of some completed write trace (exact, nanosecond-for-nanosecond), and
/// with no crashes the match must be one-for-one.
fn reconcile(breakdowns: &[TraceBreakdown], out: &RunOutput) -> Result<String, String> {
    let mut totals: BTreeMap<u64, usize> = BTreeMap::new();
    let mut completed = 0usize;
    for b in breakdowns {
        if b.completed_write() {
            let slice_sum: u64 = b.slices.iter().map(|s| s.dur_ns).sum();
            if slice_sum != b.total_ns {
                return Err(format!(
                    "trace {}: phase sum {slice_sum} ns != end-to-end {} ns",
                    b.trace, b.total_ns
                ));
            }
            *totals.entry(b.total_ns).or_default() += 1;
            completed += 1;
        }
    }
    for &s in &out.latency_samples {
        match totals.get_mut(&s) {
            Some(n) if *n > 0 => *n -= 1,
            _ => {
                return Err(format!(
                    "write_latency sample {s} ns has no matching completed trace"
                ))
            }
        }
    }
    if out.crashes == 0 && out.latency_samples.len() != completed {
        return Err(format!(
            "no crashes, but {} histogram samples vs {completed} completed traces",
            out.latency_samples.len()
        ));
    }
    Ok(format!(
        "{} write_latency samples reconciled against {completed} completed write traces \
         ({} crash episodes)",
        out.latency_samples.len(),
        out.crashes
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = flag_val("--seed").map_or(400, |s| s.parse().expect("numeric seed"));
    let with_faults = !args.iter().any(|a| a == "--no-faults");
    let out_dir = flag_val("--out-dir").unwrap_or_else(|| "results".to_string());

    println!(
        "trace_explain: SRO fault sweep, seed {seed}, faults {}",
        if with_faults { "on" } else { "off" }
    );
    let out = run_sweep(seed, with_faults);
    if out.overflowed > 0 {
        eprintln!(
            "warning: span collector overflowed ({} events dropped); breakdown is partial",
            out.overflowed
        );
    }
    let breakdowns = explain(&out.events);
    let completed: Vec<&TraceBreakdown> =
        breakdowns.iter().filter(|b| b.completed_write()).collect();

    // Per-phase percentile table over completed writes.
    let completed_owned: Vec<TraceBreakdown> = completed.iter().map(|&b| b.clone()).collect();
    let mut t = Table::new(
        "Per-phase latency of completed SRO writes (gap to reach each phase)",
        &["phase", "n", "p50", "p90", "p99", "max", "mean"],
    );
    for (label, h) in phase_histograms(&completed_owned) {
        let s = h.summary();
        t.row(vec![
            label,
            s.count.to_string(),
            ns(s.p50_ns),
            ns(s.p90_ns),
            ns(s.p99_ns),
            ns(s.max_ns),
            ns(s.mean_ns as u64),
        ]);
    }
    let mut e2e = swishmem::Histogram::new();
    for b in &completed_owned {
        e2e.record_ns(b.total_ns);
    }
    let s = e2e.summary();
    t.row(vec![
        "TOTAL (ingress->release)".into(),
        s.count.to_string(),
        ns(s.p50_ns),
        ns(s.p90_ns),
        ns(s.p99_ns),
        ns(s.max_ns),
        ns(s.mean_ns as u64),
    ]);
    println!("\n{}", t.render());
    println!(
        "  traces: {} total, {} completed writes, oracle {}",
        breakdowns.len(),
        completed_owned.len(),
        if out.oracle_ok { "clean" } else { "VIOLATED" }
    );

    // Consistency gate.
    let verdict = match reconcile(&breakdowns, &out) {
        Ok(msg) => {
            println!("  consistency: OK — {msg}");
            true
        }
        Err(msg) => {
            eprintln!("  consistency: FAIL — {msg}");
            false
        }
    };

    // Artifacts.
    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let perfetto_path = format!("{out_dir}/trace_sro_seed{seed}.perfetto.json");
    std::fs::write(&perfetto_path, to_perfetto(&out.events).pretty()).expect("write perfetto");
    let explain_path = format!("{out_dir}/trace_sro_seed{seed}.explain.json");
    let doc = Json::obj(vec![
        ("seed", Json::from(seed)),
        ("faults", Json::Bool(with_faults)),
        ("span_events", Json::from(out.events.len())),
        ("span_overflowed", Json::from(out.overflowed)),
        ("traces", Json::from(breakdowns.len())),
        ("completed_writes", Json::from(completed_owned.len())),
        ("crash_episodes", Json::from(out.crashes)),
        ("oracle_clean", Json::Bool(out.oracle_ok)),
        ("consistent", Json::Bool(verdict)),
        (
            "phases",
            Json::Arr(
                phase_histograms(&completed_owned)
                    .into_iter()
                    .map(|(label, h)| {
                        let s = h.summary();
                        Json::obj(vec![
                            ("phase", Json::str(label)),
                            ("count", Json::from(s.count)),
                            ("p50_ns", Json::from(s.p50_ns)),
                            ("p90_ns", Json::from(s.p90_ns)),
                            ("p99_ns", Json::from(s.p99_ns)),
                            ("max_ns", Json::from(s.max_ns)),
                            ("mean_ns", Json::Num(s.mean_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&explain_path, doc.pretty()).expect("write explain json");
    println!("  wrote {perfetto_path}");
    println!("  wrote {explain_path}");

    if !verdict {
        std::process::exit(1);
    }
}

//! Engine performance baseline: runs the simnet-engine and nf-pipeline
//! scenarios outside criterion and records events/sec, ns/event, and
//! peak event-queue depth so every PR has a perf trajectory to compare
//! against.
//!
//! Usage:
//!
//! ```text
//! cargo run -p swishmem-bench --release --bin perf_baseline -- \
//!     [--label NAME] [--out BENCH_simnet.json] [--reps N] \
//!     [--shards N] [--topology leaf-spine:<leaves>x<spines>]
//! ```
//!
//! The output file holds a JSON array of labeled runs; an existing file
//! is appended to (never rewritten), so before/after pairs of the same
//! scenario accumulate in one artifact.
//!
//! `--topology` appends a sharded leaf-spine scenario (driven through
//! [`swishmem_bench::shardnet`]) at the shard count given by `--shards`
//! (default 1); the scenario label encodes both, e.g.
//! `leafspine_248x8_shards8`. Sharded scenarios report the critical-path
//! events/s alongside the wall-clock number, since wall-clock parallel
//! speedup needs parallel hardware.

use std::net::Ipv4Addr;
use std::time::Instant;
use swishmem::prelude::*;
use swishmem::{NfDecision, RegisterSpec, SharedState};
use swishmem_bench::json::Json;
use swishmem_bench::shardnet::{run_leaf_spine, LeafSpineSpec, ShardRunConfig};
use swishmem_nf::{DdosConfig, DdosDetector, DdosStatsHandle};
use swishmem_replay::{replay_trace, synth_trace_bytes, ReplayConfig, SynthConfig, TraceReader};
use swishmem_simnet::{Ctx, LinkParams, Node, Simulator};
use swishmem_wire::{DataPacket, FlowKey, Packet, PacketBody};

/// Bounces packets back and forth `ttl` times (mirror of the
/// `simnet_engine` bench workload).
struct Echo {
    ttl: u32,
}
impl Node for Echo {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            if d.flow_seq < self.ttl {
                let mut d2 = d;
                d2.flow_seq += 1;
                ctx.send(pkt.src, PacketBody::Data(d2));
            }
        }
    }
}

fn ping() -> Packet {
    Packet::data(
        NodeId(0),
        NodeId(1),
        DataPacket::udp(
            FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
            0,
            64,
        ),
    )
}

struct Measured {
    name: String,
    events: u64,
    wall_ns: u64,
    peak_queue_depth: usize,
    /// Critical-path compute ns (sharded scenarios only).
    crit_ns: Option<u64>,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }
    fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / self.events as f64
    }
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(&self.name)),
            ("events", Json::from(self.events)),
            ("wall_ns", Json::from(self.wall_ns)),
            ("events_per_sec", Json::Num(self.events_per_sec())),
            ("ns_per_event", Json::Num(self.ns_per_event())),
            ("peak_queue_depth", Json::from(self.peak_queue_depth)),
        ];
        if let Some(crit) = self.crit_ns {
            fields.push(("crit_ns", Json::from(crit)));
            fields.push((
                "crit_events_per_sec",
                Json::Num(self.events as f64 / (crit.max(1) as f64 / 1e9)),
            ));
        }
        Json::obj(fields)
    }
}

/// Run `setup() -> sim`, drive it to quiescence `reps` times, and keep
/// the fastest run (least scheduler noise).
fn measure_sim(
    name: &str,
    reps: u32,
    setup: impl Fn() -> Simulator,
    drive: impl Fn(&mut Simulator),
) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let mut sim = setup();
        let t = Instant::now();
        drive(&mut sim);
        let wall_ns = t.elapsed().as_nanos() as u64;
        let m = Measured {
            name: name.to_string(),
            events: sim.events_processed(),
            wall_ns,
            peak_queue_depth: sim.peak_queue_depth(),
            crit_ns: None,
        };
        if best.as_ref().map(|b| m.wall_ns < b.wall_ns).unwrap_or(true) {
            best = Some(m);
        }
    }
    best.expect("reps >= 1")
}

const EVENTS: u64 = 10_000;

fn ping_pong(reps: u32) -> Measured {
    measure_sim(
        "ping_pong_10k_events",
        reps,
        || {
            let mut sim = Simulator::new(1);
            sim.add_node(NodeId(0), Box::new(Echo { ttl: EVENTS as u32 }));
            sim.add_node(NodeId(1), Box::new(Echo { ttl: EVENTS as u32 }));
            sim.topology_mut()
                .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
            sim.inject(SimTime::ZERO, ping());
            sim
        },
        |sim| {
            sim.run_until_quiescent(SimTime(10_000_000_000));
            assert!(sim.stats().delivered_total().packets >= EVENTS);
        },
    )
}

fn lossy_jittered(reps: u32) -> Measured {
    measure_sim(
        "lossy_jittered_10k_events",
        reps,
        || {
            let mut sim = Simulator::new(7);
            sim.add_node(NodeId(0), Box::new(Echo { ttl: u32::MAX }));
            sim.add_node(NodeId(1), Box::new(Echo { ttl: u32::MAX }));
            sim.topology_mut().connect(
                NodeId(0),
                NodeId(1),
                LinkParams::lossy(0.05).with_jitter(SimDuration::micros(3)),
            );
            for i in 0..EVENTS / 4 {
                sim.inject(SimTime(i * 1000), ping());
            }
            sim
        },
        |sim| {
            sim.run_until_quiescent(SimTime(10_000_000_000));
        },
    )
}

/// The nf-pipeline DDoS scenario: EWO counters with mirror multicast and
/// periodic sync — the protocol path the zero-copy work targets.
fn nf_ddos(reps: u32) -> Measured {
    let build = || {
        let cfg = DdosConfig {
            row_regs: vec![0, 1, 2],
            width: 2048,
            total_reg: 3,
            share_millis: 1001,
            min_total: u64::MAX,
            min_est: u64::MAX,
            egress_host: NodeId(HOST_BASE),
        };
        let mut b = DeploymentBuilder::new(3).hosts(1);
        for r in 0..3u16 {
            b = b.register(RegisterSpec::ewo_counter(r, &format!("cm{r}"), 2048));
        }
        b = b.register(RegisterSpec::ewo_counter(3, "tot", 4));
        let mut dep =
            b.build(move |_| Box::new(DdosDetector::new(cfg.clone(), DdosStatsHandle::default())));
        dep.settle();
        dep
    };
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let mut dep = build();
        let pre_events = dep.sim.events_processed();
        let t0 = dep.now();
        for i in 0..500u64 {
            dep.inject(
                t0 + SimDuration::micros(i * 2),
                (i % 3) as usize,
                0,
                DataPacket::udp(
                    FlowKey::udp(
                        Ipv4Addr::new(1, 1, 1, 1),
                        (1000 + i) as u16,
                        Ipv4Addr::new(20, 0, 0, (i % 200) as u8),
                        80,
                    ),
                    0,
                    64,
                ),
            );
        }
        let t = Instant::now();
        dep.run_for(SimDuration::millis(30));
        let wall_ns = t.elapsed().as_nanos() as u64;
        let m = Measured {
            name: "nf_ddos_500pkts_ewo_sync".to_string(),
            events: dep.sim.events_processed() - pre_events,
            wall_ns,
            peak_queue_depth: dep.sim.peak_queue_depth(),
            crit_ns: None,
        };
        if best.as_ref().map(|b| m.wall_ns < b.wall_ns).unwrap_or(true) {
            best = Some(m);
        }
    }
    best.expect("reps >= 1")
}

/// The replay-lab counting NF: every packet bumps a per-destination EWO
/// counter (mirror of the E24 protocol-path workload).
struct ReplayCountNf;
impl swishmem::NfApp for ReplayCountNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst) % 256, 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

/// Replay-lab ingest: a synthesized heavy-tail `.swtrace` streamed
/// through the reader → ring → inject path into a counting-NF
/// deployment. Synthesis happens once outside the timed region; the
/// measurement is the ingest + engine path the replay lab exercises.
fn replay_ingest(reps: u32) -> Measured {
    let cfg = SynthConfig {
        flows: 4_000,
        ingress: 3,
        ..SynthConfig::default()
    };
    let bytes = synth_trace_bytes(&cfg, 31);
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let mut dep = DeploymentBuilder::new(3)
            .hosts(2)
            .seed(31)
            .register(RegisterSpec::ewo_counter(0, "cnt", 256))
            .build(|_| Box::new(ReplayCountNf));
        dep.settle();
        let pre = dep.sim.events_processed();
        let start = SimTime(dep.now().0 + 1_000_000);
        let mut reader =
            TraceReader::new(std::io::Cursor::new(&bytes)).expect("in-memory trace must parse");
        let t = Instant::now();
        replay_trace(
            &mut dep,
            &mut reader,
            &ReplayConfig {
                start,
                ..ReplayConfig::default()
            },
        )
        .expect("in-memory replay");
        let wall_ns = t.elapsed().as_nanos() as u64;
        let m = Measured {
            name: "replay_ingest_4k_flows".to_string(),
            events: dep.sim.events_processed() - pre,
            wall_ns,
            peak_queue_depth: dep.sim.peak_queue_depth(),
            crit_ns: None,
        };
        if best.as_ref().map(|b| m.wall_ns < b.wall_ns).unwrap_or(true) {
            best = Some(m);
        }
    }
    best.expect("reps >= 1")
}

/// A sharded leaf-spine scenario at a given shard count: the Zipf NF
/// sketch workload from `shardnet`, labeled `leafspine_<L>x<S>_shardsN`.
fn sharded_leaf_spine(spec: LeafSpineSpec, shards: usize, reps: u32) -> Measured {
    let name = format!("leafspine_{}x{}_shards{}", spec.leaves, spec.spines, shards);
    let injections = 4_000;
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let o = run_leaf_spine(&ShardRunConfig::scaling(spec, shards, injections));
        let m = Measured {
            name: name.clone(),
            events: o.events,
            wall_ns: o.wall_ns,
            peak_queue_depth: o.peak_queue_depth,
            crit_ns: Some(o.crit_ns),
        };
        if best.as_ref().map(|b| m.wall_ns < b.wall_ns).unwrap_or(true) {
            best = Some(m);
        }
    }
    best.expect("reps >= 1")
}

/// Append `run` to the JSON array in `path` (creating it if missing).
fn append_run(path: &str, run: Json) {
    let rendered = run.pretty();
    let entry: String = rendered
        .trim_end()
        .lines()
        .map(|l| format!("  {l}\n"))
        .collect();
    let content = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) => {
                    let head = head.trim_end();
                    if head.ends_with('[') {
                        format!("{head}\n{entry}]\n")
                    } else {
                        format!("{head},\n{entry}]\n")
                    }
                }
                None => panic!("{path} exists but is not a JSON array; refusing to overwrite"),
            }
        }
        Err(_) => format!("[\n{entry}]\n"),
    };
    std::fs::write(path, content).expect("write baseline json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let label = get("--label").unwrap_or_else(|| "current".to_string());
    let out = get("--out").unwrap_or_else(|| "BENCH_simnet.json".to_string());
    let reps: u32 = get("--reps").and_then(|r| r.parse().ok()).unwrap_or(5);
    let shards: usize = get("--shards").and_then(|s| s.parse().ok()).unwrap_or(1);
    let topology = get("--topology").map(|t| {
        LeafSpineSpec::parse(&t)
            .unwrap_or_else(|| panic!("unsupported --topology {t:?} (want leaf-spine:<L>x<S>)"))
    });

    eprintln!("measuring engine baseline ({reps} reps per scenario) ...");
    let mut scenarios = vec![
        ping_pong(reps),
        lossy_jittered(reps),
        nf_ddos(reps),
        replay_ingest(reps),
    ];
    if let Some(spec) = topology {
        scenarios.push(sharded_leaf_spine(spec, shards, reps));
    }
    for m in &scenarios {
        eprintln!(
            "  {:<28} {:>12.0} events/s  {:>8.1} ns/event  peak queue {}",
            m.name,
            m.events_per_sec(),
            m.ns_per_event(),
            m.peak_queue_depth
        );
    }

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run = Json::obj(vec![
        ("label", Json::str(&label)),
        ("unix_time", Json::from(unix_secs)),
        (
            "scenarios",
            Json::Arr(scenarios.iter().map(Measured::to_json).collect()),
        ),
    ]);
    append_run(&out, run);
    eprintln!("appended run '{label}' to {out}");
}

//! `ctrl_explain` — run an E22-style leader-crash scenario with the
//! control-plane flight recorder attached, reconstruct the causal
//! failover narrative (last beacon → suspicion → campaign → decree
//! chosen → decree applied) from the journal, print per-phase breakdown
//! tables for failovers, migrations and compactions, and export the
//! control-plane timeline as Chrome/Perfetto JSON.
//!
//! Usage:
//!
//! ```text
//! cargo run -p swishmem-bench --release --bin ctrl_explain -- \
//!     [--seed N] [--out-dir results]
//! ```
//!
//! Artifacts (see `results/README.md` for the naming scheme):
//! * `<out>/ctrl_seed<N>.perfetto.json` — load in ui.perfetto.dev
//! * `<out>/ctrl_seed<N>.explain.json` — failover/migration/compaction summary
//!
//! Exit status is non-zero if the journal fails to reconstruct the
//! post-crash failover, or if the reconstructed crash-to-election gap
//! disagrees with the controller's own election log by more than 1 µs.

use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{
    Deployment, Failover, Journal, NfApp, NfDecision, RegisterSpec, SharedState, TriggerOp,
};
use swishmem_bench::json::Json;
use swishmem_bench::scenarios::udp_write;
use swishmem_bench::spans::ctrl_to_perfetto;
use swishmem_bench::table::{ns, Table};

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

const KEYS: u32 = 48;

fn inject_writes(dep: &mut Deployment, t0: SimTime, n: u64, window: SimDuration) {
    let step = window.as_nanos() / n.max(1);
    for i in 0..n {
        let key = (i % u64::from(KEYS)) as u16;
        dep.inject(
            t0 + SimDuration::nanos(i * step),
            (i % 3) as usize,
            0,
            udp_write(key, 100 + (i % 400) as u16),
        );
    }
}

struct RunOutput {
    journal: Journal,
    records: usize,
    overflowed: u64,
    t_crash: SimTime,
    /// Crash-to-election gap per the controller's own election log.
    measured_gap_ns: Option<u64>,
    oracle_report: Option<String>,
}

/// E22's leader-crash scenario (3 replicas, adaptive detector,
/// aggressive log compaction) with two range migrations in the warm-up
/// window so the migration and compaction tables have content.
fn run_crash(seed: u64) -> RunOutput {
    let cfg = SwishConfig {
        ctrl_replicas: 3,
        adaptive_detector: true,
        log_compact_threshold: 4,
        ..Default::default()
    };
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .swish_config(cfg)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    // Attach before settle so the bootstrap election is journaled too.
    let handle = dep.attach_journal(1 << 20);
    dep.settle();
    let t0 = dep.now();
    let switches = dep.switch_ids().to_vec();
    dep.schedule_trigger(
        t0 + SimDuration::millis(8),
        TriggerOp::Move,
        0,
        0,
        switches[1],
    );
    dep.schedule_trigger(
        t0 + SimDuration::millis(16),
        TriggerOp::Move,
        0,
        16,
        switches[2],
    );
    dep.run_for(SimDuration::millis(30)); // detector warm-up + migrations
    let t_crash = dep.now();
    dep.schedule_ctrl_fail(t_crash, 0);
    inject_writes(&mut dep, t_crash, 24, SimDuration::millis(20));

    let ocfg = OracleConfig::new(t_crash + SimDuration::millis(60));
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    suite.attach_journal(handle.clone());
    let end = t_crash + SimDuration::millis(60) + ocfg.convergence_grace;
    let _ = suite.run(&mut dep, end);

    let measured_gap_ns = dep
        .controller()
        .elections()
        .iter()
        .find(|e| e.time >= t_crash)
        .map(|e| e.time.since(t_crash).0);
    let col = handle.borrow();
    RunOutput {
        journal: Journal::decode(col.records()),
        records: col.len(),
        overflowed: col.overflowed(),
        t_crash,
        measured_gap_ns,
        oracle_report: suite.violation_report(),
    }
}

/// Render the causal narrative for one failover, with offsets relative
/// to the old leader's last heard beacon (falling back to the earliest
/// known phase).
fn narrate(f: &Failover, t_crash: Option<SimTime>) -> String {
    let base = f
        .last_beacon
        .or(f.suspect_at)
        .or(f.election_start)
        .unwrap_or(f.elected_at);
    let off = |t: SimTime| format!("T+{:.3} ms", t.since(base).0 as f64 / 1e6);
    let mut parts: Vec<String> = Vec::new();
    if let Some(t) = f.last_beacon {
        parts.push(format!("last beacon at T = {} ns", t.0));
    }
    if let Some(t) = f.suspect_at {
        parts.push(format!("phi crossed at {}", off(t)));
    }
    if let Some(t) = f.election_start {
        parts.push(format!("campaign started at {}", off(t)));
    }
    if let Some(t) = f.chosen_at {
        parts.push(format!("election decree chosen at {}", off(t)));
    }
    parts.push(format!(
        "decree applied by the winner at {}",
        off(f.elected_at)
    ));
    let total = match t_crash {
        Some(c) if f.elected_at >= c => {
            format!(
                "{:.1} ms after the crash",
                f.elected_at.since(c).0 as f64 / 1e6
            )
        }
        _ => format!(
            "{:.1} ms beacon-to-decree",
            f.elected_at.since(base).0 as f64 / 1e6
        ),
    };
    format!(
        "failover to n{} (epoch {}) took {total}: {}",
        f.leader.0,
        f.epoch,
        parts.join(", ")
    )
}

fn opt_ns(v: Option<u64>) -> String {
    v.map(ns).unwrap_or_else(|| "-".into())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = flag_val("--seed").map_or(801, |s| s.parse().expect("numeric seed"));
    let out_dir = flag_val("--out-dir").unwrap_or_else(|| "results".to_string());

    println!("ctrl_explain: leader-crash flight recording, seed {seed}");
    let out = run_crash(seed);
    if out.overflowed > 0 {
        eprintln!(
            "warning: journal overflowed ({} records dropped); narrative is partial",
            out.overflowed
        );
    }

    let failovers = out.journal.failovers();
    let migrations = out.journal.migrations();
    let compactions = out.journal.compactions();
    let crash_failover = failovers.iter().find(|f| f.elected_at >= out.t_crash);

    // The headline narrative: the post-crash failover, causally walked
    // back from the election decree to the dead leader's last beacon.
    println!();
    match crash_failover {
        Some(f) => println!("  {}", narrate(f, Some(out.t_crash))),
        None => println!("  no post-crash failover found in the journal"),
    }

    let mut ft = Table::new(
        "Failovers (per-phase gaps reconstructed from the journal)",
        &[
            "epoch",
            "leader",
            "beacon->suspect",
            "suspect->campaign",
            "campaign->chosen",
            "chosen->applied",
            "total",
        ],
    );
    for f in &failovers {
        let gap = |a: Option<SimTime>, b: Option<SimTime>| match (a, b) {
            (Some(a), Some(b)) if b >= a => Some(b.since(a).0),
            _ => None,
        };
        ft.row(vec![
            f.epoch.to_string(),
            format!("n{}", f.leader.0),
            opt_ns(gap(f.last_beacon, f.suspect_at)),
            opt_ns(gap(f.suspect_at, f.election_start)),
            opt_ns(gap(f.election_start, f.chosen_at)),
            opt_ns(gap(f.chosen_at, Some(f.elected_at))),
            opt_ns(
                f.last_beacon
                    .or(f.suspect_at)
                    .or(f.election_start)
                    .map(|b| f.elected_at.since(b).0),
            ),
        ]);
    }
    println!("\n{}", ft.render());

    let mut mt = Table::new(
        "Migrations (lifecycle windows from the journal)",
        &[
            "range",
            "route",
            "transfer",
            "dual-owner",
            "total",
            "outcome",
        ],
    );
    for m in &migrations {
        let outcome = if m.commit_at.is_some() {
            "committed".to_string()
        } else if let Some(r) = m.abort_reason {
            format!(
                "aborted: {}",
                swishmem::telemetry::journal::abort_reason_str(r)
            )
        } else {
            "open".to_string()
        };
        mt.row(vec![
            format!("reg{}@{}", m.reg, m.start),
            format!("n{}->n{}", m.from.0, m.to.0),
            opt_ns(m.dual_owner_at.map(|d| d.since(m.begin_at).0)),
            opt_ns(m.dual_owner_window()),
            opt_ns(m.window()),
            outcome,
        ]);
    }
    println!("{}", mt.render());

    let mut ct = Table::new(
        "Log compactions (journal)",
        &["at", "node", "upto slot", "snapshot"],
    );
    for c in &compactions {
        ct.row(vec![
            format!("{} ns", c.at.0),
            format!("n{}", c.node.0),
            c.upto.to_string(),
            format!("{} B", c.snap_bytes),
        ]);
    }
    println!("{}", ct.render());

    match &out.oracle_report {
        Some(r) => println!("  oracle: VIOLATED\n    {r}"),
        None => println!("  oracle: clean (incl. journal SLO monitors)"),
    }

    // Accuracy gate: the journal's crash-to-election gap must agree with
    // the controller's election log to within 1 µs.
    let journal_gap_ns = crash_failover.map(|f| f.elected_at.since(out.t_crash).0);
    let verdict = match (out.measured_gap_ns, journal_gap_ns) {
        (Some(m), Some(j)) => {
            let diff = m.abs_diff(j);
            let ok = diff <= 1_000;
            println!(
                "  accuracy: journal gap {j} ns vs election log {m} ns (|diff| {diff} ns, \
                 gate <=1000 ns — {})",
                if ok { "OK" } else { "FAIL" }
            );
            ok
        }
        (m, j) => {
            eprintln!("  accuracy: FAIL — measured gap {m:?}, journal gap {j:?} (both required)");
            false
        }
    };

    // Artifacts.
    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let perfetto_path = format!("{out_dir}/ctrl_seed{seed}.perfetto.json");
    std::fs::write(&perfetto_path, ctrl_to_perfetto(&out.journal).pretty())
        .expect("write perfetto");
    let explain_path = format!("{out_dir}/ctrl_seed{seed}.explain.json");
    let doc = Json::obj(vec![
        ("seed", Json::from(seed)),
        ("journal_records", Json::from(out.records)),
        ("journal_overflowed", Json::from(out.overflowed)),
        ("t_crash_ns", Json::from(out.t_crash.0)),
        (
            "measured_gap_ns",
            out.measured_gap_ns.map(Json::from).unwrap_or(Json::Null),
        ),
        (
            "journal_gap_ns",
            journal_gap_ns.map(Json::from).unwrap_or(Json::Null),
        ),
        ("accuracy_ok", Json::Bool(verdict)),
        ("oracle_clean", Json::Bool(out.oracle_report.is_none())),
        (
            "failovers",
            Json::Arr(
                failovers
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("epoch", Json::from(u64::from(f.epoch))),
                            ("leader", Json::from(u64::from(f.leader.0))),
                            ("elected_at_ns", Json::from(f.elected_at.0)),
                            (
                                "last_beacon_ns",
                                f.last_beacon.map(|t| Json::from(t.0)).unwrap_or(Json::Null),
                            ),
                            (
                                "suspect_at_ns",
                                f.suspect_at.map(|t| Json::from(t.0)).unwrap_or(Json::Null),
                            ),
                            (
                                "election_start_ns",
                                f.election_start
                                    .map(|t| Json::from(t.0))
                                    .unwrap_or(Json::Null),
                            ),
                            (
                                "chosen_at_ns",
                                f.chosen_at.map(|t| Json::from(t.0)).unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "migrations",
            Json::Arr(
                migrations
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("reg", Json::from(u64::from(m.reg))),
                            ("start", Json::from(u64::from(m.start))),
                            ("from", Json::from(u64::from(m.from.0))),
                            ("to", Json::from(u64::from(m.to.0))),
                            ("begin_at_ns", Json::from(m.begin_at.0)),
                            (
                                "window_ns",
                                m.window().map(Json::from).unwrap_or(Json::Null),
                            ),
                            (
                                "dual_owner_window_ns",
                                m.dual_owner_window().map(Json::from).unwrap_or(Json::Null),
                            ),
                            ("committed", Json::Bool(m.commit_at.is_some())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "compactions",
            Json::Arr(
                compactions
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("at_ns", Json::from(c.at.0)),
                            ("node", Json::from(u64::from(c.node.0))),
                            ("upto", Json::from(c.upto)),
                            ("snap_bytes", Json::from(c.snap_bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&explain_path, doc.pretty()).expect("write explain json");
    println!("  wrote {perfetto_path}");
    println!("  wrote {explain_path}");

    if !verdict {
        std::process::exit(1);
    }
}

//! CLI driver: runs the paper-reproduction experiments and prints the
//! regenerated tables (optionally exporting JSON).

use swishmem_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != json_path.as_deref())
        .map(|a| a.to_lowercase())
        .collect();

    let all = experiments::all();
    let to_run: Vec<_> = if selected.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|(id, _)| selected.iter().any(|s| s == id))
            .collect()
    };
    if to_run.is_empty() {
        eprintln!("no matching experiments; known ids: e1..e18");
        std::process::exit(2);
    }

    println!(
        "SwiShmem reproduction experiments ({} mode)",
        if quick { "quick" } else { "full" }
    );
    let mut results = Vec::new();
    for (id, run) in to_run {
        eprintln!("running {id} ...");
        let started = std::time::Instant::now();
        let res = run(quick);
        eprintln!("  {id} done in {:.1}s", started.elapsed().as_secs_f64());
        println!("{}", res.render());
        results.push(res);
    }
    if let Some(path) = json_path {
        let json = swishmem_bench::table::results_to_json(&results);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

//! CLI driver: runs the paper-reproduction experiments and prints the
//! regenerated tables (optionally exporting JSON).
//!
//! Usage: `experiments [--quick] [--json PATH] [--list] [--only ID]...
//! [ID]...` — `--list` prints the known ids and exits; `--only e19`
//! (repeatable) and bare positional ids both select a subset.

use swishmem_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "--list" => {}
            "--json" => i += 1,
            "--only" => {
                if let Some(v) = args.get(i + 1) {
                    selected.push(v.to_lowercase());
                }
                i += 1;
            }
            a if !a.starts_with("--") => selected.push(a.to_lowercase()),
            _ => {}
        }
        i += 1;
    }

    let all = experiments::all();
    if args.iter().any(|a| a == "--list") {
        for (id, _) in &all {
            println!("{id}");
        }
        eprintln!(
            "companion bins (cargo run -p swishmem-bench --release --bin <name>): \
             trace_explain, ctrl_explain, perf_baseline"
        );
        return;
    }
    let known: Vec<&str> = all.iter().map(|(id, _)| *id).collect();
    let to_run: Vec<_> = if selected.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|(id, _)| selected.iter().any(|s| s == id))
            .collect()
    };
    if to_run.is_empty() {
        eprintln!("no matching experiments; known ids: {}", known.join(" "));
        std::process::exit(2);
    }

    println!(
        "SwiShmem reproduction experiments ({} mode)",
        if quick { "quick" } else { "full" }
    );
    let mut results = Vec::new();
    for (id, run) in to_run {
        eprintln!("running {id} ...");
        let started = std::time::Instant::now();
        let res = run(quick);
        eprintln!("  {id} done in {:.1}s", started.elapsed().as_secs_f64());
        println!("{}", res.render());
        results.push(res);
    }
    if let Some(path) = json_path {
        let json = swishmem_bench::table::results_to_json(&results);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

//! Replay `.swtrace` flow traces through a deployment — sequential or
//! sharded — and run the oracle-armed scenario packs.
//!
//! ```text
//! # Stream a trace through the protocol deployment (ring ingest,
//! # backpressure accounting, deterministic digest):
//! cargo run -p swishmem-bench --release --bin replay -- \
//!     --trace big.swtrace --seed 7 --speedup 4
//!
//! # Replay through the sharded leaf-spine fabric and check the digest
//! # is shard-count invariant:
//! cargo run -p swishmem-bench --release --bin replay -- \
//!     --trace big.swtrace --leafspine 16x4 --shards 2
//!
//! # Run the scenario packs (all five + sabotage negative):
//! cargo run -p swishmem-bench --release --bin replay -- --packs [--quick]
//! ```
//!
//! A JSON report lands in `results/E24_replay.json` (override with
//! `--json`). Exits nonzero if a scenario pack fails its gates.

use std::io::BufReader;

use swishmem::prelude::*;
use swishmem::{NfDecision, RegisterSpec, SharedState};
use swishmem_bench::json::Json;
use swishmem_bench::shardnet::{
    run_leaf_spine_injected, trace_to_leaf_spine, LeafSpineSpec, ShardRunConfig,
};
use swishmem_replay::{
    replay_digest, replay_trace, run_pack, PackConfig, PackKind, ReplayConfig, Sabotage,
    TraceReader,
};

struct CountNf;

impl swishmem::NfApp for CountNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst) % 256, 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn proto_replay(trace: &str, seed: u64, cfg: &ReplayConfig) -> Json {
    let file = std::fs::File::open(trace).unwrap_or_else(|e| panic!("open {trace}: {e}"));
    let mut reader =
        TraceReader::new(BufReader::new(file)).unwrap_or_else(|e| panic!("parse {trace}: {e}"));
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .seed(seed)
        .register(RegisterSpec::ewo_counter(0, "cnt", 256))
        .build(|_| Box::new(CountNf));
    dep.settle();
    let start = SimTime(dep.now().0 + 1_000_000);
    let stats = replay_trace(&mut dep, &mut reader, &ReplayConfig { start, ..*cfg })
        .unwrap_or_else(|e| panic!("replay {trace}: {e}"));
    dep.run_for(SimDuration::millis(10));
    let digest = replay_digest(&dep, 256);
    eprintln!(
        "proto replay: {} records, {} stalls (max occupancy {}), {:.0} records/s, digest {digest:016x}",
        stats.records, stats.stalls, stats.max_occupancy, stats.records_per_sec
    );
    Json::obj(vec![
        ("mode", Json::str("proto")),
        ("records", Json::from(stats.records)),
        ("injected", Json::from(stats.injected)),
        ("stalls", Json::from(stats.stalls)),
        ("max_occupancy", Json::from(stats.max_occupancy)),
        ("records_per_sec", Json::Num(stats.records_per_sec)),
        ("digest", Json::str(format!("{digest:016x}"))),
    ])
}

fn leafspine_replay(trace: &str, spec: LeafSpineSpec, shards: usize) -> Json {
    let file = std::fs::File::open(trace).unwrap_or_else(|e| panic!("open {trace}: {e}"));
    let mut reader =
        TraceReader::new(BufReader::new(file)).unwrap_or_else(|e| panic!("parse {trace}: {e}"));
    let records = reader
        .read_all()
        .unwrap_or_else(|e| panic!("read {trace}: {e}"));
    let injections = trace_to_leaf_spine(&spec, &records);
    let o = run_leaf_spine_injected(&ShardRunConfig::scaling(spec, shards, 0), &injections);
    eprintln!(
        "leaf-spine replay ({}x{}, {} shards): {} events, digest {:016x}, {:.0} events/s",
        spec.leaves,
        spec.spines,
        shards,
        o.events,
        o.digest,
        o.wall_events_per_sec()
    );
    Json::obj(vec![
        ("mode", Json::str("leafspine")),
        ("leaves", Json::from(u64::from(spec.leaves))),
        ("spines", Json::from(u64::from(spec.spines))),
        ("shards", Json::from(shards)),
        ("records", Json::from(records.len())),
        ("events", Json::from(o.events)),
        ("digest", Json::str(format!("{:016x}", o.digest))),
        ("wall_events_per_sec", Json::Num(o.wall_events_per_sec())),
    ])
}

fn run_packs(seed: u64, quick: bool, only: Option<&str>) -> (Json, bool) {
    let mut reports = Vec::new();
    let mut all_pass = true;
    for kind in PackKind::ALL {
        if let Some(name) = only {
            if kind.name() != name {
                continue;
            }
        }
        let r = run_pack(&PackConfig::new(kind, seed, quick));
        eprintln!(
            "pack {:<13} {} ({} records, {} stalls){}",
            r.name,
            if r.pass { "PASS" } else { "FAIL" },
            r.records,
            r.stalls,
            if r.pass {
                String::new()
            } else {
                format!(" {:?}", r.violations)
            }
        );
        all_pass &= r.pass;
        reports.push(r);
    }
    // The negative control: a sabotaged feed must fail.
    if only.is_none() {
        let sab = run_pack(&PackConfig {
            sabotage: Some(Sabotage::DuplicateFlowRecord),
            ..PackConfig::new(PackKind::FlashCrowd, seed, quick)
        });
        eprintln!(
            "pack flash_crowd (sabotaged) {} — expected FAIL",
            if sab.pass { "PASS" } else { "FAIL" }
        );
        all_pass &= !sab.pass;
        reports.push(sab);
    }
    let json = Json::Arr(
        reports
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("pack", Json::str(r.name)),
                    ("pass", Json::Bool(r.pass)),
                    ("records", Json::from(r.records)),
                    ("stalls", Json::from(r.stalls)),
                    (
                        "violations",
                        Json::Arr(r.violations.iter().map(Json::str).collect()),
                    ),
                    (
                        "measures",
                        Json::obj(
                            r.measures
                                .iter()
                                .map(|(k, v)| (*k, Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    (json, all_pass)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(1);
    let json_path = get("--json").unwrap_or_else(|| "results/E24_replay.json".to_string());
    let mut sections: Vec<(&str, Json)> = Vec::new();
    let mut ok = true;

    if let Some(trace) = get("--trace") {
        if let Some(dims) = get("--leafspine") {
            let spec = LeafSpineSpec::parse(&format!("leaf-spine:{dims}"))
                .unwrap_or_else(|| panic!("bad --leafspine {dims:?} (want <L>x<S>)"));
            let shards: usize = get("--shards").and_then(|s| s.parse().ok()).unwrap_or(1);
            sections.push(("leafspine", leafspine_replay(&trace, spec, shards)));
        } else {
            let cfg = ReplayConfig {
                speedup: get("--speedup").and_then(|s| s.parse().ok()).unwrap_or(1.0),
                batch: get("--batch").and_then(|s| s.parse().ok()).unwrap_or(512),
                ring_capacity: get("--ring").and_then(|s| s.parse().ok()).unwrap_or(4096),
                ..ReplayConfig::default()
            };
            sections.push(("proto", proto_replay(&trace, seed, &cfg)));
        }
    }
    if has("--packs") || get("--pack").is_some() {
        let (json, pass) = run_packs(seed, has("--quick"), get("--pack").as_deref());
        ok &= pass;
        sections.push(("packs", json));
    }
    if sections.is_empty() {
        eprintln!("usage: replay --trace PATH [--leafspine LxS --shards N | --speedup F --batch N --ring N]");
        eprintln!("       replay --packs [--quick] [--pack NAME] [--seed S] [--json PATH]");
        std::process::exit(2);
    }

    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let report = Json::obj(sections);
    std::fs::write(&json_path, format!("{}\n", report.pretty())).expect("write report json");
    eprintln!("report -> {json_path}");
    if !ok {
        eprintln!("replay: a scenario pack failed its gates");
        std::process::exit(1);
    }
}

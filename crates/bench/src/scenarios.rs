//! Shared scenario building blocks for the experiments: probe NFs with
//! externally-observable reads, packet constructors, and measurement
//! helpers.

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{RegisterSpec, SharedState};
use swishmem_simnet::Recording;
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::PacketBody;

/// A probe NF over one register:
/// * UDP packet → `write(reg0, dst_port, payload_len)`, output to host 0;
/// * TCP packet → `read(reg0, dst_port)`, value returned in the output
///   packet's `flow_seq`, output to host 1.
///
/// Because the read value leaves the fabric in a packet, experiments can
/// measure both read latency (inject → host arrival) and staleness
/// (value seen vs value written).
pub struct ProbeNf;

impl swishmem::NfApp for ProbeNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> swishmem::NfDecision {
        let key = u32::from(pkt.flow.dst_port);
        if pkt.flow.proto == 17 {
            st.write(0, key, u64::from(pkt.payload_len));
            swishmem::NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: *pkt,
            }
        } else {
            let v = st.read(0, key);
            let mut out = *pkt;
            out.flow_seq = v as u32;
            swishmem::NfDecision::Forward {
                dst: NodeId(HOST_BASE + 1),
                pkt: out,
            }
        }
    }
}

/// A counting NF: every packet adds 1 to EWO register 0 at key
/// `dst_port`, forwarding to host 0.
pub struct CounterNf;

impl swishmem::NfApp for CounterNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> swishmem::NfDecision {
        st.add(0, u32::from(pkt.flow.dst_port), 1);
        swishmem::NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

/// A UDP "write" probe packet: key = `port`, value = `val` (≤ 1400).
pub fn udp_write(port: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        val,
    )
}

/// A TCP "read" probe packet: key = `port`, tagged with `tag` in the
/// source port for matching against host arrivals.
pub fn tcp_read(port: u16, tag: u16) -> DataPacket {
    DataPacket::tcp(
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            tag,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        TcpFlags::data(),
        0,
        10,
    )
}

/// A plain counting packet keyed by `port`.
pub fn count_pkt(port: u16, seq: u32) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 3),
            1000,
            Ipv4Addr::new(10, 0, 0, 4),
            port,
        ),
        seq,
        64,
    )
}

/// Build a ProbeNf deployment over one register of the given class.
pub fn probe_deployment(n: usize, spec: RegisterSpec, cfg: SwishConfig) -> Deployment {
    DeploymentBuilder::new(n)
        .hosts(2)
        .swish_config(cfg)
        .register(spec)
        .build(|_| Box::new(ProbeNf))
}

/// Extract `(arrival_time, tag, value)` triples from a read-probe host
/// recording (tag = src_port, value = flow_seq).
pub fn read_arrivals(rec: &Recording) -> Vec<(SimTime, u16, u32)> {
    rec.borrow()
        .iter()
        .filter_map(|(t, p)| match &p.body {
            PacketBody::Data(d) => Some((*t, d.flow.src_port, d.flow_seq)),
            _ => None,
        })
        .collect()
}

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Percentile of a slice via nearest rank (0 when empty).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_write_then_read_round_trip() {
        let mut dep = probe_deployment(3, RegisterSpec::sro(0, "t", 128), SwishConfig::default());
        dep.settle();
        let t = dep.now();
        dep.inject(t, 0, 0, udp_write(17, 321));
        dep.run_for(SimDuration::millis(20));
        let t = dep.now();
        dep.inject(t, 2, 0, tcp_read(17, 42));
        dep.run_for(SimDuration::millis(10));
        let arrivals = read_arrivals(dep.recording(1));
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].1, 42);
        assert_eq!(arrivals[0].2, 321);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}

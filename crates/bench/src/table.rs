//! Text-table rendering and JSON export for experiment results.

use crate::json::Json;

/// One rendered table of an experiment.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given caption and headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.title));
        out.push_str(&format!("  {}\n", line(&self.headers)));
        out.push_str(&format!(
            "  {}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        ));
        for row in &self.rows {
            out.push_str(&format!("  {}\n", line(row)));
        }
        out
    }

    /// JSON form (mirrors the old derive-based serialization shape).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("title", Json::str(&self.title)),
            (
                "headers",
                Json::Arr(self.headers.iter().map(Json::str).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(Json::str).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The full result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id ("E1" ... "E14").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Paper anchor this regenerates (table/section).
    pub paper_anchor: String,
    /// The shape the paper predicts.
    pub expectation: String,
    /// The measured tables.
    pub tables: Vec<Table>,
    /// Headline findings (one line each).
    pub findings: Vec<String>,
}

impl ExperimentResult {
    /// Render the whole result as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n=== {} — {} ===\n", self.id, self.title));
        out.push_str(&format!(
            "  paper: {}\n  expected shape: {}\n\n",
            self.paper_anchor, self.expectation
        ));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for f in &self.findings {
            out.push_str(&format!("  => {f}\n"));
        }
        out
    }

    /// JSON form (mirrors the old derive-based serialization shape).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::str(&self.id)),
            ("title", Json::str(&self.title)),
            ("paper_anchor", Json::str(&self.paper_anchor)),
            ("expectation", Json::str(&self.expectation)),
            (
                "tables",
                Json::Arr(self.tables.iter().map(Table::to_json).collect()),
            ),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Json::str).collect()),
            ),
        ])
    }
}

/// Pretty-printed JSON export of a full experiment run.
pub fn results_to_json(results: &[ExperimentResult]) -> String {
    Json::Arr(results.iter().map(ExperimentResult::to_json).collect()).pretty()
}

/// Format a float compactly.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Format nanoseconds as a human duration.
pub fn ns(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.2}s", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.2}ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}us", v as f64 / 1e3)
    } else {
        format!("{v}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("a       long_header"));
        assert!(s.contains("xxxxxx  1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(4.32109), "4.321");
        assert_eq!(f(42.5), "42.5");
        assert_eq!(f(12345.0), "12345");
        assert_eq!(ns(500), "500ns");
        assert_eq!(ns(2_500), "2.5us");
        assert_eq!(ns(3_000_000), "3.00ms");
        assert_eq!(ns(1_500_000_000), "1.50s");
    }
}

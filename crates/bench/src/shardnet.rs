//! Shared sharded leaf-spine scenario for the parallel-engine
//! experiments: the E20 scaling fabric, the `perf_baseline --shards`
//! scenarios, and the verify-gate smoke all drive the same builder so
//! their numbers are comparable.
//!
//! The workload is an NF-flavored sketch: every leaf maintains a 4-row
//! count-min array over Zipf-distributed flow keys and reports to a
//! rotating peer leaf every few packets, so compute cost scales with
//! traffic and a constant fraction of frames cross shard boundaries
//! through the spine relays.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use swishmem_nf::workload::Zipf;
use swishmem_simnet::{
    Ctx, DropReason, FaultGen, LinkParams, NetEvent, NetObserver, Node, RelayNode, ShardedEngine,
    SimDuration, SimTime,
};
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, PacketBody};

/// First spine node id (leaves are `0..leaves`).
pub const SPINE_BASE: u16 = 500;

/// A leaf-spine fabric shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafSpineSpec {
    /// Leaf (NF) switch count.
    pub leaves: u16,
    /// Spine (relay) switch count.
    pub spines: u16,
}

impl LeafSpineSpec {
    /// Parse a `leaf-spine:<leaves>x<spines>` topology string.
    pub fn parse(s: &str) -> Option<LeafSpineSpec> {
        let dims = s.strip_prefix("leaf-spine:")?;
        let (l, sp) = dims.split_once('x')?;
        let leaves: u16 = l.parse().ok()?;
        let spines: u16 = sp.parse().ok()?;
        if leaves < 2 || spines == 0 || leaves > SPINE_BASE {
            return None;
        }
        Some(LeafSpineSpec { leaves, spines })
    }

    /// Every leaf-to-spine duplex link (the fault-injection surface).
    pub fn links(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.leaves)
            .flat_map(|l| (0..self.spines).map(move |s| (NodeId(l), NodeId(SPINE_BASE + s))))
            .collect()
    }

    /// All node ids, leaves first.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = (0..self.leaves).map(NodeId).collect();
        v.extend((0..self.spines).map(|s| NodeId(SPINE_BASE + s)));
        v
    }
}

const ROWS: usize = 4;
const WIDTH: usize = 2048;

fn mix(key: u64, row: u64) -> usize {
    let mut x = key ^ row.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    (x as usize) % WIDTH
}

/// The leaf NF: a count-min sketch over flow keys, reporting to a
/// rotating peer leaf every `REPORT_EVERY` packets. Deterministic and
/// RNG-free, so its final state is comparable across engine modes.
pub struct SketchNf {
    rows: Vec<u64>,
    seen: u64,
    leaves: u16,
}

const REPORT_EVERY: u64 = 4;

impl SketchNf {
    fn new(leaves: u16) -> SketchNf {
        SketchNf {
            rows: vec![0; ROWS * WIDTH],
            seen: 0,
            leaves,
        }
    }

    /// FNV-1a over the sketch contents and packet count.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut f = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        f(self.seen);
        for &c in &self.rows {
            f(c);
        }
        h
    }
}

impl Node for SketchNf {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            let key = u64::from(d.flow.dst_port) << 16 | u64::from(d.flow.src_port);
            for r in 0..ROWS as u64 {
                self.rows[r as usize * WIDTH + mix(key, r)] += 1;
            }
            self.seen += 1;
            if self.seen.is_multiple_of(REPORT_EVERY) {
                let me = ctx.self_id().0;
                let peer = (me as u64 + self.seen / REPORT_EVERY) % u64::from(self.leaves);
                if peer as u16 != me {
                    let mut report = d;
                    report.flow_seq = self.seen as u32;
                    ctx.send(NodeId(peer as u16), PacketBody::Data(report));
                }
            }
        }
    }
}

/// Online fault-plane oracle over the observer stream: no packet may be
/// delivered to a node between its failure and recovery, recoveries must
/// match failures, and restores must match degrades.
#[derive(Default)]
pub struct ShardOracle {
    down: Vec<u16>,
    degraded: Vec<(u16, u16)>,
    /// Oracle violations seen (0 on a healthy run).
    pub violations: u64,
    /// Fault-plane transitions observed.
    pub transitions: u64,
}

impl NetObserver for ShardOracle {
    fn on_net_event(&mut self, _now: SimTime, ev: &NetEvent<'_>) {
        match *ev {
            NetEvent::Delivered { to, .. } => {
                if self.down.contains(&to.0) {
                    self.violations += 1;
                }
            }
            NetEvent::NodeFailed { node } => {
                self.transitions += 1;
                if self.down.contains(&node.0) {
                    self.violations += 1;
                } else {
                    self.down.push(node.0);
                }
            }
            NetEvent::NodeRecovered { node } => {
                self.transitions += 1;
                match self.down.iter().position(|&n| n == node.0) {
                    Some(i) => {
                        self.down.swap_remove(i);
                    }
                    None => self.violations += 1,
                }
            }
            NetEvent::LinkDegraded { a, b } => {
                self.transitions += 1;
                self.degraded.push((a.0, b.0));
            }
            NetEvent::LinkRestored { a, b } => {
                self.transitions += 1;
                match self.degraded.iter().position(|&p| p == (a.0, b.0)) {
                    Some(i) => {
                        self.degraded.swap_remove(i);
                    }
                    None => self.violations += 1,
                }
            }
            NetEvent::LinkChanged { .. } => {
                self.transitions += 1;
            }
        }
    }
}

/// One sharded leaf-spine run, fully parameterized.
#[derive(Debug, Clone, Copy)]
pub struct ShardRunConfig {
    /// Fabric shape.
    pub spec: LeafSpineSpec,
    /// Shard count (1 = legacy bit-exact mode).
    pub shards: usize,
    /// Worker-thread cap for the windowed loop.
    pub workers: usize,
    /// Engine seed.
    pub seed: u64,
    /// Externally injected packets.
    pub injections: u64,
    /// Zipf key-space size for flow keys.
    pub zipf_keys: usize,
    /// Zipf skew.
    pub zipf_alpha: f64,
    /// Fault episodes from `FaultGen` (0 = pristine run).
    pub fault_episodes: usize,
    /// Lossless links (no RNG draws in transmit → output identical
    /// across ALL shard counts including 1).
    pub lossless: bool,
}

impl ShardRunConfig {
    /// A pristine lossless scaling run (the E20 default).
    pub fn scaling(spec: LeafSpineSpec, shards: usize, injections: u64) -> ShardRunConfig {
        ShardRunConfig {
            spec,
            shards,
            workers: shards,
            seed: 20,
            injections,
            zipf_keys: 4096,
            zipf_alpha: 1.1,
            fault_episodes: 0,
            lossless: true,
        }
    }
}

/// Outcome of a sharded leaf-spine run.
#[derive(Debug, Clone)]
pub struct ShardRunOutcome {
    /// Logical events processed.
    pub events: u64,
    /// Wall-clock for the run-to-quiescence drive.
    pub wall_ns: u64,
    /// Critical-path compute time (Σ over windows of the slowest shard).
    pub crit_ns: u64,
    /// Peak per-shard queue depth.
    pub peak_queue_depth: usize,
    /// Delivered packets.
    pub delivered_pkts: u64,
    /// Dropped packets (all causes).
    pub dropped_pkts: u64,
    /// FNV digest over every leaf's final sketch state.
    pub digest: u64,
    /// Final simulated time, ns.
    pub end_ns: u64,
    /// Fault-oracle violations (0 unless `fault_episodes > 0` went wrong).
    pub oracle_violations: u64,
    /// Fault-plane transitions the oracle observed.
    pub oracle_transitions: u64,
}

impl ShardRunOutcome {
    /// Wall-clock throughput.
    pub fn wall_events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Critical-path throughput: the hardware-independent bound a
    /// one-core-per-shard machine converges to (barrier costs aside).
    pub fn crit_events_per_sec(&self) -> f64 {
        self.events as f64 / (self.crit_ns.max(1) as f64 / 1e9)
    }
}

/// Build and drive one sharded leaf-spine run to quiescence.
pub fn run_leaf_spine(cfg: &ShardRunConfig) -> ShardRunOutcome {
    run_leaf_spine_impl(cfg, None)
}

/// Same fabric and drive, but the injection stream is supplied by the
/// caller — a replayed `.swtrace` instead of the synthetic Zipf
/// workload. `cfg.injections` is ignored; the stream must be
/// time-sorted. Digest invariance across shard counts holds exactly as
/// for the synthetic stream (lossless links ⇒ no RNG on the data path).
pub fn run_leaf_spine_injected(
    cfg: &ShardRunConfig,
    stream: &[(SimTime, Packet)],
) -> ShardRunOutcome {
    run_leaf_spine_impl(cfg, Some(stream))
}

/// Map a `.swtrace` record stream onto leaf-spine injections: the
/// record's ingress slot picks the source leaf, its flow hash a distinct
/// destination leaf, and the record timestamp is used unchanged — the
/// injection stream (and therefore the run digest) is a pure function of
/// the trace bytes.
pub fn trace_to_leaf_spine(
    spec: &LeafSpineSpec,
    records: &[swishmem_replay::TraceRecord],
) -> Vec<(SimTime, Packet)> {
    debug_assert!(spec.leaves >= 2, "need two leaves to carry traffic");
    let leaves = u64::from(spec.leaves);
    records
        .iter()
        .map(|r| {
            let src = (u64::from(r.ingress) % leaves) as u16;
            let mut dst = (r.flow_hash() % leaves) as u16;
            if dst == src {
                dst = (dst + 1) % spec.leaves;
            }
            (
                SimTime(r.time_ns),
                Packet::data(NodeId(src), NodeId(dst), r.to_packet()),
            )
        })
        .collect()
}

fn run_leaf_spine_impl(
    cfg: &ShardRunConfig,
    stream: Option<&[(SimTime, Packet)]>,
) -> ShardRunOutcome {
    let spec = cfg.spec;
    let mut sim = ShardedEngine::new(cfg.seed, cfg.shards);
    sim.set_workers(cfg.workers);
    let oracle = Rc::new(RefCell::new(ShardOracle::default()));
    if cfg.fault_episodes > 0 {
        sim.add_observer(oracle.clone());
    }

    for l in 0..spec.leaves {
        sim.add_node(NodeId(l), Box::new(SketchNf::new(spec.leaves)));
    }
    for s in 0..spec.spines {
        sim.add_node(NodeId(SPINE_BASE + s), Box::new(RelayNode));
    }

    let params = if cfg.lossless {
        LinkParams::datacenter().with_latency(SimDuration::micros(5))
    } else {
        LinkParams::lossy(0.02)
            .with_latency(SimDuration::micros(5))
            .with_jitter(SimDuration::micros(1))
    };
    {
        let topo = sim.topology_mut();
        for (l, s) in spec.links() {
            topo.connect(l, s, params);
        }
        // Static ECMP-style spine pick per ordered leaf pair.
        for a in 0..spec.leaves {
            for b in 0..spec.leaves {
                if a != b {
                    let spine = SPINE_BASE + (a.wrapping_mul(31).wrapping_add(b)) % spec.spines;
                    topo.set_route(NodeId(a), NodeId(b), NodeId(spine));
                }
            }
        }
    }

    match stream {
        Some(pkts) => {
            for (t, pkt) in pkts {
                sim.inject(*t, pkt.clone());
            }
        }
        None => {
            // Zipf flow keys drawn outside the engine: the injection
            // stream is a pure function of the seed, identical for every
            // shard count.
            let mut wl_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5a1f);
            let zipf = Zipf::new(cfg.zipf_keys, cfg.zipf_alpha);
            for i in 0..cfg.injections {
                let src = (i % u64::from(spec.leaves)) as u16;
                let dst = ((i * 7 + 3) % u64::from(spec.leaves)) as u16;
                if src == dst {
                    continue;
                }
                let key = zipf.sample(&mut wl_rng) as u32;
                // Dense schedule: many injections per lookahead window,
                // so each barrier interval carries real per-shard work.
                sim.inject(
                    SimTime(i * 50),
                    Packet::data(
                        NodeId(src),
                        NodeId(dst),
                        DataPacket::udp(
                            FlowKey::udp(
                                Ipv4Addr::new(10, 0, 0, 1),
                                (key & 0xffff) as u16,
                                Ipv4Addr::new(10, 0, 0, 2),
                                (key >> 16) as u16 | 1,
                            ),
                            0,
                            64,
                        ),
                    ),
                );
            }
        }
    }

    if cfg.fault_episodes > 0 {
        let sched = FaultGen::new(cfg.seed ^ 0xfa01).generate(
            &spec.nodes(),
            &spec.links(),
            SimDuration::millis(4),
            cfg.fault_episodes,
        );
        sim.schedule_faults(SimTime::ZERO, &sched);
    }

    let t = std::time::Instant::now();
    sim.run_until_quiescent(SimTime(10_000_000_000));
    let wall_ns = t.elapsed().as_nanos() as u64;

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for l in 0..spec.leaves {
        let d = sim
            .node::<SketchNf>(NodeId(l))
            .expect("leaf present")
            .digest();
        for b in d.to_le_bytes() {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    let s = sim.stats();
    let dropped = [
        DropReason::Loss,
        DropReason::NoRoute,
        DropReason::NodeDown,
        DropReason::LinkDown,
        DropReason::Corrupt,
    ]
    .iter()
    .map(|&r| s.dropped(r).packets)
    .sum();
    let o = oracle.borrow();
    ShardRunOutcome {
        events: sim.events_processed(),
        wall_ns,
        crit_ns: sim.critical_path_ns(),
        peak_queue_depth: sim.peak_queue_depth(),
        delivered_pkts: s.delivered_total().packets,
        dropped_pkts: dropped,
        digest,
        end_ns: sim.now().nanos(),
        oracle_violations: o.violations,
        oracle_transitions: o.transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_flag_parses() {
        assert_eq!(
            LeafSpineSpec::parse("leaf-spine:248x8"),
            Some(LeafSpineSpec {
                leaves: 248,
                spines: 8
            })
        );
        assert_eq!(LeafSpineSpec::parse("leaf-spine:1x4"), None);
        assert_eq!(LeafSpineSpec::parse("ring:8"), None);
        assert_eq!(LeafSpineSpec::parse("leaf-spine:8"), None);
    }

    #[test]
    fn lossless_run_is_identical_across_all_shard_counts() {
        let spec = LeafSpineSpec {
            leaves: 12,
            spines: 3,
        };
        let base = run_leaf_spine(&ShardRunConfig::scaling(spec, 1, 300));
        assert!(base.delivered_pkts > 0);
        for shards in [2usize, 4] {
            let got = run_leaf_spine(&ShardRunConfig::scaling(spec, shards, 300));
            assert_eq!(base.digest, got.digest, "S={shards} digest diverged");
            assert_eq!(base.events, got.events, "S={shards} event count diverged");
            assert_eq!(base.delivered_pkts, got.delivered_pkts);
            assert_eq!(base.end_ns, got.end_ns);
        }
    }

    #[test]
    fn fault_sweep_runs_clean_under_sharding() {
        let spec = LeafSpineSpec {
            leaves: 12,
            spines: 3,
        };
        let mut cfg = ShardRunConfig::scaling(spec, 4, 300);
        cfg.fault_episodes = 4;
        cfg.lossless = false;
        let got = run_leaf_spine(&cfg);
        assert!(got.oracle_transitions > 0, "sweep should inject faults");
        assert_eq!(got.oracle_violations, 0, "fault oracle must stay clean");
    }
}

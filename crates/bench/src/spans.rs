//! Span analysis: reconstruct per-operation latency breakdowns from the
//! simulator's causal span markers, aggregate per-phase percentiles, and
//! export Chrome/Perfetto `trace_event` JSON.
//!
//! Span markers are *points*, not intervals; a phase's duration is the
//! gap from the previous marker, attributed to the **later** marker's
//! kind ("the time it took to reach this phase"). Consecutive gaps
//! telescope, so a completed operation's per-phase durations sum exactly
//! to its end-to-end latency — the property `trace_explain` uses to
//! reconcile breakdowns against the `write_latency` histogram with zero
//! slack.

use crate::json::Json;
use std::collections::BTreeMap;
use swishmem::Histogram;
use swishmem_simnet::{SpanEvent, SpanPhase};
use swishmem_wire::TraceId;

/// One attributed phase of one operation.
#[derive(Debug, Clone)]
pub struct PhaseSlice {
    /// Display label of the phase reached (`punt`, `retry[2]`, ...).
    pub label: String,
    /// Time spent reaching it from the previous marker, in nanoseconds.
    pub dur_ns: u64,
}

/// The reconstructed timeline of one logical operation.
#[derive(Debug, Clone)]
pub struct TraceBreakdown {
    /// The operation.
    pub trace: TraceId,
    /// Attributed phases in time order (first marker opens the clock and
    /// contributes no slice of its own).
    pub slices: Vec<PhaseSlice>,
    /// End-to-end nanoseconds: last marker minus first marker. Equals the
    /// sum of `slices` durations by construction.
    pub total_ns: u64,
    /// The operation's final phase (e.g. `Release` for a completed SRO
    /// write, `Abandon` for an exhausted one).
    pub last_phase: SpanPhase,
}

impl TraceBreakdown {
    /// True when the operation is a fully-acknowledged SRO/ERO write.
    pub fn completed_write(&self) -> bool {
        self.last_phase == SpanPhase::Release
    }
}

/// Group raw span events into per-trace breakdowns (time-sorted; ties
/// keep emission order, which matches causal order within one node).
pub fn explain(events: &[SpanEvent]) -> Vec<TraceBreakdown> {
    let mut by_trace: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace.0).or_default().push(*e);
    }
    let mut out = Vec::with_capacity(by_trace.len());
    for (id, mut tl) in by_trace {
        tl.sort_by_key(|e| e.time);
        let slices = tl
            .windows(2)
            .map(|w| PhaseSlice {
                label: w[1].phase.label(),
                dur_ns: (w[1].time - w[0].time).as_nanos(),
            })
            .collect();
        out.push(TraceBreakdown {
            trace: TraceId(id),
            slices,
            total_ns: (tl[tl.len() - 1].time - tl[0].time).as_nanos(),
            last_phase: tl[tl.len() - 1].phase,
        });
    }
    out
}

/// Aggregate per-phase duration histograms across many operations,
/// keyed by phase label, in first-seen order.
pub fn phase_histograms(breakdowns: &[TraceBreakdown]) -> Vec<(String, Histogram)> {
    let mut out: Vec<(String, Histogram)> = Vec::new();
    for b in breakdowns {
        for s in &b.slices {
            match out.iter_mut().find(|(l, _)| *l == s.label) {
                Some((_, h)) => h.record_ns(s.dur_ns),
                None => {
                    let mut h = Histogram::new();
                    h.record_ns(s.dur_ns);
                    out.push((s.label.clone(), h));
                }
            }
        }
    }
    out
}

/// Render span events as a Chrome/Perfetto `trace_event` JSON document
/// (loadable in ui.perfetto.dev or chrome://tracing).
///
/// Layout: one Perfetto *thread* per trace (named after its TraceId),
/// grouped under one *process* per originating switch. Each phase slice
/// is a complete (`"X"`) event whose `ts`/`dur` are the gap from the
/// previous marker, so the rendered track mirrors the telescoping
/// breakdown; the opening marker is an instant (`"i"`) event.
pub fn to_perfetto(events: &[SpanEvent]) -> Json {
    // Chrome trace_event timestamps are microseconds; keep sub-µs
    // precision by emitting fractional values.
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);

    let mut by_trace: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace.0).or_default().push(*e);
    }

    let mut out: Vec<Json> = Vec::new();
    let mut named_pids: Vec<u64> = Vec::new();
    for (tid_seq, (id, tl)) in by_trace.iter_mut().enumerate() {
        tl.sort_by_key(|e| e.time);
        let trace = TraceId(*id);
        let pid = tl[0].trace.0 >> 48; // origin node + 1
        let tid = tid_seq as u64 + 1;
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            out.push(Json::obj(vec![
                ("name", Json::str("process_name")),
                ("ph", Json::str("M")),
                ("pid", Json::from(pid)),
                (
                    "args",
                    Json::obj(vec![(
                        "name",
                        Json::str(format!("switch n{}", pid.saturating_sub(1))),
                    )]),
                ),
            ]));
        }
        out.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::from(pid)),
            ("tid", Json::from(tid)),
            (
                "args",
                Json::obj(vec![("name", Json::str(format!("{trace}")))]),
            ),
        ]));
        out.push(Json::obj(vec![
            ("name", Json::str(tl[0].phase.label())),
            ("cat", Json::str("span")),
            ("ph", Json::str("i")),
            ("s", Json::str("t")),
            ("ts", us(tl[0].time.nanos())),
            ("pid", Json::from(pid)),
            ("tid", Json::from(tid)),
            (
                "args",
                Json::obj(vec![("node", Json::str(format!("{}", tl[0].node)))]),
            ),
        ]));
        for w in tl.windows(2) {
            out.push(Json::obj(vec![
                ("name", Json::str(w[1].phase.label())),
                ("cat", Json::str("span")),
                ("ph", Json::str("X")),
                ("ts", us(w[0].time.nanos())),
                ("dur", us((w[1].time - w[0].time).as_nanos())),
                ("pid", Json::from(pid)),
                ("tid", Json::from(tid)),
                (
                    "args",
                    Json::obj(vec![("node", Json::str(format!("{}", w[1].node)))]),
                ),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::str("ns")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use swishmem_simnet::SimTime;
    use swishmem_wire::NodeId;

    fn ev(t: u64, trace: TraceId, node: u16, phase: SpanPhase) -> SpanEvent {
        SpanEvent {
            time: SimTime(t),
            trace,
            node: NodeId(node),
            phase,
        }
    }

    fn write_timeline(trace: TraceId) -> Vec<SpanEvent> {
        vec![
            ev(100, trace, 0, SpanPhase::Ingress),
            ev(135, trace, 0, SpanPhase::Punt),
            ev(145, trace, 0, SpanPhase::CpDequeue),
            ev(155, trace, 0, SpanPhase::JobStart),
            ev(200, trace, 0, SpanPhase::ChainHop(0)),
            ev(260, trace, 1, SpanPhase::ChainHop(1)),
            ev(320, trace, 2, SpanPhase::Ack),
            ev(400, trace, 0, SpanPhase::Release),
        ]
    }

    #[test]
    fn breakdown_telescopes_to_end_to_end() {
        let t = TraceId::new(NodeId(0), 1);
        let b = explain(&write_timeline(t));
        assert_eq!(b.len(), 1);
        let b = &b[0];
        assert!(b.completed_write());
        assert_eq!(b.total_ns, 300);
        let sum: u64 = b.slices.iter().map(|s| s.dur_ns).sum();
        assert_eq!(sum, b.total_ns, "phase gaps telescope exactly");
        assert_eq!(b.slices[0].label, "punt");
        assert_eq!(b.slices.last().unwrap().label, "release");
    }

    #[test]
    fn gap_attribution_uses_the_later_marker() {
        // A retry firing after the ack was sent (interleaving): the gap
        // before `retry[1]` belongs to the retry, the next gap to release.
        let t = TraceId::new(NodeId(3), 9);
        let mut tl = write_timeline(t);
        tl.push(ev(350, t, 0, SpanPhase::Retry(1)));
        let b = explain(&tl);
        let labels: Vec<&str> = b[0].slices.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels[labels.len() - 2], "retry[1]");
        assert_eq!(labels[labels.len() - 1], "release");
        let sum: u64 = b[0].slices.iter().map(|s| s.dur_ns).sum();
        assert_eq!(sum, b[0].total_ns);
    }

    #[test]
    fn phase_histograms_aggregate_across_traces() {
        let a = TraceId::new(NodeId(0), 1);
        let b = TraceId::new(NodeId(1), 1);
        let mut evs = write_timeline(a);
        evs.extend(write_timeline(b));
        let hists = phase_histograms(&explain(&evs));
        let punt = hists.iter().find(|(l, _)| l == "punt").unwrap();
        assert_eq!(punt.1.count(), 2);
        assert_eq!(punt.1.max_ns(), 35);
    }

    #[test]
    fn perfetto_document_shape() {
        let t = TraceId::new(NodeId(0), 1);
        let doc = to_perfetto(&write_timeline(t)).pretty();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"ph\": \"M\""));
        assert!(doc.contains("\"ph\": \"i\""));
        assert!(doc.contains("\"chain_hop[1]\""));
        assert!(doc.contains("switch n0"));
        // ts rendered in microseconds: the 100 ns ingress is 0.1 µs.
        assert!(doc.contains("\"ts\": 0.1"));
    }
}

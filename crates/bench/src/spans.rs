//! Span analysis: reconstruct per-operation latency breakdowns from the
//! simulator's causal span markers, aggregate per-phase percentiles, and
//! export Chrome/Perfetto `trace_event` JSON.
//!
//! Span markers are *points*, not intervals; a phase's duration is the
//! gap from the previous marker, attributed to the **later** marker's
//! kind ("the time it took to reach this phase"). Consecutive gaps
//! telescope, so a completed operation's per-phase durations sum exactly
//! to its end-to-end latency — the property `trace_explain` uses to
//! reconcile breakdowns against the `write_latency` histogram with zero
//! slack.

use crate::json::Json;
use std::collections::BTreeMap;
use swishmem::{CtrlEvent, Histogram, Journal};
use swishmem_simnet::{SpanEvent, SpanPhase};
use swishmem_wire::TraceId;

/// One attributed phase of one operation.
#[derive(Debug, Clone)]
pub struct PhaseSlice {
    /// Display label of the phase reached (`punt`, `retry[2]`, ...).
    pub label: String,
    /// Time spent reaching it from the previous marker, in nanoseconds.
    pub dur_ns: u64,
}

/// The reconstructed timeline of one logical operation.
#[derive(Debug, Clone)]
pub struct TraceBreakdown {
    /// The operation.
    pub trace: TraceId,
    /// Attributed phases in time order (first marker opens the clock and
    /// contributes no slice of its own).
    pub slices: Vec<PhaseSlice>,
    /// End-to-end nanoseconds: last marker minus first marker. Equals the
    /// sum of `slices` durations by construction.
    pub total_ns: u64,
    /// The operation's final phase (e.g. `Release` for a completed SRO
    /// write, `Abandon` for an exhausted one).
    pub last_phase: SpanPhase,
}

impl TraceBreakdown {
    /// True when the operation is a fully-acknowledged SRO/ERO write.
    pub fn completed_write(&self) -> bool {
        self.last_phase == SpanPhase::Release
    }
}

/// Group raw span events into per-trace breakdowns (time-sorted; ties
/// keep emission order, which matches causal order within one node).
pub fn explain(events: &[SpanEvent]) -> Vec<TraceBreakdown> {
    let mut by_trace: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace.0).or_default().push(*e);
    }
    let mut out = Vec::with_capacity(by_trace.len());
    for (id, mut tl) in by_trace {
        tl.sort_by_key(|e| e.time);
        let slices = tl
            .windows(2)
            .map(|w| PhaseSlice {
                label: w[1].phase.label(),
                dur_ns: (w[1].time - w[0].time).as_nanos(),
            })
            .collect();
        out.push(TraceBreakdown {
            trace: TraceId(id),
            slices,
            total_ns: (tl[tl.len() - 1].time - tl[0].time).as_nanos(),
            last_phase: tl[tl.len() - 1].phase,
        });
    }
    out
}

/// Aggregate per-phase duration histograms across many operations,
/// keyed by phase label, in first-seen order.
pub fn phase_histograms(breakdowns: &[TraceBreakdown]) -> Vec<(String, Histogram)> {
    let mut out: Vec<(String, Histogram)> = Vec::new();
    for b in breakdowns {
        for s in &b.slices {
            match out.iter_mut().find(|(l, _)| *l == s.label) {
                Some((_, h)) => h.record_ns(s.dur_ns),
                None => {
                    let mut h = Histogram::new();
                    h.record_ns(s.dur_ns);
                    out.push((s.label.clone(), h));
                }
            }
        }
    }
    out
}

/// Render span events as a Chrome/Perfetto `trace_event` JSON document
/// (loadable in ui.perfetto.dev or chrome://tracing).
///
/// Layout: one Perfetto *thread* per trace (named after its TraceId),
/// grouped under one *process* per originating switch. Each phase slice
/// is a complete (`"X"`) event whose `ts`/`dur` are the gap from the
/// previous marker, so the rendered track mirrors the telescoping
/// breakdown; the opening marker is an instant (`"i"`) event.
pub fn to_perfetto(events: &[SpanEvent]) -> Json {
    // Chrome trace_event timestamps are microseconds; keep sub-µs
    // precision by emitting fractional values.
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);

    let mut by_trace: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace.0).or_default().push(*e);
    }

    let mut out: Vec<Json> = Vec::new();
    let mut named_pids: Vec<u64> = Vec::new();
    for (tid_seq, (id, tl)) in by_trace.iter_mut().enumerate() {
        tl.sort_by_key(|e| e.time);
        let trace = TraceId(*id);
        let pid = tl[0].trace.0 >> 48; // origin node + 1
        let tid = tid_seq as u64 + 1;
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            out.push(Json::obj(vec![
                ("name", Json::str("process_name")),
                ("ph", Json::str("M")),
                ("pid", Json::from(pid)),
                (
                    "args",
                    Json::obj(vec![(
                        "name",
                        Json::str(format!("switch n{}", pid.saturating_sub(1))),
                    )]),
                ),
            ]));
        }
        out.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::from(pid)),
            ("tid", Json::from(tid)),
            (
                "args",
                Json::obj(vec![("name", Json::str(format!("{trace}")))]),
            ),
        ]));
        out.push(Json::obj(vec![
            ("name", Json::str(tl[0].phase.label())),
            ("cat", Json::str("span")),
            ("ph", Json::str("i")),
            ("s", Json::str("t")),
            ("ts", us(tl[0].time.nanos())),
            ("pid", Json::from(pid)),
            ("tid", Json::from(tid)),
            (
                "args",
                Json::obj(vec![("node", Json::str(format!("{}", tl[0].node)))]),
            ),
        ]));
        for w in tl.windows(2) {
            out.push(Json::obj(vec![
                ("name", Json::str(w[1].phase.label())),
                ("cat", Json::str("span")),
                ("ph", Json::str("X")),
                ("ts", us(w[0].time.nanos())),
                ("dur", us((w[1].time - w[0].time).as_nanos())),
                ("pid", Json::from(pid)),
                ("tid", Json::from(tid)),
                (
                    "args",
                    Json::obj(vec![("node", Json::str(format!("{}", w[1].node)))]),
                ),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::str("ns")),
    ])
}

/// Render a decoded control-plane journal as Chrome/Perfetto
/// `trace_event` JSON, alongside-loadable with [`to_perfetto`]'s
/// write-phase tracks.
///
/// Layout: a synthetic "control plane" process carries the fabric-global
/// timelines — leadership reigns (one complete slice per epoch, from the
/// election decree to the next), migration lifecycles (begin→terminal,
/// with the dual-owner window as a nested slice) and compaction /
/// snapshot instants. Every replica that journaled an event additionally
/// gets its own process with a detector thread (suspicion slices from
/// `Suspect` to the clearing `Unsuspect`, open suspicions run to the end
/// of the journal) and a leadership thread (campaign / election / lease
/// instants).
pub fn ctrl_to_perfetto(journal: &Journal) -> Json {
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);
    let entries = journal.entries();
    let end_ns = entries.last().map(|e| e.time.nanos()).unwrap_or(0);

    const CTRL_PID: u64 = 1;
    const TID_LEADERSHIP: u64 = 1;
    const TID_MIGRATIONS: u64 = 2;
    const TID_COMPACTION: u64 = 3;

    let mut out: Vec<Json> = Vec::new();
    let proc_meta = |out: &mut Vec<Json>, pid: u64, name: String| {
        out.push(Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::from(pid)),
            ("args", Json::obj(vec![("name", Json::str(name))])),
        ]));
    };
    let thread_meta = |out: &mut Vec<Json>, pid: u64, tid: u64, name: &str| {
        out.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::from(pid)),
            ("tid", Json::from(tid)),
            ("args", Json::obj(vec![("name", Json::str(name))])),
        ]));
    };
    let instant =
        |out: &mut Vec<Json>, pid: u64, tid: u64, ts: u64, name: String, detail: String| {
            out.push(Json::obj(vec![
                ("name", Json::str(name)),
                ("cat", Json::str("ctrl")),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("ts", us(ts)),
                ("pid", Json::from(pid)),
                ("tid", Json::from(tid)),
                ("args", Json::obj(vec![("detail", Json::str(detail))])),
            ]));
        };
    let slice = |out: &mut Vec<Json>,
                 pid: u64,
                 tid: u64,
                 ts: u64,
                 dur: u64,
                 name: String,
                 detail: String| {
        out.push(Json::obj(vec![
            ("name", Json::str(name)),
            ("cat", Json::str("ctrl")),
            ("ph", Json::str("X")),
            ("ts", us(ts)),
            ("dur", us(dur)),
            ("pid", Json::from(pid)),
            ("tid", Json::from(tid)),
            ("args", Json::obj(vec![("detail", Json::str(detail))])),
        ]));
    };

    proc_meta(&mut out, CTRL_PID, "control plane".into());
    thread_meta(&mut out, CTRL_PID, TID_LEADERSHIP, "leadership");
    thread_meta(&mut out, CTRL_PID, TID_MIGRATIONS, "migrations");
    thread_meta(&mut out, CTRL_PID, TID_COMPACTION, "compaction");

    // Leadership reigns: each epoch's earliest election decree opens a
    // slice that runs until the next epoch's decree (or journal end).
    let failovers = journal.failovers();
    for (i, f) in failovers.iter().enumerate() {
        let start = f.elected_at.nanos();
        let stop = failovers
            .get(i + 1)
            .map(|n| n.elected_at.nanos())
            .unwrap_or(end_ns)
            .max(start);
        slice(
            &mut out,
            CTRL_PID,
            TID_LEADERSHIP,
            start,
            stop - start,
            format!("leader n{} (epoch {})", f.leader.0, f.epoch),
            format!("decree slot {}", f.slot),
        );
    }

    // Migration lifecycles, dual-owner window nested inside.
    for m in journal.migrations() {
        let begin = m.begin_at.nanos();
        let stop = m
            .commit_at
            .or(m.abort_at)
            .map(|t| t.nanos())
            .unwrap_or(end_ns)
            .max(begin);
        let outcome = if m.commit_at.is_some() {
            "committed".to_string()
        } else if let Some(r) = m.abort_reason {
            format!(
                "aborted: {}",
                swishmem::telemetry::journal::abort_reason_str(r)
            )
        } else {
            "open".to_string()
        };
        slice(
            &mut out,
            CTRL_PID,
            TID_MIGRATIONS,
            begin,
            stop - begin,
            format!("mig reg{}@{} n{}->n{}", m.reg, m.start, m.from.0, m.to.0),
            format!("epoch {}, {} passes, {outcome}", m.epoch, m.passes),
        );
        if let Some(d) = m.dual_owner_at {
            let d_ns = d.nanos();
            slice(
                &mut out,
                CTRL_PID,
                TID_MIGRATIONS,
                d_ns,
                stop.max(d_ns) - d_ns,
                "dual-owner".into(),
                format!("reg {} start {}", m.reg, m.start),
            );
        }
    }

    // Compaction boundaries and snapshot traffic.
    for c in journal.compactions() {
        instant(
            &mut out,
            CTRL_PID,
            TID_COMPACTION,
            c.at.nanos(),
            format!("compact@{}", c.upto),
            format!("n{}: {} B snapshot", c.node.0, c.snap_bytes),
        );
    }
    for e in entries {
        match e.event {
            CtrlEvent::SnapshotSent { base, bytes, to } => instant(
                &mut out,
                CTRL_PID,
                TID_COMPACTION,
                e.time.nanos(),
                format!("snapshot@{base} -> n{}", to.0),
                format!("{bytes} B"),
            ),
            CtrlEvent::SnapshotInstalled { base } => instant(
                &mut out,
                CTRL_PID,
                TID_COMPACTION,
                e.time.nanos(),
                format!("snapshot@{base} installed"),
                format!("n{}", e.node.0),
            ),
            _ => {}
        }
    }

    // Per-replica tracks: detector suspicion slices + leadership/lease
    // instants. pid = 2 + dense replica index, in first-seen order.
    const TID_DETECTOR: u64 = 1;
    const TID_REPLICA_LEAD: u64 = 2;
    let mut pids: BTreeMap<u16, u64> = BTreeMap::new();
    for e in entries {
        let next = 2 + pids.len() as u64;
        pids.entry(e.node.0).or_insert(next);
    }
    for (&node, &pid) in &pids {
        proc_meta(&mut out, pid, format!("replica n{node}"));
        thread_meta(&mut out, pid, TID_DETECTOR, "detector");
        thread_meta(&mut out, pid, TID_REPLICA_LEAD, "leadership");
    }
    // Open suspicions per (observer, target).
    let mut open: BTreeMap<(u16, u16), (u64, u64, u64)> = BTreeMap::new();
    for e in entries {
        let pid = pids[&e.node.0];
        let t = e.time.nanos();
        match e.event {
            CtrlEvent::Suspect {
                target,
                silence_ns,
                timeout_ns,
            } => {
                open.insert((e.node.0, target.0), (t, silence_ns, timeout_ns));
            }
            CtrlEvent::Unsuspect { target } => {
                if let Some((t0, silence, budget)) = open.remove(&(e.node.0, target.0)) {
                    slice(
                        &mut out,
                        pid,
                        TID_DETECTOR,
                        t0,
                        t.max(t0) - t0,
                        format!("suspect n{}", target.0),
                        format!("{silence} ns silent vs {budget} ns budget"),
                    );
                }
            }
            CtrlEvent::ElectionStart { ballot, timeout_ns } => instant(
                &mut out,
                pid,
                TID_REPLICA_LEAD,
                t,
                format!("election start (ballot {ballot})"),
                format!("after {timeout_ns} ns silence"),
            ),
            CtrlEvent::LeaderElected {
                leader,
                epoch,
                slot,
            } => instant(
                &mut out,
                pid,
                TID_REPLICA_LEAD,
                t,
                format!("leader n{} elected (epoch {epoch})", leader.0),
                format!("decree slot {slot}"),
            ),
            CtrlEvent::StepDown { slot, ballot } => instant(
                &mut out,
                pid,
                TID_REPLICA_LEAD,
                t,
                "step down".into(),
                format!("slot {slot}, ballot {ballot}"),
            ),
            CtrlEvent::LeaseLost { heard, quorum } => instant(
                &mut out,
                pid,
                TID_REPLICA_LEAD,
                t,
                "lease lost".into(),
                format!("heard {heard} of quorum {quorum}"),
            ),
            _ => {}
        }
    }
    // Suspicions never cleared run to the end of the journal.
    for ((node, target), (t0, silence, budget)) in open {
        slice(
            &mut out,
            pids[&node],
            TID_DETECTOR,
            t0,
            end_ns.max(t0) - t0,
            format!("suspect n{target} (uncleared)"),
            format!("{silence} ns silent vs {budget} ns budget"),
        );
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::str("ns")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use swishmem_simnet::SimTime;
    use swishmem_wire::NodeId;

    fn ev(t: u64, trace: TraceId, node: u16, phase: SpanPhase) -> SpanEvent {
        SpanEvent {
            time: SimTime(t),
            trace,
            node: NodeId(node),
            phase,
        }
    }

    fn write_timeline(trace: TraceId) -> Vec<SpanEvent> {
        vec![
            ev(100, trace, 0, SpanPhase::Ingress),
            ev(135, trace, 0, SpanPhase::Punt),
            ev(145, trace, 0, SpanPhase::CpDequeue),
            ev(155, trace, 0, SpanPhase::JobStart),
            ev(200, trace, 0, SpanPhase::ChainHop(0)),
            ev(260, trace, 1, SpanPhase::ChainHop(1)),
            ev(320, trace, 2, SpanPhase::Ack),
            ev(400, trace, 0, SpanPhase::Release),
        ]
    }

    #[test]
    fn breakdown_telescopes_to_end_to_end() {
        let t = TraceId::new(NodeId(0), 1);
        let b = explain(&write_timeline(t));
        assert_eq!(b.len(), 1);
        let b = &b[0];
        assert!(b.completed_write());
        assert_eq!(b.total_ns, 300);
        let sum: u64 = b.slices.iter().map(|s| s.dur_ns).sum();
        assert_eq!(sum, b.total_ns, "phase gaps telescope exactly");
        assert_eq!(b.slices[0].label, "punt");
        assert_eq!(b.slices.last().unwrap().label, "release");
    }

    #[test]
    fn gap_attribution_uses_the_later_marker() {
        // A retry firing after the ack was sent (interleaving): the gap
        // before `retry[1]` belongs to the retry, the next gap to release.
        let t = TraceId::new(NodeId(3), 9);
        let mut tl = write_timeline(t);
        tl.push(ev(350, t, 0, SpanPhase::Retry(1)));
        let b = explain(&tl);
        let labels: Vec<&str> = b[0].slices.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels[labels.len() - 2], "retry[1]");
        assert_eq!(labels[labels.len() - 1], "release");
        let sum: u64 = b[0].slices.iter().map(|s| s.dur_ns).sum();
        assert_eq!(sum, b[0].total_ns);
    }

    #[test]
    fn phase_histograms_aggregate_across_traces() {
        let a = TraceId::new(NodeId(0), 1);
        let b = TraceId::new(NodeId(1), 1);
        let mut evs = write_timeline(a);
        evs.extend(write_timeline(b));
        let hists = phase_histograms(&explain(&evs));
        let punt = hists.iter().find(|(l, _)| l == "punt").unwrap();
        assert_eq!(punt.1.count(), 2);
        assert_eq!(punt.1.max_ns(), 35);
    }

    #[test]
    fn perfetto_document_shape() {
        let t = TraceId::new(NodeId(0), 1);
        let doc = to_perfetto(&write_timeline(t)).pretty();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"ph\": \"M\""));
        assert!(doc.contains("\"ph\": \"i\""));
        assert!(doc.contains("\"chain_hop[1]\""));
        assert!(doc.contains("switch n0"));
        // ts rendered in microseconds: the 100 ns ingress is 0.1 µs.
        assert!(doc.contains("\"ts\": 0.1"));
    }

    fn jrec(t: u64, node: u16, ev: CtrlEvent) -> swishmem_simnet::JournalRecord {
        let (kind, cause, a, b, c) = ev.encode();
        swishmem_simnet::JournalRecord {
            time: SimTime(t),
            node: NodeId(node),
            kind,
            cause,
            a,
            b,
            c,
        }
    }

    #[test]
    fn ctrl_perfetto_renders_leadership_detector_and_migration_tracks() {
        let leader = 65534u16;
        let records = vec![
            jrec(
                1_000,
                leader,
                CtrlEvent::Suspect {
                    target: NodeId(65535),
                    silence_ns: 400,
                    timeout_ns: 350,
                },
            ),
            jrec(
                1_100,
                leader,
                CtrlEvent::ElectionStart {
                    ballot: 257,
                    timeout_ns: 350,
                },
            ),
            jrec(
                1_200,
                leader,
                CtrlEvent::LeaderElected {
                    leader: NodeId(leader),
                    epoch: 2,
                    slot: 8,
                },
            ),
            jrec(
                1_250,
                leader,
                CtrlEvent::Unsuspect {
                    target: NodeId(65535),
                },
            ),
            jrec(
                2_000,
                leader,
                CtrlEvent::MigBegin {
                    reg: 1,
                    start: 16,
                    from: NodeId(0),
                    to: NodeId(2),
                    epoch: 2,
                },
            ),
            jrec(
                2_500,
                leader,
                CtrlEvent::MigDualOwner {
                    reg: 1,
                    start: 16,
                    epoch: 2,
                    pass: 1,
                },
            ),
            jrec(
                3_000,
                leader,
                CtrlEvent::MigCommit {
                    reg: 1,
                    start: 16,
                    epoch: 3,
                },
            ),
            jrec(
                3_500,
                leader,
                CtrlEvent::Compact {
                    upto: 12,
                    snap_bytes: 640,
                },
            ),
        ];
        let journal = Journal::decode(&records);
        let doc = ctrl_to_perfetto(&journal).pretty();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("control plane"));
        assert!(doc.contains("leader n65534 (epoch 2)"));
        assert!(doc.contains("mig reg1@16 n0->n2"));
        assert!(doc.contains("dual-owner"));
        assert!(doc.contains("compact@12"));
        assert!(doc.contains("replica n65534"));
        assert!(doc.contains("suspect n65535"));
        assert!(doc.contains("election start (ballot 257)"));
        // The suspicion slice spans 1_000..1_250 ns = 0.25 µs.
        assert!(doc.contains("\"dur\": 0.25"), "{doc}");
    }

    #[test]
    fn ctrl_perfetto_empty_journal_is_well_formed() {
        let doc = ctrl_to_perfetto(&Journal::default()).pretty();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("control plane"));
    }
}

//! E20 — sharded-engine scaling: conservative PDES with deterministic
//! time-window barriers on a leaf-spine fabric with a Zipf NF sketch
//! workload. Quantifies the tentpole claim that partitioning the event
//! loop buys parallel throughput without touching determinism: the same
//! run digest at every shard count, zero fault-oracle violations under a
//! sharded fault sweep, and a ≥4× critical-path speedup at 8 shards.
//!
//! Two throughput metrics are reported honestly:
//!
//! * **wall events/s** — what this machine actually achieved; on a
//!   single-core container the barrier overhead makes this *worse* as
//!   shards are added, which says nothing about the engine.
//! * **critical-path events/s** — events divided by Σ over windows of
//!   the slowest shard's compute time: the throughput a one-core-per-
//!   shard machine converges to. This is the scaling gate.

use crate::shardnet::{run_leaf_spine, LeafSpineSpec, ShardRunConfig};
use crate::table::{ExperimentResult, Table};

/// Run E20.
pub fn run(quick: bool) -> ExperimentResult {
    let (spec, injections, shard_counts): (LeafSpineSpec, u64, &[usize]) = if quick {
        (
            LeafSpineSpec {
                leaves: 56,
                spines: 4,
            },
            2_000,
            &[1, 2, 4],
        )
    } else {
        (
            LeafSpineSpec {
                leaves: 248,
                spines: 8,
            },
            8_000,
            &[1, 2, 4, 8, 16],
        )
    };

    let mut t = Table::new(
        &format!(
            "Shard scaling, {}x{} leaf-spine, {} Zipf(1.1) injections (lossless links)",
            spec.leaves, spec.spines, injections
        ),
        &[
            "shards",
            "events",
            "digest",
            "wall events/s",
            "crit-path events/s",
            "crit-path speedup",
            "peak queue",
        ],
    );

    let mut base_digest = None;
    let mut base_crit_eps = 0.0f64;
    let mut gate_speedup = 0.0f64;
    let gate_shards = if quick { 4 } else { 8 };
    for &shards in shard_counts {
        let o = run_leaf_spine(&ShardRunConfig::scaling(spec, shards, injections));
        let digest = o.digest;
        match base_digest {
            None => base_digest = Some(digest),
            Some(d) => assert_eq!(
                d, digest,
                "shard count perturbed the run digest — determinism broken"
            ),
        }
        let crit_eps = o.crit_events_per_sec();
        if shards == 1 {
            base_crit_eps = crit_eps;
        }
        let speedup = if base_crit_eps > 0.0 {
            crit_eps / base_crit_eps
        } else {
            0.0
        };
        if shards == gate_shards {
            gate_speedup = speedup;
        }
        t.row(vec![
            shards.to_string(),
            o.events.to_string(),
            format!("{digest:016x}"),
            format!("{:.0}", o.wall_events_per_sec()),
            format!("{crit_eps:.0}"),
            format!("{speedup:.2}x"),
            o.peak_queue_depth.to_string(),
        ]);
    }

    // Sharded fault-sweep rerun: the E17-style randomized schedule on the
    // same fabric, with the observer-stream oracle armed, at two shard
    // counts that must agree bit-for-bit.
    let mut ft = Table::new(
        "Sharded fault sweep (lossy links, 6 fault episodes, observer oracle armed)",
        &[
            "shards",
            "fault transitions",
            "oracle violations",
            "delivered",
            "dropped",
            "digest",
        ],
    );
    let sweep_shards: &[usize] = if quick { &[2] } else { &[2, 8] };
    let mut sweep_digest = None;
    let mut total_viol = 0u64;
    for &shards in sweep_shards {
        let mut cfg = ShardRunConfig::scaling(spec, shards, injections / 2);
        cfg.fault_episodes = 6;
        cfg.lossless = false;
        let o = run_leaf_spine(&cfg);
        total_viol += o.oracle_violations;
        match sweep_digest {
            None => sweep_digest = Some(o.digest),
            Some(d) => assert_eq!(d, o.digest, "fault sweep diverged across shard counts"),
        }
        ft.row(vec![
            shards.to_string(),
            o.oracle_transitions.to_string(),
            o.oracle_violations.to_string(),
            o.delivered_pkts.to_string(),
            o.dropped_pkts.to_string(),
            format!("{:016x}", o.digest),
        ]);
    }

    let findings = vec![
        format!(
            "identical run digest at every shard count — sharding is a pure performance knob \
             (same deliveries, same NF state, same end time)"
        ),
        format!(
            "critical-path speedup at {gate_shards} shards: {gate_speedup:.2}x \
             (gate: >= 4x at 8 shards on the full fabric)"
        ),
        format!(
            "sharded fault-sweep rerun: {total_viol} oracle violations; fault events land on \
             owner shards at schedule-identical times"
        ),
        "wall-clock events/s on a single-core host degrades with shard count (barrier overhead \
         with no parallel hardware); the critical-path metric is the honest scaling measure"
            .into(),
    ];
    ExperimentResult {
        id: "E20".into(),
        title: "Sharded PDES engine: scaling and determinism under time-window barriers".into(),
        paper_anchor: "§4 scalability discussion (simulation substrate)".into(),
        expectation:
            "digest-identical runs at every shard count; >= 4x critical-path speedup at 8 shards"
                .into(),
        tables: vec![t, ft],
        findings,
    }
}

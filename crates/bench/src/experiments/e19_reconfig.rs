//! E19 — live reconfiguration under a skewed workload: a Zipf-skewed
//! writer hammers a partitioned register from a switch that owns none of
//! the hot keys. With the reconfiguration planner enabled, per-range load
//! reports steer the hot range onto its talker mid-run (state streamed,
//! ownership flipped by an epoch bump) while writes keep completing; the
//! baseline run leaves placement static. Measured: per-phase write
//! latency and throughput (pre-move / transfer / post-commit), the
//! disruption paid during the transfer, and the migration's wire cost —
//! with every consistency oracle armed on the reconfiguring run.

use crate::scenarios::udp_write;
use crate::table::{ExperimentResult, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{MigrationPhase, NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_nf::workload::Zipf;

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

const KEYS: u32 = 64;
/// All traffic enters at this switch — the bootstrap owner of the *last*
/// range only, so the Zipf head (key 0) is remote until the planner acts.
const TALKER: usize = 2;

struct Outcome {
    t0: SimTime,
    injected: u64,
    completed: u64,
    failed: u64,
    /// (time, cumulative completed, latency-sample count) at first
    /// Transferring and first Committed sighting of the hot range.
    begin_mark: Option<(SimTime, u64, usize)>,
    commit_mark: Option<(SimTime, u64, usize)>,
    end_mark: (SimTime, u64, usize),
    /// Talker-side end-to-end write latencies, in completion order.
    latencies: Vec<u64>,
    chunks_sent: u64,
    chunks_applied: u64,
    load_reports: u64,
    moves_committed: usize,
    oracle_violations: usize,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn seg_stats(lat: &[u64], a: usize, b: usize) -> (f64, u64) {
    let seg = &lat[a.min(lat.len())..b.min(lat.len())];
    if seg.is_empty() {
        return (0.0, 0);
    }
    let mean = seg.iter().map(|&x| x as f64).sum::<f64>() / seg.len() as f64;
    let mut s = seg.to_vec();
    s.sort_unstable();
    (mean, percentile(&s, 0.99))
}

/// One run: Zipf writes from the talker for `horizon`, planner on or off,
/// phase marks taken whenever the hot range's migration state changes.
/// `marks` (from a prior reconfiguring run) aligns the baseline's phase
/// boundaries so the two runs segment identically in time.
fn run_once(enabled: bool, quick: bool, marks: Option<(SimTime, SimTime)>) -> Outcome {
    let mut cfg = SwishConfig::default();
    cfg.reconfig.enabled = enabled;
    cfg.reconfig.min_writes = 24;
    // Stretch the chunk stream so the dual-owner window is long enough
    // to observe writes completing *during* the transfer (the default
    // tuning finishes a 22-key range in tens of microseconds).
    cfg.reconfig.chunk_keys = 4;
    cfg.reconfig.chunk_interval = SimDuration::micros(300);
    // A wide-area-ish fabric (50 µs one-way) makes placement matter:
    // a remote write pays two extra link crossings per attempt.
    let link = LinkParams {
        latency: SimDuration::micros(50),
        ..LinkParams::datacenter()
    };
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(19)
        .swish_config(cfg)
        .link(link)
        .register(RegisterSpec::partitioned(0, "hot", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();

    // One write per 100 µs keeps the pipeline in its stable regime
    // (completion tracks injection), so latency reflects the write path
    // rather than queueing.
    let (gap_us, horizon) = if quick {
        (100u64, SimDuration::millis(50))
    } else {
        (100u64, SimDuration::millis(120))
    };
    let zipf = Zipf::new(KEYS as usize, 1.1);
    let mut rng = StdRng::seed_from_u64(19);
    let mut injected = 0u64;
    let mut t = SimDuration::micros(0);
    while t < horizon {
        let key = zipf.sample(&mut rng) as u16;
        dep.inject(
            t0 + t,
            TALKER,
            0,
            udp_write(key, 100 + (injected % 400) as u16),
        );
        injected += 1;
        t = t + SimDuration::micros(gap_us);
    }

    let ocfg = OracleConfig::new(t0 + horizon);
    let mut suite = enabled.then(|| OracleSuite::attach(&mut dep, ocfg));
    let end = t0 + horizon + ocfg.convergence_grace + SimDuration::millis(100);

    let mut begin_mark = None;
    let mut commit_mark = None;
    let mut end_mark = None;
    let mark = |dep: &Deployment| {
        (
            dep.now(),
            dep.sum_metric(|m| m.cp.jobs_completed),
            dep.metrics(TALKER).cp.write_latency.count(),
        )
    };
    while dep.now() < end {
        dep.run_for(SimDuration::micros(500));
        if let Some(s) = suite.as_mut() {
            s.poll(&dep);
        }
        match marks {
            // Baseline: segment at the reconfiguring run's boundaries.
            Some((tb, tc)) => {
                if begin_mark.is_none() && dep.now() >= tb {
                    begin_mark = Some(mark(&dep));
                }
                if commit_mark.is_none() && dep.now() >= tc {
                    commit_mark = Some(mark(&dep));
                }
            }
            // Reconfiguring run: segment at observed phase changes of the
            // hot range (key 0). The bootstrap table already reads
            // `Committed`, so "begin" is the first *open* migration.
            None => {
                let phase = dep.migration_phase(0, 0);
                let open = matches!(
                    phase,
                    MigrationPhase::Transferring | MigrationPhase::DualOwner
                );
                if begin_mark.is_none() && open {
                    begin_mark = Some(mark(&dep));
                }
                if begin_mark.is_some() && commit_mark.is_none() && !open {
                    commit_mark = Some(mark(&dep));
                }
            }
        }
        // Rates are measured over the offered-load window only; the
        // drain tail (no injections) would deflate them.
        if end_mark.is_none() && dep.now() >= t0 + horizon {
            end_mark = Some(mark(&dep));
        }
    }
    let end_mark = end_mark.unwrap_or_else(|| mark(&dep));

    let moves_committed = dep
        .reconfig_events()
        .iter()
        .filter(|e| matches!(e.event, swishmem::ReconfigEvent::Commit { .. }))
        .count()
        .saturating_sub(3); // bootstrap commits one epoch per range
    Outcome {
        t0,
        injected,
        completed: dep.sum_metric(|m| m.cp.jobs_completed),
        failed: dep.sum_metric(|m| m.cp.jobs_failed + m.cp.jobs_shed),
        begin_mark,
        commit_mark,
        end_mark,
        latencies: dep.metrics(TALKER).cp.write_latency.samples().to_vec(),
        chunks_sent: dep.sum_metric(|m| m.cp.migrate_chunks_sent),
        chunks_applied: dep.sum_metric(|m| m.dp.migrate_applied),
        load_reports: dep.sum_metric(|m| m.cp.load_reports_sent),
        moves_committed,
        oracle_violations: usize::from(suite.map(|mut s| s.poll(&dep).is_some()).unwrap_or(false)),
    }
}

fn rate_per_ms(completed: u64, dur: SimDuration) -> f64 {
    if dur.as_nanos() == 0 {
        return 0.0;
    }
    completed as f64 * 1e6 / dur.as_nanos() as f64
}

/// Run E19.
pub fn run(quick: bool) -> ExperimentResult {
    let reconf = run_once(true, quick, None);
    let marks = match (reconf.begin_mark, reconf.commit_mark) {
        (Some(b), Some(c)) => (b.0, c.0),
        _ => {
            return ExperimentResult {
                id: "E19".into(),
                title: "Live reconfiguration under skew".into(),
                paper_anchor: "§7/§9 (directory service, state migration)".into(),
                expectation: "planner migrates the hot range onto its talker".into(),
                tables: vec![],
                findings: vec!["planner never migrated the hot range — investigate".into()],
            };
        }
    };
    let base = run_once(false, quick, Some(marks));

    let segments = |o: &Outcome| {
        let b = o.begin_mark.expect("begin mark");
        let c = o.commit_mark.expect("commit mark");
        let e = o.end_mark;
        // (label, duration, completed, latency slice bounds)
        vec![
            ("pre-move", b.0.since(o.t0), b.1, (0usize, b.2)),
            ("transfer", c.0.since(b.0), c.1 - b.1, (b.2, c.2)),
            ("post-commit", e.0.since(c.0), e.1 - c.1, (c.2, e.2)),
        ]
    };
    let rs = segments(&reconf);
    let bs = segments(&base);

    let mut t = Table::new(
        "Skewed-workload rebalance: static placement vs live migration (Zipf 1.1, all writes at a non-owner switch)",
        &[
            "phase",
            "static writes/ms",
            "reconfig writes/ms",
            "static mean µs",
            "reconfig mean µs",
            "static p99 µs",
            "reconfig p99 µs",
        ],
    );
    let mut post_rates = (0.0f64, 0.0f64);
    let mut post_means = (0.0f64, 0.0f64);
    for (r, b) in rs.iter().zip(&bs) {
        let (rm, rp99) = seg_stats(&reconf.latencies, r.3 .0, r.3 .1);
        let (bm, bp99) = seg_stats(&base.latencies, b.3 .0, b.3 .1);
        let rrate = rate_per_ms(r.2, r.1);
        let brate = rate_per_ms(b.2, b.1);
        if r.0 == "post-commit" {
            post_rates = (brate, rrate);
            post_means = (bm, rm);
        }
        t.row(vec![
            r.0.into(),
            format!("{brate:.1}"),
            format!("{rrate:.1}"),
            format!("{:.1}", bm / 1000.0),
            format!("{:.1}", rm / 1000.0),
            format!("{:.1}", bp99 as f64 / 1000.0),
            format!("{:.1}", rp99 as f64 / 1000.0),
        ]);
    }

    let mut cost = Table::new(
        "Reconfiguration cost and availability",
        &["metric", "static", "reconfig"],
    );
    cost.row(vec![
        "writes injected".into(),
        base.injected.to_string(),
        reconf.injected.to_string(),
    ]);
    cost.row(vec![
        "writes completed".into(),
        base.completed.to_string(),
        reconf.completed.to_string(),
    ]);
    cost.row(vec![
        "writes failed/shed".into(),
        base.failed.to_string(),
        reconf.failed.to_string(),
    ]);
    cost.row(vec![
        "ranges migrated".into(),
        base.moves_committed.to_string(),
        reconf.moves_committed.to_string(),
    ]);
    cost.row(vec![
        "transfer chunks sent/applied".into(),
        format!("{}/{}", base.chunks_sent, base.chunks_applied),
        format!("{}/{}", reconf.chunks_sent, reconf.chunks_applied),
    ]);
    cost.row(vec![
        "load reports".into(),
        base.load_reports.to_string(),
        reconf.load_reports.to_string(),
    ]);
    cost.row(vec![
        "oracle violations".into(),
        "-".into(),
        reconf.oracle_violations.to_string(),
    ]);

    let lat_gain = if post_means.1 > 0.0 {
        (post_means.0 - post_means.1) / post_means.0 * 100.0
    } else {
        0.0
    };
    let transfer_completed = rs[1].2;
    let findings = vec![
        format!(
            "the planner migrated {} hot range(s) onto the talker from telemetry alone; \
             post-commit mean write latency dropped {:.0}% vs static placement \
             ({:.1} µs -> {:.1} µs) at {:.1} vs {:.1} completed writes/ms",
            reconf.moves_committed,
            lat_gain,
            post_means.0 / 1000.0,
            post_means.1 / 1000.0,
            post_rates.0,
            post_rates.1,
        ),
        format!(
            "write availability held through the transfer: {transfer_completed} writes \
             completed during the dual-owner window, {} failed or shed over the whole run",
            reconf.failed
        ),
        format!(
            "migration itself cost {} range-scoped chunks and {} load reports; \
             all consistency oracles stayed quiet ({} violations)",
            reconf.chunks_sent, reconf.load_reports, reconf.oracle_violations
        ),
    ];
    ExperimentResult {
        id: "E19".into(),
        title: "Live reconfiguration: telemetry-driven hot-range migration".into(),
        paper_anchor: "§7/§9 (directory service, migrating data as needed)".into(),
        expectation:
            "hot range moves to its talker; post-commit latency improves; writes keep completing"
                .into(),
        tables: vec![t, cost],
        findings,
    }
}

//! The experiment suite: one module per table/figure/claim of the paper
//! (see DESIGN.md §5 for the full index and EXPERIMENTS.md for recorded
//! results).

pub mod e01_table1;
pub mod e02_sync_bandwidth;
pub mod e03_sro_write_cost;
pub mod e04_read_paths;
pub mod e05_convergence;
pub mod e06_lww_vs_crdt;
pub mod e07_failover;
pub mod e08_lb_pcc;
pub mod e09_ddos;
pub mod e10_memory;
pub mod e11_ratelimit;
pub mod e12_recovery;
pub mod e13_batching;
pub mod e14_cp_vs_dp;
pub mod e15_clock_skew;
pub mod e16_setup_latency;
pub mod e17_fault_sweep;
pub mod e18_trace_overhead;
pub mod e19_reconfig;
pub mod e20_shard_scaling;
pub mod e21_failover;
pub mod e22_consensus_hardening;
pub mod e23_ctrl_recorder;
pub mod e24_replay_lab;

use crate::table::ExperimentResult;

/// An experiment entry point.
pub type RunFn = fn(quick: bool) -> ExperimentResult;

/// All experiments, in id order.
pub fn all() -> Vec<(&'static str, RunFn)> {
    vec![
        ("e1", e01_table1::run),
        ("e2", e02_sync_bandwidth::run),
        ("e3", e03_sro_write_cost::run),
        ("e4", e04_read_paths::run),
        ("e5", e05_convergence::run),
        ("e6", e06_lww_vs_crdt::run),
        ("e7", e07_failover::run),
        ("e8", e08_lb_pcc::run),
        ("e9", e09_ddos::run),
        ("e10", e10_memory::run),
        ("e11", e11_ratelimit::run),
        ("e12", e12_recovery::run),
        ("e13", e13_batching::run),
        ("e14", e14_cp_vs_dp::run),
        ("e15", e15_clock_skew::run),
        ("e16", e16_setup_latency::run),
        ("e17", e17_fault_sweep::run),
        ("e18", e18_trace_overhead::run),
        ("e19", e19_reconfig::run),
        ("e20", e20_shard_scaling::run),
        ("e21", e21_failover::run),
        ("e22", e22_consensus_hardening::run),
        ("e23", e23_ctrl_recorder::run),
        ("e24", e24_replay_lab::run),
    ]
}

//! E17 — fault-plane sweep: randomized fault schedules (crashes, link
//! outages, loss/jitter/corruption bursts, gray links, partitions) run
//! against SRO/ERO/EWO deployments with every online consistency oracle
//! armed. The paper's robustness story (§6.3 + the §5 failure model)
//! quantified: zero oracle violations, plus the cost the control plane
//! paid to get there (retries, sheds, sweep repairs).

use crate::scenarios::udp_write;
use crate::table::{ExperimentResult, Table};
use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_simnet::FaultGen;

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

struct CountNf;
impl NfApp for CountNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst_port), 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

struct SweepOutcome {
    events: usize,
    violations: usize,
    retries: u64,
    jobs_failed: u64,
    sweep_clears: u64,
}

fn sweep(kind: &str, seed: u64) -> SweepOutcome {
    let spec = match kind {
        "SRO" => RegisterSpec::sro(0, "t", 16),
        "ERO" => RegisterSpec::ero(0, "t", 16),
        _ => RegisterSpec::ewo_counter(0, "c", 16),
    };
    let is_ewo = kind == "EWO";
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .register(spec)
        .build(move |_| -> Box<dyn NfApp> {
            if is_ewo {
                Box::new(CountNf)
            } else {
                Box::new(WriteNf)
            }
        });
    dep.settle();
    let t0 = dep.now();
    let horizon = SimDuration::millis(60);
    let nodes = dep.switch_ids().to_vec();
    let links = dep.fault_links();
    let sched = FaultGen::new(seed).generate(&nodes, &links, horizon, 4);
    dep.schedule_faults(t0, &sched);
    for i in 0..48u64 {
        dep.inject(
            t0 + SimDuration::micros(i * 1000),
            (i % 3) as usize,
            0,
            udp_write((i % 16) as u16, 100 + i as u16),
        );
    }
    let ocfg = OracleConfig::new(t0 + horizon);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = t0 + horizon + ocfg.convergence_grace + SimDuration::millis(100);
    let violations = usize::from(suite.run(&mut dep, end).is_err());
    SweepOutcome {
        events: sched.len(),
        violations,
        retries: dep.sum_metric(|m| m.cp.retries),
        jobs_failed: dep.sum_metric(|m| m.cp.jobs_failed + m.cp.jobs_shed),
        sweep_clears: dep.sum_metric(|m| m.dp.pending_sweep_clears),
    }
}

/// Run E17.
pub fn run(quick: bool) -> ExperimentResult {
    let per_class: u64 = if quick { 2 } else { 4 };
    let mut t = Table::new(
        "Seeded fault sweeps with online oracles (3-switch chain, 4 fault episodes each)",
        &[
            "class",
            "seed",
            "fault events",
            "oracle violations",
            "CP retries",
            "jobs failed/shed",
            "sweep clears",
        ],
    );
    let mut total_viol = 0usize;
    let mut total_runs = 0usize;
    for (kind, base) in [("SRO", 400u64), ("ERO", 500), ("EWO", 600)] {
        for s in 0..per_class {
            let seed = base + s;
            let o = sweep(kind, seed);
            total_viol += o.violations;
            total_runs += 1;
            t.row(vec![
                kind.into(),
                seed.to_string(),
                o.events.to_string(),
                o.violations.to_string(),
                o.retries.to_string(),
                o.jobs_failed.to_string(),
                o.sweep_clears.to_string(),
            ]);
        }
    }
    let findings = vec![
        format!(
            "{total_runs} randomized fault schedules across SRO/ERO/EWO produced {total_viol} oracle violations \
             (linearizable value provenance, epoch/sequence monotonicity, pending-bit liveness, post-fault convergence)"
        ),
        "recovery is paid for in the control plane (retries, shed jobs) and the tail's pending sweep, \
         never in invented or regressed data-plane state"
            .into(),
    ];
    ExperimentResult {
        id: "E17".into(),
        title: "Fault sweep: scripted failures vs online consistency oracles".into(),
        paper_anchor: "§5 failure model, §6.3 (handling failures)".into(),
        expectation: "zero oracle violations across every seeded schedule".into(),
        tables: vec![t],
        findings,
    }
}

//! E13 — §7 bandwidth overhead: "Generating write requests for
//! replication consumes available bandwidth which may be substantial
//! especially in write-intensive workloads. Batching write requests may
//! alleviate this issue at the expense of reduced availability and
//! consistency."
//!
//! Sweeps the eager-mirror batch size under a fixed write-per-packet
//! workload and reports replication bandwidth against convergence lag —
//! the exact trade-off curve the paper gestures at.

use crate::scenarios::{count_pkt, CounterNf};
use crate::table::{f, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{RegisterSpec, SwishConfig};
use swishmem_simnet::TrafficClass;

fn measure(batch: usize, quick: bool) -> (f64, f64, f64) {
    let mut cfg = SwishConfig::default();
    cfg.batch_size = batch;
    cfg.sync_period = SimDuration::millis(2); // background safety net
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(51)
        .swish_config(cfg)
        .register(RegisterSpec::ewo_counter(0, "cnt", 256))
        .build(|_| Box::new(CounterNf));
    dep.settle();
    let dur = SimDuration::millis(if quick { 30 } else { 80 });
    let rate = 200_000.0; // write-intensive: every packet writes
    let gap = (1e9 / rate) as u64;
    let t0 = dep.now();
    dep.sim.stats_mut().reset();
    let n = dur.as_nanos() / gap;
    // All writes to rotating keys at switch 0; lag observed at switch 2.
    let mut lags = Vec::new();
    let mut injected = 0u64;
    let mut next_sample = SimDuration::millis(5);
    for i in 0..n {
        dep.inject(
            t0 + SimDuration::nanos(i * gap),
            0,
            0,
            count_pkt((i % 64) as u16, i as u32),
        );
        injected += 1;
        // Periodically advance and sample staleness on key 1.
        if SimDuration::nanos(i * gap) >= next_sample {
            dep.run_until(t0 + SimDuration::nanos(i * gap));
            let local: u64 = (0..64).map(|k| dep.peek(0, 0, k)).sum();
            let remote: u64 = (0..64).map(|k| dep.peek(2, 0, k)).sum();
            lags.push((local.saturating_sub(remote)) as f64 / rate * 1e6); // µs
            next_sample = next_sample + SimDuration::millis(2);
        }
    }
    dep.run_for(SimDuration::millis(20));
    let sync = dep.sim.stats().delivered(TrafficClass::EwoSync);
    let secs = dur.as_secs_f64();
    let gbps = sync.bytes as f64 * 8.0 / secs / 1e9;
    let pkts_per_write = sync.packets as f64 / injected.max(1) as f64;
    (gbps, pkts_per_write, crate::scenarios::mean(&lags))
}

/// Run E13.
pub fn run(quick: bool) -> ExperimentResult {
    let batches: Vec<usize> = if quick {
        vec![1, 16]
    } else {
        vec![1, 4, 16, 64]
    };
    let mut t = Table::new(
        "Eager-update batching at 200k writes/s (3 switches)",
        &[
            "batch size",
            "replication Gbps (total)",
            "mirror pkts per write",
            "convergence lag (µs)",
        ],
    );
    let mut first = None;
    let mut last = None;
    for &b in &batches {
        let (gbps, ppw, lag) = measure(b, quick);
        t.row(vec![b.to_string(), f(gbps), f(ppw), f(lag)]);
        if first.is_none() {
            first = Some((gbps, lag));
        }
        last = Some((gbps, lag));
    }
    let (g1, l1) = first.unwrap_or((0.0, 0.0));
    let (g2, l2) = last.unwrap_or((0.0, 0.0));
    let findings = vec![
        format!(
            "batching cuts replication bandwidth {:.1}× (from {:.2} to {:.2} Gbps) while convergence lag grows from {:.0} to {:.0} µs — the availability/consistency price §7 names",
            g1 / g2.max(1e-9), g1, g2, l1, l2
        ),
        "per-write packet overhead amortizes with batch size (header cost shared across entries)".into(),
    ];
    ExperimentResult {
        id: "E13".into(),
        title: "Batching replication updates: bandwidth vs staleness".into(),
        paper_anchor: "§7 (bandwidth overhead; batching trade-off)".into(),
        expectation: "bandwidth falls ~1/batch; lag rises with batch".into(),
        tables: vec![t],
        findings,
    }
}

//! E18 — tracing overhead: the span-telemetry fast path must be free
//! when no collector is attached. Two identical ping-pong simulations
//! (the `simnet_engine` bench workload) are timed wall-clock: both
//! allocate a `TraceId` per packet (unconditional protocol work — the id
//! rides the wire either way), but only one emits a span marker per
//! packet into the **detached** collector slot, the layer's common-case
//! instrumentation density. The gate is <2% events/s regression — the
//! compiled-in-but-disabled cost of instrumenting every protocol hot
//! path (DESIGN.md §9).

use crate::table::{ExperimentResult, Table};
use std::net::Ipv4Addr;
use std::time::Instant;
use swishmem_simnet::{Ctx, LinkParams, Node, NodeObj, SimTime, Simulator, SpanPhase};
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, PacketBody, TraceId};

/// Bounces packets back and forth `ttl` times. Allocates a `TraceId`
/// per packet like the SwiShmem layer does (trace allocation is
/// unconditional protocol work — the id rides the wire whether or not
/// anyone is tracing) but never touches the span API.
struct PlainEcho {
    ttl: u32,
    next_trace: u64,
}
impl Node for PlainEcho {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            self.next_trace += 1;
            let trace = TraceId::new(pkt.dst, self.next_trace);
            std::hint::black_box(trace);
            if d.flow_seq < self.ttl {
                let mut d2 = d;
                d2.flow_seq += 1;
                ctx.send(pkt.src, PacketBody::Data(d2));
            }
        }
    }
}

/// Same ping-pong plus the telemetry hook under test: one `Ingress`
/// marker per packet (the layer's common-case instrumentation density).
/// With no collector attached the marker hits the detached early-out.
struct TracedEcho {
    ttl: u32,
    next_trace: u64,
}
impl Node for TracedEcho {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            self.next_trace += 1;
            let trace = TraceId::new(pkt.dst, self.next_trace);
            ctx.span(trace, SpanPhase::Ingress);
            if d.flow_seq < self.ttl {
                let mut d2 = d;
                d2.flow_seq += 1;
                ctx.send(pkt.src, PacketBody::Data(d2));
            }
        }
    }
}

fn pkt() -> Packet {
    Packet::data(
        NodeId(0),
        NodeId(1),
        DataPacket::udp(
            FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
            0,
            64,
        ),
    )
}

fn build(events: u64, traced: bool) -> Simulator {
    let mut sim = Simulator::new(1);
    let mk = |_: u16| -> Box<dyn NodeObj> {
        if traced {
            Box::new(TracedEcho {
                ttl: events as u32,
                next_trace: 0,
            })
        } else {
            Box::new(PlainEcho {
                ttl: events as u32,
                next_trace: 0,
            })
        }
    };
    sim.add_node(NodeId(0), mk(0));
    sim.add_node(NodeId(1), mk(1));
    sim.topology_mut()
        .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
    sim.inject(SimTime::ZERO, pkt());
    sim
}

fn time_once(events: u64, traced: bool) -> f64 {
    let mut sim = build(events, traced);
    let t = Instant::now();
    sim.run_until_quiescent(SimTime(u64::MAX / 2));
    let dt = t.elapsed().as_secs_f64();
    assert!(sim.stats().delivered_total().packets >= events);
    dt
}

/// Best-of-`reps` events/s for both configurations, reps **interleaved**
/// so clock-frequency drift and scheduler noise hit plain and traced
/// alike; min wall-clock is the standard noise-robust estimator for a
/// deterministic workload. Returns `(plain, traced)` events/s.
pub fn measure_pair(events: u64, reps: usize) -> (f64, f64) {
    // Warm-up to fault in both code paths before either side is timed.
    time_once(events.min(10_000), false);
    time_once(events.min(10_000), true);
    let (mut best_p, mut best_t) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_p = best_p.min(time_once(events, false));
        best_t = best_t.min(time_once(events, true));
    }
    (events as f64 / best_p, events as f64 / best_t)
}

/// Run E18.
pub fn run(quick: bool) -> ExperimentResult {
    let events: u64 = if quick { 20_000 } else { 100_000 };
    let reps: usize = if quick { 5 } else { 9 };
    let (plain, traced) = measure_pair(events, reps);
    let ratio = plain / traced;
    let overhead_pct = (ratio - 1.0) * 100.0;

    let mut t = Table::new(
        "Engine throughput with span telemetry compiled in (no collector attached)",
        &["config", "events", "events/s (best)", "relative"],
    );
    t.row(vec![
        "plain echo (no span emission)".into(),
        events.to_string(),
        format!("{:.2}M", plain / 1e6),
        "1.000x".into(),
    ]);
    t.row(vec![
        "traced echo (1 marker/pkt, detached)".into(),
        events.to_string(),
        format!("{:.2}M", traced / 1e6),
        format!("{:.3}x", traced / plain),
    ]);

    let verdict = if overhead_pct < 2.0 { "PASS" } else { "FAIL" };
    let findings = vec![
        format!(
            "disabled tracing costs {overhead_pct:+.2}% events/s on the ping-pong engine \
             workload (gate: <2% — {verdict})"
        ),
        "span emission with no collector attached is a branch on an Option; the protocol \
         layers stay instrumented in every build"
            .into(),
    ];
    ExperimentResult {
        id: "E18".into(),
        title: "Tracing overhead: compiled-in, disabled".into(),
        paper_anchor: "DESIGN.md §9 (observability; passive-observer contract)".into(),
        expectation: "<2% events/s regression with spans compiled in but no collector attached"
            .into(),
        tables: vec![t],
        findings,
    }
}

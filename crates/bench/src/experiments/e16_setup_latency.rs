//! E16 — the user-visible price of per-connection consistency: §6.1's
//! "the output packet must be buffered until the write is acknowledged by
//! other switches" means a connection's FIRST packet (the SYN that
//! allocates the mapping) is delayed by a full chain round trip through
//! the control plane. Subsequent packets read locally and pay nothing.
//!
//! This is the cost side of E8's benefit: the sharded baseline forwards
//! SYNs immediately (and breaks PCC under multipath); SwiShmem holds the
//! SYN for ~the SRO write latency. We measure SYN delay and data-packet
//! delay for both, across chain lengths.

use crate::table::{ns, ExperimentResult, Table};
use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::{LbConfig, LbStatsHandle, LoadBalancer, LocalLb};
use swishmem_wire::l4::TcpFlags;

const VIP: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 1);

fn lb_cfg() -> LbConfig {
    LbConfig {
        conn_reg: 0,
        keys: 8192,
        vip: VIP,
        backends: vec![
            (Ipv4Addr::new(10, 1, 0, 1), NodeId(HOST_BASE)),
            (Ipv4Addr::new(10, 1, 0, 2), NodeId(HOST_BASE + 1)),
        ],
    }
}

struct Out {
    syn_mean_ns: u64,
    data_mean_ns: u64,
}

fn measure(shared: bool, n_switches: usize, quick: bool) -> Out {
    let stats: Vec<LbStatsHandle> = (0..n_switches).map(|_| LbStatsHandle::default()).collect();
    let s2 = stats.clone();
    let mut dep = DeploymentBuilder::new(n_switches)
        .hosts(2)
        .seed(71)
        .register(RegisterSpec::sro(0, "lb_conn", 8192))
        .build(move |id| -> Box<dyn swishmem::NfApp> {
            if shared {
                Box::new(LoadBalancer::new(lb_cfg(), s2[id.index()].clone()))
            } else {
                Box::new(LocalLb::new(lb_cfg(), s2[id.index()].clone()))
            }
        });
    dep.settle();
    let conns = if quick { 50u64 } else { 200 };
    let t0 = dep.now();
    let mut syn_issue = Vec::new();
    let mut data_issue = Vec::new();
    for c in 0..conns {
        let flow = FlowKey::tcp(Ipv4Addr::new(172, 16, 0, 9), 30_000 + c as u16, VIP, 443);
        let at = t0 + SimDuration::millis(c);
        // The SYN pays the mapping write; a data packet 500 µs later (well
        // after commit) reads locally.
        dep.inject(
            at,
            (c % n_switches as u64) as usize,
            0,
            DataPacket::tcp(flow, TcpFlags::syn(), 0, 64),
        );
        syn_issue.push((flow.src_port, at));
        let at2 = at + SimDuration::micros(500);
        dep.inject(
            at2,
            (c % n_switches as u64) as usize,
            0,
            DataPacket::tcp(flow, TcpFlags::data(), 1, 64),
        );
        data_issue.push((flow.src_port, at2));
    }
    dep.run_for(SimDuration::millis(conns + 100));

    let mut syn_lat = Vec::new();
    let mut data_lat = Vec::new();
    for h in 0..2 {
        for (t_arr, p) in dep.recording(h).borrow().iter() {
            let swishmem_wire::PacketBody::Data(d) = &p.body else {
                continue;
            };
            let issue = if d.flow_seq == 0 {
                &syn_issue
            } else {
                &data_issue
            };
            if let Some((_, t_iss)) = issue.iter().find(|(port, _)| *port == d.flow.src_port) {
                let lat = t_arr.since(*t_iss).as_nanos() as f64;
                if d.flow_seq == 0 {
                    syn_lat.push(lat);
                } else {
                    data_lat.push(lat);
                }
            }
        }
    }
    Out {
        syn_mean_ns: crate::scenarios::mean(&syn_lat) as u64,
        data_mean_ns: crate::scenarios::mean(&data_lat) as u64,
    }
}

/// Run E16.
pub fn run(quick: bool) -> ExperimentResult {
    let sizes: Vec<usize> = if quick { vec![3] } else { vec![2, 3, 5, 8] };
    let mut t = Table::new(
        "L4 LB packet latency through the fabric: connection setup (SYN) vs established",
        &["switches", "LB", "SYN mean", "data-pkt mean", "SYN penalty"],
    );
    let mut max_penalty = 0u64;
    let mut data_cost = 0i64;
    for &n in &sizes {
        let sw = measure(true, n, quick);
        let lo = measure(false, n, quick);
        let penalty = sw.syn_mean_ns.saturating_sub(lo.syn_mean_ns);
        max_penalty = max_penalty.max(penalty);
        data_cost = data_cost.max(sw.data_mean_ns as i64 - lo.data_mean_ns as i64);
        t.row(vec![
            n.to_string(),
            "SwiShmem (SRO)".into(),
            ns(sw.syn_mean_ns),
            ns(sw.data_mean_ns),
            ns(penalty),
        ]);
        t.row(vec![
            n.to_string(),
            "sharded (local)".into(),
            ns(lo.syn_mean_ns),
            ns(lo.data_mean_ns),
            "-".into(),
        ]);
    }
    let findings = vec![
        format!(
            "per-connection consistency costs the FIRST packet of each connection ~{} (the buffered-P' chain round trip, growing with chain length); the sharded baseline forwards it immediately",
            ns(max_penalty)
        ),
        format!(
            "established-connection packets pay ~nothing extra ({} difference): reads are local once the mapping commits — the read-intensive bargain of Table 1",
            ns(data_cost.unsigned_abs())
        ),
    ];
    ExperimentResult {
        id: "E16".into(),
        title: "The latency price of PCC: SYN buffering vs established traffic".into(),
        paper_anchor: "§6.1/§7 (output packet buffered until acknowledged)".into(),
        expectation: "SYN pays the SRO write latency; data packets pay nothing".into(),
        tables: vec![t],
        findings,
    }
}

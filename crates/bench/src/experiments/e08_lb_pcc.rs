//! E8 — §3.2: sharding the load balancer's connection state "falls short
//! if a flow is routed through a different switch, something that may
//! occur in various failure scenarios – or in the normal case, if recent
//! proposals for adaptive routing or multi-path TCP are adopted."
//!
//! A TCP workload runs through an ECMP fabric with a configurable
//! mid-flow path-deviation probability, against (a) the sharded baseline
//! (`LocalLb`, per-switch map) and (b) SwiShmem's SRO-backed LB.
//! Per-connection-consistency violations = mid-flow packets dropped for
//! lack of a mapping (or forwarded to a different DIP).

use crate::table::{f, ExperimentResult, Table};
use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::workload::{EcmpRouter, FlowGen, FlowGenConfig, RoutingMode};
use swishmem_nf::{LbConfig, LbStatsHandle, LoadBalancer, LocalLb};

const VIP: Ipv4Addr = Ipv4Addr::new(20, 0, 0, 0);

fn lb_cfg() -> LbConfig {
    LbConfig {
        conn_reg: 0,
        keys: 32768,
        vip: VIP,
        backends: vec![
            (Ipv4Addr::new(10, 1, 0, 1), NodeId(HOST_BASE)),
            (Ipv4Addr::new(10, 1, 0, 2), NodeId(HOST_BASE + 1)),
            (Ipv4Addr::new(10, 1, 0, 3), NodeId(HOST_BASE + 2)),
        ],
    }
}

struct Out {
    flows: u64,
    packets: u64,
    violations: u64,
}

fn measure(shared: bool, flip: f64, fail_one: bool, quick: bool) -> Out {
    let n = 4;
    let stats: Vec<LbStatsHandle> = (0..n).map(|_| LbStatsHandle::default()).collect();
    let s2 = stats.clone();
    let mut dep = DeploymentBuilder::new(n)
        .hosts(3)
        .seed(21)
        .register(RegisterSpec::sro(0, "lb_conn", 32768))
        .build(move |id| -> Box<dyn swishmem::NfApp> {
            if shared {
                Box::new(LoadBalancer::new(lb_cfg(), s2[id.index()].clone()))
            } else {
                Box::new(LocalLb::new(lb_cfg(), s2[id.index()].clone()))
            }
        });
    dep.settle();

    let mut router = EcmpRouter::new(
        n,
        if flip > 0.0 {
            RoutingMode::Multipath { flip_prob: flip }
        } else {
            RoutingMode::EcmpStable
        },
    );
    let gen_cfg = FlowGenConfig {
        flow_rate: if quick { 5_000.0 } else { 15_000.0 },
        mean_packets: 8.0,
        packet_gap: SimDuration::millis(1), // long-lived flows cross events
        duration: SimDuration::millis(if quick { 30 } else { 80 }),
        servers: 1, // every flow targets the VIP (rank 0 = 20.0.0.0)
        server_alpha: 0.0,
        tcp: true,
        ..FlowGenConfig::default()
    };
    let sched = FlowGen::new(gen_cfg, 22).generate(&router);
    let t0 = dep.now();
    let t_fail = t0 + SimDuration::millis(15);
    if fail_one {
        dep.schedule_fail(t_fail, 3);
        router.set_failed(3, true);
    }
    let mut flows = std::collections::HashSet::new();
    let mut packets = 0u64;
    for p in &sched {
        let at = t0 + SimDuration::nanos(p.time.nanos());
        // Traffic destined to a failed switch re-hashes (fabric reroute).
        let ingress = if fail_one && at >= t_fail && p.ingress == 3 {
            router.primary(&p.pkt.flow)
        } else {
            p.ingress
        };
        dep.inject(at, ingress, 0, p.pkt);
        flows.insert(p.pkt.flow);
        packets += 1;
    }
    dep.run_for(SimDuration::millis(150));
    let violations: u64 = stats.iter().map(|s| s.borrow().unmapped_drops).sum();
    Out {
        flows: flows.len() as u64,
        packets,
        violations,
    }
}

/// Run E8.
pub fn run(quick: bool) -> ExperimentResult {
    let scenarios: Vec<(&str, f64, bool)> = vec![
        ("stable ECMP", 0.0, false),
        ("multipath 5%", 0.05, false),
        ("multipath 20%", 0.2, false),
        ("ECMP + switch failure", 0.0, true),
    ];
    let mut t = Table::new(
        "Per-connection-consistency violations per 1000 flows (4-switch LB)",
        &[
            "scenario",
            "flows",
            "packets",
            "sharded (LocalLb)",
            "SwiShmem (SRO)",
        ],
    );
    let mut shard_total = 0u64;
    let mut swish_total = 0u64;
    for (name, flip, fail) in &scenarios {
        let a = measure(false, *flip, *fail, quick);
        let b = measure(true, *flip, *fail, quick);
        shard_total += a.violations;
        swish_total += b.violations;
        t.row(vec![
            (*name).into(),
            a.flows.to_string(),
            a.packets.to_string(),
            f(1000.0 * a.violations as f64 / a.flows.max(1) as f64),
            f(1000.0 * b.violations as f64 / b.flows.max(1) as f64),
        ]);
    }
    let findings = vec![
        format!(
            "sharded LB suffered {} PCC violations across scenarios; SwiShmem {} — {}",
            shard_total,
            swish_total,
            if swish_total * 20 < shard_total.max(1) {
                "shared SRO state eliminates (nearly) all of them"
            } else {
                "shape NOT as expected"
            }
        ),
        "violations for the sharded baseline appear exactly when paths deviate (multipath) or a switch fails — §3.2's argument".into(),
    ];
    ExperimentResult {
        id: "E8".into(),
        title: "Load-balancer per-connection consistency: sharded vs SwiShmem".into(),
        paper_anchor: "§3.2 (sharding falls short), §4.1 (L4 LB, PCC)".into(),
        expectation: "baseline violates PCC under multipath/failure; SwiShmem ~0".into(),
        tables: vec![t],
        findings,
    }
}

//! E5 — §6.2: periodic synchronization bounds EWO staleness even under
//! loss ("In order to obtain eventual consistency in the face of lost
//! update packets, a periodic background task ...").
//!
//! One switch increments a counter at a steady rate; a remote switch's
//! view is sampled continuously. The *convergence lag* is the average
//! staleness expressed in time: `(local - remote) / rate`. Swept over
//! sync period × loss rate.

use crate::scenarios::{count_pkt, CounterNf};
use crate::table::{f, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{RegisterSpec, SwishConfig};

fn measure(period: SimDuration, loss: f64, eager: bool, quick: bool) -> f64 {
    let mut cfg = SwishConfig::default();
    cfg.sync_period = period;
    cfg.eager_updates = eager;
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(7)
        .link(LinkParams::lossy(loss))
        .swish_config(cfg)
        .register(RegisterSpec::ewo_counter(0, "cnt", 16))
        .build(|_| Box::new(CounterNf));
    dep.settle();
    let dur = SimDuration::millis(if quick { 30 } else { 100 });
    let rate_pps = 100_000.0;
    let gap = (1e9 / rate_pps) as u64;
    let t0 = dep.now();
    let n = dur.as_nanos() / gap;
    for i in 0..n {
        dep.inject(
            t0 + SimDuration::nanos(i * gap),
            0,
            0,
            count_pkt(1, i as u32),
        );
    }
    // Sample remote-vs-local every 200 µs during the steady phase.
    let mut lags = Vec::new();
    let sample_every = SimDuration::micros(200);
    let warmup = SimDuration::millis(5);
    dep.run_for(warmup);
    let mut elapsed = warmup;
    while elapsed < dur {
        dep.run_for(sample_every);
        elapsed = elapsed + sample_every;
        let local = dep.peek(0, 0, 1) as f64;
        let remote = dep.peek(2, 0, 1) as f64;
        lags.push(((local - remote).max(0.0)) / rate_pps * 1e6); // µs of staleness
    }
    crate::scenarios::mean(&lags)
}

/// Run E5.
pub fn run(quick: bool) -> ExperimentResult {
    let periods = if quick {
        vec![SimDuration::micros(500), SimDuration::millis(2)]
    } else {
        vec![
            SimDuration::micros(250),
            SimDuration::micros(500),
            SimDuration::millis(1),
            SimDuration::millis(2),
            SimDuration::millis(4),
        ]
    };
    let losses = if quick {
        vec![0.0, 0.2]
    } else {
        vec![0.0, 0.05, 0.1, 0.2]
    };

    let mut t = Table::new(
        "EWO convergence lag (µs of staleness at a remote replica, periodic sync only)",
        &["sync period", "loss 0%", "loss 5%", "loss 10%", "loss 20%"],
    );
    let mut per_period_lag = Vec::new();
    for &p in &periods {
        let mut row = vec![p.to_string()];
        let mut cells = vec!["-".to_string(); 4];
        for &l in &losses {
            let lag = measure(p, l, false, quick);
            let idx = match (l * 100.0) as u32 {
                0 => 0,
                5 => 1,
                10 => 2,
                _ => 3,
            };
            cells[idx] = f(lag);
            if l == 0.0 {
                per_period_lag.push((p, lag));
            }
        }
        row.extend(cells);
        t.row(row);
    }

    let mut t2 = Table::new(
        "Effect of eager mirroring (1 ms period, 10% loss)",
        &["eager updates", "lag (µs)"],
    );
    let lag_eager = measure(SimDuration::millis(1), 0.1, true, quick);
    let lag_plain = measure(SimDuration::millis(1), 0.1, false, quick);
    t2.row(vec!["on".into(), f(lag_eager)]);
    t2.row(vec!["off".into(), f(lag_plain)]);

    let first = per_period_lag.first().cloned();
    let last = per_period_lag.last().cloned();
    let mut findings = vec![
        "lag scales with the sync period and stays bounded under 20% loss — the periodic full sync is self-healing".into(),
        format!(
            "eager mirroring cuts lag from {:.0} µs to {:.0} µs at 1 ms period / 10% loss",
            lag_plain, lag_eager
        ),
    ];
    if let (Some((p1, l1)), Some((p2, l2))) = (first, last) {
        findings.insert(
            0,
            format!(
                "lossless lag: {:.0} µs at {} vs {:.0} µs at {}",
                l1, p1, l2, p2
            ),
        );
    }
    ExperimentResult {
        id: "E5".into(),
        title: "EWO convergence lag vs sync period and packet loss".into(),
        paper_anchor: "§6.2 (periodic synchronization)".into(),
        expectation: "lag ~ O(sync period), bounded even at high loss".into(),
        tables: vec![t, t2],
        findings,
    }
}

//! E15 — §6.2's clock requirement, quantified: "The timestamp can be a
//! Lamport clock or a realtime clock, which can be synchronized among the
//! switches down to tens of nanoseconds \[18\]."
//!
//! Why tens of nanoseconds matter: LWW orders writes by timestamp, so if
//! switch A's clock runs ahead of switch B's by more than the real gap
//! between their writes, A's *older* write wins — a last-writer-loses
//! anomaly. We sweep the clock-skew bound against the write gap and count
//! anomalies (final value ≠ chronologically-last write), and show Lamport
//! clocks' different failure mode (causality only, arbitrary tiebreak).

use crate::table::{f, ExperimentResult, Table};
use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{ClockMode, NfApp, NfDecision, RegisterSpec, SharedState, SwishConfig};

/// Writes `payload_len` into LWW register 0 at key `dst_port`.
struct LwwWriteNf;
impl NfApp for LwwWriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn wpkt(key: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            800,
            Ipv4Addr::new(10, 0, 0, 2),
            key,
        ),
        0,
        val,
    )
}

/// Fraction of key-pairs where the chronologically-later write lost.
fn anomaly_rate(clock: ClockMode, gap: SimDuration, quick: bool) -> f64 {
    let keys: u16 = if quick { 40 } else { 120 };
    let mut anomalies = 0u32;
    let mut total = 0u32;
    // Several seeds → several skew assignments.
    for seed in 0..(if quick { 2u64 } else { 4 }) {
        let mut cfg = SwishConfig::default();
        cfg.clock = clock;
        let mut dep = DeploymentBuilder::new(2)
            .hosts(1)
            .seed(100 + seed)
            .swish_config(cfg)
            .register(RegisterSpec::ewo_lww(0, "lww", u32::from(keys)))
            .build(|_| Box::new(LwwWriteNf));
        dep.settle();
        let t0 = dep.now();
        for k in 0..keys {
            // Switch 0 writes 1 first; switch 1 writes 2 `gap` later.
            let tk = t0 + SimDuration::millis(u64::from(k));
            dep.inject(tk, 0, 0, wpkt(k, 1));
            dep.inject(tk + gap, 1, 0, wpkt(k, 2));
        }
        dep.run_for(SimDuration::millis(u64::from(keys) + 100));
        for k in 0..keys {
            total += 1;
            if dep.peek(0, 0, u32::from(k)) != 2 {
                anomalies += 1;
            }
        }
    }
    f64::from(anomalies) / f64::from(total.max(1))
}

/// Run E15.
pub fn run(quick: bool) -> ExperimentResult {
    let skews: Vec<u64> = if quick {
        vec![50, 200_000]
    } else {
        vec![0, 50, 1_000, 50_000, 200_000]
    };
    let gaps = if quick {
        vec![SimDuration::micros(100)]
    } else {
        vec![SimDuration::micros(10), SimDuration::micros(100)]
    };
    let mut t = Table::new(
        "LWW last-writer-loses anomalies vs clock skew (writer B 'later' by the gap)",
        &["clock", "max skew", "write gap", "anomaly rate"],
    );
    let mut synced_at_paper_point = 0.0f64;
    let mut worst_synced = 0.0f64;
    for &gap in &gaps {
        for &skew in &skews {
            let r = anomaly_rate(ClockMode::Synced { max_skew_ns: skew }, gap, quick);
            t.row(vec![
                "synced".into(),
                format!("{}ns", skew),
                gap.to_string(),
                f(r),
            ]);
            if skew <= 50 {
                synced_at_paper_point = synced_at_paper_point.max(r);
            }
            worst_synced = worst_synced.max(r);
        }
        let r = anomaly_rate(ClockMode::Lamport, gap, quick);
        t.row(vec!["lamport".into(), "-".into(), gap.to_string(), f(r)]);
    }
    let findings = vec![
        format!(
            "with the paper's tens-of-ns synchronization the anomaly rate is {:.3} — LWW behaves as a true last-writer-wins",
            synced_at_paper_point
        ),
        format!(
            "once skew exceeds the inter-write gap, anomalies appear (up to {:.2} of keys at 200 µs skew): the quality of ref-[18]-style clock sync is load-bearing for LWW",
            worst_synced
        ),
        "Lamport clocks order only causally-related writes; for independent writers the switch-id tiebreak decides, so 'later' wins only by accident — the reason the paper prefers synchronized real-time clocks".into(),
    ];
    ExperimentResult {
        id: "E15".into(),
        title: "LWW correctness vs clock synchronization quality".into(),
        paper_anchor: "§6.2 (LWW versioning; clock sync 'down to tens of nanoseconds')".into(),
        expectation: "no anomalies at ns-scale skew; anomalies once skew > write gap".into(),
        tables: vec![t],
        findings,
    }
}

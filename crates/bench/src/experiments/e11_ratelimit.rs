//! E11 — §4.2 rate limiter: "it is acceptable for a few additional
//! packets to go through immediately after the user reaches the bandwidth
//! limit."
//!
//! One user's traffic is split evenly across all switches; we measure the
//! *enforcement error* — bytes admitted beyond the per-window limit — as
//! a function of the sync period (and eager mirroring). The error is the
//! quantified version of "a few additional packets".

use crate::table::{f, ExperimentResult, Table};
use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{RegisterSpec, SwishConfig};
use swishmem_nf::{RateLimitConfig, RateLimitStatsHandle, RateLimiter};
use swishmem_wire::FlowKey;

const LIMIT: u64 = 50_000; // bytes per window
const PKT_WIRE: u64 = 100; // DataPacket wire bytes (20 ip + 8 udp + 72)

fn measure(n: usize, period: SimDuration, eager: bool, quick: bool) -> (u64, f64) {
    let mut cfg = SwishConfig::default();
    cfg.sync_period = period;
    cfg.eager_updates = eager;
    let window = SimDuration::millis(if quick { 30 } else { 80 });
    let stats: Vec<RateLimitStatsHandle> =
        (0..n).map(|_| RateLimitStatsHandle::default()).collect();
    let s2 = stats.clone();
    let rl_cfg = RateLimitConfig {
        meter_reg: 0,
        keys: 64,
        bytes_per_window: LIMIT,
        egress_host: NodeId(HOST_BASE),
    };
    let mut dep = DeploymentBuilder::new(n)
        .hosts(1)
        .seed(41)
        .swish_config(cfg)
        .register(RegisterSpec::ewo_windowed(0, "meters", 64, window))
        .build(move |id| Box::new(RateLimiter::new(rl_cfg.clone(), s2[id.index()].clone())));
    dep.settle();
    let user = Ipv4Addr::new(10, 0, 0, 1);
    // Offer 4× the limit within one window, spread across switches.
    let pkts = 4 * LIMIT / PKT_WIRE;
    let gap = window.as_nanos() / (pkts + 1);
    let t0 = dep.now();
    // Align to the next window boundary so all traffic lands in one epoch.
    let win_ns = window.as_nanos();
    let aligned = SimTime(((t0.nanos() / win_ns) + 1) * win_ns + 1000);
    for i in 0..pkts {
        let pkt = DataPacket::udp(
            FlowKey::udp(user, 1000, Ipv4Addr::new(99, 9, 9, 9), 80),
            i as u32,
            72,
        );
        dep.sim.inject(
            aligned + SimDuration::nanos(i * gap),
            swishmem_wire::Packet::data(
                NodeId(HOST_BASE),
                dep.switch_ids()[(i % n as u64) as usize],
                pkt,
            ),
        );
    }
    dep.run_until(aligned + window + SimDuration::millis(20));
    let admitted: u64 = stats.iter().map(|s| s.borrow().admitted_bytes).sum();
    let excess = admitted.saturating_sub(LIMIT);
    (excess, 100.0 * excess as f64 / LIMIT as f64)
}

/// Run E11.
pub fn run(quick: bool) -> ExperimentResult {
    let periods = if quick {
        vec![SimDuration::micros(500), SimDuration::millis(4)]
    } else {
        vec![
            SimDuration::micros(250),
            SimDuration::micros(500),
            SimDuration::millis(1),
            SimDuration::millis(2),
            SimDuration::millis(4),
        ]
    };
    let mut t = Table::new(
        "Rate-limiter enforcement error (user at 4× limit, split over 3 switches)",
        &[
            "sync period",
            "eager",
            "excess bytes admitted",
            "excess % of limit",
        ],
    );
    let mut first = None;
    let mut last = None;
    for &p in &periods {
        for eager in [true, false] {
            let (excess, pct) = measure(3, p, eager, quick);
            t.row(vec![
                p.to_string(),
                if eager { "on" } else { "off" }.into(),
                excess.to_string(),
                f(pct),
            ]);
            if !eager {
                // The periodic-sync-only path is the one whose error the
                // sync period bounds; eager mirroring hides it entirely.
                if first.is_none() {
                    first = Some(pct);
                }
                last = Some(pct);
            }
        }
    }
    let findings = vec![
        format!(
            "with periodic sync alone, excess grows with the sync period ({}% of the limit at the shortest vs {}% at the longest) — staleness directly bounds over-admission",
            f(first.unwrap_or(0.0)),
            f(last.unwrap_or(0.0))
        ),
        "eager mirroring eliminates the excess entirely at these rates; either way the error is 'a few additional packets', the paper's acceptability argument quantified".into(),
    ];
    ExperimentResult {
        id: "E11".into(),
        title: "Distributed rate limiting: over-admission vs sync period".into(),
        paper_anchor: "§4.2 (rate limiter tolerates transient inconsistency)".into(),
        expectation: "over-admission proportional to sync period; small at 1 ms".into(),
        tables: vec![t],
        findings,
    }
}

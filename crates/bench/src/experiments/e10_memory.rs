//! E10 — §7 SRO state overhead: "Each switch has a register array with a
//! sequence number and an in-progress bit per entry ... current
//! programmable switches could support over a million entries; however,
//! since these state elements only protect other state updates, multiple
//! keys can share the same sequence number and in-progress bit, reducing
//! state requirements further."
//!
//! Part 1 reads the memory books: protocol-metadata bytes vs key count ×
//! grouping factor. Part 2 measures the grouping *cost*: reads of an idle
//! key are forwarded to the tail whenever another key in its group has a
//! write in flight (false pending hits).

use crate::scenarios::{tcp_read, udp_write};
use crate::table::{f, ExperimentResult, Table};
use swishmem::layer::Handles;
use swishmem::prelude::*;
use swishmem::{RegisterSpec, SwishConfig};
use swishmem_pisa::{DataPlane, MemoryBudget};

fn metadata_bytes(keys: u32, group: u32) -> (usize, usize) {
    let mut cfg = SwishConfig::default();
    cfg.key_group = group;
    let mut dp = DataPlane::new(MemoryBudget::new(256 << 20));
    Handles::build(&mut dp, &[RegisterSpec::sro(0, "t", keys)], &cfg, 4).unwrap();
    let meta =
        dp.budget().used_by_prefix("swish.t.seq") + dp.budget().used_by_prefix("swish.t.pending");
    let values = dp.budget().used_by_prefix("swish.t.val");
    (meta, values)
}

fn false_forward_rate(group: u32, quick: bool) -> f64 {
    let mut cfg = SwishConfig::default();
    cfg.key_group = group;
    // 30 µs links widen the pending window (as in E4) so forwarding is
    // observable at moderate write rates.
    let link = LinkParams::datacenter().with_latency(SimDuration::micros(30));
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .seed(81)
        .link(link)
        .swish_config(cfg)
        .register(RegisterSpec::sro(0, "t", 4096))
        .build(|_| Box::new(crate::scenarios::ProbeNf));
    dep.settle();
    let dur = SimDuration::millis(if quick { 20 } else { 60 });
    let t0 = dep.now();
    // Writers hammer key 0 (always in flight somewhere).
    let wgap = 150_000u64; // ~6.7k writes/s, enough to keep pending busy
    for i in 0..dur.as_nanos() / wgap {
        dep.inject(t0 + SimDuration::nanos(i * wgap), 0, 0, udp_write(0, 1));
    }
    // Readers probe an UNRELATED key. With slots = keys/group and slot =
    // key % slots, key `slots` shares key 0's seq/pending slot whenever
    // group > 1; at group = 1 every key has a private slot, so key 1 is
    // probed and must never forward.
    let slots = 4096 / group.max(1);
    let probe_key = if group == 1 { 1u16 } else { slots as u16 };
    let rgap = 200_000u64;
    let n_reads = dur.as_nanos() / rgap;
    for i in 0..n_reads {
        dep.inject(
            t0 + SimDuration::nanos(i * rgap + 77),
            0,
            0,
            tcp_read(probe_key, (i % 60000) as u16),
        );
    }
    dep.run_for(dur + SimDuration::millis(50));
    let fwd: u64 = (0..3).map(|i| dep.metrics(i).dp.reads_forwarded).sum();
    fwd as f64 / n_reads.max(1) as f64
}

/// Run E10.
pub fn run(quick: bool) -> ExperimentResult {
    let key_counts: Vec<u32> = if quick {
        vec![10_000, 1_000_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    };
    let groups: Vec<u32> = vec![1, 4, 16, 64];

    let mut t = Table::new(
        "SRO protocol-metadata memory (seq numbers + pending bits) per switch",
        &[
            "keys",
            "values KiB",
            "meta KiB (g=1)",
            "g=4",
            "g=16",
            "g=64",
            "meta/values (g=1)",
        ],
    );
    for &k in &key_counts {
        let (m1, v) = metadata_bytes(k, 1);
        let (m4, _) = metadata_bytes(k, 4);
        let (m16, _) = metadata_bytes(k, 16);
        let (m64, _) = metadata_bytes(k, 64);
        t.row(vec![
            k.to_string(),
            f(v as f64 / 1024.0),
            f(m1 as f64 / 1024.0),
            f(m4 as f64 / 1024.0),
            f(m16 as f64 / 1024.0),
            f(m64 as f64 / 1024.0),
            f(m1 as f64 / v as f64),
        ]);
    }

    let mut t2 = Table::new(
        "Cost of sharing: reads of an idle key forwarded to the tail because a grouped key is being written",
        &["grouping factor", "false-forward fraction of reads"],
    );
    let mut rates = Vec::new();
    for &g in &groups {
        let r = false_forward_rate(g, quick);
        t2.row(vec![g.to_string(), f(r)]);
        rates.push((g, r));
    }

    // Capacity check against the 10 MB budget at group=1.
    let (meta_1m, vals_1m) = metadata_bytes(1_000_000, 1);
    let findings = vec![
        format!(
            "1M keys cost {:.1} MiB of values + {:.1} MiB of protocol metadata at g=1 — within the 10 MB data plane only with grouping, matching §7's 'over a million entries' with shared slots",
            vals_1m as f64 / (1 << 20) as f64,
            meta_1m as f64 / (1 << 20) as f64
        ),
        "metadata shrinks linearly with the grouping factor (16 B per group slot)".into(),
        format!(
            "the trade-off is real: false tail-forwards rise from {:.3} (g=1) to {:.3} (g=64) of reads under a hot grouped key",
            rates.first().map(|(_, r)| *r).unwrap_or(0.0),
            rates.last().map(|(_, r)| *r).unwrap_or(0.0)
        ),
    ];
    ExperimentResult {
        id: "E10".into(),
        title: "SRO metadata memory and the key-grouping trade-off".into(),
        paper_anchor: "§7 (implementing SRO: state overhead, shared seq/pending slots)".into(),
        expectation:
            "metadata linear in keys, divided by grouping; grouping causes false pending hits"
                .into(),
        tables: vec![t, t2],
        findings,
    }
}

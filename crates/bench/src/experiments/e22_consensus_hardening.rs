//! E22 — consensus hardening (DESIGN.md §13): the phi-accrual failure
//! detector against the static timeout, measured two ways across a seed
//! sweep. (a) Real leader crashes: the adaptive detector has learned the
//! healthy beacon cadence, so it fires earlier and shrinks E21's ~22 ms
//! failover gap. (b) Gray links: replica-replica links jitter without
//! dying; neither detector may start a spurious election, and the
//! adaptive one must not even *suspect*. A third table exercises log
//! compaction and lease-validated follower reads over a long decree
//! horizon: the slot window stays bounded by snapshots while lookups are
//! load-spread across the replica group.

use crate::scenarios::udp_write;
use crate::table::{ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{Deployment, NfApp, NfDecision, RegisterSpec, SharedState, TriggerOp};
use swishmem_simnet::{FaultSchedule, LinkOverlay};

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

const KEYS: u32 = 48;

fn build(seed: u64, tweak: impl FnOnce(&mut SwishConfig)) -> Deployment {
    let mut cfg = SwishConfig {
        ctrl_replicas: 3,
        ..Default::default()
    };
    tweak(&mut cfg);
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .swish_config(cfg)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    dep
}

fn inject_writes(dep: &mut Deployment, t0: SimTime, n: u64, window: SimDuration) {
    let step = window.as_nanos() / n.max(1);
    for i in 0..n {
        let key = (i % u64::from(KEYS)) as u16;
        dep.inject(
            t0 + SimDuration::nanos(i * step),
            (i % 3) as usize,
            0,
            udp_write(key, 100 + (i % 400) as u16),
        );
    }
}

/// Crash the warmed-up leader and return the crash-to-committed-election
/// gap under the given detector mode.
fn crash_gap(seed: u64, adaptive: bool) -> Option<SimDuration> {
    let mut dep = build(seed, |c| c.adaptive_detector = adaptive);
    dep.run_for(SimDuration::millis(30)); // detector warm-up: ≥3 beacon gaps
    let t_crash = dep.now();
    dep.schedule_ctrl_fail(t_crash, 0);
    inject_writes(&mut dep, t_crash, 24, SimDuration::millis(20));
    dep.run_for(SimDuration::millis(60));
    dep.controller()
        .elections()
        .iter()
        .find(|e| e.time >= t_crash)
        .map(|e| e.time.since(t_crash))
}

/// Jitter every replica-replica link for 50 ms (beacons arrive late and
/// reordered, but arrive) and return (spurious elections, suspicion
/// episodes) under the given detector mode.
fn gray_run(seed: u64, adaptive: bool) -> (usize, u64) {
    let mut dep = build(seed, |c| c.adaptive_detector = adaptive);
    let t0 = dep.now();
    let ctrls = dep.controller_ids().to_vec();
    let elections_before = dep.controller().elections().len();
    let mut sched = FaultSchedule::new();
    for (i, &a) in ctrls.iter().enumerate() {
        for &b in &ctrls[i + 1..] {
            sched = sched.degrade_for(
                a,
                b,
                SimDuration::millis(10),
                SimDuration::millis(50),
                LinkOverlay::jitter(SimDuration::millis(2)),
            );
        }
    }
    dep.schedule_faults(t0, &sched);
    inject_writes(&mut dep, t0, 48, SimDuration::millis(50));
    dep.run_for(SimDuration::millis(80));
    let spurious = dep.controller().elections().len() - elections_before;
    (
        spurious,
        dep.controller().consensus_metrics().suspect_events,
    )
}

struct CompactionOutcome {
    commit: u64,
    compactions: u64,
    snapshot_bytes: u64,
    worst_window: u64,
    follower_reads: u64,
}

/// Long decree horizon with an aggressive compaction threshold: five
/// rounds of three concurrent range migrations plus a stream of
/// directory lookups hash-spread over the replica group.
fn compaction_run(seed: u64) -> CompactionOutcome {
    let mut dep = build(seed, |c| c.log_compact_threshold = 4);
    let t0 = dep.now();
    let switches = dep.switch_ids().to_vec();
    for r in 0..5u64 {
        let t = t0 + SimDuration::millis(8) + SimDuration::millis(60).times(r);
        dep.schedule_trigger(t, TriggerOp::Move, 0, 0, switches[(1 + r as usize % 2) % 3]);
        dep.schedule_trigger(
            t,
            TriggerOp::Move,
            0,
            16,
            switches[(2 * (r as usize % 2)) % 3],
        );
        dep.schedule_trigger(t, TriggerOp::Move, 0, 32, switches[r as usize % 2]);
    }
    inject_writes(&mut dep, t0, 96, SimDuration::millis(280));
    for i in 0..60u64 {
        dep.dir_lookup(
            t0 + SimDuration::millis(5 * i),
            (i % 3) as usize,
            0,
            (i % u64::from(KEYS)) as u32,
        );
    }
    dep.run_for(SimDuration::millis(340));
    let m = dep.controller().consensus_metrics();
    let group = dep.controller();
    let worst_window = (0..group.len())
        .filter_map(|i| group.replica(i))
        .map(|c| m.commit.saturating_sub(c.log_base()))
        .max()
        .unwrap_or(0);
    CompactionOutcome {
        commit: m.commit,
        compactions: m.log_compactions,
        snapshot_bytes: m.snapshot_bytes,
        worst_window,
        follower_reads: m.follower_reads,
    }
}

fn ms(d: SimDuration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

fn stats(xs: &[f64]) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(0.0f64, f64::max);
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    (min, mean, max)
}

/// Run E22.
pub fn run(quick: bool) -> ExperimentResult {
    let seeds: Vec<u64> = if quick {
        (801..805).collect()
    } else {
        (801..813).collect()
    };

    let mut adaptive_gaps = Vec::new();
    let mut static_gaps = Vec::new();
    let mut spurious = [0usize; 2]; // [adaptive, static]
    let mut suspects = [0u64; 2];
    for &seed in &seeds {
        if let Some(g) = crash_gap(seed, true) {
            adaptive_gaps.push(ms(g));
        }
        if let Some(g) = crash_gap(seed, false) {
            static_gaps.push(ms(g));
        }
        for (slot, adaptive) in [(0usize, true), (1, false)] {
            let (e, s) = gray_run(seed, adaptive);
            spurious[slot] += e;
            suspects[slot] += s;
        }
    }
    let comp = compaction_run(seeds[0]);

    let (amin, amean, amax) = stats(&adaptive_gaps);
    let (smin, smean, smax) = stats(&static_gaps);
    let mut gap_table = Table::new(
        "Failover gap by detector (leader crash after warm-up)",
        &["detector", "min ms", "mean ms", "max ms", "elections"],
    );
    gap_table.row(vec![
        "phi-accrual (adaptive)".into(),
        format!("{amin:.1}"),
        format!("{amean:.1}"),
        format!("{amax:.1}"),
        adaptive_gaps.len().to_string(),
    ]);
    gap_table.row(vec![
        "static failure_timeout".into(),
        format!("{smin:.1}"),
        format!("{smean:.1}"),
        format!("{smax:.1}"),
        static_gaps.len().to_string(),
    ]);

    let mut gray = Table::new(
        "Gray links: 2 ms beacon jitter on every replica-replica link",
        &["detector", "spurious elections", "suspicion episodes"],
    );
    gray.row(vec![
        "phi-accrual (adaptive)".into(),
        spurious[0].to_string(),
        suspects[0].to_string(),
    ]);
    gray.row(vec![
        "static failure_timeout".into(),
        spurious[1].to_string(),
        suspects[1].to_string(),
    ]);

    let mut compact = Table::new(
        "Log compaction + follower reads (threshold 4, 15 migrations)",
        &["metric", "value"],
    );
    compact.row(vec!["decrees committed".into(), comp.commit.to_string()]);
    compact.row(vec!["compactions".into(), comp.compactions.to_string()]);
    compact.row(vec![
        "snapshot bytes persisted".into(),
        comp.snapshot_bytes.to_string(),
    ]);
    compact.row(vec![
        "worst live slot window (cap 1024)".into(),
        comp.worst_window.to_string(),
    ]);
    compact.row(vec![
        "lease-validated follower reads".into(),
        comp.follower_reads.to_string(),
    ]);

    let findings = vec![
        format!(
            "the adaptive detector cut the mean failover gap to {amean:.1} ms \
             ({amax:.1} ms worst) from the static detector's {smean:.1} ms \
             ({smax:.1} ms worst) across {} seeds — beacons arrive every ~5 ms \
             with near-zero deviation, so suspicion fires at mean + 4·dev + floor \
             instead of the conservative 15 ms timeout",
            seeds.len(),
        ),
        format!(
            "gray links caused {} spurious elections and {} suspicion episodes under \
             the adaptive detector ({} and {} under the static timeout): jittered \
             beacons widen the adaptive threshold instead of tripping it",
            spurious[0], suspects[0], spurious[1], suspects[1],
        ),
        format!(
            "compaction kept the live slot window at {} of 1024 slots across {} \
             committed decrees ({} snapshots, {} bytes), while {} directory lookups \
             were served by lease-holding followers instead of the leader",
            comp.worst_window,
            comp.commit,
            comp.compactions,
            comp.snapshot_bytes,
            comp.follower_reads,
        ),
    ];
    ExperimentResult {
        id: "E22".into(),
        title: "Consensus hardening: adaptive failure detection, compaction, follower reads".into(),
        paper_anchor: "§6.3 (fault tolerance; controller availability)".into(),
        expectation: "smaller failover gap than E21's static detector, no spurious elections \
                      under gray links, bounded log growth"
            .into(),
        tables: vec![gap_table, gray, compact],
        findings,
    }
}

//! E24 — the workload capture + replay lab: binary flow traces at
//! millions of flows, ring-buffer ingest, and deterministic replay.
//!
//! Four gates, all asserted:
//!
//! 1. **Synthesis + round-trip at scale** — a heavy-tail trace (1M flows
//!    in full mode) streams into the `.swtrace` binary format and reads
//!    back with an identical record count and validated superblock.
//! 2. **Determinism, sequential and sharded** — the same trace replayed
//!    through the leaf-spine fabric yields one digest at 1 shard, again
//!    at 1 shard (repeat), and at 2 shards: *trace + seed = a run*.
//! 3. **Ring-ingest parity** — replaying through the protocol deployment
//!    with the ring buffer in the path sustains ≥ 90% of the
//!    generator-driven (ring-free) injection rate: backpressure
//!    accounting is free.
//! 4. **Scenario packs** — all five oracle-armed packs pass clean, and a
//!    sabotaged feed fails (the oracle is demonstrably live).

use std::time::Instant;

use crate::shardnet::{
    run_leaf_spine_injected, trace_to_leaf_spine, LeafSpineSpec, ShardRunConfig,
};
use crate::table::{ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{NfDecision, RegisterSpec, SharedState};
use swishmem_replay::{
    from_swtrace_bytes, replay_digest, replay_trace, run_pack, synth_trace_bytes, to_swtrace_bytes,
    PackConfig, PackKind, ReplayConfig, Sabotage, SynthConfig, TraceMeta, TraceReader,
};

/// Every packet bumps a per-destination EWO counter (the protocol-path
/// replay workload).
struct CountNf;

impl swishmem::NfApp for CountNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst) % 256, 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn proto_dep(seed: u64) -> Deployment {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .seed(seed)
        .register(RegisterSpec::ewo_counter(0, "cnt", 256))
        .build(|_| Box::new(CountNf));
    dep.settle();
    dep
}

/// Generator-driven baseline: parse the trace stream and inject
/// directly — no ring in the path — batched exactly like the replay
/// engine. Returns engine events processed and wall ns.
fn direct_replay(dep: &mut Deployment, bytes: &[u8]) -> (u64, u64) {
    let pre = dep.sim.events_processed();
    let start = SimTime(dep.now().0 + 1_000_000);
    let wall = Instant::now();
    let mut reader =
        TraceReader::new(std::io::Cursor::new(bytes)).expect("in-memory trace must parse");
    let base = reader.meta().clock_base_ns;
    let n_hosts = dep.host_ids().len().max(1);
    'outer: loop {
        let mut last = dep.now();
        for _ in 0..512 {
            let Some(rec) = reader.next_record().expect("in-memory read") else {
                dep.run_until(last);
                break 'outer;
            };
            let t = SimTime(start.0 + (rec.time_ns - base)).max(dep.now());
            let sw = usize::from(rec.ingress) % 3;
            let from = (rec.flow_hash() as usize) % n_hosts;
            dep.inject(t, sw, from, rec.to_packet());
            last = last.max(t);
        }
        dep.run_until(last);
    }
    (
        dep.sim.events_processed() - pre,
        wall.elapsed().as_nanos() as u64,
    )
}

/// Ring-path run: the replay engine proper (reader → FlowRing → inject)
/// over the same trace stream.
fn ring_replay(dep: &mut Deployment, bytes: &[u8]) -> (u64, u64) {
    let pre = dep.sim.events_processed();
    let start = SimTime(dep.now().0 + 1_000_000);
    let wall = Instant::now();
    let mut reader =
        TraceReader::new(std::io::Cursor::new(bytes)).expect("in-memory trace must parse");
    replay_trace(
        dep,
        &mut reader,
        &ReplayConfig {
            start,
            ..ReplayConfig::default()
        },
    )
    .expect("in-memory replay");
    (
        dep.sim.events_processed() - pre,
        wall.elapsed().as_nanos() as u64,
    )
}

/// The §3 parity measurement at smoke scale (the CI gate hook): best-of-
/// `reps` events/s for the generator-driven path and the ring path over
/// the same `n_records`-record synthesized slice. Returns
/// `(generator_driven, ring)`.
pub fn measure_ring_parity(n_records: usize, reps: u32) -> (f64, f64) {
    let cfg = SynthConfig {
        flows: (n_records as u64 / 2).max(100),
        ingress: 3,
        ..SynthConfig::default()
    };
    let bytes = synth_trace_bytes(&cfg, 7);
    let (_, records) = from_swtrace_bytes(&bytes).expect("synthesized trace must parse");
    let slice = &records[..records.len().min(n_records)];
    let slice_bytes = to_swtrace_bytes(slice, TraceMeta::default()).expect("slice serializes");
    let mut best_direct: f64 = 0.0;
    let mut best_ring: f64 = 0.0;
    for _ in 0..reps {
        let mut dep = proto_dep(7);
        let (ev, ns) = direct_replay(&mut dep, &slice_bytes);
        best_direct = best_direct.max(ev as f64 / (ns as f64 / 1e9));
        let mut dep = proto_dep(7);
        let (ev, ns) = ring_replay(&mut dep, &slice_bytes);
        best_ring = best_ring.max(ev as f64 / (ns as f64 / 1e9));
    }
    (best_direct, best_ring)
}

/// Run E24.
pub fn run(quick: bool) -> ExperimentResult {
    let (flows, spec) = if quick {
        (
            20_000u64,
            LeafSpineSpec {
                leaves: 16,
                spines: 4,
            },
        )
    } else {
        (
            1_000_000u64,
            LeafSpineSpec {
                leaves: 56,
                spines: 4,
            },
        )
    };
    let synth_cfg = SynthConfig {
        flows,
        clients: 4_096,
        servers: 256,
        ingress: u32::from(spec.leaves),
        duration: flows.max(10_000) * 100, // ~10 flow arrivals / µs
        ..SynthConfig::default()
    };
    let seed = 24;

    // ------------------------------------------------------------------
    // 1. Synthesis + binary round-trip at scale.
    // ------------------------------------------------------------------
    let t0 = Instant::now();
    let bytes = synth_trace_bytes(&synth_cfg, seed);
    let synth_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let (meta, records) = from_swtrace_bytes(&bytes).expect("synthesized trace must read back");
    let read_ns = t1.elapsed().as_nanos() as u64;
    assert_eq!(meta.record_count, records.len() as u64, "count round-trip");
    assert!(meta.record_count >= flows, "every flow has >= 1 record");
    let trace_mb = bytes.len() as f64 / 1e6;
    drop(bytes);

    let mut synth_t = Table::new(
        &format!("Trace synthesis + .swtrace round-trip ({flows} flows, seed {seed})"),
        &[
            "flows",
            "records",
            "trace MB",
            "synth ms",
            "synth records/s",
            "read-back ms",
            "read records/s",
        ],
    );
    synth_t.row(vec![
        flows.to_string(),
        meta.record_count.to_string(),
        format!("{trace_mb:.1}"),
        format!("{:.0}", synth_ns as f64 / 1e6),
        format!("{:.0}", meta.record_count as f64 / (synth_ns as f64 / 1e9)),
        format!("{:.0}", read_ns as f64 / 1e6),
        format!("{:.0}", meta.record_count as f64 / (read_ns as f64 / 1e9)),
    ]);

    // ------------------------------------------------------------------
    // 2. Determinism: sequential (1 shard, twice) and 2-shard replay of
    //    the same trace must produce one digest.
    // ------------------------------------------------------------------
    let injections = trace_to_leaf_spine(&spec, &records);
    let mut det_t = Table::new(
        &format!(
            "Replay determinism, {}x{} leaf-spine ({} injected records)",
            spec.leaves,
            spec.spines,
            injections.len()
        ),
        &["run", "shards", "events", "digest", "wall events/s"],
    );
    let mut digests = Vec::new();
    for (label, shards) in [("seq", 1usize), ("seq-repeat", 1), ("sharded", 2)] {
        let cfg = ShardRunConfig::scaling(spec, shards, 0);
        let o = run_leaf_spine_injected(&cfg, &injections);
        det_t.row(vec![
            label.to_string(),
            shards.to_string(),
            o.events.to_string(),
            format!("{:016x}", o.digest),
            format!("{:.0}", o.wall_events_per_sec()),
        ]);
        digests.push(o.digest);
    }
    assert_eq!(digests[0], digests[1], "sequential replay must repeat");
    assert_eq!(
        digests[0], digests[2],
        "2-shard replay must match sequential"
    );
    drop(injections);

    // ------------------------------------------------------------------
    // 3. Ring-ingest parity on the protocol deployment, plus the
    //    protocol-level digest determinism check.
    // ------------------------------------------------------------------
    let slice = &records[..records.len().min(if quick { 8_000 } else { 20_000 })];
    let slice_bytes = to_swtrace_bytes(slice, TraceMeta::default()).expect("slice serializes");
    let reps = 3;
    let mut best_direct: f64 = 0.0;
    let mut best_ring: f64 = 0.0;
    let mut ring_digests = Vec::new();
    for _ in 0..reps {
        let mut dep = proto_dep(seed);
        let (ev, ns) = direct_replay(&mut dep, &slice_bytes);
        best_direct = best_direct.max(ev as f64 / (ns as f64 / 1e9));

        let mut dep = proto_dep(seed);
        let (ev, ns) = ring_replay(&mut dep, &slice_bytes);
        best_ring = best_ring.max(ev as f64 / (ns as f64 / 1e9));
        dep.run_for(SimDuration::millis(10));
        ring_digests.push(replay_digest(&dep, 256));
    }
    assert!(
        ring_digests.windows(2).all(|w| w[0] == w[1]),
        "protocol-path replay digest must be deterministic: {ring_digests:x?}"
    );
    let ratio = best_ring / best_direct.max(1.0);
    let mut ring_t = Table::new(
        &format!(
            "Ring-ingest parity, protocol deployment ({} records, best of {reps})",
            slice.len()
        ),
        &["path", "events/s", "vs generator-driven", "replay digest"],
    );
    ring_t.row(vec![
        "generator-driven (no ring)".into(),
        format!("{best_direct:.0}"),
        "1.00x".into(),
        "-".into(),
    ]);
    ring_t.row(vec![
        "ring ingest (reader→ring→inject)".into(),
        format!("{best_ring:.0}"),
        format!("{ratio:.2}x"),
        format!("{:016x}", ring_digests[0]),
    ]);
    assert!(
        ratio >= 0.9,
        "ring ingest fell below 90% of the generator-driven baseline: {ratio:.2}"
    );
    drop(records);

    // ------------------------------------------------------------------
    // 4. Scenario packs: five clean passes + one sabotaged failure.
    // ------------------------------------------------------------------
    let mut pack_t = Table::new(
        "Scenario packs (oracle suite + replay guard + state gates armed)",
        &["pack", "records", "stalls", "verdict", "headline measure"],
    );
    for kind in PackKind::ALL {
        let report = run_pack(&PackConfig::new(kind, seed, quick));
        assert!(
            report.pass,
            "pack {} failed: {:?}",
            report.name, report.violations
        );
        let headline = report
            .measures
            .first()
            .map(|(k, v)| format!("{k}={v:.0}"))
            .unwrap_or_default();
        pack_t.row(vec![
            report.name.to_string(),
            report.records.to_string(),
            report.stalls.to_string(),
            "pass".into(),
            headline,
        ]);
    }
    let sabotaged = run_pack(&PackConfig {
        sabotage: Some(Sabotage::DuplicateFlowRecord),
        ..PackConfig::new(PackKind::FlashCrowd, seed, quick)
    });
    assert!(
        !sabotaged.pass,
        "the sabotaged run must fail — otherwise the oracle gate is dead"
    );
    pack_t.row(vec![
        "flash_crowd (sabotaged)".into(),
        sabotaged.records.to_string(),
        sabotaged.stalls.to_string(),
        format!("FAIL ({})", sabotaged.violations.len()),
        sabotaged
            .violations
            .first()
            .cloned()
            .unwrap_or_default()
            .chars()
            .take(48)
            .collect(),
    ]);

    let findings = vec![
        format!(
            "{} flows -> {} records round-trip the .swtrace format ({:.1} MB) with a validated \
             superblock",
            flows, meta.record_count, trace_mb
        ),
        "one digest across sequential, repeated-sequential, and 2-shard replay — a trace plus \
         a seed is a run"
            .into(),
        format!(
            "ring-buffer ingest sustains {ratio:.2}x the generator-driven rate (gate: >= 0.90x) \
             — backpressure accounting costs nothing measurable"
        ),
        "all five scenario packs pass their oracle gates; the sabotaged feed fails through the \
         replay guard, proving the gate is live"
            .into(),
    ];
    ExperimentResult {
        id: "E24".into(),
        title: "Workload capture + replay lab: binary traces, ring ingest, scenario packs".into(),
        paper_anchor: "§7 evaluation workloads (stateful NFs under realistic traffic)".into(),
        expectation: "deterministic replay at every shard count; ring ingest within 10% of \
                      generator-driven; five oracle-armed packs pass, sabotage fails"
            .into(),
        tables: vec![synth_t, det_t, ring_t, pack_t],
        findings,
    }
}
